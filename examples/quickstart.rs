//! Quickstart: define a production system, run it, inspect the results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mpps::ops::{parse_program, Interpreter, Strategy};
use mpps::rete::ReteMatcher;

fn main() {
    // An OPS5-subset program: count down a counter and log each tick.
    let program = parse_program(
        r#"
        ; fires once per value, most recent first (LEX)
        (p count-down
           (counter ^name <c> ^value <v>)
           -(counter ^value 0)
           -->
           (modify 1 ^value (- <v> 1))
           (write tick <c> <v>))

        (p finished
           (counter ^name <c> ^value 0)
           -->
           (write done <c>)
           (remove 1)
           (halt))
        "#,
    )
    .expect("program parses");

    // The interpreter is generic over the matcher; use the Rete engine.
    let matcher = ReteMatcher::from_program(&program).expect("program compiles");
    let mut interp = Interpreter::with_matcher(program, Strategy::Lex, matcher);
    interp.wm_make("counter", &[("name", "main".into()), ("value", 3.into())]);

    let result = interp.run(100).expect("run succeeds");

    println!(
        "outcome: {:?} after {} cycles",
        result.outcome, result.cycles
    );
    for f in &result.fired {
        println!("  cycle {:>2}: fired {} {:?}", f.cycle, f.name, f.wme_ids);
    }
    println!("output log:");
    for line in interp.output() {
        let rendered: Vec<String> = line.iter().map(ToString::to_string).collect();
        println!("  {}", rendered.join(" "));
    }
    println!("final WM size: {}", interp.working_memory().len());
}
