//! End-to-end pipeline: run a real ruleset, capture its hash-table
//! activity trace, and sweep it on the simulated message-passing computer
//! — exactly what the paper did with its Rubik/Tourney/Weaver traces.
//!
//! ```sh
//! cargo run --release --example trace_simulation
//! ```

use mpps::analysis::render_table;
use mpps::core::sweep::{baseline, speedup_curve, PartitionStrategy};
use mpps::core::OverheadSetting;
use mpps::workloads::rubik;

fn main() {
    // 1. Run eight cube moves under the MRA interpreter, recording the
    //    Rete activation trace (table of 512 hash buckets).
    let run = rubik::section(8, 512);
    let stats = run.trace.stats();
    println!(
        "captured {} cycles, {} activations ({})",
        run.trace.cycles.len(),
        stats.total(),
        stats
    );

    // 2. The trace round-trips through the simulator input format.
    let text = run.trace.to_text();
    let trace = mpps::rete::Trace::from_text(&text).expect("trace parses back");
    println!(
        "trace serialized to {} lines of simulator input",
        text.lines().count()
    );

    // 3. Sweep processors × overhead settings on the simulated MPC.
    let procs = [1usize, 2, 4, 8, 16, 32];
    let base = baseline(&trace);
    println!(
        "serial match time (1 processor, zero overheads): {}",
        base.total
    );
    let mut rows = Vec::new();
    for overhead in OverheadSetting::table_5_1() {
        let curve = speedup_curve(&trace, &procs, overhead, PartitionStrategy::RoundRobin);
        rows.push(
            std::iter::once(overhead.name.to_owned())
                .chain(curve.iter().map(|p| format!("{:.2}", p.speedup)))
                .collect::<Vec<String>>(),
        );
    }
    let headers: Vec<String> = std::iter::once("overhead".to_owned())
        .chain(procs.iter().map(|p| format!("P={p}")))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    println!(
        "\n{}",
        render_table(
            "Simulated speedups for the captured cube trace",
            &header_refs,
            &rows,
        )
    );
}
