//! Run a cross-product-heavy tournament match on the real multi-threaded
//! message-passing executor and compare against the sequential engine.
//!
//! ```sh
//! cargo run --release --example parallel_match
//! ```

use mpps::core::ThreadedMatcher;
use mpps::ops::{Matcher, WmeChange, WmeId};
use mpps::rete::ReteMatcher;
use mpps::workloads::tourney;
use std::time::Instant;

fn changes(east: usize, west: usize) -> Vec<WmeChange> {
    tourney::initial(east, west)
        .into_iter()
        .enumerate()
        .map(|(i, w)| WmeChange::add(WmeId(1 + i as u64), w))
        .collect()
}

fn main() {
    let program = tourney::program();
    let batch = changes(40, 40); // 1600 pairings in the conflict set

    let t0 = Instant::now();
    let mut seq = ReteMatcher::from_program(&program).expect("compiles");
    seq.process(&batch);
    let seq_cs = seq.conflict_set();
    let seq_time = t0.elapsed();
    println!(
        "sequential Rete:   {} instantiations in {seq_time:?}",
        seq_cs.len()
    );

    for workers in [1, 2, 4, 8] {
        let t0 = Instant::now();
        let mut par = ThreadedMatcher::from_program(&program, workers).expect("compiles");
        par.process(&batch);
        let par_cs = par.conflict_set();
        let par_time = t0.elapsed();
        assert_eq!(seq_cs, par_cs, "parallel match must agree exactly");
        println!(
            "threaded ({workers} workers): {} instantiations in {par_time:?} (identical conflict set)",
            par_cs.len()
        );
    }

    // Incremental deltas work too: retract one team and watch the
    // conflict set shrink by one column of the cross product.
    let mut par = ThreadedMatcher::from_program(&program, 4).expect("compiles");
    par.process(&batch);
    let before = par.conflict_set().len();
    let east0 = batch[0].clone();
    par.process(&[WmeChange::remove(east0.id, east0.wme)]);
    let after = par.conflict_set().len();
    println!("\nretracting one east team: {before} -> {after} instantiations");
}
