//! Safra's termination-detection algorithm on the simulated MPC — the
//! piece the paper deferred to future work, demonstrated standalone.
//!
//! ```sh
//! cargo run --example termination
//! ```

use mpps::core::termination::run_demo;
use mpps::mpcsim::{MachineConfig, NetworkModel, SimTime};

fn main() {
    println!("Safra's algorithm over a ring of message-passing processors\n");
    for n in [4usize, 8, 16] {
        let cfg = MachineConfig {
            processors: n,
            send_overhead: SimTime::from_us(5),
            recv_overhead: SimTime::from_us(3),
            network: NetworkModel::Constant(SimTime::from_ns(500)),
        };
        let report = run_demo(n, 2024, cfg);
        let lag = report.detected_at - report.last_basic_at;
        println!(
            "ring of {n:>2}: computation quiescent at {}, detected at {} \
             (detection lag {lag}, {} probes)",
            report.last_basic_at, report.detected_at, report.probes
        );
    }
    println!(
        "\nThe detector only ever concludes termination after the basic \
         computation has actually drained — the property the threaded \
         executor's cycle barrier depends on."
    );
}
