//! Build your own characteristic section with the parametric generator,
//! then study it the way §5 studies Rubik/Tourney/Weaver: sweep
//! processors, detect speedup dips, and bound the gain a better bucket
//! distribution could deliver.
//!
//! ```sh
//! cargo run --release --example custom_section
//! ```

use mpps::analysis::{find_dips, greedy_improvement_bound, monotonic_envelope};
use mpps::core::sweep::{speedup_curve, PartitionStrategy};
use mpps::core::{OverheadSetting, Partition};
use mpps::workloads::synth::{custom, SectionParams};

fn main() {
    // A section with a §5.2.1-style hot generator and a restricted
    // active-bucket set — both pathologies at once.
    let params = SectionParams {
        cycles: 5,
        rights_per_cycle: 400,
        lefts_per_cycle: 300,
        active_left_buckets: 12,
        chain_probability: 0.4,
        instantiation_every: 25,
        hot_generator_fanout: 60,
    };
    let trace = custom(params, 7);
    let stats = trace.stats();
    println!("section: {} cycles, {stats}", trace.cycles.len());

    let procs = [1usize, 2, 4, 8, 12, 16, 24, 32];
    let curve = speedup_curve(
        &trace,
        &procs,
        OverheadSetting::table_5_1()[1],
        PartitionStrategy::RoundRobin,
    );
    let points: Vec<(usize, f64)> = curve.iter().map(|p| (p.processors, p.speedup)).collect();
    println!("\nP      speedup   envelope");
    for (measured, envelope) in points.iter().zip(monotonic_envelope(&points)) {
        println!("{:<6} {:<9.2} {:.2}", measured.0, measured.1, envelope.1);
    }

    let dips = find_dips(&points, 0.01);
    if dips.is_empty() {
        println!("\nno speedup dips detected");
    } else {
        for d in dips {
            println!(
                "\ndip: {} -> {} processors lost {:.0}% speedup ({:.2} -> {:.2}) — \
                 the paper's uneven-bucket effect",
                d.from_procs,
                d.to_procs,
                d.depth() * 100.0,
                d.before,
                d.after
            );
        }
    }

    let rr = Partition::round_robin(trace.table_size, 16);
    println!(
        "\noffline-greedy load-balance bound at 16 procs: x{:.2}",
        greedy_improvement_bound(&trace, &rr)
    );
}
