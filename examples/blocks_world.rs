//! The classic blocks world, including the production from Figure 2-1 of
//! the paper, matched against the exact working memory shown there.
//!
//! ```sh
//! cargo run --example blocks_world
//! ```

use mpps::ops::{parse_program, parse_wme, Interpreter, Matcher, NaiveMatcher, Strategy};
use mpps::rete::ReteMatcher;

fn main() {
    let program = parse_program(
        r#"
        ; Figure 2-1 of the paper, verbatim structure.
        (p clear-the-blue-block
           (block ^name <block2> ^color blue)
           (block ^name <block2> ^on <block1>)
           (hand ^state free)
           -->
           (remove 2)
           (write cleared <block2> was-on <block1>))

        (p stack-on-table
           (block ^name <b> ^color blue)
           -(block ^name <b> ^on <anything>)
           (hand ^state free)
           -->
           (make block ^name <b> ^on table)
           (write stacked <b> on table)
           (halt))
        "#,
    )
    .expect("program parses");

    // The instantiation example of Figure 2-1.
    let wmes = [
        "(block ^name b1 ^color blue)",
        "(block ^name b1 ^on table)",
        "(hand ^state free ^name robot-1-hand)",
    ];

    // Show both matchers agree before running (the reference property the
    // whole workspace is tested on).
    let mut naive = NaiveMatcher::new(program.clone());
    let mut rete = ReteMatcher::from_program(&program).expect("compiles");
    let changes: Vec<mpps::ops::WmeChange> = wmes
        .iter()
        .enumerate()
        .map(|(i, src)| {
            mpps::ops::WmeChange::add(mpps::ops::WmeId(1 + i as u64), parse_wme(src).unwrap())
        })
        .collect();
    naive.process(&changes);
    rete.process(&changes);
    assert_eq!(naive.conflict_set(), rete.conflict_set());
    println!("conflict set (naive == rete):");
    for inst in rete.conflict_set() {
        println!("  {inst}");
    }

    // Run the whole thing through the interpreter.
    let mut interp = Interpreter::with_matcher(
        program.clone(),
        Strategy::Lex,
        ReteMatcher::from_program(&program).unwrap(),
    );
    for src in wmes {
        interp.add_wme(parse_wme(src).unwrap());
    }
    let result = interp.run(20).expect("runs");
    println!(
        "\nrun: {:?}, {} firings",
        result.outcome,
        result.fired.len()
    );
    for line in interp.output() {
        let rendered: Vec<String> = line.iter().map(ToString::to_string).collect();
        println!("  wrote: {}", rendered.join(" "));
    }
}
