//! Conflict-resolution comparators are total orders.
//!
//! `resolve` picks the winner with `max_by(compare)`, and the difftest
//! oracle sorts whole conflict sets with the same comparator — both are
//! only well-defined when `compare` is a total order. These property
//! tests pin that contract for LEX and MEA: antisymmetry, transitivity,
//! and `Equal` exactly on identical `(production, wme_ids)` keys.

use mpps::ops::{
    compare, intern, Action, AttrTest, ConditionElement, Instantiation, Production, ProductionId,
    Program, Strategy as CrStrategy, TestKind, Value, WmeId,
};
use proptest::prelude::*;
use std::cmp::Ordering;
use std::collections::HashMap;

/// Three productions with specificities 1, 2, and 3, so the specificity
/// tie-break is exercised alongside recency and the id-based final rung.
fn order_program() -> Program {
    let prods = (0..3usize)
        .map(|i| Production {
            name: intern(&format!("order-p{i}")),
            lhs: vec![ConditionElement::positive(
                "a",
                (0..i)
                    .map(|t| AttrTest {
                        attr: intern(["p", "q"][t]),
                        kind: TestKind::Constant(mpps::ops::Predicate::Eq, Value::Int(0)),
                    })
                    .collect(),
            )],
            rhs: vec![Action::Halt],
        })
        .collect();
    Program::from_productions(prods).unwrap()
}

/// Arbitrary instantiations over a deliberately tiny id space (tags
/// 1..=6, 1–3 WMEs) so recency ties, prefix cases, and identical keys all
/// occur with high probability.
fn arb_inst() -> impl Strategy<Value = Instantiation> {
    (0u32..3, proptest::collection::vec(1u64..7, 1..=3)).prop_map(|(p, ids)| Instantiation {
        production: ProductionId(p),
        wme_ids: ids.into_iter().map(WmeId).collect(),
        bindings: HashMap::new(),
    })
}

fn key(i: &Instantiation) -> (ProductionId, Vec<WmeId>) {
    (i.production, i.wme_ids.clone())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// compare(a, b) is the reverse of compare(b, a), and Equal appears
    /// exactly when the instantiation keys coincide.
    #[test]
    fn compare_is_antisymmetric(a in arb_inst(), b in arb_inst()) {
        let prog = order_program();
        for strategy in [CrStrategy::Lex, CrStrategy::Mea] {
            let ab = compare(&prog, strategy, &a, &b);
            let ba = compare(&prog, strategy, &b, &a);
            prop_assert_eq!(ab, ba.reverse(), "{:?}", strategy);
            prop_assert_eq!(ab == Ordering::Equal, key(&a) == key(&b), "{:?}", strategy);
        }
    }

    /// a ≥ b and b ≥ c imply a ≥ c — the property `max_by` and any
    /// sort-based caller silently rely on.
    #[test]
    fn compare_is_transitive(a in arb_inst(), b in arb_inst(), c in arb_inst()) {
        let prog = order_program();
        for strategy in [CrStrategy::Lex, CrStrategy::Mea] {
            let ab = compare(&prog, strategy, &a, &b);
            let bc = compare(&prog, strategy, &b, &c);
            if ab != Ordering::Less && bc != Ordering::Less {
                prop_assert_ne!(
                    compare(&prog, strategy, &a, &c),
                    Ordering::Less,
                    "{:?}: a>=b and b>=c but a<c", strategy
                );
            }
        }
    }

    /// Every instantiation equals itself under both strategies.
    #[test]
    fn compare_is_reflexive(a in arb_inst()) {
        let prog = order_program();
        for strategy in [CrStrategy::Lex, CrStrategy::Mea] {
            prop_assert_eq!(compare(&prog, strategy, &a, &a), Ordering::Equal);
        }
    }
}
