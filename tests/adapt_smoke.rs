//! Adapt smoke: the closed skew loop on the Tourney cross-product.
//!
//! Tourney's pairing rule joins east against west teams with no shared
//! variable — a genuine cross-product whose tokens all hash to one
//! bucket (§5.2.2), so a static partition necessarily serializes the
//! whole join on one worker no matter how cleverly buckets are dealt.
//! The closed loop (profiled pre-run → `suggest_plan`
//! copy-and-constraint → online migration at cycle barriers) must spread
//! that work. This is the acceptance configuration: 8 workers, with the
//! scenario itself defined once in `mpps_bench::adapt` and shared with
//! the `matchkernel` manifest and the `repro adapt` figure.

use mpps_bench::adapt::{measure, AdaptScenario};

#[test]
fn adapt_at_least_halves_probe_skew_and_stays_equivalent() {
    let sc = AdaptScenario::default();
    assert_eq!(sc.workers, 8, "acceptance configuration is 8 workers");
    let report = measure(&sc);

    assert!(
        report.firings > 0,
        "tourney must fire (vacuous smoke otherwise)"
    );
    assert!(
        report.equivalent,
        "threaded diverged from the sequential reference"
    );
    assert!(
        report.plan_summary.contains("split"),
        "suggest_plan must copy-and-constrain the cross-product: {}",
        report.plan_summary
    );

    // The loop must migrate: rebalance events prove the online
    // repartitioner ran, not just the offline transform.
    assert!(
        report.rebalances > 0,
        "adaptation never rebalanced (loads {:?})",
        report.adaptive_loads
    );

    // ≥2× probe-load skew reduction vs static greedy.
    let static_skew = report.static_skew();
    let adaptive_skew = report.adaptive_skew();
    assert!(
        adaptive_skew * 2.0 <= static_skew,
        "probe-load skew did not halve: static {static_skew:.3} {:?} \
         vs adaptive {adaptive_skew:.3} {:?}",
        report.static_loads,
        report.adaptive_loads
    );

    // The before/after summary the CI job uploads as an artifact.
    println!(
        "adapt-smoke: probe skew static {static_skew:.3} -> adaptive {adaptive_skew:.3} \
         ({:.2}x, {} rebalances, {} buckets moved); bucket skew {:?} -> {:?}; plan: {}",
        report.reduction(),
        report.rebalances,
        report.moved_buckets,
        report.static_bucket_skew,
        report.adaptive_bucket_skew,
        report.plan_summary
    );
}
