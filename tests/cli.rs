//! Smoke tests for the `mpps` command-line tool: run → trace → simulate,
//! end to end, on the bundled monkey-and-bananas program.

use std::process::Command;

fn mpps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpps"))
}

fn repo_file(rel: &str) -> String {
    format!("{}/{}", env!("CARGO_MANIFEST_DIR"), rel)
}

#[test]
fn run_monkey_and_bananas() {
    let out = mpps()
        .args([
            "run",
            &repo_file("examples/data/monkey.ops"),
            "--wm",
            &repo_file("examples/data/monkey.wm"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("push-ladder"));
    assert!(stdout.contains("climb-ladder"));
    assert!(stdout.contains("grab-bananas"));
    assert!(stdout.contains("got bananas"));
    assert!(stdout.contains("Halted after 3 cycles"));
}

#[test]
fn run_with_each_matcher_agrees() {
    let run = |matcher: &str| {
        let out = mpps()
            .args([
                "run",
                &repo_file("examples/data/monkey.ops"),
                "--wm",
                &repo_file("examples/data/monkey.wm"),
                "--matcher",
                matcher,
                "--quiet",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{matcher}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let rete = run("rete");
    assert_eq!(rete, run("naive"));
    assert_eq!(rete, run("threaded"));
}

#[test]
fn trace_then_simulate_roundtrip() {
    let dir = std::env::temp_dir().join(format!("mpps-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("monkey.trace");
    let out = mpps()
        .args([
            "trace",
            &repo_file("examples/data/monkey.ops"),
            "--wm",
            &repo_file("examples/data/monkey.wm"),
            "--table-size",
            "64",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert!(text.starts_with("mpps-trace v1 table_size=64"));

    let out = mpps()
        .args([
            "simulate",
            trace_path.to_str().unwrap(),
            "--procs",
            "1,2,4",
            "--overhead",
            "0",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("P, time_us, speedup"));
    // P=1 at zero overhead is the baseline: speedup 1.00.
    assert!(stdout.contains("1, "), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_input_fails_cleanly() {
    let out = mpps().args(["run", "/nonexistent.ops"]).output().unwrap();
    assert!(!out.status.success());
    let out = mpps().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = mpps().output().unwrap();
    assert!(!out.status.success());
}
