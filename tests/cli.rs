//! Smoke tests for the `mpps` command-line tool: run → trace → simulate,
//! end to end, on the bundled monkey-and-bananas program.

use std::process::Command;

fn mpps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_mpps"))
}

fn repo_file(rel: &str) -> String {
    format!("{}/{}", env!("CARGO_MANIFEST_DIR"), rel)
}

#[test]
fn run_monkey_and_bananas() {
    let out = mpps()
        .args([
            "run",
            &repo_file("examples/data/monkey.ops"),
            "--wm",
            &repo_file("examples/data/monkey.wm"),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("push-ladder"));
    assert!(stdout.contains("climb-ladder"));
    assert!(stdout.contains("grab-bananas"));
    assert!(stdout.contains("got bananas"));
    assert!(stdout.contains("Halted after 3 cycles"));
}

#[test]
fn run_with_each_matcher_agrees() {
    let run = |matcher: &str| {
        let out = mpps()
            .args([
                "run",
                &repo_file("examples/data/monkey.ops"),
                "--wm",
                &repo_file("examples/data/monkey.wm"),
                "--matcher",
                matcher,
                "--quiet",
            ])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{matcher}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let rete = run("rete");
    assert_eq!(rete, run("naive"));
    assert_eq!(rete, run("treat"));
    assert_eq!(rete, run("threaded"));
}

#[test]
fn fuzz_clean_sweep_reports_zero_divergences() {
    // A short fixed-seed sweep: all matchers agree, summary on stdout,
    // exit status 0.
    let out = mpps()
        .args(["fuzz", "--iters", "25", "--seed", "0", "--shrink"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("fuzz: 25 cases (seeds 0..25)"), "{stdout}");
    assert!(stdout.contains("0 divergences"), "{stdout}");
    assert!(stdout.contains("naive,rete,treat,threaded"), "{stdout}");
}

#[test]
fn fuzz_subset_of_matchers_is_accepted() {
    let out = mpps()
        .args(["fuzz", "--iters", "5", "--matchers", "rete,treat"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("matchers [rete,treat]"), "{stdout}");
}

#[test]
fn fuzz_bad_matcher_is_usage_error() {
    let out = mpps()
        .args(["fuzz", "--iters", "1", "--matchers", "dragnet"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("dragnet"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn fuzz_rejects_positional_arguments() {
    let out = mpps()
        .args(["fuzz", "extra.ops"])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_then_simulate_roundtrip() {
    let dir = std::env::temp_dir().join(format!("mpps-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("monkey.trace");
    let out = mpps()
        .args([
            "trace",
            &repo_file("examples/data/monkey.ops"),
            "--wm",
            &repo_file("examples/data/monkey.wm"),
            "--table-size",
            "64",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert!(text.starts_with("mpps-trace v1 table_size=64"));

    let out = mpps()
        .args([
            "simulate",
            trace_path.to_str().unwrap(),
            "--procs",
            "1,2,4",
            "--overhead",
            "0",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("P, time_us, speedup"));
    // P=1 at zero overhead is the baseline: speedup 1.00.
    assert!(stdout.contains("1, "), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Write the monkey-and-bananas trace into a fresh temp dir named `tag`.
fn make_trace(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
    let dir = std::env::temp_dir().join(format!("mpps-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("monkey.trace");
    let out = mpps()
        .args([
            "trace",
            &repo_file("examples/data/monkey.ops"),
            "--wm",
            &repo_file("examples/data/monkey.wm"),
            "--table-size",
            "64",
            "--out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    (dir, trace_path)
}

#[test]
fn simulate_trace_out_keeps_stdout_identical_and_writes_perfetto_trace() {
    let (dir, trace_path) = make_trace("traceout");
    let chrome_path = dir.join("t.json");
    let base_args = [
        "simulate",
        trace_path.to_str().unwrap(),
        "--procs",
        "1,2,4",
        "--overhead",
        "8",
        "--jobs",
        "2",
    ];
    let plain = mpps().args(base_args).output().expect("binary runs");
    let traced = mpps()
        .args(base_args)
        .args(["--trace-out", chrome_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(plain.status.success() && traced.status.success());
    // Enabling telemetry must not change the figure output.
    assert_eq!(plain.stdout, traced.stdout);

    // The exported file is a Chrome trace with one named lane per machine
    // processor of the largest requested configuration (4 match + control).
    let text = std::fs::read_to_string(&chrome_path).unwrap();
    let doc = mpps::telemetry::json::parse(&text).expect("trace parses as JSON");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    let lane_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .filter_map(|e| e.get("args")?.get("name")?.as_str())
        .collect();
    assert!(lane_names.contains(&"control"), "{lane_names:?}");
    for m in 0..4 {
        assert!(lane_names.contains(&format!("match {m}").as_str()));
    }
    // Every processor lane carries at least one complete ("X") span.
    for tid in 0..5u32 {
        assert!(
            events.iter().any(|e| {
                e.get("ph").and_then(|p| p.as_str()) == Some("X")
                    && e.get("tid").and_then(|t| t.as_u64()) == Some(tid as u64)
                    && e.get("pid").and_then(|p| p.as_u64()) == Some(1)
            }),
            "no span on processor lane {tid}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_format_json_emits_parseable_summary() {
    let (dir, trace_path) = make_trace("json");
    let out = mpps()
        .args([
            "simulate",
            trace_path.to_str().unwrap(),
            "--procs",
            "1,2",
            "--overhead",
            "0",
            "--format",
            "json",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let doc = mpps::telemetry::json::parse(&stdout).expect("summary parses as JSON");
    let points = doc.get("points").and_then(|p| p.as_array()).unwrap();
    assert_eq!(points.len(), 2);
    assert_eq!(
        points[0].get("processors").and_then(|v| v.as_u64()),
        Some(1)
    );
    assert!(doc.get("serial_match_us").and_then(|v| v.as_f64()).unwrap() > 0.0);
    assert!(doc.get("trace").and_then(|t| t.get("cycles")).is_some());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn simulate_stats_prints_histogram_summaries() {
    let (dir, trace_path) = make_trace("stats");
    let out = mpps()
        .args([
            "simulate",
            trace_path.to_str().unwrap(),
            "--procs",
            "1,2,4",
            "--overhead",
            "8",
            "--stats",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The summary table is still there, followed by the histogram block.
    assert!(stdout.contains("P, time_us, speedup"));
    assert!(stdout.contains("telemetry histograms"));
    assert!(stdout.contains("acts-per-bucket:"));
    assert!(stdout.contains("cycle-makespan-us:"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn threaded_workers_zero_is_usage_error() {
    let out = mpps()
        .args([
            "run",
            &repo_file("examples/data/monkey.ops"),
            "--wm",
            &repo_file("examples/data/monkey.wm"),
            "--matcher",
            "threaded",
            "--workers",
            "0",
        ])
        .output()
        .expect("binary runs");
    // Caller mistake: usage status (2), a diagnostic naming the flag, and
    // no panic backtrace.
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--workers"), "{stderr}");
    assert!(!stderr.contains("panicked"), "{stderr}");
}

#[test]
fn threaded_partition_strategies_agree_with_rete() {
    let run = |extra: &[&str]| {
        let out = mpps()
            .args([
                "run",
                &repo_file("examples/data/monkey.ops"),
                "--wm",
                &repo_file("examples/data/monkey.wm"),
                "--quiet",
            ])
            .args(extra)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{extra:?}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let rete = run(&["--matcher", "rete"]);
    for partition in ["rr", "random", "greedy"] {
        let threaded = run(&[
            "--matcher",
            "threaded",
            "--workers",
            "3",
            "--partition",
            partition,
            "--seed",
            "42",
        ]);
        assert_eq!(rete, threaded, "partition {partition} diverged");
    }
}

#[test]
fn threaded_stats_prints_worker_lines() {
    let out = mpps()
        .args([
            "run",
            &repo_file("examples/data/monkey.ops"),
            "--wm",
            &repo_file("examples/data/monkey.wm"),
            "--matcher",
            "threaded",
            "--workers",
            "2",
            "--stats",
            "--quiet",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("threaded matcher:"), "{stderr}");
    assert!(stderr.contains("worker 0:"), "{stderr}");
    assert!(stderr.contains("worker 1:"), "{stderr}");
}

#[test]
fn run_profile_keeps_stdout_identical_and_writes_schema_valid_profile() {
    let dir = std::env::temp_dir().join(format!("mpps-cli-profile-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for matcher in ["rete", "treat", "threaded"] {
        let base = [
            "run",
            "tourney",
            "--matcher",
            matcher,
            "--workers",
            "2",
            "--quiet",
        ];
        let plain = mpps().args(base).output().expect("binary runs");
        let prof_dir = dir.join(matcher);
        let profiled = mpps()
            .args(base)
            .args(["--profile", prof_dir.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(
            plain.status.success() && profiled.status.success(),
            "{matcher}: {}",
            String::from_utf8_lossy(&profiled.stderr)
        );
        // Profiling must not change what the run prints.
        assert_eq!(plain.stdout, profiled.stdout, "{matcher}: stdout diverged");

        let text = std::fs::read_to_string(prof_dir.join("match_profile.json")).unwrap();
        let doc = mpps::telemetry::json::parse(&text).expect("profile parses as JSON");
        assert_eq!(
            doc.get("schema").and_then(|v| v.as_str()),
            Some("mpps.match_profile.v1"),
            "{matcher}"
        );
        let acts = doc
            .get("totals")
            .and_then(|t| t.get("activations"))
            .and_then(|v| v.as_u64())
            .unwrap();
        assert!(acts > 0, "{matcher}: no activations in profile");
    }
    // The threaded run also exports the merged Chrome-trace lanes.
    let trace = std::fs::read_to_string(dir.join("threaded").join("trace.json")).unwrap();
    let doc = mpps::telemetry::json::parse(&trace).expect("trace parses as JSON");
    let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
    let has = |name: &str| {
        events
            .iter()
            .any(|e| e.get("name").and_then(|n| n.as_str()) == Some(name))
    };
    assert!(has("match-work"), "no match-work spans in trace");
    assert!(has("barrier-wait"), "no barrier-wait spans in trace");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_profile_with_naive_matcher_is_usage_error() {
    let out = mpps()
        .args([
            "run",
            "tourney",
            "--matcher",
            "naive",
            "--profile",
            "/tmp/x",
        ])
        .output()
        .expect("binary runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--profile"), "{stderr}");
}

#[test]
fn fuzz_profile_writes_merged_replay_profile() {
    let dir = std::env::temp_dir().join(format!("mpps-cli-fuzzprof-{}", std::process::id()));
    let out = mpps()
        .args([
            "fuzz",
            "--iters",
            "10",
            "--seed",
            "7",
            "--profile",
            dir.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(dir.join("match_profile.json")).unwrap();
    let doc = mpps::telemetry::json::parse(&text).expect("profile parses as JSON");
    assert_eq!(
        doc.get("matcher").and_then(|v| v.as_str()),
        Some("fuzz-replay")
    );
    assert!(
        doc.get("totals")
            .and_then(|t| t.get("activations"))
            .and_then(|v| v.as_u64())
            .unwrap()
            > 0
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_synthetic_prints_throughput_summary() {
    let out = mpps()
        .args([
            "serve",
            "--synthetic",
            "--sessions",
            "30",
            "--rounds",
            "2",
            "--wmes",
            "2",
            "--workers",
            "2",
            "--sharding",
            "greedy",
            "--stats",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("serve: 30 sessions x 2 rounds x 2 wmes"),
        "{stdout}"
    );
    assert!(stdout.contains("0 failures"), "{stdout}");
    // 30 creations + 60 ingestion rounds, 3 firings per request.
    assert!(stdout.contains("90 replies"), "{stdout}");
    assert!(stdout.contains("360 firings"), "{stdout}");
    assert!(stdout.contains("cycle latency p50"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("worker 0:"), "{stderr}");
    assert!(stderr.contains("worker 1:"), "{stderr}");
}

#[test]
fn serve_script_restores_deterministically() {
    let dir = std::env::temp_dir().join(format!("mpps-cli-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let script = dir.join("triage.script");
    std::fs::write(
        &script,
        "# snapshot mid-stream, restore, replay the tail\n\
         session a\n\
         make a (stats ^done 0)\n\
         make a (request ^id 1 ^kind alert)\n\
         snapshot a\n\
         make a (request ^id 2 ^kind order)\n\
         restore b a\n\
         make b (request ^id 2 ^kind order)\n\
         destroy a\n",
    )
    .unwrap();
    let out = mpps()
        .args(["serve", "--script", script.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 8, "{stdout}");
    assert!(lines[0].starts_with("session a = s0"), "{stdout}");
    assert!(lines[3].starts_with("snapshot a: "), "{stdout}");
    // The restored session replays the same input and fires identically.
    assert_eq!(
        lines[4].replace(" a:", ":"),
        lines[6].replace(" b:", ":"),
        "{stdout}"
    );
    assert_eq!(lines[7], "destroy a: ok", "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `--resident-budget` caps resident sessions per worker: the summary
/// gains an eviction line, and with `--migrate` the synthetic driver
/// rebalances between rounds. The constrained run still reports zero
/// failures — eviction and migration must be invisible to correctness.
#[test]
fn serve_synthetic_evicts_and_migrates_under_a_resident_budget() {
    let dir = std::env::temp_dir().join(format!("mpps-cli-evict-{}", std::process::id()));
    let out = mpps()
        .args([
            "serve",
            "--synthetic",
            "--sessions",
            "24",
            "--rounds",
            "2",
            "--wmes",
            "2",
            "--workers",
            "2",
            "--resident-budget",
            "4",
            "--evict-dir",
            dir.to_str().unwrap(),
            "--migrate",
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 failures"), "{stdout}");
    assert!(stdout.contains("resident budget 4/worker:"), "{stdout}");
    // 24 sessions over a 4/worker budget must actually spill to disk.
    let line = stdout
        .lines()
        .find(|l| l.contains("resident budget"))
        .unwrap();
    assert!(!line.contains(" 0 evictions"), "{stdout}");
    // The workers clean their spill directories up on shutdown.
    assert!(
        !dir.exists() || std::fs::read_dir(&dir).unwrap().next().is_none(),
        "spill files leaked in {}",
        dir.display()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Degenerate or contradictory serve flags are usage errors (exit 2),
/// not silent clamps: a zero shard count used to be rounded up to 1.
#[test]
fn serve_rejects_degenerate_scale_flags() {
    for (args, wants) in [
        (
            &["serve", "--synthetic", "--shards", "0"][..],
            "--shards must be at least 1",
        ),
        (
            &["serve", "--synthetic", "--workers", "0"][..],
            "--workers must be at least 1",
        ),
        (
            &["serve", "--synthetic", "--resident-budget", "0"][..],
            "--resident-budget must be at least 1",
        ),
        (
            &["serve", "--synthetic", "--evict-dir", "/tmp/x"][..],
            "--evict-dir needs --resident-budget",
        ),
        (
            &["serve", "--script", "x", "--migrate"][..],
            "--migrate only applies to --synthetic",
        ),
    ] {
        let out = mpps().args(args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(wants), "{args:?}: {stderr}");
    }
}

#[test]
fn serve_needs_exactly_one_mode() {
    for args in [
        &["serve"][..],
        &["serve", "--synthetic", "--script", "x"][..],
    ] {
        let out = mpps().args(args).output().expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("exactly one of"), "{args:?}: {stderr}");
    }
}

/// Every subcommand rejects flags it does not understand the same way:
/// a diagnostic naming the flag, its own usage line, exit status 2.
#[test]
fn unknown_flags_are_usage_errors_everywhere() {
    for cmd in ["run", "trace", "simulate", "fuzz", "serve"] {
        let out = mpps()
            .args([cmd, "--bogus", "value"])
            .output()
            .expect("binary runs");
        assert_eq!(out.status.code(), Some(2), "{cmd} accepted --bogus");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("unknown flag --bogus for `mpps"),
            "{cmd}: {stderr}"
        );
        assert!(
            stderr.contains(&format!("usage: mpps {cmd}")),
            "{cmd}: {stderr}"
        );
        assert!(!stderr.contains("panicked"), "{cmd}: {stderr}");
    }
}

#[test]
fn bad_input_fails_cleanly() {
    let out = mpps().args(["run", "/nonexistent.ops"]).output().unwrap();
    assert!(!out.status.success());
    let out = mpps().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    let out = mpps().output().unwrap();
    assert!(!out.status.success());
}
