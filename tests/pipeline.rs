//! End-to-end pipeline tests across crates: interpreter × matchers on the
//! runnable workloads, trace round-trips, and trace-driven simulation of
//! organically captured traces.

use mpps::core::sweep::{baseline, speedup_curve, PartitionStrategy};
use mpps::core::{simulate, MappingConfig, OverheadSetting, Partition, ThreadedMatcher};
use mpps::ops::{Interpreter, Matcher, NaiveMatcher, Strategy};
use mpps::rete::{ReteMatcher, Trace};
use mpps::workloads::{rubik, tourney, weaver};

/// Run the same program+WM under two interpreters and compare the full
/// firing sequences and outputs.
fn assert_same_run<A: Matcher, B: Matcher>(
    program: mpps::ops::Program,
    initial: Vec<mpps::ops::Wme>,
    mk_a: impl FnOnce(&mpps::ops::Program) -> A,
    mk_b: impl FnOnce(&mpps::ops::Program) -> B,
    max_cycles: usize,
) {
    let a_matcher = mk_a(&program);
    let b_matcher = mk_b(&program);
    let mut a = Interpreter::with_matcher(program.clone(), Strategy::Lex, a_matcher);
    let mut b = Interpreter::with_matcher(program, Strategy::Lex, b_matcher);
    for w in &initial {
        a.add_wme(w.clone());
        b.add_wme(w.clone());
    }
    let ra = a.run(max_cycles).unwrap();
    let rb = b.run(max_cycles).unwrap();
    assert_eq!(ra.outcome, rb.outcome);
    assert_eq!(ra.fired, rb.fired, "identical firing sequences");
    assert_eq!(a.output(), b.output());
    assert_eq!(a.working_memory().len(), b.working_memory().len());
}

#[test]
fn rubik_runs_identically_on_all_matchers() {
    // Small move count: the naive matcher is exponential in CE count, so
    // use the observer-free program for the naive comparison.
    let program = rubik::program_with_observers(0);
    let initial = rubik::initial(&rubik::alternating_moves(2));
    assert_same_run(
        program.clone(),
        initial.clone(),
        |p| ReteMatcher::from_program(p).unwrap(),
        |p| ThreadedMatcher::from_program(p, 3).unwrap(),
        20,
    );
}

#[test]
fn tourney_runs_identically_on_naive_and_rete() {
    assert_same_run(
        tourney::program(),
        tourney::initial(4, 4),
        |p| NaiveMatcher::new(p.clone()),
        |p| ReteMatcher::from_program(p).unwrap(),
        40,
    );
}

#[test]
fn tourney_runs_identically_on_rete_and_threaded() {
    assert_same_run(
        tourney::program(),
        tourney::initial(5, 5),
        |p| ReteMatcher::from_program(p).unwrap(),
        |p| ThreadedMatcher::from_program(p, 4).unwrap(),
        60,
    );
}

#[test]
fn weaver_runs_identically_on_naive_and_rete() {
    assert_same_run(
        weaver::program(),
        weaver::initial(4, 2),
        |p| NaiveMatcher::new(p.clone()),
        |p| ReteMatcher::from_program(p).unwrap(),
        40,
    );
}

#[test]
fn captured_traces_roundtrip_through_text() {
    for trace in [
        rubik::section(3, 256).trace,
        tourney::section(4, 4, 3, 256).trace,
        weaver::section(4, 2, 15, 256).trace,
    ] {
        let text = trace.to_text();
        let back = Trace::from_text(&text).unwrap();
        assert_eq!(back.table_size, trace.table_size);
        assert_eq!(back.cycles.len(), trace.cycles.len());
        for (a, b) in trace.cycles.iter().zip(back.cycles.iter()) {
            assert_eq!(a.activations, b.activations);
        }
    }
}

#[test]
fn captured_rubik_trace_matches_paper_mix() {
    // The organically captured cube trace lands close to Table 5-2's
    // Rubik row (28% left / 72% right) — evidence the runnable ruleset
    // has the right character, not just the calibrated generator.
    let run = rubik::section(6, 512);
    let f = run.trace.stats().left_fraction();
    assert!(
        (0.18..=0.42).contains(&f),
        "left fraction {f} out of the Rubik-like band"
    );
}

#[test]
fn simulating_a_captured_trace_gives_speedup() {
    let trace = rubik::section(6, 512).trace;
    let curve = speedup_curve(
        &trace,
        &[1, 4, 16],
        OverheadSetting::ZERO,
        PartitionStrategy::RoundRobin,
    );
    assert!((curve[0].speedup - 1.0).abs() < 0.05);
    assert!(curve[1].speedup > 1.8, "4 procs: {}", curve[1].speedup);
    assert!(
        curve[2].speedup > curve[1].speedup,
        "16 procs beats 4 procs"
    );
}

#[test]
fn simulation_processes_every_activation_regardless_of_partition() {
    let trace = tourney::section(6, 6, 3, 256).trace;
    let expected = trace.stats();
    for p in [1usize, 3, 8] {
        let config = MappingConfig::standard(p, OverheadSetting::table_5_1()[1]);
        let partition = Partition::round_robin(trace.table_size, p);
        let report = simulate(&trace, &config, &partition);
        let left: u64 = report
            .cycles
            .iter()
            .map(|c| c.left_acts.iter().sum::<u64>())
            .sum();
        let right: u64 = report
            .cycles
            .iter()
            .map(|c| c.right_acts.iter().sum::<u64>())
            .sum();
        let insts: u64 = report.cycles.iter().map(|c| c.instantiations).sum();
        assert_eq!(left as usize, expected.left, "left conservation at P={p}");
        assert_eq!(
            right as usize, expected.right,
            "right conservation at P={p}"
        );
        assert_eq!(
            insts as usize, expected.instantiations,
            "instantiation conservation at P={p}"
        );
    }
}

#[test]
fn baseline_equals_single_processor_zero_overhead_run() {
    let trace = weaver::section(4, 2, 12, 256).trace;
    let base = baseline(&trace);
    let explicit = simulate(
        &trace,
        &MappingConfig::baseline(),
        &Partition::single(trace.table_size),
    );
    assert_eq!(base.total, explicit.total);
}

#[test]
fn unshared_network_reduces_sharing_but_preserves_firings() {
    let program = tourney::program();
    let shared = mpps::rete::ReteNetwork::compile(&program).unwrap();
    let unshared = mpps::rete::transform::unshare(&program).unwrap();
    assert!(unshared.stats().shared_two_input <= shared.stats().shared_two_input);
    // Semantics preserved end to end.
    let initial = tourney::initial(3, 3);
    let mk =
        |net: mpps::rete::ReteNetwork| ReteMatcher::new(net, mpps::rete::EngineConfig::default());
    assert_same_run(
        program.clone(),
        initial,
        |_| mk(shared),
        |_| mk(unshared),
        40,
    );
}
#[test]
fn parallel_firing_on_independent_workloads() {
    // Ten independent grid cells to consume: run_parallel retires them in
    // one act phase where serial needs ten.
    use mpps::ops::parse_program;
    let prog =
        parse_program("(p take (cell ^state free ^x <x> ^y <y>) --> (modify 1 ^state used))")
            .unwrap();
    let mut interp = Interpreter::with_matcher(
        prog.clone(),
        Strategy::Lex,
        ReteMatcher::from_program(&prog).unwrap(),
    );
    for i in 0..10 {
        interp.add_wme(mpps::ops::Wme::new(
            "cell",
            &[("state", "free".into()), ("x", i.into()), ("y", 0.into())],
        ));
    }
    let r = interp.run_parallel(50).unwrap();
    assert_eq!(r.fired.len(), 10);
    assert!(r.fired.iter().all(|f| f.cycle == 1), "all fire in cycle 1");
}

#[test]
fn parallel_firing_negation_interference_is_documented_behaviour() {
    // pair-teams only makes WMEs, so the compatible-set criterion admits
    // every pairing at once even though each firing's `busy` WMEs would
    // have blocked later ones serially. This is the known caveat of
    // compatible-set parallel firing (make + negation interference); the
    // test pins the documented behaviour.
    let program = tourney::program();
    let matcher = ReteMatcher::from_program(&program).unwrap();
    let mut interp = Interpreter::with_matcher(program, Strategy::Lex, matcher);
    for w in tourney::initial(3, 3) {
        interp.add_wme(w);
    }
    let fired = interp.step_parallel().unwrap();
    assert_eq!(
        fired.len(),
        9,
        "all 9 pairings admitted in one parallel cycle"
    );
}

#[test]
fn mea_strategy_runs_workloads_to_the_same_outcome() {
    // LEX and MEA may fire in different orders but the cube permutations
    // commute per move plan, so the final cube state agrees.
    let program = rubik::program_with_observers(0);
    let initial = rubik::initial(&rubik::alternating_moves(3));
    let state = |strategy: Strategy| {
        let m = ReteMatcher::from_program(&program).unwrap();
        let mut interp = Interpreter::with_matcher(program.clone(), strategy, m);
        for w in initial.clone() {
            interp.add_wme(w);
        }
        interp.run(30).unwrap();
        let mut stickers: Vec<String> = interp
            .working_memory()
            .iter()
            .filter(|(_, w)| w.class().as_str() == "sticker")
            .map(|(_, w)| w.to_string())
            .collect();
        stickers.sort();
        stickers
    };
    assert_eq!(state(Strategy::Lex), state(Strategy::Mea));
}
