//! Threaded-vs-sequential equivalence across the paper's workloads,
//! worker counts and bucket-partition strategies.
//!
//! For each characteristic section (Rubik / Tourney / Weaver) we run the
//! sequential engine once with tracing on, keeping both the per-cycle WM
//! change batches and the activation trace (the latter feeds the offline
//! greedy partition, as in §5.2.2). Then every (workers × partition)
//! combination replays the same batches through a [`ThreadedMatcher`] and
//! must produce the sequential conflict set after *every* batch — not just
//! at quiescence, so transient divergence can't cancel out.

use mpps::core::{bucket_activity, Partition, ThreadedMatcher};
use mpps::ops::{Interpreter, Matcher, Program, Strategy, Wme, WmeChange};
use mpps::rete::{EngineConfig, ReteMatcher, ReteNetwork, Trace};
use mpps::workloads::{rubik, tourney, weaver};

const TABLE_SIZE: u64 = 256;

/// Run the sequential tracing interpreter and return the per-cycle change
/// batches plus the activation trace.
fn sequential_reference(
    program: &Program,
    initial: &[Wme],
    cycles: usize,
) -> (Vec<Vec<WmeChange>>, Trace) {
    let network = ReteNetwork::compile(program).expect("workload compiles");
    let matcher = ReteMatcher::new(
        network,
        EngineConfig {
            table_size: TABLE_SIZE,
            record_trace: true,
        },
    );
    let mut interp = Interpreter::with_matcher(program.clone(), Strategy::Lex, matcher);
    for w in initial {
        interp.add_wme(w.clone());
    }
    interp.run(cycles).expect("sequential run succeeds");
    let batches = interp.change_log().to_vec();
    let trace = interp
        .matcher_mut()
        .take_trace()
        .expect("tracing was enabled");
    (batches, trace)
}

fn check_workload(name: &str, program: Program, initial: Vec<Wme>, cycles: usize) {
    let (batches, trace) = sequential_reference(&program, &initial, cycles);
    assert!(
        batches.iter().any(|b| !b.is_empty()),
        "{name}: section produced no WM activity"
    );
    let activity = bucket_activity(&trace);
    for workers in [1usize, 2, 4, 8] {
        let partitions = [
            ("round_robin", Partition::round_robin(TABLE_SIZE, workers)),
            ("random", Partition::random(TABLE_SIZE, workers, 1989)),
            ("greedy", Partition::greedy(&activity, workers)),
        ];
        for (strategy, partition) in partitions {
            let mut seq = ReteMatcher::from_program(&program).expect("workload compiles");
            let network = ReteNetwork::compile(&program).expect("workload compiles");
            let mut par = ThreadedMatcher::with_partition(network, partition);
            for (cycle, batch) in batches.iter().enumerate() {
                seq.process(batch);
                par.try_process(batch).expect("workers healthy");
                assert_eq!(
                    seq.conflict_set(),
                    par.conflict_set(),
                    "{name} diverged at cycle {cycle} ({workers} workers, {strategy})"
                );
            }
        }
    }
}

#[test]
fn rubik_agrees_across_workers_and_partitions() {
    check_workload(
        "rubik",
        rubik::program(),
        rubik::initial(&rubik::alternating_moves(2)),
        10,
    );
}

#[test]
fn tourney_agrees_across_workers_and_partitions() {
    check_workload("tourney", tourney::program(), tourney::initial(6, 6), 4);
}

#[test]
fn weaver_agrees_across_workers_and_partitions() {
    check_workload("weaver", weaver::program(), weaver::initial(4, 4), 12);
}
