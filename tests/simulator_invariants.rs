//! Property tests on the trace-driven simulator: timing invariants that
//! must hold for every trace, processor count, and overhead setting.

use mpps::core::sweep::baseline;
use mpps::core::{simulate, MappingConfig, OverheadSetting, Partition};
use mpps::mpcsim::SimTime;
use mpps::ops::Sign;
use mpps::rete::trace::{ActKind, ActivationRecord, TraceCycle};
use mpps::rete::{NodeId, Side, Trace};
use proptest::prelude::*;

const TABLE: u64 = 64;

/// Generate a random but well-formed trace: every parent precedes its
/// children, buckets in range.
fn arb_trace() -> impl Strategy<Value = Trace> {
    proptest::collection::vec(
        proptest::collection::vec(
            (
                0u32..20,                     // node
                any::<bool>(),                // side (roots only)
                0u64..TABLE,                  // bucket
                any::<prop::sample::Index>(), // parent selector
                0u8..10,                      // parent? kind? mixing byte
            ),
            0..40,
        ),
        1..4,
    )
    .prop_map(|cycles| {
        let mut trace = Trace::new(TABLE);
        for specs in cycles {
            let mut cycle = TraceCycle::default();
            for (node, right, bucket, parent_sel, mix) in specs {
                let is_root = cycle.activations.is_empty() || mix < 4;
                let parent = if is_root {
                    None
                } else {
                    Some(parent_sel.index(cycle.activations.len()) as u32)
                };
                // Children of two-input nodes are left activations; only
                // roots may be right activations.
                let side = if parent.is_none() && right {
                    Side::Right
                } else {
                    Side::Left
                };
                let kind = if parent.is_some() && mix == 9 {
                    ActKind::Production
                } else {
                    ActKind::TwoInput
                };
                // Productions cannot have children; remap children whose
                // chosen parent is a production to the root.
                let parent = parent.map(|p| {
                    let mut p = p;
                    while cycle.activations[p as usize].kind == ActKind::Production {
                        if p == 0 {
                            break;
                        }
                        p -= 1;
                    }
                    p
                });
                // If we still landed on a production at index 0, make this
                // activation a root instead.
                let parent = match parent {
                    Some(p) if cycle.activations[p as usize].kind == ActKind::Production => None,
                    other => other,
                };
                cycle.activations.push(ActivationRecord {
                    node: NodeId(node),
                    side,
                    sign: Sign::Plus,
                    bucket,
                    parent,
                    kind,
                });
            }
            trace.cycles.push(cycle);
        }
        trace
    })
}

/// Serial work of a trace under the default cost model (plus constant
/// tests per cycle) — an upper bound on any simulated makespan total.
fn serial_work(trace: &Trace) -> SimTime {
    mpps::core::continuum::serial_time(trace, &mpps::core::CostModel::default())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// With zero overheads, parallel total never exceeds serial total
    /// (adding processors cannot add work) and speedup never exceeds P.
    #[test]
    fn zero_overhead_bounds(trace in arb_trace(), p in 1usize..9) {
        let config = MappingConfig {
            network: mpps::mpcsim::NetworkModel::Constant(SimTime::ZERO),
            ..MappingConfig::standard(p, OverheadSetting::ZERO)
        };
        let partition = Partition::round_robin(TABLE, p);
        let report = simulate(&trace, &config, &partition);
        let serial = serial_work(&trace);
        prop_assert!(report.total <= serial, "parallel {} > serial {}", report.total, serial);
        let base = baseline(&trace);
        prop_assert_eq!(base.total, serial);
        let speedup = report.speedup_vs(&base);
        prop_assert!(speedup <= p as f64 + 1e-9, "speedup {} > P {}", speedup, p);
    }

    /// Overheads never make a run faster.
    #[test]
    fn overhead_monotonicity(trace in arb_trace(), p in 1usize..9) {
        let partition = Partition::round_robin(TABLE, p);
        let rows = OverheadSetting::table_5_1();
        let mut prev = SimTime::ZERO;
        for row in rows {
            let config = MappingConfig::standard(p, row);
            let total = simulate(&trace, &config, &partition).total;
            prop_assert!(total >= prev, "overhead {} made the run faster", row.total());
            prev = total;
        }
    }

    /// The simulation is deterministic.
    #[test]
    fn determinism(trace in arb_trace(), p in 1usize..9) {
        let config = MappingConfig::standard(p, OverheadSetting::table_5_1()[2]);
        let partition = Partition::random(TABLE, p, 7);
        let a = simulate(&trace, &config, &partition);
        let b = simulate(&trace, &config, &partition);
        prop_assert_eq!(a.total, b.total);
        for (x, y) in a.cycles.iter().zip(b.cycles.iter()) {
            prop_assert_eq!(x.makespan, y.makespan);
            prop_assert_eq!(&x.left_acts, &y.left_acts);
        }
    }

    /// Activation conservation: every partition processes every
    /// activation exactly once.
    #[test]
    fn conservation_across_partitions(trace in arb_trace(), seed in 0u64..4, p in 1usize..9) {
        let expected = trace.stats();
        let config = MappingConfig::standard(p, OverheadSetting::table_5_1()[1]);
        let partition = Partition::random(TABLE, p, seed);
        let report = simulate(&trace, &config, &partition);
        let left: u64 = report.cycles.iter().map(|c| c.left_acts.iter().sum::<u64>()).sum();
        let right: u64 = report.cycles.iter().map(|c| c.right_acts.iter().sum::<u64>()).sum();
        prop_assert_eq!(left as usize, expected.left);
        prop_assert_eq!(right as usize, expected.right);
    }

    /// The processor-pair variant is at least as fast as combined when
    /// communication is free (it strictly adds overlap), and never
    /// processes a different activation count.
    #[test]
    fn pairs_no_slower_with_free_messages(trace in arb_trace(), p in 1usize..5) {
        let zero = MappingConfig {
            network: mpps::mpcsim::NetworkModel::Constant(SimTime::ZERO),
            ..MappingConfig::standard(p, OverheadSetting::ZERO)
        };
        let pairs = MappingConfig {
            variant: mpps::core::MappingVariant::ProcessorPairs,
            ..zero
        };
        let partition = Partition::round_robin(TABLE, p);
        let combined_report = simulate(&trace, &zero, &partition);
        let pairs_report = simulate(&trace, &pairs, &partition);
        prop_assert!(
            pairs_report.total <= combined_report.total,
            "pairs {} > combined {}",
            pairs_report.total,
            combined_report.total
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The simulator-input text format round-trips arbitrary well-formed
    /// traces exactly.
    #[test]
    fn trace_text_roundtrip(trace in arb_trace()) {
        let text = trace.to_text();
        let back = Trace::from_text(&text).unwrap();
        prop_assert_eq!(back.table_size, trace.table_size);
        prop_assert_eq!(back.cycles.len(), trace.cycles.len());
        for (a, b) in trace.cycles.iter().zip(back.cycles.iter()) {
            prop_assert_eq!(&a.activations, &b.activations);
        }
    }

    /// Section extraction and empty-cycle filtering preserve stats of the
    /// retained cycles.
    #[test]
    fn section_and_filter_consistency(trace in arb_trace()) {
        let full = trace.stats();
        let filtered = trace.without_empty_cycles();
        prop_assert_eq!(filtered.stats(), full);
        if !trace.cycles.is_empty() {
            let first = trace.section(0, 1);
            let rest = trace.section(1, trace.cycles.len());
            prop_assert_eq!(
                first.stats().total() + rest.stats().total(),
                full.total()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The parallel sweep engine is a pure optimization: for any trace,
    /// worker count, and partition strategy, its curves are identical to
    /// the serial helpers' (same points, bit-equal speedups and times).
    #[test]
    fn parallel_sweep_matches_serial(
        trace in arb_trace(),
        jobs in 2usize..9,
        strat in 0usize..3,
    ) {
        use mpps::core::sweep::{
            overhead_sweep, overhead_sweep_jobs, speedup_curve, speedup_curve_jobs,
            PartitionStrategy,
        };
        let strategy = [
            PartitionStrategy::RoundRobin,
            PartitionStrategy::Random(7),
            PartitionStrategy::GreedyWholeTrace,
        ][strat];
        let procs = [1usize, 2, 3, 5, 8];
        let overhead = OverheadSetting::table_5_1()[1];
        let serial = speedup_curve(&trace, &procs, overhead, strategy);
        let parallel = speedup_curve_jobs(&trace, &procs, overhead, strategy, jobs);
        prop_assert_eq!(serial.len(), parallel.len());
        for (a, b) in serial.iter().zip(parallel.iter()) {
            prop_assert_eq!(a.processors, b.processors);
            prop_assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
            prop_assert_eq!(a.total_us.to_bits(), b.total_us.to_bits());
        }
        let rows = OverheadSetting::table_5_1();
        let serial_rows = overhead_sweep(&trace, &procs, &rows, strategy);
        let parallel_rows = overhead_sweep_jobs(&trace, &procs, &rows, strategy, jobs);
        prop_assert_eq!(serial_rows.len(), parallel_rows.len());
        for ((ro, rc), (po, pc)) in serial_rows.iter().zip(parallel_rows.iter()) {
            prop_assert_eq!(ro.total(), po.total());
            for (a, b) in rc.iter().zip(pc.iter()) {
                prop_assert_eq!(a.processors, b.processors);
                prop_assert_eq!(a.speedup.to_bits(), b.speedup.to_bits());
                prop_assert_eq!(a.total_us.to_bits(), b.total_us.to_bits());
            }
        }
    }
}
