//! Shape assertions for every reproduced table and figure: who wins, by
//! roughly what factor, and where the paper's qualitative observations
//! show up. These are the claims EXPERIMENTS.md reports.

use mpps_bench::experiments as exp;

fn peak(curve: &[mpps::core::sweep::SpeedupPoint]) -> f64 {
    curve.iter().map(|p| p.speedup).fold(0.0, f64::max)
}

#[test]
fn table5_2_exact_activation_mixes() {
    let rows = exp::table5_2();
    assert_eq!(rows[0][0], "Rubik");
    assert_eq!(rows[0][1], "2388 (28%)");
    assert_eq!(rows[0][2], "6114 (72%)");
    assert_eq!(rows[0][3], "8502");
    assert_eq!(rows[1][1], "10667 (99%)");
    assert_eq!(rows[1][2], "83 (1%)");
    assert_eq!(rows[1][3], "10750");
    assert_eq!(rows[2][1], "338 (81%)");
    assert_eq!(rows[2][2], "78 (19%)");
    assert_eq!(rows[2][3], "416");
}

#[test]
fn fig5_1_shapes() {
    let curves = exp::fig5_1();
    let get = |name: &str| {
        curves
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| c.clone())
            .unwrap()
    };
    let rubik = get("Rubik");
    let tourney = get("Tourney");
    let weaver = get("Weaver");
    // Baselines normalize to 1 at a single processor.
    for c in [&rubik, &tourney, &weaver] {
        assert!((c[0].speedup - 1.0).abs() < 0.05, "P=1 speedup ≈ 1");
    }
    // "As expected, Rubik has the largest overall speedup."
    assert!(peak(&rubik) > peak(&tourney));
    assert!(peak(&rubik) > peak(&weaver));
    // "Up to 8–12 fold speedups are available": every section peaks in or
    // near that band (≥ 6), and Rubik well inside it.
    assert!(
        peak(&rubik) >= 8.0 && peak(&rubik) <= 16.0,
        "{}",
        peak(&rubik)
    );
    assert!(peak(&tourney) >= 6.0, "{}", peak(&tourney));
    assert!(peak(&weaver) >= 6.0, "{}", peak(&weaver));
}

#[test]
fn fig5_2_overhead_losses_track_left_fraction() {
    let losses = exp::fig5_2_losses();
    let loss = |name: &str| {
        losses
            .iter()
            .find(|(n, _, _)| *n == name)
            .map(|&(_, l, _)| l)
            .unwrap()
    };
    let (rubik, tourney, weaver) = (loss("Rubik"), loss("Tourney"), loss("Weaver"));
    // Paper: Rubik ≈30%, Tourney ≈45%, Weaver up to 50%. Rubik (right-
    // heavy) is hit least; the left-heavy sections lose substantially
    // more.
    assert!((0.15..=0.40).contains(&rubik), "rubik loss {rubik}");
    assert!((0.30..=0.60).contains(&tourney), "tourney loss {tourney}");
    assert!((0.30..=0.60).contains(&weaver), "weaver loss {weaver}");
    assert!(rubik < tourney, "left-heavy Tourney loses more than Rubik");
    assert!(rubik < weaver, "left-heavy Weaver loses more than Rubik");
}

#[test]
fn fig5_2_speedup_decreases_with_overhead_at_fixed_p() {
    for (name, sweeps) in exp::fig5_2() {
        // Compare the four curves at the largest processor count.
        let at_max: Vec<f64> = sweeps
            .iter()
            .map(|(_, c)| c.last().unwrap().speedup)
            .collect();
        for w in at_max.windows(2) {
            assert!(
                w[0] >= w[1] - 1e-9,
                "{name}: more overhead must not speed things up: {at_max:?}"
            );
        }
    }
}

#[test]
fn fig5_4_unsharing_improves_weaver() {
    let (shared, unshared) = exp::fig5_4();
    assert!(
        peak(&unshared) > peak(&shared) * 1.1,
        "unsharing lifts the peak: {} -> {}",
        peak(&shared),
        peak(&unshared)
    );
    // The improvement concentrates at higher processor counts (the
    // bottleneck was successor generation, not total work).
    let last_gain = unshared.last().unwrap().speedup / shared.last().unwrap().speedup;
    assert!(last_gain > 1.1, "gain at P=32: {last_gain}");
}

#[test]
fn fig5_5_uneven_and_flipping_load() {
    let cycles = exp::fig5_5();
    assert_eq!(cycles.len(), 2);
    for (i, loads) in cycles.iter().enumerate() {
        assert_eq!(loads.len(), 16);
        let max = *loads.iter().max().unwrap() as f64;
        let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
        // Within a cycle the distribution is clearly uneven.
        assert!(
            max > 1.5 * mean,
            "cycle {i} should be uneven: max {max}, mean {mean}"
        );
    }
    // "Processors busy in one cycle are seen to be idle in the next":
    // per-processor loads shift between the cycles.
    let a = &cycles[0];
    let b = &cycles[1];
    let moved = a
        .iter()
        .zip(b.iter())
        .filter(|(&x, &y)| {
            let hi = x.max(y) as f64;
            let lo = x.min(y) as f64;
            hi > 0.0 && lo < 0.5 * hi
        })
        .count();
    assert!(
        moved >= 4,
        "load should shift between cycles ({moved} procs moved)"
    );
}

#[test]
fn fig5_6_copy_and_constraint_improves_tourney() {
    let (plain, cc) = exp::fig5_6();
    assert!(
        peak(&cc) > peak(&plain) * 1.1,
        "copy-and-constraint lifts the peak: {} -> {}",
        peak(&plain),
        peak(&cc)
    );
}

#[test]
fn network_is_mostly_idle() {
    for (name, idle) in exp::network_idle() {
        assert!(
            idle > 0.93,
            "{name}: paper reports 97–98% idle, got {:.1}%",
            idle * 100.0
        );
    }
}

#[test]
fn greedy_distribution_gains_roughly_paper_factor() {
    let gains = exp::greedy_gains();
    // Paper: "improved the speedups by a factor of 1.4". At least one
    // section should gain substantially, and none should regress.
    assert!(
        gains.iter().any(|&(_, simulated, _)| simulated >= 1.3),
        "gains: {gains:?}"
    );
    for (name, simulated, _) in &gains {
        assert!(*simulated >= 0.95, "{name} must not regress: {simulated}");
    }
}

#[test]
fn random_placement_is_not_a_fix() {
    // "A random distribution of the buckets … failed to provide a
    // significant improvement."
    for (name, gain) in exp::random_vs_round_robin() {
        assert!(
            (0.7..=1.35).contains(&gain),
            "{name}: random placement should be roughly neutral, got {gain}"
        );
    }
}

#[test]
fn continuum_center_beats_both_endpoints() {
    let points = exp::continuum();
    let get = |label: &str| {
        points
            .iter()
            .find(|(l, _)| l.starts_with(label))
            .map(|&(_, s)| s)
            .unwrap()
    };
    let distributed = get("distributed");
    assert!(distributed > get("replicated") * 2.0);
    assert!(distributed > get("single-master") * 2.0);
}

#[test]
fn shared_bus_comparable_at_paper_scale_but_queue_bound_beyond() {
    // §5.2: "speedups comparable to those achieved … on our shared-bus
    // implementation" for a comparable number of processors — and §6's
    // tradeoff: the centralized task queue eventually binds.
    for (name, rows) in exp::shared_bus_comparison() {
        let at = |p: usize| rows.iter().find(|r| r.0 == p).copied().unwrap();
        let (_, mpc16, bus16) = at(16);
        assert!(
            (0.5..=2.0).contains(&(mpc16 / bus16)),
            "{name}: at 16 procs the mappings are comparable (mpc {mpc16}, bus {bus16})"
        );
        // The bus saturates at scale: the last 33% of processors (24→32)
        // buy < 10%. (16→32 is not a robust segment — hot-bucket tasks
        // hold their claimed processor while waiting, so 16 procs can
        // still be partly processor-bound on layouts where collisions
        // cluster.)
        let (_, _, bus24) = at(24);
        let (_, _, bus32) = at(32);
        assert!(
            bus32 < bus24 * 1.10,
            "{name}: shared bus should saturate (24: {bus24}, 32: {bus32})"
        );
    }
}

#[test]
fn termination_detection_costs_grow_with_processors_and_small_cycles() {
    let all = exp::termination_cost();
    let loss = |name: &str, p: usize| {
        let rows = &all.iter().find(|(n, _)| *n == name).unwrap().1;
        let &(_, omni, ring) = rows.iter().find(|r| r.0 == p).unwrap();
        1.0 - ring / omni
    };
    for name in ["Rubik", "Tourney", "Weaver"] {
        assert!(
            loss(name, 32) >= loss(name, 4) - 1e-9,
            "{name}: detection cost grows with the ring length"
        );
    }
    // Weaver's small cycles amortize the per-cycle probe worst.
    assert!(
        loss("Weaver", 16) > loss("Tourney", 16),
        "small cycles pay proportionally more: weaver {} vs tourney {}",
        loss("Weaver", 16),
        loss("Tourney", 16)
    );
}

#[test]
fn first_generation_mpcs_were_useless_for_fine_grained_match() {
    // §1's motivation: Cosmic-Cube-era latencies/overheads destroy the
    // speedup; Nectar-era parameters preserve most of it.
    for (name, new_gen, first_gen) in exp::era_comparison() {
        assert!(
            new_gen > 4.0,
            "{name}: new-generation MPC should speed up well, got {new_gen}"
        );
        assert!(
            first_gen < 2.0,
            "{name}: first-generation MPC should be crippled, got {first_gen}"
        );
        assert!(new_gen > 2.0 * first_gen, "{name}: the era gap is large");
    }
}
