//! Env-gated differential fuzz smoke test.
//!
//! Runs `MPPS_FUZZ_ITERS` random cases (default 25 when unset — a quick
//! sanity sweep; CI cranks it to 500 in release mode, mirroring
//! `MPPS_STRESS_ITERS`) through the four-matcher oracle. Any divergence is
//! shrunk and written to `target/fuzz-repro/` so CI can upload it as an
//! artifact, then reported as a failure with the reproducer paths.
//!
//! `MPPS_FUZZ_SEED` shifts the seed range for soak runs.

use mpps_difftest::{fuzz_one, write_repro, GenConfig, MatcherKind};
use std::path::Path;

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[test]
fn differential_fuzz_smoke() {
    let iters = env_u64("MPPS_FUZZ_ITERS", 25);
    let base_seed = env_u64("MPPS_FUZZ_SEED", 0);
    let cfg = GenConfig::default();
    for i in 0..iters {
        let seed = base_seed + i;
        let (case, divergence) = fuzz_one(seed, &cfg, &MatcherKind::EXTENDED, true);
        if let Some(d) = divergence {
            let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("target/fuzz-repro");
            let (ops, sched) =
                write_repro(&dir, &format!("smoke-{seed}"), &case).expect("write reproducer");
            panic!(
                "seed {seed} diverged after shrinking: {d}\nreproducer: {} + {}",
                ops.display(),
                sched.display()
            );
        }
    }
}
