//! Replay every checked-in reproducer in `tests/corpus/` through the
//! differential oracle with every matcher configuration (the four base
//! matchers plus the transformed-network and adaptive variants).
//!
//! Each corpus entry is a `<name>.ops` + `<name>.sched` pair that once
//! exposed a real divergence (minimized by the fuzzer's shrinker or by
//! hand). After the corresponding fix they must all agree forever; a
//! failure here means a regression re-opened a fixed bug.

use mpps::difftest::{load_repro, run_case, MatcherKind};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Every `.ops` file in the corpus, each with its `.sched` sibling.
fn corpus_entries() -> Vec<(PathBuf, PathBuf)> {
    let mut entries: Vec<(PathBuf, PathBuf)> = std::fs::read_dir(corpus_dir())
        .expect("tests/corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "ops"))
        .map(|ops| {
            let sched = ops.with_extension("sched");
            assert!(
                sched.exists(),
                "{} has no matching .sched file",
                ops.display()
            );
            (ops, sched)
        })
        .collect();
    entries.sort();
    entries
}

#[test]
fn corpus_is_not_empty() {
    assert!(
        !corpus_entries().is_empty(),
        "tests/corpus/ must contain at least one pinned reproducer"
    );
}

#[test]
fn every_corpus_entry_has_no_stray_sched() {
    // The inverse pairing check: no orphaned .sched without a program.
    for entry in std::fs::read_dir(corpus_dir()).unwrap() {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|x| x == "sched") {
            assert!(
                path.with_extension("ops").exists(),
                "{} has no matching .ops file",
                path.display()
            );
        }
    }
}

#[test]
fn corpus_replays_without_divergence() {
    for (ops, sched) in corpus_entries() {
        let case = load_repro(&ops, &sched).unwrap_or_else(|e| panic!("{}: {e}", ops.display()));
        assert!(
            case.program().is_ok(),
            "{}: corpus program no longer validates",
            ops.display()
        );
        if let Some(d) = run_case(&case, &MatcherKind::EXTENDED) {
            panic!("{} regressed: {d}", ops.display());
        }
    }
}

/// Every corpus entry also replays cleanly under the *profiled* matchers
/// (kernel hooks live, metrics recording): no panics, and the merged
/// registry shows real match activity. The corpus leans on the grammar's
/// dark corners — negation flips, removal churn — so this drags the
/// profiling hooks through paths the workload tests never reach.
#[test]
fn corpus_replays_cleanly_under_the_profiler() {
    use mpps::core::ThreadedMatcher;
    use mpps::difftest::FuzzCase;
    use mpps::ops::{treat, Interpreter, Matcher, TreatMatcher};
    use mpps::rete::{kernel, ReteMatcher, ReteNetwork};
    use mpps::telemetry::MetricsRegistry;

    fn replay<M: Matcher>(case: &FuzzCase, matcher: M) -> Interpreter<M> {
        let program = case.program().unwrap();
        let mut interp = Interpreter::with_matcher(program, case.strategy, matcher);
        for round in &case.schedule.rounds {
            for op in round {
                match op {
                    mpps::difftest::ScheduleOp::Make(wme) => {
                        interp.add_wme(wme.clone());
                    }
                    mpps::difftest::ScheduleOp::RemoveNth(n) => {
                        let ids: Vec<_> =
                            interp.working_memory().iter().map(|(id, _)| id).collect();
                        if !ids.is_empty() {
                            interp.remove_wme(ids[n % ids.len()]).unwrap();
                        }
                    }
                }
            }
            for _ in 0..8 {
                match interp.step() {
                    Ok(mpps::ops::interpreter::StepOutcome::Fired(_)) => {}
                    _ => break,
                }
            }
        }
        interp
    }

    for (ops, sched) in corpus_entries() {
        let case = load_repro(&ops, &sched).unwrap();
        let program = case.program().unwrap();
        let mut merged = MetricsRegistry::new();

        let rete = ReteMatcher::with_metrics(
            ReteNetwork::compile(&program).unwrap(),
            mpps::rete::EngineConfig::default(),
            MetricsRegistry::new(),
        );
        let mut interp = replay(&case, rete);
        merged.merge(&interp.matcher_mut().profile());

        let treat = TreatMatcher::with_metrics(&program, MetricsRegistry::new());
        let interp = replay(&case, treat);
        merged.merge(&interp.matcher().profile());

        let threaded = ThreadedMatcher::from_program_profiled(&program, 2).unwrap();
        let mut interp = replay(&case, threaded);
        merged.merge(&interp.matcher_mut().profile_snapshot().unwrap());

        assert!(
            merged.counter_total(treat::metric::RULE_ACTIVATIONS) > 0,
            "{}: profiled replay recorded no rule activations",
            ops.display()
        );
        let cycles = merged
            .histogram(kernel::metric::CYCLE_WALL_NS)
            .map(|h| h.count())
            .unwrap_or(0);
        assert!(
            cycles > 0,
            "{}: profiled replay recorded no match cycles",
            ops.display()
        );
    }
}

/// The corpus entries must actually exercise the matchers: each schedule
/// leads to at least one firing under the naive reference. Guards against
/// a corpus entry silently decaying into a vacuous no-op (e.g. after a
/// parser change).
#[test]
fn corpus_entries_are_not_vacuous() {
    use mpps::ops::{Interpreter, Matcher, NaiveMatcher};
    for (ops, sched) in corpus_entries() {
        let case = load_repro(&ops, &sched).unwrap();
        let program = case.program().unwrap();
        let naive: Box<dyn Matcher> = Box::new(NaiveMatcher::new(program.clone()));
        let mut interp = Interpreter::with_matcher(program, case.strategy, naive);
        let mut fired = 0usize;
        for round in &case.schedule.rounds {
            for op in round {
                match op {
                    mpps::difftest::ScheduleOp::Make(wme) => {
                        interp.add_wme(wme.clone());
                    }
                    mpps::difftest::ScheduleOp::RemoveNth(n) => {
                        let ids: Vec<_> =
                            interp.working_memory().iter().map(|(id, _)| id).collect();
                        if !ids.is_empty() {
                            interp.remove_wme(ids[n % ids.len()]).unwrap();
                        }
                    }
                }
            }
            for _ in 0..8 {
                match interp.step() {
                    Ok(mpps::ops::interpreter::StepOutcome::Fired(_)) => fired += 1,
                    _ => break,
                }
            }
        }
        assert!(
            fired > 0,
            "{}: schedule never fires a production",
            ops.display()
        );
    }
}
