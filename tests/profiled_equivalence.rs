//! Profiling must be invisible to match semantics: a profiled matcher
//! (kernel hooks recording into a `MetricsRegistry`) and an unprofiled
//! one (`NullMetrics`, every hook compiled away) compute identical
//! conflict sets after every batch of the three characteristic workloads
//! — on both the sequential engine and the threaded executor.

use mpps::core::ThreadedMatcher;
use mpps::ops::{Interpreter, Matcher, Program, Strategy, Wme, WmeChange};
use mpps::rete::{kernel, EngineConfig, ReteMatcher, ReteNetwork};
use mpps::telemetry::MetricsRegistry;
use mpps::workloads::{rubik, tourney, weaver};

/// Replay-capture: run `program` under the interpreter for `cycles`
/// recognize-act cycles and return the per-cycle WM change batches it
/// handed the matcher (same helper the matchkernel bench uses).
fn batches(program: &Program, initial: Vec<Wme>, cycles: usize) -> Vec<Vec<WmeChange>> {
    let m = ReteMatcher::from_program(program).unwrap();
    let mut interp = Interpreter::with_matcher(program.clone(), Strategy::Lex, m);
    for w in initial {
        interp.add_wme(w);
    }
    interp.run(cycles).unwrap();
    interp.change_log().to_vec()
}

fn workloads() -> Vec<(&'static str, Program, Vec<Vec<WmeChange>>)> {
    vec![
        (
            "rubik",
            rubik::program(),
            batches(
                &rubik::program(),
                rubik::initial(&rubik::alternating_moves(2)),
                8,
            ),
        ),
        (
            "tourney",
            tourney::program(),
            batches(&tourney::program(), tourney::initial(8, 8), 4),
        ),
        (
            "weaver",
            weaver::program(),
            batches(&weaver::program(), weaver::initial(4, 4), 8),
        ),
    ]
}

#[test]
fn profiled_sequential_matches_unprofiled_on_every_workload() {
    for (name, program, batches) in workloads() {
        let mut plain = ReteMatcher::from_program(&program).unwrap();
        let mut profiled = ReteMatcher::with_metrics(
            ReteNetwork::compile(&program).unwrap(),
            EngineConfig::default(),
            MetricsRegistry::new(),
        );
        for (i, batch) in batches.iter().enumerate() {
            plain.process(batch);
            profiled.process(batch);
            assert_eq!(
                plain.conflict_set(),
                profiled.conflict_set(),
                "{name}: sequential conflict sets diverged at batch {i}"
            );
        }
        let reg = profiled.profile();
        assert!(
            reg.counter_total(kernel::metric::NODE_ACTIVATIONS) > 0,
            "{name}: profiled run recorded no activations"
        );
        assert!(
            plain.profile().is_empty(),
            "{name}: unprofiled matcher leaked metrics"
        );
    }
}

#[test]
fn profiled_threaded_matches_unprofiled_on_every_workload() {
    for (name, program, batches) in workloads() {
        for workers in [1usize, 3] {
            let mut plain = ThreadedMatcher::from_program(&program, workers).unwrap();
            let mut profiled = ThreadedMatcher::from_program_profiled(&program, workers).unwrap();
            for (i, batch) in batches.iter().enumerate() {
                plain.process(batch);
                profiled.process(batch);
                assert_eq!(
                    plain.conflict_set(),
                    profiled.conflict_set(),
                    "{name}: threaded({workers}) conflict sets diverged at batch {i}"
                );
            }
            let reg = profiled.profile_snapshot().unwrap();
            assert!(
                reg.counter_total(kernel::metric::NODE_ACTIVATIONS) > 0,
                "{name}: profiled threaded({workers}) recorded no activations"
            );
            assert!(
                plain.profile_snapshot().unwrap().is_empty(),
                "{name}: unprofiled threaded({workers}) leaked metrics"
            );
        }
    }
}

/// The profiled threaded executor agrees with the profiled sequential
/// engine — the two profiled code paths share nothing but the kernel, so
/// this catches instrumentation that perturbs one executor's scheduling.
#[test]
fn profiled_threaded_matches_profiled_sequential() {
    for (name, program, batches) in workloads() {
        let mut seq = ReteMatcher::with_metrics(
            ReteNetwork::compile(&program).unwrap(),
            EngineConfig::default(),
            MetricsRegistry::new(),
        );
        let mut thr = ThreadedMatcher::from_program_profiled(&program, 2).unwrap();
        for batch in &batches {
            seq.process(batch);
            thr.process(batch);
        }
        assert_eq!(
            seq.conflict_set(),
            thr.conflict_set(),
            "{name}: profiled sequential vs profiled threaded diverged"
        );
    }
}
