//! The central correctness property of the workspace: the brute-force
//! reference matcher, the sequential hashed-memory Rete engine, and the
//! multi-threaded message-passing executor compute identical conflict
//! sets on arbitrary programs and working-memory histories.

use mpps::core::ThreadedMatcher;
use mpps::ops::{
    Action, ConditionElement, Matcher, NaiveMatcher, Production, Program, TestKind, TreatMatcher,
    Value, Wme, WmeChange, WmeId,
};
use mpps::rete::{EngineConfig, ReteMatcher, ReteNetwork};
use proptest::prelude::*;

const CLASSES: &[&str] = &["alpha", "beta", "gamma"];
const ATTRS: &[&str] = &["p", "q", "r"];
const VARS: &[&str] = &["u", "v", "w"];

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0i64..4).prop_map(Value::Int),
        prop_oneof![Just("sym-x"), Just("sym-y")].prop_map(Value::sym),
    ]
}

fn arb_test() -> impl Strategy<Value = TestKind> {
    prop_oneof![
        arb_value().prop_map(|v| TestKind::Constant(mpps::ops::Predicate::Eq, v)),
        (0..VARS.len()).prop_map(|i| TestKind::Variable(mpps::ops::intern(VARS[i]))),
        proptest::collection::vec(arb_value(), 1..3).prop_map(TestKind::disjunction),
    ]
}

fn arb_ce(negated: bool) -> impl Strategy<Value = ConditionElement> {
    (
        0..CLASSES.len(),
        proptest::collection::vec((0..ATTRS.len(), arb_test()), 0..3),
    )
        .prop_map(move |(class, tests)| ConditionElement {
            class: mpps::ops::intern(CLASSES[class]),
            tests: tests
                .into_iter()
                .map(|(attr, kind)| mpps::ops::AttrTest {
                    attr: mpps::ops::intern(ATTRS[attr]),
                    kind,
                })
                .collect(),
            negated,
        })
}

fn arb_production(index: usize) -> impl Strategy<Value = Production> {
    (
        arb_ce(false),
        proptest::collection::vec((arb_ce(false), any::<bool>()), 0..2),
    )
        .prop_map(move |(first, rest)| {
            let mut lhs = vec![first];
            for (mut ce, neg) in rest {
                // Negation only for CEs after the first; strip variables
                // that would make negated-CE locals (they're allowed, but
                // keep the generator simple and valid).
                ce.negated = neg;
                lhs.push(ce);
            }
            Production {
                name: mpps::ops::intern(&format!("gen-rule-{index}")),
                lhs,
                rhs: vec![Action::Remove(1)],
            }
        })
        .prop_filter("structurally valid", |p| p.validate().is_ok())
}

fn arb_program() -> impl Strategy<Value = Program> {
    proptest::collection::vec(any::<u8>(), 1..4).prop_flat_map(|seeds| {
        let strategies: Vec<_> = seeds
            .iter()
            .enumerate()
            .map(|(i, _)| arb_production(i))
            .collect();
        strategies.prop_map(|prods| {
            // Duplicate names impossible (indexed); validation re-checked.
            Program::from_productions(prods).expect("generated productions are valid")
        })
    })
}

fn arb_wme() -> impl Strategy<Value = Wme> {
    (
        0..CLASSES.len(),
        proptest::collection::vec((0..ATTRS.len(), arb_value()), 0..3),
    )
        .prop_map(|(class, pairs)| {
            Wme::from_pairs(
                mpps::ops::intern(CLASSES[class]),
                pairs
                    .into_iter()
                    .map(|(a, v)| (mpps::ops::intern(ATTRS[a]), v)),
            )
        })
}

/// A WM history: per batch, some additions and some deletions of
/// previously live WMEs (selected by index).
fn arb_history() -> impl Strategy<Value = Vec<(Vec<Wme>, Vec<prop::sample::Index>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(arb_wme(), 0..5),
            proptest::collection::vec(any::<prop::sample::Index>(), 0..3),
        ),
        1..5,
    )
}

/// Materialize a history into per-batch `WmeChange` lists with consistent
/// ids (deletions target WMEs still live from earlier batches).
fn materialize(history: Vec<(Vec<Wme>, Vec<prop::sample::Index>)>) -> Vec<Vec<WmeChange>> {
    let mut next_id = 1u64;
    let mut live: Vec<(WmeId, Wme)> = Vec::new();
    let mut batches = Vec::new();
    for (adds, dels) in history {
        let mut batch = Vec::new();
        // Deletions first (of WMEs live before this batch), each id once.
        let mut deleted = std::collections::HashSet::new();
        for idx in dels {
            if live.is_empty() {
                break;
            }
            let k = idx.index(live.len());
            let (id, wme) = live[k].clone();
            if deleted.insert(id) {
                batch.push(WmeChange::remove(id, wme));
            }
        }
        live.retain(|(id, _)| !deleted.contains(id));
        for wme in adds {
            let id = WmeId(next_id);
            next_id += 1;
            live.push((id, wme.clone()));
            batch.push(WmeChange::add(id, wme));
        }
        batches.push(batch);
    }
    batches
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Naive and Rete agree after every batch of every history.
    #[test]
    fn rete_equals_naive(program in arb_program(), history in arb_history()) {
        let mut naive = NaiveMatcher::new(program.clone());
        let mut rete = ReteMatcher::from_program(&program).unwrap();
        for batch in materialize(history) {
            naive.process(&batch);
            rete.process(&batch);
            prop_assert_eq!(naive.conflict_set(), rete.conflict_set());
        }
    }

    /// A tiny hash table (maximal bucket collisions) changes nothing.
    #[test]
    fn rete_correct_under_heavy_bucket_collisions(
        program in arb_program(),
        history in arb_history(),
    ) {
        let mut naive = NaiveMatcher::new(program.clone());
        let network = ReteNetwork::compile(&program).unwrap();
        let mut rete = ReteMatcher::new(
            network,
            EngineConfig { table_size: 2, record_trace: false },
        );
        for batch in materialize(history) {
            naive.process(&batch);
            rete.process(&batch);
            prop_assert_eq!(naive.conflict_set(), rete.conflict_set());
        }
    }

    /// TREAT (alpha memories only, no beta state) agrees with Rete after
    /// every batch — the strongest cross-algorithm check in the suite.
    #[test]
    fn treat_equals_rete(program in arb_program(), history in arb_history()) {
        let mut rete = ReteMatcher::from_program(&program).unwrap();
        let mut treat = TreatMatcher::new(&program);
        for batch in materialize(history) {
            rete.process(&batch);
            treat.process(&batch);
            prop_assert_eq!(rete.conflict_set(), treat.conflict_set());
        }
    }

    /// The threaded executor agrees with the sequential engine.
    #[test]
    fn threaded_equals_sequential(
        program in arb_program(),
        history in arb_history(),
        workers in 1usize..5,
    ) {
        let mut rete = ReteMatcher::from_program(&program).unwrap();
        let mut par = ThreadedMatcher::from_program(&program, workers).unwrap();
        for batch in materialize(history) {
            rete.process(&batch);
            par.process(&batch);
            prop_assert_eq!(rete.conflict_set(), par.conflict_set());
        }
    }
}
