//! All human- and script-facing output of `mpps simulate`.
//!
//! Every line the subcommand prints is rendered here, so the text layout
//! lives in exactly one place and `--format json` can reuse the same data.
//! The text renderers reproduce the historical output byte-for-byte —
//! `tests/cli.rs` pins that.

use mpps::core::sweep::SpeedupPoint;
use mpps::mpcsim::telemetry::TraceRecorder;
use mpps::mpcsim::SimTime;
use mpps::rete::Trace;

/// How the simulate summary is rendered.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum OutputFormat {
    /// The historical column layout.
    #[default]
    Text,
    /// One JSON object on stdout.
    Json,
}

impl OutputFormat {
    /// Parse a `--format` value.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "text" => Ok(OutputFormat::Text),
            "json" => Ok(OutputFormat::Json),
            other => Err(format!("unknown format {other:?} (text|json)")),
        }
    }
}

/// Everything `mpps simulate` reports about one run.
pub struct SimulateSummary<'a> {
    /// The replayed trace.
    pub trace: &'a Trace,
    /// Serial (one-processor, zero-overhead) match time.
    pub serial_total: SimTime,
    /// One row per requested processor count.
    pub points: &'a [SpeedupPoint],
}

impl SimulateSummary<'_> {
    /// Render in the requested format.
    pub fn render(&self, format: OutputFormat) -> String {
        match format {
            OutputFormat::Text => self.render_text(),
            OutputFormat::Json => self.render_json(),
        }
    }

    fn render_text(&self) -> String {
        let stats = self.trace.stats();
        let mut out = format!(
            "trace: {} cycles, {} activations ({})\n",
            self.trace.cycles.len(),
            stats.total(),
            stats
        );
        out.push_str(&format!("serial match time: {}\n", self.serial_total));
        out.push_str("P, time_us, speedup\n");
        for point in self.points {
            out.push_str(&format!(
                "{}, {:.1}, {:.2}\n",
                point.processors, point.total_us, point.speedup
            ));
        }
        out
    }

    fn render_json(&self) -> String {
        let stats = self.trace.stats();
        let points: Vec<String> = self
            .points
            .iter()
            .map(|p| {
                format!(
                    "{{\"processors\": {}, \"time_us\": {:.1}, \"speedup\": {:.2}}}",
                    p.processors, p.total_us, p.speedup
                )
            })
            .collect();
        format!(
            "{{\"trace\": {{\"cycles\": {}, \"activations\": {}}}, \
             \"serial_match_us\": {:.1}, \"points\": [{}]}}\n",
            self.trace.cycles.len(),
            stats.total(),
            self.serial_total.as_us(),
            points.join(", ")
        )
    }
}

/// Render `--stats`: one line per recorded histogram metric, in
/// first-seen order.
pub fn stats_block(rec: &TraceRecorder) -> String {
    let mut out = String::from("telemetry histograms (per-metric percentiles):\n");
    for (metric, hist) in rec.histograms() {
        let s = hist.summary();
        out.push_str(&format!(
            "  {metric}: n={} min={} p50={} p95={} max={} mean={:.1}\n",
            s.count, s.min, s.p50, s.p95, s.max, s.mean
        ));
    }
    out
}
