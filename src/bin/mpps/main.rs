//! `mpps` — run, trace and simulate OPS5-subset production systems.
//!
//! ```text
//! mpps run <program.ops> [--wm <file.wm>] [--cycles N] [--strategy lex|mea]
//!          [--matcher rete|naive|treat|threaded] [--workers N] [--table-size N]
//!          [--partition rr|random|greedy] [--seed N] [--quiet] [--stats]
//! mpps trace <program.ops> [--wm <file.wm>] [--cycles N] [--table-size N]
//!            [--out <file.trace>]
//! mpps simulate <file.trace> [--procs 1,2,4,8,16,32] [--overhead 0|8|16|32]
//!               [--partition rr|random|greedy] [--seed N] [--jobs N]
//!               [--format text|json] [--trace-out FILE] [--stats]
//! mpps fuzz [--seed N] [--iters N] [--matchers naive,rete,treat,threaded|all]
//!           [--max-productions N] [--shrink] [--out DIR]
//! ```
//!
//! `mpps fuzz` drives the differential oracle: every case is a random
//! program plus a random WM-change schedule, run through all requested
//! matchers in lockstep with the naive matcher as ground truth. Diverging
//! cases are (optionally `--shrink`-minimized and) written to `--out` as
//! runnable `.ops` + `.sched` reproducer pairs; the exit status is 1 when
//! any divergence was found.
//!
//! `.ops` files hold productions in the textual syntax; `.wm` files hold
//! one WME per line, e.g. `(block ^name b1 ^color blue)`. Lines starting
//! with `;` are comments.
//!
//! `--trace-out FILE` re-runs the largest requested machine with telemetry
//! enabled and writes a Chrome `trace_event` file (open it at
//! <https://ui.perfetto.dev>); `--stats` prints histogram percentiles of
//! the recorded metrics. Neither changes the summary output.
//!
//! With `--matcher threaded`, `--partition` picks the bucket-ownership
//! strategy for the real thread pool (greedy does an offline traced
//! sequential pre-run to measure bucket activity, as in §5.2.2), and
//! `--stats` prints per-worker activity counters to stderr.

mod format;

use format::{stats_block, OutputFormat, SimulateSummary};
use mpps::core::sweep::{baseline, speedup_curve_jobs, PartitionStrategy};
use mpps::core::{
    bucket_activity, name_machine_tracks, simulate_recorded, MappingConfig, OverheadSetting,
    Partition, SimScratch, ThreadedMatcher,
};
use mpps::difftest::{fuzz_one, write_repro, GenConfig, MatcherKind};
use mpps::ops::{
    parse_program, parse_wme, Interpreter, Matcher, NaiveMatcher, Strategy, TreatMatcher, Wme,
};
use mpps::rete::{EngineConfig, ReteMatcher, ReteNetwork, Trace};
use mpps::telemetry::{chrome::chrome_trace, TraceRecorder};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage:\n  mpps run <program.ops> [--wm FILE] [--cycles N] [--strategy lex|mea]\n\
         \x20          [--matcher rete|naive|treat|threaded] [--workers N] [--table-size N]\n\
         \x20          [--partition rr|random|greedy] [--seed N] [--quiet] [--stats]\n\
         \x20 mpps trace <program.ops> [--wm FILE] [--cycles N] [--table-size N] [--out FILE]\n\
         \x20 mpps simulate <file.trace> [--procs LIST] [--overhead 0|8|16|32]\n\
         \x20          [--partition rr|random|greedy] [--seed N] [--jobs N]\n\
         \x20          [--format text|json] [--trace-out FILE] [--stats]\n\
         \x20 mpps fuzz [--seed N] [--iters N] [--matchers LIST|all]\n\
         \x20          [--max-productions N] [--shrink] [--out DIR]"
    );
    exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("mpps: {msg}");
    exit(1)
}

/// Invalid command-line input: report and exit with the usage status (2),
/// distinguishing caller mistakes from runtime failures (1).
fn usage_error(msg: impl std::fmt::Display) -> ! {
    eprintln!("mpps: {msg}");
    exit(2)
}

/// Minimal flag parser: positional args plus `--key value` pairs.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key == "quiet" || key == "stats" || key == "shrink" {
                    flags.push((key.to_owned(), "true".to_owned()));
                } else {
                    let Some(v) = it.next() else {
                        fail(format!("flag --{key} needs a value"));
                    };
                    flags.push((key.to_owned(), v));
                }
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| fail(format!("bad value for --{key}: {v:?}"))),
        }
    }
}

fn read_file(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")))
}

fn load_wmes(path: Option<&str>) -> Vec<Wme> {
    let Some(path) = path else {
        return Vec::new();
    };
    read_file(path)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with(';'))
        .map(|l| parse_wme(l).unwrap_or_else(|e| fail(format!("bad WME {l:?}: {e}"))))
        .collect()
}

fn strategy_of(args: &Args) -> Strategy {
    match args.get("strategy").unwrap_or("lex") {
        "lex" => Strategy::Lex,
        "mea" => Strategy::Mea,
        other => fail(format!("unknown strategy {other:?} (lex|mea)")),
    }
}

fn run_with<M: Matcher>(
    program: mpps::ops::Program,
    wmes: Vec<Wme>,
    matcher: M,
    strategy: Strategy,
    cycles: usize,
    quiet: bool,
) -> Interpreter<M> {
    let mut interp = Interpreter::with_matcher(program, strategy, matcher);
    for w in wmes {
        interp.add_wme(w);
    }
    let result = interp.run(cycles).unwrap_or_else(|e| fail(e));
    if !quiet {
        for f in &result.fired {
            println!("cycle {:>4}: {}", f.cycle, f.name);
        }
        for line in interp.output() {
            let rendered: Vec<String> = line.iter().map(ToString::to_string).collect();
            println!("write: {}", rendered.join(" "));
        }
    }
    println!(
        "{:?} after {} cycles, {} firings, {} WMEs live",
        result.outcome,
        result.cycles,
        result.fired.len(),
        interp.working_memory().len()
    );
    interp
}

/// Offline greedy bucket partition (§5.2.2): a traced sequential pre-run
/// measures per-bucket activity, then buckets are placed longest-first on
/// the least-loaded worker.
fn greedy_partition(
    program: &mpps::ops::Program,
    wmes: &[Wme],
    strategy: Strategy,
    cycles: usize,
    table_size: u64,
    workers: usize,
) -> Partition {
    let network = ReteNetwork::compile(program).unwrap_or_else(|e| fail(e));
    let matcher = ReteMatcher::new(
        network,
        EngineConfig {
            table_size,
            record_trace: true,
        },
    );
    let mut interp = Interpreter::with_matcher(program.clone(), strategy, matcher);
    for w in wmes {
        interp.add_wme(w.clone());
    }
    interp.run(cycles).unwrap_or_else(|e| fail(e));
    let trace = interp
        .matcher_mut()
        .take_trace()
        .expect("tracing was enabled");
    Partition::greedy(&bucket_activity(&trace), workers)
}

fn cmd_run(args: &Args) {
    let [program_path] = &args.positional[..] else {
        usage();
    };
    let program = parse_program(&read_file(program_path)).unwrap_or_else(|e| fail(e));
    let wmes = load_wmes(args.get("wm"));
    let cycles = args.get_parse("cycles", 10_000usize);
    let strategy = strategy_of(args);
    let quiet = args.get("quiet").is_some();
    match args.get("matcher").unwrap_or("rete") {
        "rete" => {
            let m = ReteMatcher::from_program(&program).unwrap_or_else(|e| fail(e));
            run_with(program, wmes, m, strategy, cycles, quiet);
        }
        "naive" => {
            let m = NaiveMatcher::new(program.clone());
            run_with(program, wmes, m, strategy, cycles, quiet);
        }
        "treat" => {
            let m = TreatMatcher::new(&program);
            run_with(program, wmes, m, strategy, cycles, quiet);
        }
        "threaded" => {
            let workers = args.get_parse("workers", 4usize);
            if workers == 0 {
                usage_error("--workers must be at least 1 for --matcher threaded");
            }
            let table_size = args.get_parse("table-size", 2048u64);
            if table_size == 0 {
                usage_error("--table-size must be at least 1");
            }
            let seed = args.get_parse("seed", 1989u64);
            let partition = match args.get("partition").unwrap_or("rr") {
                "rr" => Partition::round_robin(table_size, workers),
                "random" => Partition::random(table_size, workers, seed),
                "greedy" => {
                    greedy_partition(&program, &wmes, strategy, cycles, table_size, workers)
                }
                other => usage_error(format!("unknown partition {other:?} (rr|random|greedy)")),
            };
            let network = ReteNetwork::compile(&program).unwrap_or_else(|e| fail(e));
            let m = ThreadedMatcher::with_partition(network, partition);
            let interp = run_with(program, wmes, m, strategy, cycles, quiet);
            if args.get("stats").is_some() {
                let stats = interp.matcher().stats();
                eprintln!("threaded matcher: {} cycles", stats.cycles);
                for (i, w) in stats.per_worker.iter().enumerate() {
                    eprintln!(
                        "  worker {i}: {} tokens processed, {} forwarded in {} messages, \
                         peak queue {}",
                        w.tokens_processed, w.tokens_forwarded, w.messages_sent, w.max_queue_depth
                    );
                }
            }
        }
        other => fail(format!(
            "unknown matcher {other:?} (rete|naive|treat|threaded)"
        )),
    }
}

fn cmd_fuzz(args: &Args) {
    if !args.positional.is_empty() {
        usage_error("fuzz takes no positional arguments");
    }
    let seed = args.get_parse("seed", 0u64);
    let iters = args.get_parse("iters", 100u64);
    let matchers = MatcherKind::parse_list(args.get("matchers").unwrap_or("all"))
        .unwrap_or_else(|e| usage_error(e));
    let cfg = GenConfig {
        max_productions: args.get_parse("max-productions", 4usize).max(1),
        ..GenConfig::default()
    };
    let do_shrink = args.get("shrink").is_some();
    let out_dir = std::path::PathBuf::from(args.get("out").unwrap_or("target/fuzz"));

    let mut divergences = 0u64;
    for i in 0..iters {
        let case_seed = seed + i;
        let (case, divergence) = fuzz_one(case_seed, &cfg, &matchers, do_shrink);
        if let Some(d) = divergence {
            divergences += 1;
            eprintln!("seed {case_seed}: {d}");
            match write_repro(&out_dir, &format!("fuzz-{case_seed}"), &case) {
                Ok((ops, sched)) => {
                    eprintln!(
                        "  reproducer: {} + {}{}",
                        ops.display(),
                        sched.display(),
                        if do_shrink { " (shrunk)" } else { "" }
                    );
                }
                Err(e) => eprintln!("  could not write reproducer: {e}"),
            }
        }
    }
    let names: Vec<&str> = matchers.iter().map(|m| m.name()).collect();
    println!(
        "fuzz: {iters} cases (seeds {seed}..{}), matchers [{}]: {divergences} divergences",
        seed + iters,
        names.join(",")
    );
    if divergences > 0 {
        exit(1);
    }
}

fn cmd_trace(args: &Args) {
    let [program_path] = &args.positional[..] else {
        usage();
    };
    let program = parse_program(&read_file(program_path)).unwrap_or_else(|e| fail(e));
    let wmes = load_wmes(args.get("wm"));
    let cycles = args.get_parse("cycles", 10_000usize);
    let table_size = args.get_parse("table-size", 2048u64);
    let strategy = strategy_of(args);
    let network = ReteNetwork::compile(&program).unwrap_or_else(|e| fail(e));
    let matcher = ReteMatcher::new(
        network,
        EngineConfig {
            table_size,
            record_trace: true,
        },
    );
    let mut interp = Interpreter::with_matcher(program, strategy, matcher);
    for w in wmes {
        interp.add_wme(w);
    }
    let result = interp.run(cycles).unwrap_or_else(|e| fail(e));
    let trace = interp
        .matcher_mut()
        .take_trace()
        .expect("tracing was enabled");
    let stats = trace.stats();
    eprintln!(
        "{:?}: {} cycles, {} firings; activations: {}",
        result.outcome,
        result.cycles,
        result.fired.len(),
        stats
    );
    let text = trace.to_text();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| fail(format!("write {path}: {e}")));
            eprintln!("trace written to {path}");
        }
        None => print!("{text}"),
    }
}

fn cmd_simulate(args: &Args) {
    let [trace_path] = &args.positional[..] else {
        usage();
    };
    let trace = Trace::from_text(&read_file(trace_path)).unwrap_or_else(|e| fail(e));
    let procs: Vec<usize> = args
        .get("procs")
        .unwrap_or("1,2,4,8,16,32")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| fail(format!("bad processor count {s:?}")))
        })
        .collect();
    let overhead = match args.get("overhead").unwrap_or("8") {
        "0" => OverheadSetting::table_5_1()[0],
        "8" => OverheadSetting::table_5_1()[1],
        "16" => OverheadSetting::table_5_1()[2],
        "32" => OverheadSetting::table_5_1()[3],
        other => fail(format!("unknown overhead {other:?} (0|8|16|32)")),
    };
    let seed = args.get_parse("seed", 1989u64);
    let partition = match args.get("partition").unwrap_or("rr") {
        "rr" => PartitionStrategy::RoundRobin,
        "random" => PartitionStrategy::Random(seed),
        "greedy" => PartitionStrategy::GreedyWholeTrace,
        other => fail(format!("unknown partition {other:?} (rr|random|greedy)")),
    };
    let format = match args.get("format") {
        None => OutputFormat::Text,
        Some(v) => OutputFormat::parse(v).unwrap_or_else(|e| fail(e)),
    };
    let jobs = args.get_parse(
        "jobs",
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    );
    let base = baseline(&trace);
    let curve = speedup_curve_jobs(&trace, &procs, overhead, partition, jobs);
    let summary = SimulateSummary {
        trace: &trace,
        serial_total: base.total,
        points: &curve,
    };
    print!("{}", summary.render(format));

    // Telemetry is a separate, opt-in re-run of the largest requested
    // machine — the summary above is untouched by it.
    let trace_out = args.get("trace-out");
    let want_stats = args.get("stats").is_some();
    if trace_out.is_some() || want_stats {
        let procs_max = procs.iter().copied().max().unwrap_or(1);
        let config = MappingConfig::standard(procs_max, overhead);
        let bucket_partition = partition.build(&trace, procs_max);
        let mut recorder = TraceRecorder::new();
        name_machine_tracks(&mut recorder, &config);
        simulate_recorded(
            &mut SimScratch::new(),
            &trace,
            &config,
            &bucket_partition,
            &mut recorder,
        );
        if let Some(path) = trace_out {
            std::fs::write(path, chrome_trace(&recorder))
                .unwrap_or_else(|e| fail(format!("write {path}: {e}")));
            eprintln!("telemetry trace ({procs_max} match processors) written to {path}");
        }
        if want_stats {
            print!("{}", stats_block(&recorder));
        }
    }
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        usage();
    }
    let cmd = raw.remove(0);
    let args = Args::parse(raw);
    match cmd.as_str() {
        "run" => cmd_run(&args),
        "trace" => cmd_trace(&args),
        "simulate" => cmd_simulate(&args),
        "fuzz" => cmd_fuzz(&args),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command {other:?}");
            usage();
        }
    }
}
