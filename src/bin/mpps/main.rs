//! `mpps` — run, trace and simulate OPS5-subset production systems.
//!
//! ```text
//! mpps run <program.ops|rubik|tourney|weaver> [--wm <file.wm>] [--cycles N]
//!          [--strategy lex|mea]
//!          [--matcher rete|naive|treat|threaded] [--workers N] [--table-size N]
//!          [--partition rr|random|greedy] [--seed N] [--quiet] [--stats]
//!          [--profile DIR] [--adapt]
//! mpps trace <program.ops> [--wm <file.wm>] [--cycles N] [--table-size N]
//!            [--out <file.trace>]
//! mpps simulate <file.trace> [--procs 1,2,4,8,16,32] [--overhead 0|8|16|32]
//!               [--partition rr|random|greedy] [--seed N] [--jobs N]
//!               [--format text|json] [--trace-out FILE] [--stats]
//! mpps fuzz [--seed N] [--iters N] [--matchers naive,rete,treat,threaded|all]
//!           [--max-productions N] [--shrink] [--out DIR] [--profile DIR]
//! mpps serve (--synthetic | --script FILE) [--program FILE|rubik|tourney|weaver]
//!           [--sessions N] [--rounds N] [--wmes N] [--workers N] [--queue N]
//!           [--shards N] [--sharding rr|random[:SEED]|greedy] [--strategy lex|mea]
//!           [--table-size N] [--stats] [--adapt]
//!           [--resident-budget N] [--evict-dir DIR] [--migrate]
//! ```
//!
//! The `run` program argument is either a `.ops` file or one of the
//! builtin characteristic sections (`rubik`, `tourney`, `weaver`), which
//! come with their own initial working memory; a file with the same name
//! takes precedence.
//!
//! `mpps run --profile DIR` re-spawns the chosen matcher with live
//! metrics (rete, treat and threaded; naive has no kernel to profile)
//! and writes `DIR/match_profile.json` — top-K hot nodes, bucket skew
//! factor, arena occupancy, and for `--matcher threaded` the per-cycle
//! barrier-wait vs match-work split plus `DIR/trace.json`, a Chrome
//! trace whose per-worker lanes carry both the counter tracks and the
//! synthesized match-work / barrier-wait spans (open at
//! <https://ui.perfetto.dev>). Profiling never changes the run's stdout:
//! profiled and unprofiled runs print byte-identical output.
//!
//! `mpps fuzz --profile DIR` additionally replays every generated case
//! under profiled rete, treat, and threaded matchers and writes the
//! merged registry to `DIR/match_profile.json` — exercising the profiler
//! hooks across the whole generated grammar (negation, leading-negated
//! CEs, …) is the point, so replay happens for clean and diverging cases
//! alike.
//!
//! `mpps fuzz` drives the differential oracle: every case is a random
//! program plus a random WM-change schedule, run through all requested
//! matchers in lockstep with the naive matcher as ground truth. Diverging
//! cases are (optionally `--shrink`-minimized and) written to `--out` as
//! runnable `.ops` + `.sched` reproducer pairs; the exit status is 1 when
//! any divergence was found.
//!
//! `.ops` files hold productions in the textual syntax; `.wm` files hold
//! one WME per line, e.g. `(block ^name b1 ^color blue)`. Lines starting
//! with `;` are comments.
//!
//! `--trace-out FILE` re-runs the largest requested machine with telemetry
//! enabled and writes a Chrome `trace_event` file (open it at
//! <https://ui.perfetto.dev>); `--stats` prints histogram percentiles of
//! the recorded metrics. Neither changes the summary output.
//!
//! With `--matcher threaded`, `--partition` picks the bucket-ownership
//! strategy for the real thread pool (greedy does an offline traced
//! sequential pre-run to measure bucket activity, as in §5.2.2), and
//! `--stats` prints per-worker activity counters to stderr.
//!
//! `mpps run --matcher threaded --adapt` closes the skew loop: a profiled
//! sequential pre-run measures per-node activations and the per-bucket
//! activation skew, `suggest_plan` derives copy-and-constraint splits
//! (plus unsharing) for the hot cross-product nodes that bucket migration
//! cannot spread, the transformed network runs under the threaded matcher
//! with the online repartitioner enabled, and the before/after bucket
//! skew factors plus every rebalance event are reported on stderr. The
//! run's stdout is unchanged. `mpps serve --adapt` applies the static
//! (unshare-only) suggested plan at compile time — the server has no WME
//! sample to derive split boundaries from.
//!
//! `mpps serve` runs the rule-engine-as-a-service layer: one compiled
//! program multiplexed across many independent working-memory sessions on
//! a bounded-queue worker pool. `--synthetic` drives the built-in
//! ticket-triage load (`--sessions`/`--rounds`/`--wmes`) and prints
//! sustained WME-changes/sec plus cycle-latency percentiles;
//! `--script FILE` replays a deterministic session script
//! (`session`/`make`/`run`/`snapshot`/`restore`/`destroy`, one command
//! per line) and prints one log line per command. Every subcommand
//! rejects flags it does not understand with its usage line and exit
//! status 2.

mod format;

use format::{stats_block, OutputFormat, SimulateSummary};
use mpps::core::sweep::{baseline, speedup_curve_jobs, PartitionStrategy};
use mpps::core::{
    bucket_activity, name_machine_tracks, simulate_recorded, AdaptOptions, MappingConfig,
    OverheadSetting, Partition, SimScratch, ThreadedMatcher,
};
use mpps::core::{bucket_skew_factor, name_threaded_tracks, render_match_profile};
use mpps::difftest::{fuzz_one, write_repro, FuzzCase, GenConfig, MatcherKind, ScheduleOp};
use mpps::ops::{
    interpreter::StepOutcome, parse_program, parse_wme, Interpreter, Matcher, NaiveMatcher,
    Program, Strategy, TreatMatcher, Wme, WmeId,
};
use mpps::rete::{
    kernel, suggest_plan, CompileOptions, EngineConfig, ReteMatcher, ReteNetwork, SuggestOptions,
    Trace,
};
use mpps::server::{run_script, run_synthetic, ServerConfig, Sharding, SyntheticSpec};
use mpps::telemetry::{chrome::chrome_trace, MetricsRegistry, TraceRecorder};
use mpps::workloads::{rubik, serve, tourney, weaver};
use std::process::exit;

/// One usage line per subcommand, shared by the full `usage()` dump and
/// the per-command unknown-flag diagnostics so both always agree.
const USAGE_LINES: &[(&str, &str)] = &[
    (
        "run",
        "mpps run <program.ops|rubik|tourney|weaver> [--wm FILE] [--cycles N]\n\
         \x20          [--strategy lex|mea]\n\
         \x20          [--matcher rete|naive|treat|threaded] [--workers N] [--table-size N]\n\
         \x20          [--partition rr|random|greedy] [--seed N] [--quiet] [--stats]\n\
         \x20          [--profile DIR] [--adapt]",
    ),
    (
        "trace",
        "mpps trace <program.ops> [--wm FILE] [--cycles N] [--table-size N]\n\
         \x20          [--strategy lex|mea] [--out FILE]",
    ),
    (
        "simulate",
        "mpps simulate <file.trace> [--procs LIST] [--overhead 0|8|16|32]\n\
         \x20          [--partition rr|random|greedy] [--seed N] [--jobs N]\n\
         \x20          [--format text|json] [--trace-out FILE] [--stats]",
    ),
    (
        "fuzz",
        "mpps fuzz [--seed N] [--iters N] [--matchers LIST|all]\n\
         \x20          [--max-productions N] [--shrink] [--out DIR] [--profile DIR]",
    ),
    (
        "serve",
        "mpps serve (--synthetic | --script FILE) [--program FILE|rubik|tourney|weaver]\n\
         \x20          [--sessions N] [--rounds N] [--wmes N]\n\
         \x20          [--workers N] [--queue N] [--shards N]\n\
         \x20          [--sharding rr|random[:SEED]|greedy] [--strategy lex|mea]\n\
         \x20          [--table-size N] [--stats] [--adapt]\n\
         \x20          [--resident-budget N] [--evict-dir DIR] [--migrate]",
    ),
];

fn usage() -> ! {
    let lines: Vec<String> = USAGE_LINES
        .iter()
        .map(|(_, line)| format!("  {}", line.replace('\n', "\n ")))
        .collect();
    eprintln!("usage:\n{}", lines.join("\n"));
    exit(2)
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("mpps: {msg}");
    exit(1)
}

/// Invalid command-line input: report and exit with the usage status (2),
/// distinguishing caller mistakes from runtime failures (1).
fn usage_error(msg: impl std::fmt::Display) -> ! {
    eprintln!("mpps: {msg}");
    exit(2)
}

/// Reject flags a subcommand does not understand: consistent diagnostic,
/// the subcommand's own usage line, exit status 2. Silently ignoring a
/// misspelled flag is how `--cycels 5` runs for 10 000 cycles.
fn check_flags(cmd: &str, args: &Args, allowed: &[&str]) {
    for (key, _) in &args.flags {
        if !allowed.contains(&key.as_str()) {
            eprintln!("mpps: unknown flag --{key} for `mpps {cmd}`");
            if let Some((_, line)) = USAGE_LINES.iter().find(|(name, _)| *name == cmd) {
                eprintln!("usage: {line}");
            }
            exit(2);
        }
    }
}

/// Minimal flag parser: positional args plus `--key value` pairs.
struct Args {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse(raw: Vec<String>) -> Args {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut it = raw.into_iter();
        while let Some(a) = it.next() {
            if let Some(key) = a.strip_prefix("--") {
                if key == "quiet"
                    || key == "stats"
                    || key == "shrink"
                    || key == "synthetic"
                    || key == "adapt"
                    || key == "migrate"
                {
                    flags.push((key.to_owned(), "true".to_owned()));
                } else {
                    let Some(v) = it.next() else {
                        fail(format!("flag --{key} needs a value"));
                    };
                    flags.push((key.to_owned(), v));
                }
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_parse<T: std::str::FromStr>(&self, key: &str, default: T) -> T {
        match self.get(key) {
            None => default,
            Some(v) => v
                .parse()
                .unwrap_or_else(|_| fail(format!("bad value for --{key}: {v:?}"))),
        }
    }
}

fn read_file(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| fail(format!("cannot read {path}: {e}")))
}

fn load_wmes(path: Option<&str>) -> Vec<Wme> {
    let Some(path) = path else {
        return Vec::new();
    };
    read_file(path)
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with(';'))
        .map(|l| parse_wme(l).unwrap_or_else(|e| fail(format!("bad WME {l:?}: {e}"))))
        .collect()
}

fn strategy_of(args: &Args) -> Strategy {
    match args.get("strategy").unwrap_or("lex") {
        "lex" => Strategy::Lex,
        "mea" => Strategy::Mea,
        other => fail(format!("unknown strategy {other:?} (lex|mea)")),
    }
}

fn run_with<M: Matcher>(
    program: mpps::ops::Program,
    wmes: Vec<Wme>,
    matcher: M,
    strategy: Strategy,
    cycles: usize,
    quiet: bool,
) -> Interpreter<M> {
    let mut interp = Interpreter::with_matcher(program, strategy, matcher);
    for w in wmes {
        interp.add_wme(w);
    }
    let result = interp.run(cycles).unwrap_or_else(|e| fail(e));
    if !quiet {
        for f in &result.fired {
            println!("cycle {:>4}: {}", f.cycle, f.name);
        }
        for line in interp.output() {
            let rendered: Vec<String> = line.iter().map(ToString::to_string).collect();
            println!("write: {}", rendered.join(" "));
        }
    }
    println!(
        "{:?} after {} cycles, {} firings, {} WMEs live",
        result.outcome,
        result.cycles,
        result.fired.len(),
        interp.working_memory().len()
    );
    interp
}

/// Offline greedy bucket partition (§5.2.2): a traced sequential pre-run
/// measures per-bucket activity, then buckets are placed longest-first on
/// the least-loaded worker.
fn greedy_partition(
    program: &mpps::ops::Program,
    wmes: &[Wme],
    strategy: Strategy,
    cycles: usize,
    table_size: u64,
    workers: usize,
) -> Partition {
    let network = ReteNetwork::compile(program).unwrap_or_else(|e| fail(e));
    let matcher = ReteMatcher::new(
        network,
        EngineConfig {
            table_size,
            record_trace: true,
        },
    );
    let mut interp = Interpreter::with_matcher(program.clone(), strategy, matcher);
    for w in wmes {
        interp.add_wme(w.clone());
    }
    interp.run(cycles).unwrap_or_else(|e| fail(e));
    let trace = interp
        .matcher_mut()
        .take_trace()
        .expect("tracing was enabled");
    Partition::greedy(&bucket_activity(&trace), workers)
}

/// `--adapt`: profiled sequential pre-run → suggested transform plan →
/// transformed network, plus the pre-run's bucket skew factor and a
/// human-readable plan summary for the stderr report.
fn adaptive_network(
    program: &mpps::ops::Program,
    wmes: &[Wme],
    strategy: Strategy,
    cycles: usize,
    table_size: u64,
) -> (ReteNetwork, f64, String) {
    let network = ReteNetwork::compile(program).unwrap_or_else(|e| fail(e));
    let matcher = ReteMatcher::with_metrics(
        network,
        EngineConfig {
            table_size,
            record_trace: false,
        },
        MetricsRegistry::new(),
    );
    let mut interp = Interpreter::with_matcher(program.clone(), strategy, matcher);
    for w in wmes {
        interp.add_wme(w.clone());
    }
    interp.run(cycles).unwrap_or_else(|e| fail(e));
    let reg = interp.matcher_mut().profile();
    let skew_before = bucket_skew_factor(&reg).unwrap_or(0.0);
    let empty = std::collections::BTreeMap::new();
    let activations = reg
        .counter(kernel::metric::NODE_ACTIVATIONS)
        .unwrap_or(&empty);
    // `suggest_plan` wants the network the activations were measured on;
    // recompiling is cheap next to the pre-run itself.
    let net = ReteNetwork::compile(program).unwrap_or_else(|e| fail(e));
    let plan = suggest_plan(&net, program, activations, wmes, &SuggestOptions::default());
    let summary = plan.summary(program);
    let transformed = ReteNetwork::compile_planned(program, CompileOptions::default(), &plan)
        .unwrap_or_else(|e| fail(e));
    (transformed, skew_before, summary)
}

/// The builtin characteristic sections usable as `mpps run` programs:
/// program plus initial working memory, sized like the bench sections.
fn builtin_workload(name: &str) -> Option<(Program, Vec<Wme>)> {
    match name {
        "rubik" => Some((
            rubik::program(),
            rubik::initial(&rubik::alternating_moves(2)),
        )),
        "tourney" => Some((tourney::program(), tourney::initial(12, 12))),
        "weaver" => Some((weaver::program(), weaver::initial(4, 4))),
        _ => None,
    }
}

/// Write `DIR/match_profile.json` for one profiled run.
fn write_profile(dir: &str, matcher: &str, workers: usize, reg: &MetricsRegistry) {
    let dir = std::path::Path::new(dir);
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| fail(format!("cannot create {}: {e}", dir.display())));
    let path = dir.join("match_profile.json");
    std::fs::write(&path, render_match_profile(matcher, workers, reg))
        .unwrap_or_else(|e| fail(format!("write {}: {e}", path.display())));
    eprintln!("profile written to {}", path.display());
}

fn cmd_run(args: &Args) {
    check_flags(
        "run",
        args,
        &[
            "wm",
            "cycles",
            "strategy",
            "matcher",
            "workers",
            "table-size",
            "partition",
            "seed",
            "quiet",
            "stats",
            "profile",
            "adapt",
        ],
    );
    let [program_path] = &args.positional[..] else {
        usage();
    };
    // A real file always wins; builtin section names only apply when no
    // such file exists.
    let (program, wmes) = if !std::path::Path::new(program_path).exists() {
        if let Some((program, mut wmes)) = builtin_workload(program_path) {
            wmes.extend(load_wmes(args.get("wm")));
            (program, wmes)
        } else {
            fail(format!(
                "cannot read {program_path}: no such file (and not a builtin section: \
                 rubik|tourney|weaver)"
            ))
        }
    } else {
        let program = parse_program(&read_file(program_path)).unwrap_or_else(|e| fail(e));
        (program, load_wmes(args.get("wm")))
    };
    let cycles = args.get_parse("cycles", 10_000usize);
    let strategy = strategy_of(args);
    let quiet = args.get("quiet").is_some();
    let profile_dir = args.get("profile");
    let adapt = args.get("adapt").is_some();
    let matcher_name = args.get("matcher").unwrap_or("rete");
    if adapt && matcher_name != "threaded" {
        usage_error("--adapt requires --matcher threaded (it drives the online repartitioner)");
    }
    match matcher_name {
        "rete" => {
            if let Some(dir) = profile_dir {
                let network = ReteNetwork::compile(&program).unwrap_or_else(|e| fail(e));
                let m = ReteMatcher::with_metrics(
                    network,
                    EngineConfig::default(),
                    MetricsRegistry::new(),
                );
                let mut interp = run_with(program, wmes, m, strategy, cycles, quiet);
                let reg = interp.matcher_mut().profile();
                write_profile(dir, "rete", 1, &reg);
            } else {
                let m = ReteMatcher::from_program(&program).unwrap_or_else(|e| fail(e));
                run_with(program, wmes, m, strategy, cycles, quiet);
            }
        }
        "naive" => {
            if profile_dir.is_some() {
                usage_error("--profile is not supported for --matcher naive (no match kernel)");
            }
            let m = NaiveMatcher::new(program.clone());
            run_with(program, wmes, m, strategy, cycles, quiet);
        }
        "treat" => {
            if let Some(dir) = profile_dir {
                let m = TreatMatcher::with_metrics(&program, MetricsRegistry::new());
                let interp = run_with(program, wmes, m, strategy, cycles, quiet);
                write_profile(dir, "treat", 1, &interp.matcher().profile());
            } else {
                let m = TreatMatcher::new(&program);
                run_with(program, wmes, m, strategy, cycles, quiet);
            }
        }
        "threaded" => {
            let workers = args.get_parse("workers", 4usize);
            if workers == 0 {
                usage_error("--workers must be at least 1 for --matcher threaded");
            }
            let table_size = args.get_parse("table-size", 2048u64);
            if table_size == 0 {
                usage_error("--table-size must be at least 1");
            }
            let seed = args.get_parse("seed", 1989u64);
            let partition = match args.get("partition").unwrap_or("rr") {
                "rr" => Partition::round_robin(table_size, workers),
                "random" => Partition::random(table_size, workers, seed),
                "greedy" => {
                    greedy_partition(&program, &wmes, strategy, cycles, table_size, workers)
                }
                other => usage_error(format!("unknown partition {other:?} (rr|random|greedy)")),
            };
            // With --adapt the transformed network replaces the plain
            // compile, and the matcher is always profiled: the skew report
            // needs the per-bucket activation counters. Profiling never
            // changes stdout, so quiet runs stay byte-identical.
            let (network, skew_before, plan_summary) = if adapt {
                let (net, skew, summary) =
                    adaptive_network(&program, &wmes, strategy, cycles, table_size);
                (net, skew, summary)
            } else {
                let net = ReteNetwork::compile(&program).unwrap_or_else(|e| fail(e));
                (net, 0.0, String::new())
            };
            let mut m = if profile_dir.is_some() || adapt {
                ThreadedMatcher::with_partition_profiled(network, partition)
            } else {
                ThreadedMatcher::with_partition(network, partition)
            };
            if adapt {
                m.enable_adaptation(AdaptOptions::default());
            }
            let mut interp = run_with(program, wmes, m, strategy, cycles, quiet);
            if args.get("stats").is_some() {
                let stats = interp.matcher().stats();
                eprintln!("threaded matcher: {} cycles", stats.cycles);
                for (i, w) in stats.per_worker.iter().enumerate() {
                    eprintln!(
                        "  worker {i}: {} tokens processed, {} forwarded in {} messages, \
                         peak queue {}",
                        w.tokens_processed, w.tokens_forwarded, w.messages_sent, w.max_queue_depth
                    );
                }
            }
            if adapt {
                let matcher = interp.matcher_mut();
                let reg = matcher.profile_snapshot().unwrap_or_else(|e| fail(e));
                let skew_after = bucket_skew_factor(&reg).unwrap_or(0.0);
                let events = matcher.rebalance_events();
                let moved: u64 = events.iter().map(|e| e.moved_buckets).sum();
                eprintln!(
                    "adapt: plan {}",
                    if plan_summary.is_empty() {
                        "(empty)"
                    } else {
                        &plan_summary
                    }
                );
                eprintln!(
                    "adapt: bucket skew {skew_before:.3} -> {skew_after:.3}; \
                     {} rebalances moved {moved} buckets",
                    events.len()
                );
            }
            if let Some(dir) = profile_dir {
                let matcher = interp.matcher_mut();
                let reg = matcher.profile_snapshot().unwrap_or_else(|e| fail(e));
                write_profile(dir, "threaded", matcher.worker_count(), &reg);
                // Merged Chrome trace: the per-worker counter lanes plus
                // the synthesized match-work / barrier-wait phase spans,
                // all on the named THREADED_PID tracks.
                let mut rec = TraceRecorder::new();
                name_threaded_tracks(&mut rec, matcher.worker_count());
                matcher.record_into(&mut rec);
                matcher.record_cycles_into(&mut rec);
                let path = std::path::Path::new(dir).join("trace.json");
                std::fs::write(&path, chrome_trace(&rec))
                    .unwrap_or_else(|e| fail(format!("write {}: {e}", path.display())));
                eprintln!("worker-lane trace written to {}", path.display());
            }
        }
        other => fail(format!(
            "unknown matcher {other:?} (rete|naive|treat|threaded)"
        )),
    }
}

/// Drive one fuzz case's schedule through a single matcher, mirroring
/// the oracle's cadence (same per-round and total cycle bounds), for
/// profiling purposes only — nothing is compared. `RemoveNth` resolves
/// against this lane's own WM, which matches the oracle whenever the
/// matchers agree (and is merely a different valid schedule when not).
fn drive_for_profile<M: Matcher>(case: &FuzzCase, program: &Program, matcher: M) -> Interpreter<M> {
    const MAX_STEPS_PER_ROUND: usize = 8;
    const MAX_TOTAL_CYCLES: usize = 64;
    let mut interp = Interpreter::with_matcher(program.clone(), case.strategy, matcher);
    let mut total_cycles = 0usize;
    'rounds: for ops in &case.schedule.rounds {
        for op in ops {
            match op {
                ScheduleOp::Make(wme) => {
                    interp.add_wme(wme.clone());
                }
                ScheduleOp::RemoveNth(n) => {
                    let ids: Vec<WmeId> =
                        interp.working_memory().iter().map(|(id, _)| id).collect();
                    if ids.is_empty() {
                        continue;
                    }
                    let _ = interp.remove_wme(ids[n % ids.len()]);
                }
            }
        }
        for _ in 0..MAX_STEPS_PER_ROUND {
            if total_cycles >= MAX_TOTAL_CYCLES {
                break 'rounds;
            }
            total_cycles += 1;
            match interp.step() {
                Ok(StepOutcome::Quiescent) | Err(_) => break,
                Ok(_) => {}
            }
            if interp.is_halted() {
                break 'rounds;
            }
        }
        if interp.is_halted() {
            break;
        }
    }
    interp
}

/// Replay `case` under every profiled matcher and merge their registries
/// into `merged`. Threaded replay uses `try_process` semantics via the
/// interpreter; a build failure (invalid generated program) skips the
/// case.
fn replay_profiled(case: &FuzzCase, merged: &mut MetricsRegistry) {
    let Ok(program) = case.program() else {
        return;
    };
    if let Ok(network) = ReteNetwork::compile(&program) {
        let m = ReteMatcher::with_metrics(network, EngineConfig::default(), MetricsRegistry::new());
        let mut interp = drive_for_profile(case, &program, m);
        merged.merge(&interp.matcher_mut().profile());
    }
    let m = TreatMatcher::with_metrics(&program, MetricsRegistry::new());
    let interp = drive_for_profile(case, &program, m);
    merged.merge(&interp.matcher().profile());
    if let Ok(m) = ThreadedMatcher::from_program_profiled(&program, 2) {
        let mut interp = drive_for_profile(case, &program, m);
        if let Ok(reg) = interp.matcher_mut().profile_snapshot() {
            merged.merge(&reg);
        }
    }
}

fn cmd_fuzz(args: &Args) {
    check_flags(
        "fuzz",
        args,
        &[
            "seed",
            "iters",
            "matchers",
            "max-productions",
            "shrink",
            "out",
            "profile",
        ],
    );
    if !args.positional.is_empty() {
        usage_error("fuzz takes no positional arguments");
    }
    let seed = args.get_parse("seed", 0u64);
    let iters = args.get_parse("iters", 100u64);
    let matchers = MatcherKind::parse_list(args.get("matchers").unwrap_or("all"))
        .unwrap_or_else(|e| usage_error(e));
    let cfg = GenConfig {
        max_productions: args.get_parse("max-productions", 4usize).max(1),
        ..GenConfig::default()
    };
    let do_shrink = args.get("shrink").is_some();
    let out_dir = std::path::PathBuf::from(args.get("out").unwrap_or("target/fuzz"));
    let mut profile: Option<MetricsRegistry> = args.get("profile").map(|_| MetricsRegistry::new());

    let mut divergences = 0u64;
    for i in 0..iters {
        let case_seed = seed + i;
        let (case, divergence) = fuzz_one(case_seed, &cfg, &matchers, do_shrink);
        if let Some(merged) = profile.as_mut() {
            replay_profiled(&case, merged);
        }
        if let Some(d) = divergence {
            divergences += 1;
            eprintln!("seed {case_seed}: {d}");
            match write_repro(&out_dir, &format!("fuzz-{case_seed}"), &case) {
                Ok((ops, sched)) => {
                    eprintln!(
                        "  reproducer: {} + {}{}",
                        ops.display(),
                        sched.display(),
                        if do_shrink { " (shrunk)" } else { "" }
                    );
                }
                Err(e) => eprintln!("  could not write reproducer: {e}"),
            }
        }
    }
    if let (Some(merged), Some(dir)) = (profile.as_ref(), args.get("profile")) {
        write_profile(dir, "fuzz-replay", 2, merged);
    }
    let names: Vec<&str> = matchers.iter().map(|m| m.name()).collect();
    println!(
        "fuzz: {iters} cases (seeds {seed}..{}), matchers [{}]: {divergences} divergences",
        seed + iters,
        names.join(",")
    );
    if divergences > 0 {
        exit(1);
    }
}

fn cmd_trace(args: &Args) {
    check_flags(
        "trace",
        args,
        &["wm", "cycles", "table-size", "strategy", "out"],
    );
    let [program_path] = &args.positional[..] else {
        usage();
    };
    let program = parse_program(&read_file(program_path)).unwrap_or_else(|e| fail(e));
    let wmes = load_wmes(args.get("wm"));
    let cycles = args.get_parse("cycles", 10_000usize);
    let table_size = args.get_parse("table-size", 2048u64);
    let strategy = strategy_of(args);
    let network = ReteNetwork::compile(&program).unwrap_or_else(|e| fail(e));
    let matcher = ReteMatcher::new(
        network,
        EngineConfig {
            table_size,
            record_trace: true,
        },
    );
    let mut interp = Interpreter::with_matcher(program, strategy, matcher);
    for w in wmes {
        interp.add_wme(w);
    }
    let result = interp.run(cycles).unwrap_or_else(|e| fail(e));
    let trace = interp
        .matcher_mut()
        .take_trace()
        .expect("tracing was enabled");
    let stats = trace.stats();
    eprintln!(
        "{:?}: {} cycles, {} firings; activations: {}",
        result.outcome,
        result.cycles,
        result.fired.len(),
        stats
    );
    let text = trace.to_text();
    match args.get("out") {
        Some(path) => {
            std::fs::write(path, &text).unwrap_or_else(|e| fail(format!("write {path}: {e}")));
            eprintln!("trace written to {path}");
        }
        None => print!("{text}"),
    }
}

fn cmd_simulate(args: &Args) {
    check_flags(
        "simulate",
        args,
        &[
            "procs",
            "overhead",
            "partition",
            "seed",
            "jobs",
            "format",
            "trace-out",
            "stats",
        ],
    );
    let [trace_path] = &args.positional[..] else {
        usage();
    };
    let trace = Trace::from_text(&read_file(trace_path)).unwrap_or_else(|e| fail(e));
    let procs: Vec<usize> = args
        .get("procs")
        .unwrap_or("1,2,4,8,16,32")
        .split(',')
        .map(|s| {
            s.trim()
                .parse()
                .unwrap_or_else(|_| fail(format!("bad processor count {s:?}")))
        })
        .collect();
    let overhead = match args.get("overhead").unwrap_or("8") {
        "0" => OverheadSetting::table_5_1()[0],
        "8" => OverheadSetting::table_5_1()[1],
        "16" => OverheadSetting::table_5_1()[2],
        "32" => OverheadSetting::table_5_1()[3],
        other => fail(format!("unknown overhead {other:?} (0|8|16|32)")),
    };
    let seed = args.get_parse("seed", 1989u64);
    let partition = match args.get("partition").unwrap_or("rr") {
        "rr" => PartitionStrategy::RoundRobin,
        "random" => PartitionStrategy::Random(seed),
        "greedy" => PartitionStrategy::GreedyWholeTrace,
        other => fail(format!("unknown partition {other:?} (rr|random|greedy)")),
    };
    let format = match args.get("format") {
        None => OutputFormat::Text,
        Some(v) => OutputFormat::parse(v).unwrap_or_else(|e| fail(e)),
    };
    let jobs = args.get_parse(
        "jobs",
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
    );
    let base = baseline(&trace);
    let curve = speedup_curve_jobs(&trace, &procs, overhead, partition, jobs);
    let summary = SimulateSummary {
        trace: &trace,
        serial_total: base.total,
        points: &curve,
    };
    print!("{}", summary.render(format));

    // Telemetry is a separate, opt-in re-run of the largest requested
    // machine — the summary above is untouched by it.
    let trace_out = args.get("trace-out");
    let want_stats = args.get("stats").is_some();
    if trace_out.is_some() || want_stats {
        let procs_max = procs.iter().copied().max().unwrap_or(1);
        let config = MappingConfig::standard(procs_max, overhead);
        let bucket_partition = partition.build(&trace, procs_max);
        let mut recorder = TraceRecorder::new();
        name_machine_tracks(&mut recorder, &config);
        simulate_recorded(
            &mut SimScratch::new(),
            &trace,
            &config,
            &bucket_partition,
            &mut recorder,
        );
        if let Some(path) = trace_out {
            std::fs::write(path, chrome_trace(&recorder))
                .unwrap_or_else(|e| fail(format!("write {path}: {e}")));
            eprintln!("telemetry trace ({procs_max} match processors) written to {path}");
        }
        if want_stats {
            print!("{}", stats_block(&recorder));
        }
    }
}

/// The program a `mpps serve --script` run compiles: `--program` names a
/// `.ops` file or a builtin section; the default is the synthetic
/// ticket-triage ruleset the serving benchmarks use. A builtin's canned
/// initial working memory is *not* loaded — script sessions start empty
/// and `make` their own WMEs.
fn serve_program(args: &Args) -> Program {
    match args.get("program") {
        None => serve::program(),
        Some(p) if std::path::Path::new(p).exists() => {
            parse_program(&read_file(p)).unwrap_or_else(|e| fail(e))
        }
        Some(p) => builtin_workload(p)
            .map(|(program, _)| program)
            .unwrap_or_else(|| {
                fail(format!(
                    "cannot read {p}: no such file (and not a builtin section: \
                     rubik|tourney|weaver)"
                ))
            }),
    }
}

fn cmd_serve(args: &Args) {
    check_flags(
        "serve",
        args,
        &[
            "synthetic",
            "script",
            "program",
            "sessions",
            "rounds",
            "wmes",
            "workers",
            "queue",
            "shards",
            "sharding",
            "strategy",
            "table-size",
            "stats",
            "adapt",
            "resident-budget",
            "evict-dir",
            "migrate",
        ],
    );
    if !args.positional.is_empty() {
        usage_error("serve takes no positional arguments");
    }
    let script = args.get("script");
    let synthetic = args.get("synthetic").is_some();
    if script.is_some() == synthetic {
        usage_error("serve needs exactly one of --synthetic or --script FILE");
    }
    let defaults = ServerConfig::default();
    let workers = args.get_parse("workers", defaults.workers);
    if workers == 0 {
        usage_error("--workers must be at least 1");
    }
    let queue_capacity = args.get_parse("queue", defaults.queue_capacity);
    if queue_capacity == 0 {
        usage_error("--queue must be at least 1");
    }
    let shards = args.get_parse("shards", defaults.shards);
    if shards == 0 {
        usage_error("--shards must be at least 1");
    }
    let table_size = args.get_parse("table-size", defaults.engine.table_size);
    if table_size == 0 {
        usage_error("--table-size must be at least 1");
    }
    let sharding = match args.get("sharding") {
        None => defaults.sharding,
        Some(v) => Sharding::parse(v).unwrap_or_else(|| {
            usage_error(format!("unknown sharding {v:?} (rr|random[:SEED]|greedy)"))
        }),
    };
    let resident_budget = match args.get("resident-budget") {
        None => None,
        Some(v) => match v.parse::<usize>() {
            Ok(0) => usage_error("--resident-budget must be at least 1"),
            Ok(n) => Some(n),
            Err(_) => usage_error(format!("--resident-budget: not a number: {v:?}")),
        },
    };
    let evict_dir = args.get("evict-dir").map(std::path::PathBuf::from);
    if evict_dir.is_some() && resident_budget.is_none() {
        usage_error("--evict-dir needs --resident-budget (nothing is evicted without one)");
    }
    let migrate = args.get("migrate").is_some();
    if migrate && script.is_some() {
        usage_error("--migrate only applies to --synthetic (scripts are deterministic)");
    }
    let config = ServerConfig {
        workers,
        queue_capacity,
        shards,
        sharding,
        strategy: strategy_of(args),
        engine: EngineConfig {
            table_size,
            record_trace: false,
        },
        adapt: args.get("adapt").is_some(),
        resident_budget,
        evict_dir,
        ..defaults
    };

    if let Some(path) = script {
        let report =
            run_script(serve_program(args), &read_file(path), config).unwrap_or_else(|e| fail(e));
        for line in &report.log {
            println!("{line}");
        }
        return;
    }

    if args.get("program").is_some() {
        usage_error("--program only applies to --script (synthetic load has a fixed ruleset)");
    }
    let spec = SyntheticSpec {
        sessions: args.get_parse("sessions", 1000usize),
        rounds: args.get_parse("rounds", 3u64),
        wmes_per_round: args.get_parse("wmes", 4usize),
        migrate,
    };
    if spec.sessions == 0 {
        usage_error("--sessions must be at least 1");
    }
    let report = run_synthetic(config, &spec).unwrap_or_else(|e| fail(e));
    println!(
        "serve: {} sessions x {} rounds x {} wmes on {} workers ({sharding:?})",
        report.sessions, report.rounds, spec.wmes_per_round, workers
    );
    println!(
        "  {} replies ({} failures), {} overload retries, {:.3}s wall",
        report.replies,
        report.failures,
        report.overloads,
        report.elapsed.as_secs_f64()
    );
    println!(
        "  {} WME changes ({:.0}/s), {} cycles ({:.0}/s), {} firings",
        report.wme_changes,
        report.changes_per_sec,
        report.cycles,
        report.cycles_per_sec,
        report.fired
    );
    println!(
        "  cycle latency p50 {} ns, p95 {} ns; batch p95 {} ns",
        report.p50_cycle_ns, report.p95_cycle_ns, report.p95_batch_ns
    );
    // Only emitted when eviction or migration is on, so the default
    // output stays byte-stable for existing smoke tests.
    if report.resident_budget.is_some() || spec.migrate {
        let budget = report
            .resident_budget
            .map_or("unbounded".to_string(), |b| b.to_string());
        println!(
            "  resident budget {budget}/worker: {} evictions, {} fault-ins, {} migrations",
            report.evictions, report.faultins, report.migrations
        );
    }
    if args.get("stats").is_some() {
        for (i, (requests, high)) in report
            .worker_requests
            .iter()
            .zip(&report.worker_queue_high)
            .enumerate()
        {
            eprintln!("  worker {i}: {requests} requests, peak queue depth {high}");
        }
    }
}

fn main() {
    let mut raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.is_empty() {
        usage();
    }
    let cmd = raw.remove(0);
    let args = Args::parse(raw);
    match cmd.as_str() {
        "run" => cmd_run(&args),
        "trace" => cmd_trace(&args),
        "simulate" => cmd_simulate(&args),
        "fuzz" => cmd_fuzz(&args),
        "serve" => cmd_serve(&args),
        "help" | "--help" | "-h" => usage(),
        other => {
            eprintln!("unknown command {other:?}");
            usage();
        }
    }
}
