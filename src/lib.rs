#![warn(missing_docs)]

//! # mpps — Message-Passing Production Systems
//!
//! Umbrella crate for the `mpps` workspace: a from-scratch reproduction of
//! *"Production Systems on Message Passing Computers: Simulation Results and
//! Analysis"* (Tambe, Acharya & Gupta, ICPP 1989).
//!
//! The workspace is organized as layered crates, re-exported here:
//!
//! * [`ops`] — an OPS5-subset production-system language (working memory,
//!   productions, parser, conflict resolution, MRA interpreter).
//! * [`rete`] — the Rete match network with hashed token memories, network
//!   transforms (unsharing, dummy nodes, copy-and-constraint), and
//!   activation-trace capture.
//! * [`mpcsim`] — a discrete-event message-passing computer simulator.
//! * [`core`] — the paper's contribution: the distributed hash-table
//!   mapping of Rete onto an MPC, with a trace-driven simulated executor
//!   and a real multi-threaded message-passing executor.
//! * [`telemetry`] — zero-cost-when-disabled simulation telemetry:
//!   recorders, exact histograms, Chrome-trace and JSONL export.
//! * [`workloads`] — Rubik / Tourney / Weaver style rulesets and synthetic
//!   trace generators reproducing the paper's characteristic sections.
//! * [`analysis`] — the probabilistic active-bucket model, greedy bucket
//!   scheduling, and speedup/report utilities.
//! * [`difftest`] — the differential match-fuzzing harness behind
//!   `mpps fuzz`: random program/schedule generation, a four-matcher
//!   oracle with the naive matcher as ground truth, and delta-debug
//!   shrinking to minimal `.ops` + `.sched` reproducers.
//! * [`server`] — rule-engine-as-a-service behind `mpps serve`: one
//!   compiled program multiplexed across many independent working-memory
//!   sessions on a bounded-queue worker pool, with snapshot/restore.
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the harness that regenerates every table and figure of the paper.

pub use mpps_analysis as analysis;
pub use mpps_core as core;
pub use mpps_difftest as difftest;
pub use mpps_mpcsim as mpcsim;
pub use mpps_ops as ops;
pub use mpps_rete as rete;
pub use mpps_server as server;
pub use mpps_telemetry as telemetry;
pub use mpps_workloads as workloads;
