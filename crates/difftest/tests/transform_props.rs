//! Property tests: any sequence of network transforms — per-production
//! unsharing plus copy-and-constraint splits, in any combination — is
//! semantics-preserving. A transformed network must produce the same
//! per-cycle conflict sets and working memory as the untransformed one on
//! fuzz-generator programs, each driven through three independent
//! workloads, and must drain its token arena completely once every WME is
//! retracted (the arena-token invariant).

use mpps_difftest::{generate_case, FuzzCase, GenConfig, ScheduleOp};
use mpps_ops::interpreter::StepOutcome;
use mpps_ops::{sort_conflict_set, Interpreter, Matcher, Program, WmeId};
use mpps_rete::{CompileOptions, EngineConfig, ReteMatcher, ReteNetwork, SplitSpec, TransformPlan};
use proptest::prelude::*;

/// Mirror the oracle's cycle bounds so generated loops stay finite.
const MAX_STEPS_PER_ROUND: usize = 8;
const MAX_TOTAL_CYCLES: usize = 64;

/// Build a random transform plan for `program`, consuming `decisions` as a
/// replayable coin stream: each production is independently unshared,
/// split (on a randomly chosen CE/attribute candidate with random
/// boundaries), both, or left alone.
fn random_plan(program: &Program, decisions: &[u8]) -> TransformPlan {
    const BOUNDARY_MENU: &[&[i64]] = &[&[1], &[2], &[0], &[1, 2], &[0, 1, 2, 3]];
    let mut stream = decisions.iter().copied().cycle();
    let mut next = move || stream.next().expect("decision stream is non-empty");
    let mut plan = TransformPlan::new();
    for (pid, prod) in program.iter() {
        if next() & 1 == 1 {
            plan = plan.with_unshare(pid);
        }
        if next() & 1 == 0 {
            continue;
        }
        let boundaries = BOUNDARY_MENU[next() as usize % BOUNDARY_MENU.len()];
        let mut candidates = Vec::new();
        for (ci, ce) in prod.lhs.iter().enumerate() {
            for test in &ce.tests {
                let spec = SplitSpec::new(ci, test.attr.as_str(), boundaries.to_vec());
                if spec.validate(prod).is_ok() {
                    candidates.push(spec);
                }
            }
        }
        if !candidates.is_empty() {
            let pick = next() as usize % candidates.len();
            plan = plan.with_split(pid, candidates.swap_remove(pick));
        }
    }
    plan
}

fn matcher_for(program: &Program, plan: &TransformPlan) -> ReteMatcher {
    let network = ReteNetwork::compile_planned(program, CompileOptions::default(), plan)
        .expect("plan was validated candidate by candidate");
    ReteMatcher::new(network, EngineConfig::default())
}

/// Drive baseline and transformed matchers through `case`'s schedule in
/// lockstep, comparing conflict set and WM after every interpreter cycle.
fn assert_equivalent_on(program: &Program, plan: &TransformPlan, case: &FuzzCase) {
    let base = matcher_for(program, &TransformPlan::new());
    let xform = matcher_for(program, plan);
    // Dummy tokens seeded at compile time (leading-negated-CE chains) live
    // for the network's whole lifetime; the drain check below must not
    // count them. The floors differ: unsharing duplicates dummy chains.
    let base_floor = base.arena_live();
    let xform_floor = xform.arena_live();
    let mut base = Interpreter::with_matcher(program.clone(), case.strategy, base);
    let mut xform = Interpreter::with_matcher(program.clone(), case.strategy, xform);

    let mut total_cycles = 0usize;
    'rounds: for ops in &case.schedule.rounds {
        for op in ops {
            match op {
                ScheduleOp::Make(wme) => {
                    base.add_wme(wme.clone());
                    xform.add_wme(wme.clone());
                }
                ScheduleOp::RemoveNth(n) => {
                    let ids: Vec<WmeId> = base.working_memory().iter().map(|(id, _)| id).collect();
                    if ids.is_empty() {
                        continue;
                    }
                    let id = ids[n % ids.len()];
                    base.remove_wme(id).expect("id drawn from live WM");
                    prop_assert!(
                        xform.remove_wme(id).is_ok(),
                        "transformed WM is missing {id} that baseline holds"
                    );
                }
            }
        }
        for _ in 0..MAX_STEPS_PER_ROUND {
            if total_cycles >= MAX_TOTAL_CYCLES {
                break 'rounds;
            }
            total_cycles += 1;
            let a = base.step();
            let b = xform.step();
            match (&a, &b) {
                (Ok(x), Ok(y)) => {
                    let same = match (x, y) {
                        (StepOutcome::Fired(f), StepOutcome::Fired(g)) => f == g,
                        (StepOutcome::Quiescent, StepOutcome::Quiescent) => true,
                        _ => false,
                    };
                    prop_assert!(same, "step outcome diverged: base {x:?}, transformed {y:?}");
                }
                (Err(_), Err(_)) => {}
                _ => prop_assert!(false, "one matcher errored: base {a:?}, transformed {b:?}"),
            }
            let mut cs_a = base.matcher().conflict_set();
            let mut cs_b = xform.matcher().conflict_set();
            sort_conflict_set(&mut cs_a);
            sort_conflict_set(&mut cs_b);
            prop_assert_eq!(cs_a, cs_b, "conflict sets diverged");
            let wm_a: Vec<_> = base.working_memory().iter().collect();
            let wm_b: Vec<_> = xform.working_memory().iter().collect();
            prop_assert_eq!(wm_a, wm_b, "working memories diverged");
            let quiescent = matches!(a, Ok(StepOutcome::Quiescent));
            if quiescent || a.is_err() || base.is_halted() {
                if a.is_err() {
                    return;
                }
                break;
            }
        }
        if base.is_halted() {
            break;
        }
    }

    // Arena-token invariant: retracting every remaining WME must drain the
    // transformed network's token arena exactly like the baseline's —
    // copies and unshared chains hold more tokens while live, never after.
    // Retractions are pending until the next match phase, and fired
    // productions may `make` fresh WMEs, so drain in bounded rounds.
    for _ in 0..16 {
        let ids: Vec<WmeId> = base.working_memory().iter().map(|(id, _)| id).collect();
        if ids.is_empty() {
            break;
        }
        for id in ids {
            base.remove_wme(id).expect("retract from baseline");
            xform.remove_wme(id).expect("retract from transformed");
        }
        let a = base.step();
        let b = xform.step();
        if a.is_err() || b.is_err() {
            return;
        }
    }
    if !base.working_memory().is_empty() {
        // A make-looping program kept WM occupied; the drain invariant
        // does not apply.
        return;
    }
    prop_assert_eq!(base.matcher().arena_live(), base_floor);
    prop_assert_eq!(
        xform.matcher().arena_live(),
        xform_floor,
        "transformed network leaked arena tokens after full retraction"
    );
    prop_assert_eq!(xform.matcher().conflict_set().len(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random plan × generated program × 3 workloads: the transformed
    /// network is observably identical to the untransformed one.
    #[test]
    fn transforms_preserve_conflict_sets_and_wm(
        seed in 0u64..4096,
        wseed in 0u64..4096,
        decisions in prop::collection::vec(any::<u8>(), 1..32),
    ) {
        let cfg = GenConfig::default();
        let case = generate_case(seed, &cfg);
        // An invalid program would be a generator bug, not a transform bug.
        if let Ok(program) = case.program() {
            let plan = random_plan(&program, &decisions);
            plan.validate(&program).expect("random plan must be valid by construction");

            // Workload 1: the case's own schedule. Workloads 2 and 3: the
            // schedules of two other generated cases — the generator draws
            // from one shared class/attribute vocabulary, so foreign
            // schedules still exercise this program's alpha network.
            assert_equivalent_on(&program, &plan, &case);
            for extra in [wseed, wseed.wrapping_add(7919)] {
                let donor = generate_case(extra, &cfg);
                let borrowed = FuzzCase {
                    productions: case.productions.clone(),
                    strategy: case.strategy,
                    schedule: donor.schedule,
                };
                assert_equivalent_on(&program, &plan, &borrowed);
            }
        }
    }
}
