//! The differential oracle: run every matcher through the same interpreter
//! cycles in lockstep and compare observable state after each cycle.
//!
//! The naive matcher is always the ground truth — it is driven even when
//! the caller's matcher list omits it. After every cycle the oracle
//! compares, per matcher:
//!
//! * the **conflict set** (sorted canonically),
//! * the **step outcome** (which instantiation fired, or quiescence),
//! * the full **working memory** contents, and
//! * the halt flag.
//!
//! The first mismatch wins; the report names the diverging matcher, the
//! schedule round and interpreter cycle, and carries a human-readable
//! expected/actual diff for the CLI to print.

use crate::gen::{FuzzCase, ScheduleOp};
use crate::MatcherKind;
use mpps_ops::interpreter::StepOutcome;
use mpps_ops::{sort_conflict_set, Instantiation, Interpreter, Matcher, Wme, WmeId};
use std::fmt;

/// Fire at most this many cycles after each schedule round (generated
/// programs can loop; the bound keeps the oracle total).
const MAX_STEPS_PER_ROUND: usize = 8;
/// Hard cap on cycles across the whole case.
const MAX_TOTAL_CYCLES: usize = 64;

/// A detected disagreement between a matcher and the naive reference.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The matcher that disagreed with the reference.
    pub matcher: MatcherKind,
    /// 0-based schedule round in which the mismatch surfaced.
    pub round: usize,
    /// Interpreter cycle count at the mismatch.
    pub cycle: usize,
    /// What differed (conflict set, firing, WM, …), expected vs actual.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} diverged from naive at round {}, cycle {}: {}",
            self.matcher, self.round, self.cycle, self.detail
        )
    }
}

fn clip(s: String) -> String {
    const MAX: usize = 600;
    if s.len() <= MAX {
        s
    } else {
        let mut end = MAX;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

fn show_insts(set: &[Instantiation]) -> String {
    let items: Vec<String> = set.iter().map(|i| i.to_string()).collect();
    format!("[{}]", items.join(" "))
}

fn show_wm(wm: &[(WmeId, Wme)]) -> String {
    let items: Vec<String> = wm.iter().map(|(id, w)| format!("{id}:{w}")).collect();
    format!("{{{}}}", items.join(" "))
}

fn sorted_conflict_set(m: &dyn Matcher) -> Vec<Instantiation> {
    let mut cs = m.conflict_set();
    sort_conflict_set(&mut cs);
    cs
}

fn wm_snapshot(interp: &Interpreter<Box<dyn Matcher>>) -> Vec<(WmeId, Wme)> {
    interp
        .working_memory()
        .iter()
        .map(|(id, w)| (id, w.clone()))
        .collect()
}

struct Lane {
    kind: MatcherKind,
    interp: Interpreter<Box<dyn Matcher>>,
}

/// Drive `case` through the reference plus every requested matcher.
/// Returns the first divergence, or `None` when they all agree to the end
/// of the schedule (or the cycle cap).
pub fn run_case(case: &FuzzCase, matchers: &[MatcherKind]) -> Option<Divergence> {
    let program = match case.program() {
        Ok(p) => p,
        // An invalid program is a generator bug, not a matcher divergence.
        Err(_) => return None,
    };

    let mut reference = Interpreter::with_matcher(
        program.clone(),
        case.strategy,
        MatcherKind::Naive
            .build(&program)
            .expect("naive matcher always builds"),
    );
    let mut lanes: Vec<Lane> = Vec::new();
    for &kind in matchers {
        if kind == MatcherKind::Naive {
            continue;
        }
        match kind.build(&program) {
            Ok(m) => lanes.push(Lane {
                kind,
                interp: Interpreter::with_matcher(program.clone(), case.strategy, m),
            }),
            Err(e) => {
                return Some(Divergence {
                    matcher: kind,
                    round: 0,
                    cycle: 0,
                    detail: clip(format!("failed to build for a valid program: {e}")),
                })
            }
        }
    }

    let mut total_cycles = 0usize;
    for (round, ops) in case.schedule.rounds.iter().enumerate() {
        // External changes, resolved against the reference WM so RemoveNth
        // is well-defined, then mirrored into every lane.
        for op in ops {
            match op {
                ScheduleOp::Make(wme) => {
                    reference.add_wme(wme.clone());
                    for lane in &mut lanes {
                        lane.interp.add_wme(wme.clone());
                    }
                }
                ScheduleOp::RemoveNth(n) => {
                    let ids: Vec<WmeId> = reference
                        .working_memory()
                        .iter()
                        .map(|(id, _)| id)
                        .collect();
                    if ids.is_empty() {
                        continue;
                    }
                    let id = ids[n % ids.len()];
                    reference.remove_wme(id).expect("id drawn from live WM");
                    for lane in &mut lanes {
                        if let Err(e) = lane.interp.remove_wme(id) {
                            return Some(Divergence {
                                matcher: lane.kind,
                                round,
                                cycle: total_cycles,
                                detail: clip(format!("WM missing {id} that naive holds: {e}")),
                            });
                        }
                    }
                }
            }
        }

        // Fire until quiescence (bounded), comparing after every cycle.
        for _ in 0..MAX_STEPS_PER_ROUND {
            if total_cycles >= MAX_TOTAL_CYCLES {
                return None;
            }
            total_cycles += 1;
            let ref_step = reference.step();
            for lane in &mut lanes {
                let lane_step = lane.interp.step();
                if let Some(detail) = compare_cycle(&reference, &ref_step, lane, &lane_step) {
                    return Some(Divergence {
                        matcher: lane.kind,
                        round,
                        cycle: total_cycles,
                        detail,
                    });
                }
            }
            let quiescent = matches!(ref_step, Ok(StepOutcome::Quiescent));
            if quiescent || ref_step.is_err() || reference.is_halted() {
                if ref_step.is_err() {
                    // Reference hit a runtime RHS error (every lane hit the
                    // same one — checked above); the case ends here.
                    return None;
                }
                break;
            }
        }
        if reference.is_halted() {
            break;
        }
    }
    None
}

/// Compare one lane against the reference after a cycle; `Some(detail)` on
/// the first mismatch.
fn compare_cycle(
    reference: &Interpreter<Box<dyn Matcher>>,
    ref_step: &Result<StepOutcome, mpps_ops::OpsError>,
    lane: &Lane,
    lane_step: &Result<StepOutcome, mpps_ops::OpsError>,
) -> Option<String> {
    match (ref_step, lane_step) {
        (Ok(a), Ok(b)) => {
            let same = match (a, b) {
                (StepOutcome::Fired(x), StepOutcome::Fired(y)) => x == y,
                (StepOutcome::Quiescent, StepOutcome::Quiescent) => true,
                _ => false,
            };
            if !same {
                return Some(clip(format!("step produced {b:?}, naive produced {a:?}")));
            }
        }
        (Err(a), Err(_b)) => {
            // Both failed the same cycle (e.g. modify of a stale WME);
            // treat as agreement — the interpreter surfaces the error to
            // its caller identically.
            let _ = a;
        }
        (Ok(a), Err(b)) => {
            return Some(clip(format!("step error {b}, naive stepped {a:?}")));
        }
        (Err(a), Ok(b)) => {
            return Some(clip(format!("stepped {b:?}, naive errored {a}")));
        }
    }

    let ref_cs = sorted_conflict_set(reference.matcher());
    let lane_cs = sorted_conflict_set(lane.interp.matcher());
    if ref_cs != lane_cs {
        return Some(clip(format!(
            "conflict set {} but naive has {}",
            show_insts(&lane_cs),
            show_insts(&ref_cs)
        )));
    }

    let ref_wm = wm_snapshot(reference);
    let lane_wm = wm_snapshot(&lane.interp);
    if ref_wm != lane_wm {
        return Some(clip(format!(
            "WM {} but naive has {}",
            show_wm(&lane_wm),
            show_wm(&ref_wm)
        )));
    }

    if reference.is_halted() != lane.interp.is_halted() {
        return Some("halt flag differs from naive".to_string());
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{GenConfig, Schedule};
    use mpps_ops::{parse_program, parse_wme, Strategy};

    fn case_from(src: &str, strategy: Strategy, rounds: Vec<Vec<ScheduleOp>>) -> FuzzCase {
        let program = parse_program(src).unwrap();
        FuzzCase {
            productions: program.iter().map(|(_, p)| p.clone()).collect(),
            strategy,
            schedule: Schedule { rounds },
        }
    }

    fn mk(s: &str) -> ScheduleOp {
        ScheduleOp::Make(parse_wme(s).unwrap())
    }

    #[test]
    fn agreeing_case_reports_none() {
        let case = case_from(
            "(p t (a ^p <v>) (b ^q <v>) --> (remove 1))",
            Strategy::Lex,
            vec![
                vec![mk("(a ^p 1)"), mk("(b ^q 1)")],
                vec![mk("(a ^p 2)")],
                vec![ScheduleOp::RemoveNth(0)],
            ],
        );
        assert!(run_case(&case, &MatcherKind::ALL).is_none());
    }

    #[test]
    fn treat_negation_visibility_case_agrees_after_fix() {
        // The exact shape the fuzzer minimized the historical TREAT
        // positional-negation bug to; pinned here and in tests/corpus/.
        let case = case_from(
            "(p diverge (a) -(b ^q <v>) (c ^r <v>) --> (remove 1))",
            Strategy::Lex,
            vec![vec![mk("(c ^r 1)"), mk("(a)"), mk("(b ^q 2)")]],
        );
        assert!(run_case(&case, &MatcherKind::ALL).is_none());
    }

    #[test]
    fn leading_negation_case_agrees_across_all_matchers() {
        let case = case_from(
            "(p guard -(inhibit ^on <w>) (job ^id <w>) --> (remove 1))",
            Strategy::Mea,
            vec![
                vec![mk("(job ^id 1)")],
                vec![mk("(inhibit ^on 2)")],
                vec![ScheduleOp::RemoveNth(1)],
            ],
        );
        assert!(run_case(&case, &MatcherKind::ALL).is_none());
    }

    #[test]
    fn oracle_bounds_runaway_programs() {
        // Fires forever (make with no removal); the oracle must terminate.
        let case = case_from(
            "(p loop (a) --> (make a))",
            Strategy::Lex,
            vec![vec![mk("(a)")]; 20],
        );
        assert!(run_case(&case, &MatcherKind::ALL).is_none());
    }

    #[test]
    fn broken_matcher_is_caught() {
        // A matcher that silently drops every instantiation must be flagged
        // on the very first cycle with WMEs present.
        struct Mute;
        impl Matcher for Mute {
            fn process(&mut self, _changes: &[mpps_ops::WmeChange]) {}
            fn conflict_set(&self) -> Vec<Instantiation> {
                Vec::new()
            }
        }
        let program = parse_program("(p t (a) --> (remove 1))").unwrap();
        let mut reference = Interpreter::with_matcher(
            program.clone(),
            Strategy::Lex,
            MatcherKind::Naive.build(&program).unwrap(),
        );
        let boxed: Box<dyn Matcher> = Box::new(Mute);
        let lane_interp = Interpreter::with_matcher(program, Strategy::Lex, boxed);
        let mut lane = Lane {
            kind: MatcherKind::Rete,
            interp: lane_interp,
        };
        reference.add_wme(parse_wme("(a)").unwrap());
        lane.interp.add_wme(parse_wme("(a)").unwrap());
        let r = reference.step();
        let l = lane.interp.step();
        let detail = compare_cycle(&reference, &r, &lane, &l).expect("must diverge");
        assert!(detail.contains("naive"), "{detail}");
    }

    #[test]
    fn random_cases_currently_all_agree() {
        // A miniature in-process smoke run; the heavy version is the
        // `MPPS_FUZZ_ITERS`-gated integration test and `mpps fuzz`.
        let cfg = GenConfig::default();
        for seed in 0..25 {
            let case = crate::generate_case(seed, &cfg);
            if let Some(d) = run_case(&case, &MatcherKind::EXTENDED) {
                panic!("seed {seed} diverged: {d}");
            }
        }
    }
}
