//! Seeded random generation of fuzz cases: an OPS5 program plus an
//! external working-memory change schedule.
//!
//! The vocabulary is deliberately tiny — four classes, three attributes,
//! integer values `0..=2` and two symbols — so that independently generated
//! condition elements collide on the same WMEs and joins actually join.
//! Productions share first CEs with earlier productions some of the time to
//! exercise alpha/beta network sharing, and negated CEs appear anywhere in
//! the LHS (including before the first positive CE).
//!
//! Generation is validity-by-construction where cheap (RHS only references
//! variables bound by positive CEs, `remove`/`modify` indices stay in
//! range) and validity-by-retry otherwise: the candidate is re-rolled from
//! the same RNG stream until [`mpps_ops::Production::validate`] accepts the
//! whole program, so `generate_case(seed, cfg)` is still a pure function of
//! its arguments.

use mpps_ops::{
    intern, Action, AttrTest, ConditionElement, OpsError, Predicate, Production, Program, RhsValue,
    Strategy, TestKind, Value, Wme,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLASSES: [&str; 4] = ["a", "b", "c", "d"];
const ATTRS: [&str; 3] = ["p", "q", "r"];
const VARS: [&str; 3] = ["v0", "v1", "v2"];
const SYMS: [&str; 2] = ["x", "y"];

/// Tunables for case generation.
#[derive(Clone, Debug)]
pub struct GenConfig {
    /// Upper bound on productions per program (≥ 1).
    pub max_productions: usize,
    /// Upper bound on schedule rounds (≥ 1).
    pub max_rounds: usize,
    /// Upper bound on external WM ops per round.
    pub max_ops_per_round: usize,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_productions: 4,
            max_rounds: 6,
            max_ops_per_round: 4,
        }
    }
}

/// One external working-memory operation.
#[derive(Clone, PartialEq, Debug)]
pub enum ScheduleOp {
    /// Add this WME.
    Make(Wme),
    /// Remove the `n % live`-th WME currently in the reference interpreter's
    /// working memory (ascending time-tag order); a no-op when WM is empty.
    RemoveNth(usize),
}

/// External WM changes grouped into rounds; after each round's ops the
/// oracle lets the interpreters fire until quiescence (bounded).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Schedule {
    /// The rounds, in order.
    pub rounds: Vec<Vec<ScheduleOp>>,
}

/// A complete fuzz case: program + strategy + schedule.
#[derive(Clone, Debug)]
pub struct FuzzCase {
    /// The productions (validated as a set by [`FuzzCase::program`]).
    pub productions: Vec<Production>,
    /// Conflict-resolution strategy all interpreters run under.
    pub strategy: Strategy,
    /// The external change schedule.
    pub schedule: Schedule,
}

impl FuzzCase {
    /// Build (and thereby validate) the program.
    pub fn program(&self) -> Result<Program, OpsError> {
        Program::from_productions(self.productions.clone())
    }
}

fn value(rng: &mut StdRng) -> Value {
    if rng.gen_bool(0.6) {
        Value::Int(rng.gen_range(0i64..=2))
    } else {
        Value::sym(SYMS[rng.gen_range(0..SYMS.len())])
    }
}

fn wme(rng: &mut StdRng) -> Wme {
    let class = CLASSES[rng.gen_range(0..CLASSES.len())];
    let n_attrs = rng.gen_range(0..=2);
    let mut pairs = Vec::new();
    for _ in 0..n_attrs {
        pairs.push((intern(ATTRS[rng.gen_range(0..ATTRS.len())]), value(rng)));
    }
    Wme::from_pairs(intern(class), pairs)
}

/// One condition element. `bound` is the set of variables already bound by
/// earlier positive CEs (used to bias toward joins and to keep
/// `VariablePred` tests legal). `negated` biases variable choice toward
/// *unbound* names: a variable in a negated CE that only a later positive
/// CE binds is existential inside the negation, the exact scoping rule the
/// matchers have historically disagreed on — the fuzzer must hit it often.
fn condition(rng: &mut StdRng, bound: &[&'static str], negated: bool) -> ConditionElement {
    let class = CLASSES[rng.gen_range(0..CLASSES.len())];
    // Negated CEs always carry at least one test, weighted toward variable
    // tests: a bare `-(class)` only exercises presence, while `-(class ^a
    // <v>)` exercises the binding-scope rules that matchers get wrong.
    let n_tests = if negated {
        rng.gen_range(1..=2)
    } else {
        rng.gen_range(0..=2)
    };
    let var_lo = if negated { 3 } else { 5 };
    let mut tests = Vec::new();
    for _ in 0..n_tests {
        let attr = intern(ATTRS[rng.gen_range(0..ATTRS.len())]);
        let roll = rng.gen_range(0..10);
        let kind = match roll {
            // Variable test: positive CEs prefer an already-bound variable
            // (a join test); negated CEs prefer a fresh name (an
            // existential, possibly forward-referencing a later binder).
            _ if roll >= var_lo && roll <= 8 => {
                let join_bias = if negated { 0.3 } else { 0.7 };
                let v = if !bound.is_empty() && rng.gen_bool(join_bias) {
                    bound[rng.gen_range(0..bound.len())]
                } else {
                    VARS[rng.gen_range(0..VARS.len())]
                };
                TestKind::Variable(intern(v))
            }
            // Constant equality — the alpha-network workhorse.
            0..=3 => TestKind::Constant(Predicate::Eq, value(rng)),
            // Constant inequality.
            4 => TestKind::Constant(Predicate::Ne, value(rng)),
            // Predicate against a bound variable (falls back to a constant
            // test when nothing is bound yet).
            _ => {
                if bound.is_empty() {
                    TestKind::Constant(Predicate::Lt, Value::Int(rng.gen_range(0i64..=2)))
                } else {
                    let v = bound[rng.gen_range(0..bound.len())];
                    let pred = [Predicate::Ne, Predicate::Lt, Predicate::Gt][rng.gen_range(0..3)];
                    TestKind::VariablePred(pred, intern(v))
                }
            }
        };
        tests.push(AttrTest { attr, kind });
    }
    ConditionElement::positive(class, tests)
}

/// Variables bound (via equality tests) by the positive CEs of `lhs`.
fn bound_vars(lhs: &[ConditionElement]) -> Vec<&'static str> {
    let mut out = Vec::new();
    for ce in lhs.iter().filter(|ce| !ce.negated) {
        for t in &ce.tests {
            if let TestKind::Variable(v) = t.kind {
                if let Some(name) = VARS.iter().find(|&&n| intern(n) == v) {
                    if !out.contains(name) {
                        out.push(name);
                    }
                }
            }
        }
    }
    out
}

fn rhs_value(rng: &mut StdRng, bound: &[&'static str]) -> RhsValue {
    if !bound.is_empty() && rng.gen_bool(0.4) {
        RhsValue::Var(intern(bound[rng.gen_range(0..bound.len())]))
    } else {
        RhsValue::Const(value(rng))
    }
}

fn production(rng: &mut StdRng, index: usize, earlier: &[Production]) -> Production {
    let n_ces = rng.gen_range(1..=3);
    let mut lhs: Vec<ConditionElement> = Vec::with_capacity(n_ces);
    for i in 0..n_ces {
        // Shared join prefixes: sometimes open with the first CE of an
        // earlier production so alpha/beta nodes get shared.
        if i == 0 && !earlier.is_empty() && rng.gen_bool(0.35) {
            let donor = &earlier[rng.gen_range(0..earlier.len())];
            lhs.push(donor.lhs[0].clone());
            continue;
        }
        let bound = bound_vars(&lhs);
        // Negate with modest probability; validation requires at least one
        // positive CE, which the retry loop in `generate_case` enforces for
        // the rare all-negated roll.
        let negated = rng.gen_bool(0.25);
        let mut ce = condition(rng, &bound, negated);
        ce.negated = negated;
        lhs.push(ce);
    }
    let positive_count = lhs.iter().filter(|ce| !ce.negated).count();
    let bound = bound_vars(&lhs);

    let n_actions = rng.gen_range(1..=2);
    let mut rhs = Vec::with_capacity(n_actions);
    for _ in 0..n_actions {
        let action = match rng.gen_range(0..6) {
            // Removals dominate: they drain WM, which keeps runs finite and
            // exercises every matcher's retraction path.
            0 | 1 if positive_count > 0 => Action::Remove(rng.gen_range(1..=positive_count)),
            2 | 3 => {
                let n_attrs = rng.gen_range(0..=2);
                let attrs = (0..n_attrs)
                    .map(|_| {
                        (
                            intern(ATTRS[rng.gen_range(0..ATTRS.len())]),
                            rhs_value(rng, &bound),
                        )
                    })
                    .collect();
                Action::Make {
                    class: intern(CLASSES[rng.gen_range(0..CLASSES.len())]),
                    attrs,
                }
            }
            _ if positive_count > 0 => Action::Modify {
                ce: rng.gen_range(1..=positive_count),
                attrs: vec![(
                    intern(ATTRS[rng.gen_range(0..ATTRS.len())]),
                    rhs_value(rng, &bound),
                )],
            },
            _ => Action::Make {
                class: intern(CLASSES[rng.gen_range(0..CLASSES.len())]),
                attrs: Vec::new(),
            },
        };
        rhs.push(action);
    }

    Production {
        name: intern(&format!("gen-p{index}")),
        lhs,
        rhs,
    }
}

/// A WME aimed at `ce`: same class, constant-equality tests satisfied,
/// variable-tested attributes filled with random (joinable) values. Purely
/// random WMEs rarely hit a 2-test CE; aimed ones make joins and negations
/// actually fire.
fn wme_for_ce(rng: &mut StdRng, ce: &ConditionElement) -> Wme {
    let mut w = Wme::from_pairs(ce.class, []);
    for t in &ce.tests {
        match &t.kind {
            TestKind::Constant(Predicate::Eq, v) => w.set(t.attr, *v),
            _ => w.set(t.attr, value(rng)),
        }
    }
    // Occasionally an extra attribute no test asked for.
    if rng.gen_bool(0.2) {
        w.set(intern(ATTRS[rng.gen_range(0..ATTRS.len())]), value(rng));
    }
    w
}

fn schedule(rng: &mut StdRng, cfg: &GenConfig, productions: &[Production]) -> Schedule {
    let ces: Vec<&ConditionElement> = productions.iter().flat_map(|p| p.lhs.iter()).collect();
    let n_rounds = rng.gen_range(1..=cfg.max_rounds.max(1));
    let mut rounds = Vec::with_capacity(n_rounds);
    for _ in 0..n_rounds {
        let n_ops = rng.gen_range(0..=cfg.max_ops_per_round);
        let ops = (0..n_ops)
            .map(|_| match rng.gen_range(0..10) {
                // Aimed at a production CE (including negated ones — that
                // is how blocking WMEs arise).
                0..=4 if !ces.is_empty() => {
                    let target = ces[rng.gen_range(0..ces.len())];
                    ScheduleOp::Make(wme_for_ce(rng, target))
                }
                0..=6 => ScheduleOp::Make(wme(rng)),
                _ => ScheduleOp::RemoveNth(rng.gen_range(0..8)),
            })
            .collect();
        rounds.push(ops);
    }
    Schedule { rounds }
}

/// Generate the fuzz case for `seed`. Deterministic: the same seed and
/// config always produce the same case.
pub fn generate_case(seed: u64, cfg: &GenConfig) -> FuzzCase {
    let mut rng = StdRng::seed_from_u64(seed);
    loop {
        let n_prods = rng.gen_range(1..=cfg.max_productions.max(1));
        let mut productions: Vec<Production> = Vec::with_capacity(n_prods);
        for i in 0..n_prods {
            productions.push(production(&mut rng, i, &productions));
        }
        let strategy = if rng.gen_bool(0.5) {
            Strategy::Lex
        } else {
            Strategy::Mea
        };
        let schedule = schedule(&mut rng, cfg, &productions);
        let case = FuzzCase {
            productions,
            strategy,
            schedule,
        };
        // Rare invalid rolls (e.g. an all-negated LHS) re-roll from the
        // same stream, keeping generation a pure function of the seed.
        if case.program().is_ok() {
            return case;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let cfg = GenConfig::default();
        let a = generate_case(42, &cfg);
        let b = generate_case(42, &cfg);
        assert_eq!(a.productions, b.productions);
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.strategy, b.strategy);
    }

    #[test]
    fn generated_programs_validate() {
        let cfg = GenConfig::default();
        for seed in 0..200 {
            let case = generate_case(seed, &cfg);
            case.program()
                .unwrap_or_else(|e| panic!("seed {seed} generated invalid program: {e}"));
            assert!(!case.schedule.rounds.is_empty());
        }
    }

    #[test]
    fn generation_covers_the_interesting_features() {
        let cfg = GenConfig::default();
        let (mut negated, mut mea, mut multi_ce, mut removes) = (false, false, false, false);
        for seed in 0..300 {
            let case = generate_case(seed, &cfg);
            mea |= case.strategy == Strategy::Mea;
            for p in &case.productions {
                negated |= p.lhs.iter().any(|ce| ce.negated);
                multi_ce |= p.lhs.len() > 1;
                removes |= p.rhs.iter().any(|a| matches!(a, Action::Remove(_)));
            }
        }
        assert!(negated && mea && multi_ce && removes);
    }

    #[test]
    fn generated_cases_actually_fire() {
        // Vacuity guard: a generator drift that stops schedules from ever
        // matching productions would leave the oracle comparing empty
        // conflict sets forever. Demand a healthy firing rate.
        use crate::gen::ScheduleOp;
        use mpps_ops::interpreter::StepOutcome;
        use mpps_ops::{Interpreter, WmeId};
        let cfg = GenConfig::default();
        let mut fired_cases = 0;
        for seed in 0..100u64 {
            let case = generate_case(seed, &cfg);
            let mut interp = Interpreter::new(case.program().unwrap(), case.strategy);
            let mut fired = false;
            'case: for round in &case.schedule.rounds {
                for op in round {
                    match op {
                        ScheduleOp::Make(w) => {
                            interp.add_wme(w.clone());
                        }
                        ScheduleOp::RemoveNth(n) => {
                            let ids: Vec<WmeId> =
                                interp.working_memory().iter().map(|(id, _)| id).collect();
                            if let Some(&id) = ids.get(n % ids.len().max(1)) {
                                interp.remove_wme(id).unwrap();
                            }
                        }
                    }
                }
                for _ in 0..8 {
                    match interp.step() {
                        Ok(StepOutcome::Fired(_)) => fired = true,
                        _ => break,
                    }
                    if interp.is_halted() {
                        break 'case;
                    }
                }
            }
            fired_cases += usize::from(fired);
        }
        assert!(
            fired_cases >= 25,
            "only {fired_cases}/100 generated cases fired a production"
        );
    }

    #[test]
    fn generated_program_text_roundtrips() {
        // The Display form of every generated production must parse back —
        // that is what makes the emitted reproducers runnable.
        let cfg = GenConfig::default();
        for seed in 0..50 {
            let case = generate_case(seed, &cfg);
            let text = case
                .productions
                .iter()
                .map(|p| p.to_string())
                .collect::<Vec<_>>()
                .join("\n");
            let reparsed = mpps_ops::parse_program(&text)
                .unwrap_or_else(|e| panic!("seed {seed}: display did not reparse: {e}\n{text}"));
            assert_eq!(reparsed.len(), case.productions.len());
        }
    }
}
