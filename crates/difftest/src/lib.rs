#![warn(missing_docs)]

//! # mpps-difftest — differential match-fuzzing harness
//!
//! The workspace carries four matcher implementations that must agree on
//! every program and every working-memory history: [`NaiveMatcher`] (the
//! brute-force semantic reference), `ReteMatcher`, `TreatMatcher`, and the
//! message-passing `ThreadedMatcher`. Hand-written equivalence tests cover
//! the shapes we thought of; this crate covers the ones we didn't.
//!
//! The harness has three parts:
//!
//! * [`gen`] — a seeded generator of random OPS5 programs (multi-CE
//!   productions over a small class/attribute vocabulary, shared join
//!   prefixes, negated CEs, LEX and MEA, `make`/`remove`/`modify` RHS
//!   actions) and random external WM-change schedules;
//! * [`oracle`] — a lockstep driver that runs one [`Interpreter`] per
//!   matcher through the same cycles and compares conflict sets, fired
//!   instantiations, and working memory after every cycle, with the naive
//!   matcher as ground truth;
//! * [`shrink`] — a delta-debugging minimizer that, given a diverging
//!   case, drops productions, schedule rounds/ops, condition elements and
//!   attribute tests while the divergence persists, then emits the result
//!   as a runnable `.ops` + `.sched` reproducer pair ([`repro`]).
//!
//! The `mpps fuzz` CLI subcommand and the `MPPS_FUZZ_ITERS`-gated CI smoke
//! test are thin wrappers over [`fuzz_one`].
//!
//! [`NaiveMatcher`]: mpps_ops::NaiveMatcher
//! [`Interpreter`]: mpps_ops::Interpreter

pub mod gen;
pub mod oracle;
pub mod repro;
pub mod shrink;

use mpps_ops::{Matcher, NaiveMatcher, OpsError, Program, TreatMatcher};
use mpps_rete::{ReteMatcher, ReteNetwork};
use std::fmt;
use std::str::FromStr;

pub use gen::{generate_case, FuzzCase, GenConfig, Schedule, ScheduleOp};
pub use oracle::{run_case, Divergence};
pub use repro::{load_repro, render_ops, render_sched, write_repro};
pub use shrink::shrink_case;

/// One of the four matcher implementations under test.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MatcherKind {
    /// Brute-force recomputation — the semantic reference.
    Naive,
    /// Sequential hashed-memory Rete.
    Rete,
    /// TREAT (alpha memories + conflict set, no beta state).
    Treat,
    /// Message-passing Rete over real threads.
    Threaded,
}

impl MatcherKind {
    /// Every matcher, reference first.
    pub const ALL: [MatcherKind; 4] = [
        MatcherKind::Naive,
        MatcherKind::Rete,
        MatcherKind::Treat,
        MatcherKind::Threaded,
    ];

    /// CLI/display name.
    pub fn name(self) -> &'static str {
        match self {
            MatcherKind::Naive => "naive",
            MatcherKind::Rete => "rete",
            MatcherKind::Treat => "treat",
            MatcherKind::Threaded => "threaded",
        }
    }

    /// Build a boxed matcher for `program`. The threaded matcher is kept
    /// deliberately small (2 workers, 64 buckets) — the fuzzer's programs
    /// are tiny and the point is agreement, not throughput.
    pub fn build(self, program: &Program) -> Result<Box<dyn Matcher>, OpsError> {
        Ok(match self {
            MatcherKind::Naive => Box::new(NaiveMatcher::new(program.clone())),
            MatcherKind::Rete => Box::new(ReteMatcher::from_program(program)?),
            MatcherKind::Treat => Box::new(TreatMatcher::new(program)),
            MatcherKind::Threaded => {
                let network = ReteNetwork::compile(program)?;
                Box::new(mpps_core::ThreadedMatcher::new(network, 2, 64))
            }
        })
    }

    /// Parse a comma-separated matcher list (e.g. `"rete,treat"`); the
    /// literal `"all"` selects every matcher.
    pub fn parse_list(s: &str) -> Result<Vec<MatcherKind>, String> {
        if s == "all" {
            return Ok(Self::ALL.to_vec());
        }
        s.split(',')
            .map(|part| part.trim().parse())
            .collect::<Result<Vec<_>, _>>()
    }
}

impl fmt::Display for MatcherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for MatcherKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(MatcherKind::Naive),
            "rete" => Ok(MatcherKind::Rete),
            "treat" => Ok(MatcherKind::Treat),
            "threaded" => Ok(MatcherKind::Threaded),
            other => Err(format!(
                "unknown matcher {other:?} (naive|rete|treat|threaded|all)"
            )),
        }
    }
}

/// Generate case `seed`, oracle it, and — when it diverges and `do_shrink`
/// is set — minimize before returning. The returned pair is the (possibly
/// shrunk) case plus the divergence found on it, or `None` if all matchers
/// agreed.
pub fn fuzz_one(
    seed: u64,
    cfg: &GenConfig,
    matchers: &[MatcherKind],
    do_shrink: bool,
) -> (FuzzCase, Option<Divergence>) {
    let case = generate_case(seed, cfg);
    match run_case(&case, matchers) {
        None => (case, None),
        Some(div) => {
            if do_shrink {
                let small = shrink_case(&case, matchers, 1000);
                let small_div = run_case(&small, matchers).unwrap_or(div);
                (small, Some(small_div))
            } else {
                (case, Some(div))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_str() {
        for k in MatcherKind::ALL {
            assert_eq!(k.name().parse::<MatcherKind>().unwrap(), k);
        }
    }

    #[test]
    fn parse_list_all_and_csv() {
        assert_eq!(MatcherKind::parse_list("all").unwrap().len(), 4);
        assert_eq!(
            MatcherKind::parse_list("rete, treat").unwrap(),
            vec![MatcherKind::Rete, MatcherKind::Treat]
        );
        assert!(MatcherKind::parse_list("bogus").is_err());
    }

    #[test]
    fn build_produces_working_matchers() {
        let prog = mpps_ops::parse_program("(p t (a ^p <v>) --> (remove 1))").unwrap();
        for k in MatcherKind::ALL {
            let mut m = k.build(&prog).unwrap();
            m.process(&[mpps_ops::WmeChange::add(
                mpps_ops::WmeId(1),
                mpps_ops::Wme::new("a", &[("p", 1.into())]),
            )]);
            assert_eq!(m.conflict_set().len(), 1, "{k}");
        }
    }
}
