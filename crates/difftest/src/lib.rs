#![warn(missing_docs)]

//! # mpps-difftest — differential match-fuzzing harness
//!
//! The workspace carries four matcher implementations that must agree on
//! every program and every working-memory history: [`NaiveMatcher`] (the
//! brute-force semantic reference), `ReteMatcher`, `TreatMatcher`, and the
//! message-passing `ThreadedMatcher` — plus three derived configurations
//! (transform-rewritten networks, and an adaptive threaded matcher that
//! migrates bucket ownership after every change batch). Hand-written
//! equivalence tests cover the shapes we thought of; this crate covers the
//! ones we didn't.
//!
//! The harness has three parts:
//!
//! * [`gen`] — a seeded generator of random OPS5 programs (multi-CE
//!   productions over a small class/attribute vocabulary, shared join
//!   prefixes, negated CEs, LEX and MEA, `make`/`remove`/`modify` RHS
//!   actions) and random external WM-change schedules;
//! * [`oracle`] — a lockstep driver that runs one [`Interpreter`] per
//!   matcher through the same cycles and compares conflict sets, fired
//!   instantiations, and working memory after every cycle, with the naive
//!   matcher as ground truth;
//! * [`shrink`] — a delta-debugging minimizer that, given a diverging
//!   case, drops productions, schedule rounds/ops, condition elements and
//!   attribute tests while the divergence persists, then emits the result
//!   as a runnable `.ops` + `.sched` reproducer pair ([`repro`]).
//!
//! The `mpps fuzz` CLI subcommand and the `MPPS_FUZZ_ITERS`-gated CI smoke
//! test are thin wrappers over [`fuzz_one`].
//!
//! [`NaiveMatcher`]: mpps_ops::NaiveMatcher
//! [`Interpreter`]: mpps_ops::Interpreter

pub mod gen;
pub mod oracle;
pub mod repro;
pub mod shrink;

use mpps_core::{AdaptOptions, Partition, ThreadedMatcher};
use mpps_ops::{
    Instantiation, MatchError, Matcher, NaiveMatcher, OpsError, Program, TreatMatcher, WmeChange,
};
use mpps_rete::{CompileOptions, EngineConfig, ReteMatcher, ReteNetwork, SplitSpec, TransformPlan};
use std::fmt;
use std::str::FromStr;

pub use gen::{generate_case, FuzzCase, GenConfig, Schedule, ScheduleOp};
pub use oracle::{run_case, Divergence};
pub use repro::{load_repro, render_ops, render_sched, write_repro};
pub use shrink::shrink_case;

/// One of the matcher implementations (or configurations) under test.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MatcherKind {
    /// Brute-force recomputation — the semantic reference.
    Naive,
    /// Sequential hashed-memory Rete.
    Rete,
    /// TREAT (alpha memories + conflict set, no beta state).
    Treat,
    /// Message-passing Rete over real threads.
    Threaded,
    /// Sequential Rete over a network rewritten with every applicable
    /// transform (per-production unsharing + copy-and-constraint splits).
    ReteTransformed,
    /// Threaded Rete over the same transformed network.
    ThreadedTransformed,
    /// Profiled threaded Rete with the online repartitioner enabled *and*
    /// a forced bucket migration after every change batch — the
    /// migration-consistency torture lane.
    ThreadedAdapt,
}

impl MatcherKind {
    /// The four base matchers, reference first.
    pub const ALL: [MatcherKind; 4] = [
        MatcherKind::Naive,
        MatcherKind::Rete,
        MatcherKind::Treat,
        MatcherKind::Threaded,
    ];

    /// Every matcher configuration, including the transformed-network and
    /// adaptive/migrating variants. This is what `"all"` parses to.
    pub const EXTENDED: [MatcherKind; 7] = [
        MatcherKind::Naive,
        MatcherKind::Rete,
        MatcherKind::Treat,
        MatcherKind::Threaded,
        MatcherKind::ReteTransformed,
        MatcherKind::ThreadedTransformed,
        MatcherKind::ThreadedAdapt,
    ];

    /// CLI/display name.
    pub fn name(self) -> &'static str {
        match self {
            MatcherKind::Naive => "naive",
            MatcherKind::Rete => "rete",
            MatcherKind::Treat => "treat",
            MatcherKind::Threaded => "threaded",
            MatcherKind::ReteTransformed => "rete-transformed",
            MatcherKind::ThreadedTransformed => "threaded-transformed",
            MatcherKind::ThreadedAdapt => "threaded-adapt",
        }
    }

    /// Build a boxed matcher for `program`. The threaded matchers are kept
    /// deliberately small (2 workers, 64 buckets) — the fuzzer's programs
    /// are tiny and the point is agreement, not throughput.
    pub fn build(self, program: &Program) -> Result<Box<dyn Matcher>, OpsError> {
        Ok(match self {
            MatcherKind::Naive => Box::new(NaiveMatcher::new(program.clone())),
            MatcherKind::Rete => Box::new(ReteMatcher::from_program(program)?),
            MatcherKind::Treat => Box::new(TreatMatcher::new(program)),
            MatcherKind::Threaded => {
                let network = ReteNetwork::compile(program)?;
                Box::new(ThreadedMatcher::new(network, 2, 64))
            }
            MatcherKind::ReteTransformed => {
                let network = transformed_network(program)?;
                Box::new(ReteMatcher::new(network, EngineConfig::default()))
            }
            MatcherKind::ThreadedTransformed => {
                let network = transformed_network(program)?;
                Box::new(ThreadedMatcher::new(network, 2, 64))
            }
            MatcherKind::ThreadedAdapt => {
                let network = ReteNetwork::compile(program)?;
                Box::new(AdaptiveThreaded::build(network))
            }
        })
    }

    /// Parse a comma-separated matcher list (e.g. `"rete,treat"`); the
    /// literal `"all"` selects every matcher configuration, `"base"` the
    /// four plain matchers.
    pub fn parse_list(s: &str) -> Result<Vec<MatcherKind>, String> {
        if s == "all" {
            return Ok(Self::EXTENDED.to_vec());
        }
        if s == "base" {
            return Ok(Self::ALL.to_vec());
        }
        s.split(',')
            .map(|part| part.trim().parse())
            .collect::<Result<Vec<_>, _>>()
    }
}

/// A maximal [`TransformPlan`] for `program`: unshare every production and
/// split the first CE per production that admits a copy-and-constraint
/// (any positive CE with a tested attribute). Boundaries sit inside the
/// generator's tiny integer vocabulary so the variants genuinely partition
/// live values rather than degenerating to one hot range.
pub fn transform_plan_for(program: &Program) -> TransformPlan {
    let mut plan = TransformPlan::new();
    for (pid, prod) in program.iter() {
        plan = plan.with_unshare(pid);
        'split: for (ci, ce) in prod.lhs.iter().enumerate() {
            if ce.negated {
                continue;
            }
            for test in &ce.tests {
                let spec = SplitSpec::new(ci, test.attr.as_str(), vec![1, 2]);
                if spec.validate(prod).is_ok() {
                    plan = plan.with_split(pid, spec);
                    break 'split;
                }
            }
        }
    }
    plan
}

fn transformed_network(program: &Program) -> Result<ReteNetwork, OpsError> {
    let plan = transform_plan_for(program);
    ReteNetwork::compile_planned(program, CompileOptions::default(), &plan)
}

/// A profiled [`ThreadedMatcher`] with the online repartitioner armed at an
/// aggressive threshold, plus a *forced* migration through a rotating set of
/// partitions after every change batch. Every fuzz case thus exercises the
/// barrier-time bucket-migration protocol under live token state.
struct AdaptiveThreaded {
    inner: ThreadedMatcher,
    step: u64,
}

const ADAPT_WORKERS: usize = 2;
const ADAPT_TABLE: u64 = 64;

impl AdaptiveThreaded {
    fn build(network: ReteNetwork) -> Self {
        let mut inner = ThreadedMatcher::new_profiled(network, ADAPT_WORKERS, ADAPT_TABLE);
        inner.enable_adaptation(AdaptOptions {
            every: 1,
            skew_threshold: 1.05,
        });
        AdaptiveThreaded { inner, step: 0 }
    }

    fn next_partition(&mut self) -> Partition {
        self.step += 1;
        match self.step % 3 {
            0 => Partition::round_robin(ADAPT_TABLE, ADAPT_WORKERS),
            1 => Partition::from_owners(
                vec![(self.step % ADAPT_WORKERS as u64) as u32; ADAPT_TABLE as usize],
                ADAPT_WORKERS,
            ),
            _ => Partition::random(ADAPT_TABLE, ADAPT_WORKERS, self.step),
        }
    }
}

impl Matcher for AdaptiveThreaded {
    fn process(&mut self, changes: &[WmeChange]) {
        self.try_process(changes)
            .expect("adaptive threaded matcher failed");
    }

    fn try_process(&mut self, changes: &[WmeChange]) -> Result<(), MatchError> {
        self.inner.try_process(changes)?;
        let partition = self.next_partition();
        self.inner.migrate_to(partition).map(|_| ())
    }

    fn conflict_set(&self) -> Vec<Instantiation> {
        self.inner.conflict_set()
    }
}

impl fmt::Display for MatcherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for MatcherKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "naive" => Ok(MatcherKind::Naive),
            "rete" => Ok(MatcherKind::Rete),
            "treat" => Ok(MatcherKind::Treat),
            "threaded" => Ok(MatcherKind::Threaded),
            "rete-transformed" => Ok(MatcherKind::ReteTransformed),
            "threaded-transformed" => Ok(MatcherKind::ThreadedTransformed),
            "threaded-adapt" => Ok(MatcherKind::ThreadedAdapt),
            other => Err(format!(
                "unknown matcher {other:?} (naive|rete|treat|threaded|\
                 rete-transformed|threaded-transformed|threaded-adapt|base|all)"
            )),
        }
    }
}

/// Generate case `seed`, oracle it, and — when it diverges and `do_shrink`
/// is set — minimize before returning. The returned pair is the (possibly
/// shrunk) case plus the divergence found on it, or `None` if all matchers
/// agreed.
pub fn fuzz_one(
    seed: u64,
    cfg: &GenConfig,
    matchers: &[MatcherKind],
    do_shrink: bool,
) -> (FuzzCase, Option<Divergence>) {
    let case = generate_case(seed, cfg);
    match run_case(&case, matchers) {
        None => (case, None),
        Some(div) => {
            if do_shrink {
                let small = shrink_case(&case, matchers, 1000);
                let small_div = run_case(&small, matchers).unwrap_or(div);
                (small, Some(small_div))
            } else {
                (case, Some(div))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_roundtrips_through_str() {
        for k in MatcherKind::EXTENDED {
            assert_eq!(k.name().parse::<MatcherKind>().unwrap(), k);
        }
    }

    #[test]
    fn parse_list_all_base_and_csv() {
        assert_eq!(MatcherKind::parse_list("all").unwrap().len(), 7);
        assert_eq!(MatcherKind::parse_list("base").unwrap().len(), 4);
        assert_eq!(
            MatcherKind::parse_list("rete, treat").unwrap(),
            vec![MatcherKind::Rete, MatcherKind::Treat]
        );
        assert_eq!(
            MatcherKind::parse_list("threaded-adapt").unwrap(),
            vec![MatcherKind::ThreadedAdapt]
        );
        assert!(MatcherKind::parse_list("bogus").is_err());
    }

    #[test]
    fn build_produces_working_matchers() {
        let prog = mpps_ops::parse_program("(p t (a ^p <v>) --> (remove 1))").unwrap();
        for k in MatcherKind::EXTENDED {
            let mut m = k.build(&prog).unwrap();
            m.process(&[mpps_ops::WmeChange::add(
                mpps_ops::WmeId(1),
                mpps_ops::Wme::new("a", &[("p", 1.into())]),
            )]);
            assert_eq!(m.conflict_set().len(), 1, "{k}");
        }
    }

    #[test]
    fn fuzz_plan_unshares_everything_and_splits_where_it_can() {
        let prog = mpps_ops::parse_program(
            "(p splittable (a ^p <v>) --> (remove 1))\
             (p bare (b) --> (remove 1))",
        )
        .unwrap();
        let plan = transform_plan_for(&prog);
        for (pid, _) in prog.iter() {
            assert!(plan.unshares(pid));
        }
        // Only the production with a tested attribute gets a split.
        assert_eq!(plan.splits().len(), 1);
        plan.validate(&prog).expect("fuzz plan must validate");
    }
}
