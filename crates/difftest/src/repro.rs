//! Reproducer files: a diverging case serialized as a runnable pair —
//! `<name>.ops` (the program, standard OPS5 syntax) and `<name>.sched` (the
//! external WM-change schedule).
//!
//! Schedule grammar (line-oriented, `#` comments):
//!
//! ```text
//! strategy lex|mea
//! make (class ^attr val …)    ; add this WME
//! remove N                    ; remove the (N mod live)-th WME of the
//!                             ; reference WM, ascending time-tag order
//! cycle                       ; end of round: fire until quiescence
//! ```
//!
//! A trailing partial round (lines after the last `cycle`) is a round of
//! its own. The pair round-trips: [`write_repro`] → [`load_repro`] yields a
//! case the oracle replays identically, which is what the corpus replay
//! test in `tests/` does for every checked-in reproducer.

use crate::gen::{FuzzCase, Schedule, ScheduleOp};
use mpps_ops::{parse_program, parse_wme, Strategy};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Render the program half of a reproducer.
pub fn render_ops(case: &FuzzCase) -> String {
    let mut out = String::new();
    for p in &case.productions {
        out.push_str(&p.to_string());
        out.push('\n');
    }
    out
}

/// Render the schedule half of a reproducer.
pub fn render_sched(case: &FuzzCase) -> String {
    let mut out = String::new();
    out.push_str(match case.strategy {
        Strategy::Lex => "strategy lex\n",
        Strategy::Mea => "strategy mea\n",
    });
    for round in &case.schedule.rounds {
        for op in round {
            match op {
                ScheduleOp::Make(wme) => out.push_str(&format!("make {wme}\n")),
                ScheduleOp::RemoveNth(n) => out.push_str(&format!("remove {n}\n")),
            }
        }
        out.push_str("cycle\n");
    }
    out
}

/// Write `<dir>/<name>.ops` + `<dir>/<name>.sched`, creating `dir` as
/// needed. Returns the two paths.
pub fn write_repro(dir: &Path, name: &str, case: &FuzzCase) -> io::Result<(PathBuf, PathBuf)> {
    fs::create_dir_all(dir)?;
    let ops_path = dir.join(format!("{name}.ops"));
    let sched_path = dir.join(format!("{name}.sched"));
    fs::write(&ops_path, render_ops(case))?;
    fs::write(&sched_path, render_sched(case))?;
    Ok((ops_path, sched_path))
}

/// Parse a schedule file body.
pub fn parse_sched(text: &str) -> Result<(Strategy, Schedule), String> {
    let mut strategy = Strategy::Lex;
    let mut rounds: Vec<Vec<ScheduleOp>> = Vec::new();
    let mut current: Vec<ScheduleOp> = Vec::new();
    let mut saw_strategy = false;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let err = |msg: String| Err(format!("line {}: {msg}", lineno + 1));
        if let Some(rest) = line.strip_prefix("strategy") {
            strategy = match rest.trim() {
                "lex" => Strategy::Lex,
                "mea" => Strategy::Mea,
                other => return err(format!("unknown strategy {other:?}")),
            };
            saw_strategy = true;
        } else if let Some(rest) = line.strip_prefix("make") {
            let wme = parse_wme(rest.trim()).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            current.push(ScheduleOp::Make(wme));
        } else if let Some(rest) = line.strip_prefix("remove") {
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad remove index: {e}", lineno + 1))?;
            current.push(ScheduleOp::RemoveNth(n));
        } else if line == "cycle" {
            rounds.push(std::mem::take(&mut current));
        } else {
            return err(format!("unrecognized directive {line:?}"));
        }
    }
    if !current.is_empty() {
        rounds.push(current);
    }
    if !saw_strategy {
        return Err("schedule is missing a `strategy lex|mea` line".into());
    }
    if rounds.is_empty() {
        return Err("schedule has no rounds".into());
    }
    Ok((strategy, Schedule { rounds }))
}

/// Load a reproducer pair back into a runnable [`FuzzCase`].
pub fn load_repro(ops_path: &Path, sched_path: &Path) -> Result<FuzzCase, String> {
    let ops_text =
        fs::read_to_string(ops_path).map_err(|e| format!("{}: {e}", ops_path.display()))?;
    let sched_text =
        fs::read_to_string(sched_path).map_err(|e| format!("{}: {e}", sched_path.display()))?;
    let program = parse_program(&ops_text).map_err(|e| format!("{}: {e}", ops_path.display()))?;
    let (strategy, schedule) =
        parse_sched(&sched_text).map_err(|e| format!("{}: {e}", sched_path.display()))?;
    Ok(FuzzCase {
        productions: program.iter().map(|(_, p)| p.clone()).collect(),
        strategy,
        schedule,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate_case, GenConfig};
    use crate::MatcherKind;

    #[test]
    fn sched_text_roundtrips() {
        let text = "strategy mea\nmake (a ^p 1)\nremove 3\ncycle\nmake (b)\ncycle\n";
        let (strategy, sched) = parse_sched(text).unwrap();
        assert_eq!(strategy, Strategy::Mea);
        assert_eq!(sched.rounds.len(), 2);
        assert_eq!(sched.rounds[0].len(), 2);
        assert!(matches!(sched.rounds[0][1], ScheduleOp::RemoveNth(3)));
    }

    #[test]
    fn sched_rejects_garbage() {
        assert!(parse_sched("strategy lex\nfrobnicate\ncycle\n").is_err());
        assert!(
            parse_sched("make (a)\ncycle\n").is_err(),
            "missing strategy"
        );
        assert!(parse_sched("strategy dunno\ncycle\n").is_err());
    }

    #[test]
    fn trailing_partial_round_is_kept() {
        let (_, sched) = parse_sched("strategy lex\ncycle\nmake (a)\n").unwrap();
        assert_eq!(sched.rounds.len(), 2);
        assert_eq!(sched.rounds[1].len(), 1);
    }

    #[test]
    fn generated_cases_roundtrip_through_files() {
        let dir = std::env::temp_dir().join("mpps-difftest-repro-roundtrip");
        let cfg = GenConfig::default();
        for seed in 0..20 {
            let case = generate_case(seed, &cfg);
            let (ops, sched) =
                write_repro(&dir, &format!("case-{seed}"), &case).expect("write repro");
            let loaded = load_repro(&ops, &sched).expect("load repro");
            assert_eq!(loaded.strategy, case.strategy);
            assert_eq!(loaded.schedule, case.schedule);
            assert_eq!(loaded.productions.len(), case.productions.len());
            // Semantics preserved, not just shape: the oracle sees the same
            // agreement on the loaded copy.
            assert!(crate::run_case(&loaded, &MatcherKind::ALL).is_none());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
