//! Delta-debugging minimizer for diverging fuzz cases.
//!
//! Greedy fixpoint: repeatedly try structural reductions — drop a
//! production, a schedule round, a single op, a condition element, an RHS
//! action, or an attribute test; shrink integer literals toward zero — and
//! keep any candidate that (a) still validates as a program and (b) still
//! diverges under the oracle. Each accepted reduction restarts the pass;
//! the loop ends at a fixpoint or when the oracle-run budget is spent.
//!
//! The shrinker does not try to preserve *which* matcher diverges or the
//! exact mismatch kind — any surviving divergence keeps the candidate.
//! That is the standard delta-debug trade-off: occasionally the minimum is
//! for a different symptom, but it is always a real, smaller disagreement.

use crate::gen::{FuzzCase, ScheduleOp};
use crate::oracle::run_case;
use crate::MatcherKind;
use mpps_ops::{Action, RhsValue, TestKind, Value};

/// Budgeted oracle runner: counts invocations so shrinking can't run away.
struct Budget<'a> {
    matchers: &'a [MatcherKind],
    remaining: usize,
}

impl Budget<'_> {
    /// True when `candidate` is a valid program that still diverges.
    fn still_fails(&mut self, candidate: &FuzzCase) -> bool {
        if self.remaining == 0 || candidate.program().is_err() {
            return false;
        }
        self.remaining -= 1;
        run_case(candidate, self.matchers).is_some()
    }

    fn exhausted(&self) -> bool {
        self.remaining == 0
    }
}

/// Every single-step reduction of `case`, most aggressive first.
fn reductions(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();

    // Drop a whole production.
    if case.productions.len() > 1 {
        for i in 0..case.productions.len() {
            let mut c = case.clone();
            c.productions.remove(i);
            out.push(c);
        }
    }

    // Drop a whole schedule round.
    if case.schedule.rounds.len() > 1 {
        for r in 0..case.schedule.rounds.len() {
            let mut c = case.clone();
            c.schedule.rounds.remove(r);
            out.push(c);
        }
    }

    // Drop a single schedule op.
    for r in 0..case.schedule.rounds.len() {
        for o in 0..case.schedule.rounds[r].len() {
            let mut c = case.clone();
            c.schedule.rounds[r].remove(o);
            out.push(c);
        }
    }

    for p in 0..case.productions.len() {
        let prod = &case.productions[p];

        // Drop a condition element. Removing a positive CE shifts the
        // 1-based `remove`/`modify` indices, so candidates whose RHS goes
        // out of range are rejected by validation inside `still_fails`.
        if prod.lhs.len() > 1 {
            for ce in 0..prod.lhs.len() {
                let mut c = case.clone();
                c.productions[p].lhs.remove(ce);
                out.push(c);
            }
        }

        // Drop an RHS action (a production with an empty RHS is legal: it
        // fires and does nothing, which still exercises the match).
        if prod.rhs.len() > 1 {
            for a in 0..prod.rhs.len() {
                let mut c = case.clone();
                c.productions[p].rhs.remove(a);
                out.push(c);
            }
        }

        // Drop one attribute test from a CE.
        for ce in 0..prod.lhs.len() {
            for t in 0..prod.lhs[ce].tests.len() {
                let mut c = case.clone();
                c.productions[p].lhs[ce].tests.remove(t);
                out.push(c);
            }
        }
    }

    // Shrink integer literals toward zero, one site at a time.
    for c in shrink_ints(case) {
        out.push(c);
    }

    out
}

fn shrink_int_value(v: &mut Value) -> bool {
    if let Value::Int(i) = v {
        if *i != 0 {
            *v = Value::Int(0);
            return true;
        }
    }
    false
}

/// One candidate per nonzero integer literal (LHS tests, RHS constants,
/// schedule WME attributes), each with that single literal zeroed.
fn shrink_ints(case: &FuzzCase) -> Vec<FuzzCase> {
    let mut out = Vec::new();

    for p in 0..case.productions.len() {
        for ce in 0..case.productions[p].lhs.len() {
            for t in 0..case.productions[p].lhs[ce].tests.len() {
                let mut c = case.clone();
                let kind = &mut c.productions[p].lhs[ce].tests[t].kind;
                let changed = match kind {
                    TestKind::Constant(_, v) => shrink_int_value(v),
                    _ => false,
                };
                if changed {
                    out.push(c);
                }
            }
        }
        for a in 0..case.productions[p].rhs.len() {
            let mut c = case.clone();
            let changed = match &mut c.productions[p].rhs[a] {
                Action::Make { attrs, .. } | Action::Modify { attrs, .. } => {
                    attrs.iter_mut().any(|(_, v)| match v {
                        RhsValue::Const(cv) => shrink_int_value(cv),
                        _ => false,
                    })
                }
                _ => false,
            };
            if changed {
                out.push(c);
            }
        }
    }

    for r in 0..case.schedule.rounds.len() {
        for o in 0..case.schedule.rounds[r].len() {
            let mut c = case.clone();
            if let ScheduleOp::Make(wme) = &mut c.schedule.rounds[r][o] {
                let attrs: Vec<_> = wme.attrs().collect();
                let mut changed = false;
                for (attr, val) in attrs {
                    let mut v = val;
                    if shrink_int_value(&mut v) {
                        wme.set(attr, v);
                        changed = true;
                        break;
                    }
                }
                if changed {
                    out.push(c);
                }
            }
        }
    }

    out
}

/// Minimize a diverging `case`. `budget` bounds the number of oracle runs
/// (each candidate costs one). If `case` does not actually diverge it is
/// returned unchanged.
pub fn shrink_case(case: &FuzzCase, matchers: &[MatcherKind], budget: usize) -> FuzzCase {
    let mut budget = Budget {
        matchers,
        remaining: budget,
    };
    if !budget.still_fails(case) {
        return case.clone();
    }
    let mut current = case.clone();
    'outer: loop {
        for candidate in reductions(&current) {
            if budget.still_fails(&candidate) {
                current = candidate;
                continue 'outer;
            }
            if budget.exhausted() {
                break 'outer;
            }
        }
        break; // fixpoint: no reduction kept the divergence
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::Schedule;
    use mpps_ops::{parse_program, parse_wme, Strategy};

    /// A synthetic "divergence": shrinking against a single matcher list we
    /// can't easily break is hard to arrange, so instead we exercise the
    /// reduction enumerator and the budget/fixpoint plumbing directly.
    fn sample_case() -> FuzzCase {
        let program = parse_program(
            r#"
            (p one (a ^p 1) (b ^q <v>) --> (remove 1) (make c ^r 2))
            (p two (d ^p 2) --> (remove 1))
            "#,
        )
        .unwrap();
        FuzzCase {
            productions: program.iter().map(|(_, p)| p.clone()).collect(),
            strategy: Strategy::Lex,
            schedule: Schedule {
                rounds: vec![
                    vec![
                        ScheduleOp::Make(parse_wme("(a ^p 1)").unwrap()),
                        ScheduleOp::Make(parse_wme("(b ^q 3)").unwrap()),
                    ],
                    vec![ScheduleOp::RemoveNth(2)],
                ],
            },
        }
    }

    #[test]
    fn reductions_enumerate_every_axis() {
        let case = sample_case();
        let red = reductions(&case);
        // 2 productions + 2 rounds + 3 ops + CE drops (2) + RHS drops (2)
        // + test drops + int shrinks — at minimum, well over a dozen.
        assert!(red.len() > 10, "only {} reductions", red.len());
        // Every reduction is strictly structurally smaller or int-shrunk,
        // and none is identical to the original.
        for r in &red {
            assert!(
                r.productions != case.productions || r.schedule != case.schedule,
                "reduction equals original"
            );
        }
    }

    #[test]
    fn shrink_returns_original_for_agreeing_case() {
        let case = sample_case();
        let out = shrink_case(&case, &MatcherKind::ALL, 50);
        assert_eq!(out.productions, case.productions);
        assert_eq!(out.schedule, case.schedule);
    }

    #[test]
    fn int_shrink_zeroes_one_literal_at_a_time() {
        let case = sample_case();
        let shrunk = shrink_ints(&case);
        // Literals 1, 2 (LHS), 2 (RHS make), 1, 3 (schedule WMEs) are all
        // nonzero, so each yields one candidate.
        assert!(shrunk.len() >= 4, "got {}", shrunk.len());
        for s in &shrunk {
            assert!(
                s.productions != case.productions || s.schedule != case.schedule,
                "shrink_ints produced an identical case"
            );
        }
    }
}
