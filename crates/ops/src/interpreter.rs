//! The match–resolve–act (MRA) interpreter.
//!
//! [`Interpreter`] owns the working memory and drives a pluggable
//! [`Matcher`] through the classic OPS5 cycle:
//!
//! 1. **match** — hand the previous cycle's WM changes to the matcher;
//! 2. **resolve** — filter refracted instantiations and pick a winner with
//!    the configured [`Strategy`];
//! 3. **act** — execute the winner's RHS, queuing the resulting WM changes
//!    for the next cycle's match phase.
//!
//! The interpreter records the per-cycle change batches it produced
//! ([`Interpreter::change_log`]); `mpps-rete` replays such logs to capture
//! activation traces, and the property-test suites replay them into
//! different matchers to prove equivalence.

use crate::conflict::{resolve, Strategy};
use crate::error::OpsError;
use crate::matcher::{Instantiation, Matcher, WmeChange};
use crate::naive::NaiveMatcher;
use crate::production::{Action, Production, ProductionId, Program};
use crate::symbol::Symbol;
use crate::value::Value;
use crate::wme::{Wme, WmeId, WorkingMemory};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// A record of one production firing.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FiredRecord {
    /// 1-based cycle number in which the firing happened.
    pub cycle: usize,
    /// Which production fired.
    pub production: ProductionId,
    /// Its name.
    pub name: Symbol,
    /// The WMEs of the fired instantiation.
    pub wme_ids: Vec<WmeId>,
}

/// Why a run ended.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunOutcome {
    /// Conflict set became empty (after refraction).
    Quiescent,
    /// A `(halt)` action executed.
    Halted,
    /// The cycle limit was reached with work remaining.
    CycleLimit,
}

/// Summary of a completed run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Number of MRA cycles executed (including the final quiescent match).
    pub cycles: usize,
    /// Every firing, in order.
    pub fired: Vec<FiredRecord>,
    /// How the run ended.
    pub outcome: RunOutcome,
}

/// The result of a single [`Interpreter::step`].
#[derive(Clone, Debug)]
pub enum StepOutcome {
    /// A production fired.
    Fired(FiredRecord),
    /// Nothing fireable: the system is quiescent.
    Quiescent,
}

/// Signature of a user-defined RHS function: receives the evaluated
/// arguments and the live working memory; may return WMEs to add.
pub type UserFn = Box<dyn FnMut(&[Value], &WorkingMemory) -> Vec<Wme>>;

/// A portable snapshot of an [`Interpreter`]'s mutable session state —
/// everything that is not derivable from the (shared, immutable) program.
///
/// [`Interpreter::export_state`] captures it; [`Interpreter::with_matcher_state`]
/// rebuilds a live interpreter from it on top of a *fresh* matcher for the
/// same program. Matcher-internal memories are intentionally not part of
/// the snapshot: a matcher is a pure fold over the WM change batches it was
/// fed, so the restore path replays the matcher-visible working memory as
/// one batch and arrives at an equivalent conflict set (the equivalence the
/// matcher property suites and the differential fuzzer pin down).
///
/// User-defined RHS functions are not captured; re-register them after a
/// restore if the program uses `(call …)`.
#[derive(Clone, PartialEq, Debug)]
pub struct InterpreterState {
    /// Conflict-resolution strategy the session runs under.
    pub strategy: Strategy,
    /// Live working memory, ascending time-tag order.
    pub wm: Vec<(WmeId, Wme)>,
    /// The next time tag to hand out.
    pub next_id: u64,
    /// Refraction memory, sorted for canonical comparison.
    pub fired_keys: Vec<(ProductionId, Vec<WmeId>)>,
    /// WM changes queued since the last match phase (not yet matcher-visible).
    pub pending: Vec<WmeChange>,
    /// Values written by `(write …)` actions so far.
    pub output: Vec<Vec<Value>>,
    /// MRA cycles executed so far.
    pub cycle: usize,
    /// Whether a `(halt)` has executed.
    pub halted: bool,
}

/// The MRA-cycle interpreter, generic over the match engine.
pub struct Interpreter<M: Matcher = NaiveMatcher> {
    program: Arc<Program>,
    strategy: Strategy,
    wm: WorkingMemory,
    matcher: M,
    /// Refraction memory: instantiations that have fired.
    fired_keys: HashSet<(ProductionId, Vec<WmeId>)>,
    /// WM changes produced since the last match phase.
    pending: Vec<WmeChange>,
    /// Per-cycle batches actually handed to the matcher.
    change_log: Vec<Vec<WmeChange>>,
    /// Values emitted by `(write ...)` actions.
    output: Vec<Vec<Value>>,
    fired: Vec<FiredRecord>,
    cycle: usize,
    halted: bool,
    /// User-defined RHS functions, by name.
    functions: HashMap<Symbol, UserFn>,
}

impl Interpreter<NaiveMatcher> {
    /// Interpreter over the brute-force reference matcher.
    pub fn new(program: Program, strategy: Strategy) -> Self {
        let matcher = NaiveMatcher::new(program.clone());
        Interpreter::with_matcher(program, strategy, matcher)
    }
}

impl<M: Matcher> Interpreter<M> {
    /// Interpreter over a caller-supplied matcher (must have been built for
    /// the same `program`).
    pub fn with_matcher(program: Program, strategy: Strategy, matcher: M) -> Self {
        Self::with_shared_program(Arc::new(program), strategy, matcher)
    }

    /// Like [`Interpreter::with_matcher`] over a *shared* program.
    ///
    /// Many interpreters can point at one program — the serving layer runs
    /// thousands of sessions against a single compiled ruleset, and an
    /// `Arc` keeps the per-session cost at a pointer instead of a clone of
    /// every production.
    pub fn with_shared_program(program: Arc<Program>, strategy: Strategy, matcher: M) -> Self {
        Interpreter {
            program,
            strategy,
            wm: WorkingMemory::new(),
            matcher,
            fired_keys: HashSet::new(),
            pending: Vec::new(),
            change_log: Vec::new(),
            output: Vec::new(),
            fired: Vec::new(),
            cycle: 0,
            halted: false,
            functions: HashMap::new(),
        }
    }

    /// Capture the session state of this interpreter (see
    /// [`InterpreterState`]). Cheap relative to a run: clones the live WM,
    /// refraction keys, pending changes and outputs; the matcher and the
    /// per-cycle change log are excluded by design.
    pub fn export_state(&self) -> InterpreterState {
        let mut fired_keys: Vec<(ProductionId, Vec<WmeId>)> =
            self.fired_keys.iter().cloned().collect();
        fired_keys.sort();
        InterpreterState {
            strategy: self.strategy,
            wm: self.wm.iter().map(|(id, w)| (id, w.clone())).collect(),
            next_id: self.wm.next_id().0,
            fired_keys,
            pending: self.pending.clone(),
            output: self.output.clone(),
            cycle: self.cycle,
            halted: self.halted,
        }
    }

    /// Rebuild an interpreter from a captured [`InterpreterState`] on top
    /// of a **fresh** matcher built for the same `program`.
    ///
    /// The matcher is brought up to date by replaying the matcher-visible
    /// working memory as a single add batch: that is the live WM *minus*
    /// pending additions (the matcher never saw them) *plus* pending
    /// removals (the matcher still holds them). The pending queue is then
    /// restored verbatim, so the next [`Interpreter::step`] hands the
    /// matcher exactly the batch an uninterrupted run would have.
    pub fn with_matcher_state(
        program: Program,
        matcher: M,
        state: InterpreterState,
    ) -> Result<Self, OpsError> {
        Self::with_shared_state(Arc::new(program), matcher, state)
    }

    /// Like [`Interpreter::with_matcher_state`] over a *shared* program.
    pub fn with_shared_state(
        program: Arc<Program>,
        mut matcher: M,
        state: InterpreterState,
    ) -> Result<Self, OpsError> {
        let mut visible: std::collections::BTreeMap<WmeId, Wme> =
            state.wm.iter().cloned().collect();
        // A pending add+remove *pair* of one id is a WME the matcher never
        // saw (and never will: `take_batch` cancels the pair on the next
        // step) — it must not leak into the replay batch via the Minus arm.
        let mut count: HashMap<WmeId, u32> = HashMap::new();
        for c in &state.pending {
            *count.entry(c.id).or_insert(0) += 1;
        }
        for change in state.pending.iter().filter(|c| count[&c.id] == 1) {
            match change.sign {
                crate::wme::Sign::Plus => {
                    visible.remove(&change.id);
                }
                crate::wme::Sign::Minus => {
                    visible.insert(change.id, change.wme.clone());
                }
            }
        }
        let batch: Vec<WmeChange> = visible
            .into_iter()
            .map(|(id, wme)| WmeChange::add(id, wme))
            .collect();
        matcher.try_process(&batch).map_err(OpsError::Match)?;
        Ok(Interpreter {
            program,
            strategy: state.strategy,
            wm: WorkingMemory::from_parts(state.wm, state.next_id),
            matcher,
            fired_keys: state.fired_keys.into_iter().collect(),
            pending: state.pending,
            change_log: vec![batch],
            output: state.output,
            fired: Vec::new(),
            cycle: state.cycle,
            halted: state.halted,
            functions: HashMap::new(),
        })
    }

    /// Register a user-defined RHS function callable via `(call name …)`.
    /// The function receives the evaluated arguments and a view of working
    /// memory, and may return WMEs to add (queued like `make`).
    pub fn register_function(
        &mut self,
        name: &str,
        f: impl FnMut(&[Value], &WorkingMemory) -> Vec<Wme> + 'static,
    ) {
        self.functions.insert(crate::intern(name), Box::new(f));
    }

    /// Add a WME to working memory (takes effect at the next match phase).
    pub fn wm_make(&mut self, class: &str, attrs: &[(&str, Value)]) -> WmeId {
        self.add_wme(Wme::new(class, attrs))
    }

    /// Add a pre-built WME.
    pub fn add_wme(&mut self, wme: Wme) -> WmeId {
        let id = self.wm.add(wme.clone());
        self.pending.push(WmeChange::add(id, wme));
        id
    }

    /// Remove a WME by id (takes effect at the next match phase).
    pub fn remove_wme(&mut self, id: WmeId) -> Result<(), OpsError> {
        let wme = self
            .wm
            .remove(id)
            .ok_or_else(|| OpsError::StaleWme(format!("{id} is not in working memory")))?;
        self.pending.push(WmeChange::remove(id, wme));
        Ok(())
    }

    /// Flush pending WM changes into a match batch, cancelling add/remove
    /// pairs: a WME added *and* removed between two match phases was never
    /// visible to any matcher, and handing both changes through would break
    /// the matcher contract that a batch mentions each time tag at most
    /// once. (Found by the differential fuzzer: `add_wme` + `remove_wme` of
    /// the same element before a `step` tripped the Rete engine's batch
    /// assertion while the naive matcher shrugged it off.) Time tags are
    /// never reused, so an id occurring twice is always exactly one add
    /// followed by one remove.
    fn take_batch(&mut self) -> Vec<WmeChange> {
        let batch = std::mem::take(&mut self.pending);
        if batch.len() < 2 {
            return batch;
        }
        let mut count: HashMap<WmeId, u32> = HashMap::new();
        for c in &batch {
            *count.entry(c.id).or_insert(0) += 1;
        }
        if count.values().all(|&n| n == 1) {
            return batch;
        }
        batch.into_iter().filter(|c| count[&c.id] == 1).collect()
    }

    /// Execute one MRA cycle. Flushes pending WM changes into the matcher,
    /// resolves, and fires at most one instantiation.
    pub fn step(&mut self) -> Result<StepOutcome, OpsError> {
        self.cycle += 1;
        let batch = self.take_batch();
        // Log first, match from the log: one owned batch, zero copies.
        self.change_log.push(batch);
        self.matcher
            .try_process(self.change_log.last().expect("batch just pushed"))?;

        let mut conflict_set = self.matcher.conflict_set();
        let candidates: Vec<&Instantiation> = conflict_set
            .iter()
            .filter(|i| !self.fired_keys.contains(&i.key()))
            .collect();
        let Some(winner) = resolve(&self.program, self.strategy, candidates) else {
            return Ok(StepOutcome::Quiescent);
        };
        // `resolve` hands back a reference into `conflict_set`; take the
        // winner by position instead of cloning its bindings.
        let widx = conflict_set
            .iter()
            .position(|i| std::ptr::eq(i, winner))
            .expect("winner borrowed from the conflict set");
        let winner = conflict_set.swap_remove(widx);
        self.fired_keys.insert(winner.key());
        let record = FiredRecord {
            cycle: self.cycle,
            production: winner.production,
            name: self.program.get(winner.production).name,
            wme_ids: winner.wme_ids.clone(),
        };
        self.fire(&winner)?;
        self.fired.push(record.clone());
        Ok(StepOutcome::Fired(record))
    }

    /// Execute the RHS of `inst`, queuing WM changes.
    ///
    /// A second `Arc` handle to the program is taken for the duration of
    /// the firing so the RHS can be walked by reference while actions
    /// mutate the interpreter — no per-firing clone of the action list.
    /// Nothing an action can reach reads `self.program` (user functions
    /// only see the working memory).
    fn fire(&mut self, inst: &Instantiation) -> Result<(), OpsError> {
        let program = Arc::clone(&self.program);
        self.fire_actions(program.get(inst.production), inst)
    }

    fn fire_actions(
        &mut self,
        production: &Production,
        inst: &Instantiation,
    ) -> Result<(), OpsError> {
        // `(bind …)` actions extend the bindings for later actions.
        let mut bindings = inst.bindings.clone();
        for action in &production.rhs {
            match action {
                Action::Make { class, attrs } => {
                    let mut wme = Wme::from_pairs(*class, []);
                    for (attr, expr) in attrs {
                        wme.set(*attr, expr.eval(&bindings)?);
                    }
                    self.add_wme(wme);
                }
                Action::Remove(k) => {
                    let id = inst.wme_ids[*k - 1];
                    // The WME may already be gone if a previous action of
                    // this same RHS removed it; OPS5 treats that as a no-op.
                    if self.wm.get(id).is_some() {
                        self.remove_wme(id)?;
                    }
                }
                Action::Modify { ce, attrs } => {
                    let id = inst.wme_ids[*ce - 1];
                    let Some(old) = self.wm.get(id).cloned() else {
                        return Err(OpsError::StaleWme(format!(
                            "(modify {ce}) of {id}: element already removed this firing"
                        )));
                    };
                    self.remove_wme(id)?;
                    let mut wme = old;
                    for (attr, expr) in attrs {
                        wme.set(*attr, expr.eval(&bindings)?);
                    }
                    self.add_wme(wme);
                }
                Action::Write(exprs) => {
                    let vals = exprs
                        .iter()
                        .map(|e| e.eval(&bindings))
                        .collect::<Result<Vec<_>, _>>()?;
                    self.output.push(vals);
                }
                Action::Bind(var, expr) => {
                    let value = expr.eval(&bindings)?;
                    bindings.insert(*var, value);
                }
                Action::Call(name, args) => {
                    let values = args
                        .iter()
                        .map(|e| e.eval(&bindings))
                        .collect::<Result<Vec<_>, _>>()?;
                    let Some(f) = self.functions.get_mut(name) else {
                        return Err(OpsError::UnknownFunction(name.to_string()));
                    };
                    let new_wmes = f(&values, &self.wm);
                    for wme in new_wmes {
                        self.add_wme(wme);
                    }
                }
                Action::Halt => {
                    self.halted = true;
                }
            }
        }
        Ok(())
    }

    /// Execute one *parallel* MRA cycle: fire **every** refraction-new
    /// instantiation whose deletions do not overlap another selected
    /// instantiation's working-memory elements — the "more explicit
    /// expression of parallelism" direction the paper points at (Ishida &
    /// Stolfo; Soar). Selection is greedy in conflict-resolution order, so
    /// the serial winner always fires. Instantiations are checked for
    /// *delete/delete and delete/match conflicts* only: two selected
    /// instantiations may not remove or modify a WME the other matched.
    /// (Interference through `make` + negation is not detected — the usual
    /// caveat of compatible-set parallel firing.)
    pub fn step_parallel(&mut self) -> Result<Vec<FiredRecord>, OpsError> {
        self.cycle += 1;
        let batch = self.take_batch();
        self.change_log.push(batch);
        self.matcher
            .try_process(self.change_log.last().expect("batch just pushed"))?;

        let conflict_set = self.matcher.conflict_set();
        let mut candidates: Vec<&Instantiation> = conflict_set
            .iter()
            .filter(|i| !self.fired_keys.contains(&i.key()))
            .collect();
        // Conflict-resolution order: repeatedly extract the winner (by
        // position, preserving candidate order for deterministic ties —
        // no instantiation clones and no per-comparison key allocation).
        let mut ordered: Vec<&Instantiation> = Vec::new();
        while let Some(winner) = resolve(&self.program, self.strategy, candidates.iter().copied()) {
            let widx = candidates
                .iter()
                .position(|c| std::ptr::eq(*c, winner))
                .expect("winner borrowed from the candidate list");
            ordered.push(candidates.remove(widx));
        }
        // Greedy compatible set: an instantiation joins if the WMEs it
        // deletes/modifies are untouched and unmatched by those selected
        // before it, and nothing it matched is deleted by them.
        let mut deleted: HashSet<WmeId> = HashSet::new();
        let mut matched: HashSet<WmeId> = HashSet::new();
        let mut selected: Vec<&Instantiation> = Vec::new();
        for inst in ordered {
            let production = self.program.get(inst.production);
            let mut my_deletes: HashSet<WmeId> = HashSet::new();
            for a in &production.rhs {
                match a {
                    Action::Remove(k) => {
                        my_deletes.insert(inst.wme_ids[*k - 1]);
                    }
                    Action::Modify { ce, .. } => {
                        my_deletes.insert(inst.wme_ids[*ce - 1]);
                    }
                    _ => {}
                }
            }
            let compatible = my_deletes
                .iter()
                .all(|id| !deleted.contains(id) && !matched.contains(id))
                && inst.wme_ids.iter().all(|id| !deleted.contains(id));
            if compatible {
                deleted.extend(my_deletes);
                matched.extend(inst.wme_ids.iter().copied());
                selected.push(inst);
            }
        }
        let mut records = Vec::with_capacity(selected.len());
        for inst in selected {
            self.fired_keys.insert(inst.key());
            let record = FiredRecord {
                cycle: self.cycle,
                production: inst.production,
                name: self.program.get(inst.production).name,
                wme_ids: inst.wme_ids.clone(),
            };
            self.fire(inst)?;
            self.fired.push(record.clone());
            records.push(record);
        }
        Ok(records)
    }

    /// Run in parallel-firing mode until quiescence, halt, or `max_cycles`.
    pub fn run_parallel(&mut self, max_cycles: usize) -> Result<RunResult, OpsError> {
        let start_fired = self.fired.len();
        let start_cycle = self.cycle;
        let mut outcome = RunOutcome::CycleLimit;
        while self.cycle - start_cycle < max_cycles {
            let fired = self.step_parallel()?;
            if fired.is_empty() {
                outcome = RunOutcome::Quiescent;
                break;
            }
            if self.halted {
                outcome = RunOutcome::Halted;
                break;
            }
        }
        Ok(RunResult {
            cycles: self.cycle - start_cycle,
            fired: self.fired[start_fired..].to_vec(),
            outcome,
        })
    }

    /// Run until quiescence, halt, or `max_cycles`.
    ///
    /// A halted interpreter stays halted: calling `run` again (as a
    /// server does when a session receives input after a `(halt)`)
    /// returns immediately with [`RunOutcome::Halted`] and fires nothing.
    pub fn run(&mut self, max_cycles: usize) -> Result<RunResult, OpsError> {
        let start_fired = self.fired.len();
        let start_cycle = self.cycle;
        if self.halted {
            return Ok(RunResult {
                cycles: 0,
                fired: Vec::new(),
                outcome: RunOutcome::Halted,
            });
        }
        let mut outcome = RunOutcome::CycleLimit;
        while self.cycle - start_cycle < max_cycles {
            match self.step()? {
                StepOutcome::Quiescent => {
                    outcome = RunOutcome::Quiescent;
                    break;
                }
                StepOutcome::Fired(_) => {
                    if self.halted {
                        outcome = RunOutcome::Halted;
                        break;
                    }
                }
            }
        }
        Ok(RunResult {
            cycles: self.cycle - start_cycle,
            fired: self.fired[start_fired..].to_vec(),
            outcome,
        })
    }

    /// The live working memory.
    pub fn working_memory(&self) -> &WorkingMemory {
        &self.wm
    }

    /// The program being executed.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The conflict-resolution strategy in force.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// The per-cycle WM change batches handed to the matcher so far.
    pub fn change_log(&self) -> &[Vec<WmeChange>] {
        &self.change_log
    }

    /// Take (and clear) the recorded per-cycle change batches.
    ///
    /// Long-running sessions — the serving layer's bread and butter — must
    /// drain the log periodically or it grows without bound; the drained
    /// batches double as the per-request WME-change count the server's
    /// throughput metrics report.
    pub fn drain_change_log(&mut self) -> Vec<Vec<WmeChange>> {
        std::mem::take(&mut self.change_log)
    }

    /// Values written by `(write ...)` actions, one entry per action.
    pub fn output(&self) -> &[Vec<Value>] {
        &self.output
    }

    /// All firings so far.
    pub fn fired(&self) -> &[FiredRecord] {
        &self.fired
    }

    /// Borrow the underlying matcher (e.g. to extract a Rete trace).
    pub fn matcher(&self) -> &M {
        &self.matcher
    }

    /// Mutably borrow the underlying matcher (e.g. to take ownership of a
    /// recorded trace between runs).
    pub fn matcher_mut(&mut self) -> &mut M {
        &mut self.matcher
    }

    /// True once a `(halt)` has executed.
    pub fn is_halted(&self) -> bool {
        self.halted
    }

    /// Number of MRA cycles executed.
    pub fn cycles(&self) -> usize {
        self.cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn countdown_fires_until_quiescent() {
        let prog = parse_program(
            r#"
            (p count-down
               (counter ^value <v>)
               -(counter ^value 0)
               -->
               (modify 1 ^value (- <v> 1))
               (write tick <v>))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("counter", &[("value", 3.into())]);
        let result = interp.run(100).unwrap();
        assert_eq!(result.outcome, RunOutcome::Quiescent);
        assert_eq!(result.fired.len(), 3);
        assert_eq!(
            interp.output(),
            &[
                vec![Value::sym("tick"), Value::Int(3)],
                vec![Value::sym("tick"), Value::Int(2)],
                vec![Value::sym("tick"), Value::Int(1)],
            ]
        );
    }

    #[test]
    fn halt_stops_the_run() {
        let prog = parse_program(
            r#"
            (p once (start) --> (make step ^n 1) (halt))
            (p never (step ^n <n>) --> (make step ^n (+ <n> 1)))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("start", &[]);
        let result = interp.run(100).unwrap();
        assert_eq!(result.outcome, RunOutcome::Halted);
        assert_eq!(result.fired.len(), 1);
    }

    #[test]
    fn cycle_limit_reported() {
        let prog = parse_program(
            r#"
            (p forever (tick ^n <n>) --> (modify 1 ^n (+ <n> 1)))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("tick", &[("n", 0.into())]);
        let result = interp.run(10).unwrap();
        assert_eq!(result.outcome, RunOutcome::CycleLimit);
        assert_eq!(result.cycles, 10);
    }

    #[test]
    fn refraction_prevents_refiring() {
        // Without refraction this would loop forever re-firing the same
        // instantiation (its RHS doesn't change WM).
        let prog = parse_program(
            r#"
            (p observe (fact ^kind constant) --> (write saw-it))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("fact", &[("kind", "constant".into())]);
        let result = interp.run(100).unwrap();
        assert_eq!(result.outcome, RunOutcome::Quiescent);
        assert_eq!(result.fired.len(), 1);
    }

    #[test]
    fn modify_gives_fresh_time_tag_and_refires() {
        let prog = parse_program(
            r#"
            (p bump
               (counter ^value <v> ^limit <l>)
               (counter ^value <v2>)
               -->
               (write noop))
            "#,
        )
        .unwrap();
        // Self-join: after the counter is modified the time tag changes, so
        // a new instantiation (not refracted) appears.
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("counter", &[("value", 1.into()), ("limit", 5.into())]);
        let r = interp.run(3).unwrap();
        // Fires exactly once: no modify in RHS, refraction blocks repeats.
        assert_eq!(r.fired.len(), 1);
    }

    #[test]
    fn lex_picks_most_recent_data() {
        let prog = parse_program(
            r#"
            (p any (item ^tag <t>) --> (remove 1) (write picked <t>))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("item", &[("tag", "old".into())]);
        interp.wm_make("item", &[("tag", "new".into())]);
        interp.run(10).unwrap();
        // LEX: most recent WME wins first.
        assert_eq!(
            interp.output()[0],
            vec![Value::sym("picked"), Value::sym("new")]
        );
        assert_eq!(
            interp.output()[1],
            vec![Value::sym("picked"), Value::sym("old")]
        );
    }

    #[test]
    fn mea_prefers_recent_first_ce() {
        let prog = parse_program(
            r#"
            (p goal-directed
               (goal ^id <g>)
               (item ^for <g>)
               -->
               (remove 2)
               (write served <g>))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Mea);
        let _g1 = interp.wm_make("goal", &[("id", "g1".into())]);
        interp.wm_make("item", &[("for", "g1".into())]);
        interp.wm_make("item", &[("for", "g2".into())]);
        let _g2 = interp.wm_make("goal", &[("id", "g2".into())]);
        interp.run(10).unwrap();
        // MEA: g2's goal WME is more recent, so g2 is served first even
        // though g1's item instantiation also exists.
        assert_eq!(
            interp.output()[0],
            vec![Value::sym("served"), Value::sym("g2")]
        );
    }

    #[test]
    fn remove_of_already_removed_wme_is_noop() {
        let prog = parse_program(
            r#"
            (p double-remove
               (thing ^id <t>)
               (thing ^id <t>)
               -->
               (remove 1)
               (remove 2))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("thing", &[("id", 1.into())]);
        // Both CEs match the same WME; second remove must not error.
        let r = interp.run(10).unwrap();
        assert_eq!(r.outcome, RunOutcome::Quiescent);
        assert_eq!(interp.working_memory().len(), 0);
    }

    #[test]
    fn change_log_batches_match_cycles() {
        let prog = parse_program(
            r#"
            (p grow (seed) --> (remove 1) (make plant) (make flower))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("seed", &[]);
        interp.run(10).unwrap();
        let log = interp.change_log();
        // Cycle 1 matches the initial add and fires; cycle 2 matches
        // {-seed +plant +flower} and detects quiescence.
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].len(), 1);
        assert_eq!(log[1].len(), 3);
    }

    #[test]
    fn export_restore_continues_identically() {
        let src = r#"
            (p count-down
               (counter ^value <v>)
               -(counter ^value 0)
               -->
               (modify 1 ^value (- <v> 1))
               (write tick <v>))
            "#;
        let prog = parse_program(src).unwrap();
        // Uninterrupted reference run.
        let mut whole = Interpreter::new(prog.clone(), Strategy::Lex);
        whole.wm_make("counter", &[("value", 5.into())]);
        whole.run(100).unwrap();
        // Interrupted run: two cycles, snapshot, restore, continue.
        let mut first = Interpreter::new(prog.clone(), Strategy::Lex);
        first.wm_make("counter", &[("value", 5.into())]);
        first.step().unwrap();
        first.step().unwrap();
        let state = first.export_state();
        let matcher = NaiveMatcher::new(prog.clone());
        let mut resumed = Interpreter::with_matcher_state(prog, matcher, state).unwrap();
        resumed.run(100).unwrap();
        assert_eq!(resumed.cycles(), whole.cycles());
        assert_eq!(resumed.output(), whole.output());
        let a: Vec<_> = resumed.working_memory().iter().collect();
        let b: Vec<_> = whole.working_memory().iter().collect();
        assert_eq!(a, b);
        assert_eq!(
            resumed.matcher().conflict_set(),
            whole.matcher().conflict_set()
        );
    }

    #[test]
    fn export_restore_preserves_pending_changes() {
        // A WME queued but not yet matched must survive the round trip and
        // reach the matcher on the next step, exactly once.
        let prog = parse_program("(p t (a) --> (halt))").unwrap();
        let mut interp = Interpreter::new(prog.clone(), Strategy::Lex);
        interp.step().unwrap(); // empty first cycle
        interp.wm_make("a", &[]);
        let state = interp.export_state();
        assert_eq!(state.pending.len(), 1);
        let mut resumed =
            Interpreter::with_matcher_state(prog.clone(), NaiveMatcher::new(prog), state).unwrap();
        let r = resumed.run(10).unwrap();
        assert_eq!(r.outcome, RunOutcome::Halted);
        assert_eq!(r.fired.len(), 1);
    }

    #[test]
    fn remove_unknown_wme_errors() {
        let prog = parse_program("(p x (a) --> (remove 1))").unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        assert!(interp.remove_wme(WmeId(42)).is_err());
    }
}

#[cfg(test)]
mod bind_tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn bind_extends_rhs_bindings() {
        let prog = parse_program(
            r#"
            (p double
               (counter ^v <v>)
               -->
               (bind <d> (* <v> 2))
               (make result ^doubled <d> ^plus (+ <d> 1))
               (remove 1))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("counter", &[("v", 7.into())]);
        interp.run(10).unwrap();
        let result = interp
            .working_memory()
            .iter()
            .find(|(_, w)| w.class().as_str() == "result")
            .unwrap()
            .1;
        assert_eq!(result.get(crate::intern("doubled")), Some(Value::Int(14)));
        assert_eq!(result.get(crate::intern("plus")), Some(Value::Int(15)));
    }

    #[test]
    fn bind_use_before_definition_rejected() {
        let bad = parse_program("(p bad (a) --> (write <x>) (bind <x> 1))");
        assert!(bad.is_err());
    }

    #[test]
    fn bind_display_roundtrip() {
        let prog = parse_program("(p b (a ^v <v>) --> (bind <w> (+ <v> 1)) (write <w>))").unwrap();
        let p = prog.get(crate::ProductionId(0));
        let again = crate::parse_production(&p.to_string()).unwrap();
        assert_eq!(p, &again);
    }
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn independent_instantiations_fire_together() {
        // Ten independent items: serial mode needs ten act cycles,
        // parallel mode retires them all in one.
        let prog = parse_program("(p consume (item ^id <i>) --> (remove 1))").unwrap();
        let mut serial = Interpreter::new(prog.clone(), Strategy::Lex);
        let mut parallel = Interpreter::new(prog, Strategy::Lex);
        for i in 0..10 {
            serial.wm_make("item", &[("id", i.into())]);
            parallel.wm_make("item", &[("id", i.into())]);
        }
        let rs = serial.run(100).unwrap();
        let rp = parallel.run_parallel(100).unwrap();
        assert_eq!(rs.fired.len(), 10);
        assert_eq!(rp.fired.len(), 10);
        assert!(
            rp.cycles < rs.cycles,
            "parallel {} vs serial {}",
            rp.cycles,
            rs.cycles
        );
        assert_eq!(rp.fired.iter().filter(|f| f.cycle == 1).count(), 10);
        assert_eq!(parallel.working_memory().len(), 0);
    }

    #[test]
    fn conflicting_deletes_serialize() {
        // Two rules both want to remove the same token WME: only one may
        // fire per parallel cycle.
        let prog = parse_program(
            r#"
            (p left  (token ^id <t>) (mark ^side l) --> (remove 1))
            (p right (token ^id <t>) (mark ^side r) --> (remove 1))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("token", &[("id", 1.into())]);
        interp.wm_make("mark", &[("side", "l".into())]);
        interp.wm_make("mark", &[("side", "r".into())]);
        let fired = interp.step_parallel().unwrap();
        assert_eq!(fired.len(), 1, "delete/delete conflict must serialize");
    }

    #[test]
    fn matched_wme_protected_from_parallel_deletion() {
        // One rule deletes the flag; another matches it without deleting.
        // They must not fire together (the reader would see a retracted
        // premise).
        let prog = parse_program(
            r#"
            (p deleter (flag ^on yes) --> (remove 1))
            (p reader  (flag ^on yes) (data ^v <v>) --> (remove 2) (write saw <v>))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("flag", &[("on", "yes".into())]);
        interp.wm_make("data", &[("v", 5.into())]);
        let fired = interp.step_parallel().unwrap();
        assert_eq!(fired.len(), 1, "reader and deleter conflict on the flag");
    }

    #[test]
    fn parallel_quiesces_like_serial() {
        let prog = parse_program("(p consume (item) --> (remove 1))").unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("item", &[]);
        let r = interp.run_parallel(50).unwrap();
        assert_eq!(r.outcome, RunOutcome::Quiescent);
        assert_eq!(r.fired.len(), 1);
    }
}

#[cfg(test)]
mod call_tests {
    use super::*;
    use crate::parser::parse_program;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn call_invokes_registered_function_with_evaluated_args() {
        let prog = parse_program(
            r#"
            (p notify (alarm ^level <l>) --> (call page-operator <l> urgent) (remove 1))
            "#,
        )
        .unwrap();
        let seen: Rc<RefCell<Vec<Vec<Value>>>> = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.register_function("page-operator", move |args, _wm| {
            seen2.borrow_mut().push(args.to_vec());
            Vec::new()
        });
        interp.wm_make("alarm", &[("level", 3.into())]);
        interp.run(10).unwrap();
        assert_eq!(
            seen.borrow().as_slice(),
            &[vec![Value::Int(3), Value::sym("urgent")]]
        );
    }

    #[test]
    fn call_may_return_wmes_to_add() {
        let prog = parse_program(
            r#"
            (p expand (seed ^n <n>) --> (call fibonacci <n>) (remove 1))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.register_function("fibonacci", |args, _wm| {
            let n = args[0].as_int().unwrap();
            let (mut a, mut b) = (0i64, 1i64);
            (0..n)
                .map(|_| {
                    let v = a;
                    (a, b) = (b, a + b);
                    Wme::new("fib", &[("value", v.into())])
                })
                .collect()
        });
        interp.wm_make("seed", &[("n", 5.into())]);
        interp.run(10).unwrap();
        let fibs: Vec<i64> = interp
            .working_memory()
            .iter()
            .filter(|(_, w)| w.class().as_str() == "fib")
            .map(|(_, w)| w.get(crate::intern("value")).unwrap().as_int().unwrap())
            .collect();
        assert_eq!(fibs, vec![0, 1, 1, 2, 3]);
    }

    #[test]
    fn unregistered_call_is_an_error() {
        let prog = parse_program("(p x (a) --> (call ghost))").unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        interp.wm_make("a", &[]);
        let err = interp.run(10).unwrap_err();
        assert!(matches!(err, OpsError::UnknownFunction(_)), "{err}");
    }

    #[test]
    fn call_display_roundtrip() {
        let prog = parse_program("(p c (a ^v <v>) --> (call f <v> 2 sym))").unwrap();
        let p = prog.get(crate::ProductionId(0));
        let again = crate::parse_production(&p.to_string()).unwrap();
        assert_eq!(p, &again);
    }

    #[test]
    fn add_then_remove_between_steps_cancels_in_batch() {
        // Regression (differential fuzzer): a WME added and removed between
        // two match phases must never reach the matcher — handing both
        // changes through gives the batch two entries for one time tag,
        // which the Rete engine (rightly) rejects.
        let prog = parse_program("(p t (a) --> (halt))").unwrap();
        let mut interp = Interpreter::new(prog, Strategy::Lex);
        let keep = interp.wm_make("b", &[]);
        let id = interp.wm_make("a", &[]);
        interp.remove_wme(id).unwrap();
        interp.step().unwrap();
        let batch = interp.change_log().last().unwrap();
        assert_eq!(batch.len(), 1, "transient WME leaked into the batch");
        assert_eq!(batch[0].id, keep);
        // And the production over the transient class never fired.
        assert!(interp.fired().is_empty());
    }
}
