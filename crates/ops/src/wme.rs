//! Working memory elements and the working memory.
//!
//! A [`Wme`] is a record: a *class* symbol plus a set of attribute/value
//! pairs. Each WME carries a unique, monotonically increasing [`WmeId`] that
//! doubles as its OPS5 *time tag* — conflict resolution compares recency via
//! these ids, and Rete tokens identify their constituent WMEs by id.

use crate::symbol::{intern, Symbol};
use crate::value::Value;
use std::collections::BTreeMap;
use std::fmt;

/// Attribute pairs are kept sorted by [`Symbol::index`] — the copyable
/// interning-order key — so lookups are a `u32` binary search and equality
/// never touches strings. Id order is stable within a process but is *not*
/// lexicographic; [`Wme`]'s `Display` re-sorts by string for canonical text.
fn sort_key(pair: &(Symbol, Value)) -> u32 {
    pair.0.index()
}

/// Unique identifier (and time tag) of a working-memory element.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct WmeId(pub u64);

impl fmt::Display for WmeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// Add or delete — the polarity of a WM change or Rete token.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Sign {
    /// `+`: the element/token is being added.
    Plus,
    /// `-`: the element/token is being deleted.
    Minus,
}

impl Sign {
    /// The opposite polarity (used by negative nodes, which invert signs).
    pub fn flipped(self) -> Sign {
        match self {
            Sign::Plus => Sign::Minus,
            Sign::Minus => Sign::Plus,
        }
    }
}

impl fmt::Display for Sign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Sign::Plus => "+",
            Sign::Minus => "-",
        })
    }
}

/// A working-memory element: class plus attribute/value pairs.
///
/// Attributes are stored as a vector sorted by symbol id, so that WMEs have
/// a canonical in-process form: two WMEs constructed with the same pairs in
/// any order are equal, iteration order is deterministic, and the hot match
/// path (`get` during alpha tests and join-value extraction) is a `u32`
/// binary search with no string comparison and no tree-node chasing.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Wme {
    class: Symbol,
    attrs: Vec<(Symbol, Value)>,
}

impl Wme {
    /// Create a WME of class `class` with the given attribute pairs.
    /// Later duplicates of the same attribute overwrite earlier ones.
    pub fn new(class: impl Into<Symbol>, attrs: &[(&str, Value)]) -> Self {
        let mut wme = Wme {
            class: class.into(),
            attrs: Vec::with_capacity(attrs.len()),
        };
        for (a, v) in attrs {
            wme.set(intern(a), *v);
        }
        wme
    }

    /// Create a WME from already-interned attribute symbols.
    pub fn from_pairs(class: Symbol, pairs: impl IntoIterator<Item = (Symbol, Value)>) -> Self {
        let mut wme = Wme {
            class,
            attrs: Vec::new(),
        };
        for (a, v) in pairs {
            wme.set(a, v);
        }
        wme
    }

    /// The class symbol of this WME.
    pub fn class(&self) -> Symbol {
        self.class
    }

    /// Look up an attribute value.
    pub fn get(&self, attr: Symbol) -> Option<Value> {
        self.attrs
            .binary_search_by_key(&attr.index(), sort_key)
            .ok()
            .map(|i| self.attrs[i].1)
    }

    /// Set (or overwrite) an attribute. Used by `modify` actions.
    pub fn set(&mut self, attr: Symbol, value: Value) {
        match self.attrs.binary_search_by_key(&attr.index(), sort_key) {
            Ok(i) => self.attrs[i].1 = value,
            Err(i) => self.attrs.insert(i, (attr, value)),
        }
    }

    /// Iterate attribute pairs in canonical (id-sorted) order. This is
    /// interning order, not lexicographic — use [`Wme`]'s `Display` for
    /// canonical text.
    pub fn attrs(&self) -> impl Iterator<Item = (Symbol, Value)> + '_ {
        self.attrs.iter().copied()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if the WME has no attributes (class only).
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }
}

impl fmt::Display for Wme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Canonical text sorts attributes lexicographically, independent of
        // interning order (traces and goldens compare this form).
        let mut pairs: Vec<(Symbol, Value)> = self.attrs.clone();
        pairs.sort_by_key(|(a, _)| a.as_str());
        write!(f, "({}", self.class)?;
        for (a, v) in pairs {
            write!(f, " ^{a} {v}")?;
        }
        write!(f, ")")
    }
}

/// The working memory: the set of live WMEs plus the time-tag counter.
#[derive(Clone, Debug, Default)]
pub struct WorkingMemory {
    elements: BTreeMap<WmeId, Wme>,
    next_id: u64,
}

impl WorkingMemory {
    /// An empty working memory whose first time tag will be 1.
    pub fn new() -> Self {
        WorkingMemory {
            elements: BTreeMap::new(),
            next_id: 1,
        }
    }

    /// Rebuild a working memory from live `(id, wme)` pairs and the next
    /// time tag to hand out — the restore half of session snapshotting.
    /// `next_id` must be beyond every live id so time tags stay unique.
    pub fn from_parts(elements: impl IntoIterator<Item = (WmeId, Wme)>, next_id: u64) -> Self {
        let elements: BTreeMap<WmeId, Wme> = elements.into_iter().collect();
        assert!(
            elements
                .keys()
                .next_back()
                .is_none_or(|last| last.0 < next_id),
            "next_id must exceed every live time tag"
        );
        WorkingMemory { elements, next_id }
    }

    /// Insert a WME, assigning it a fresh time tag.
    pub fn add(&mut self, wme: Wme) -> WmeId {
        let id = WmeId(self.next_id);
        self.next_id += 1;
        self.elements.insert(id, wme);
        id
    }

    /// Remove the WME with the given id, returning it if present.
    pub fn remove(&mut self, id: WmeId) -> Option<Wme> {
        self.elements.remove(&id)
    }

    /// Look up a live WME.
    pub fn get(&self, id: WmeId) -> Option<&Wme> {
        self.elements.get(&id)
    }

    /// Number of live WMEs.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// True if no WMEs are live.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Iterate `(id, wme)` pairs in time-tag order.
    pub fn iter(&self) -> impl Iterator<Item = (WmeId, &Wme)> {
        self.elements.iter().map(|(id, w)| (*id, w))
    }

    /// The time tag that the *next* added WME will receive.
    pub fn next_id(&self) -> WmeId {
        WmeId(self.next_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(name: &str, color: &str) -> Wme {
        Wme::new("block", &[("name", name.into()), ("color", color.into())])
    }

    #[test]
    fn wme_attribute_order_is_canonical() {
        let a = Wme::new("b", &[("x", 1.into()), ("y", 2.into())]);
        let b = Wme::new("b", &[("y", 2.into()), ("x", 1.into())]);
        assert_eq!(a, b);
        let attrs: Vec<_> = a.attrs().collect();
        assert_eq!(attrs.len(), 2);
    }

    #[test]
    fn duplicate_attribute_last_wins() {
        let w = Wme::new("b", &[("x", 1.into()), ("x", 2.into())]);
        assert_eq!(w.get(intern("x")), Some(Value::Int(2)));
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn get_missing_attribute_is_none() {
        let w = block("b1", "blue");
        assert_eq!(w.get(intern("absent")), None);
    }

    #[test]
    fn set_overwrites() {
        let mut w = block("b1", "blue");
        w.set(intern("color"), Value::sym("red"));
        assert_eq!(w.get(intern("color")), Some(Value::sym("red")));
    }

    #[test]
    fn display_format() {
        let w = block("b1", "blue");
        assert_eq!(w.to_string(), "(block ^color blue ^name b1)");
    }

    #[test]
    fn display_is_lexicographic_even_when_id_order_differs() {
        // Intern the lexicographically-smaller attribute *second*, so id
        // order and string order disagree; Display must still sort by
        // string while attrs() iterates id order.
        let w = Wme::new(
            "probe",
            &[("zz-disp-probe", 1.into()), ("aa-disp-probe", 2.into())],
        );
        assert_eq!(w.to_string(), "(probe ^aa-disp-probe 2 ^zz-disp-probe 1)");
        let ids: Vec<u32> = w.attrs().map(|(a, _)| a.index()).collect();
        assert!(ids.windows(2).all(|p| p[0] < p[1]), "attrs id-sorted");
    }

    #[test]
    fn wm_assigns_increasing_time_tags() {
        let mut wm = WorkingMemory::new();
        let a = wm.add(block("b1", "blue"));
        let b = wm.add(block("b2", "red"));
        assert!(a < b);
        assert_eq!(a, WmeId(1));
        assert_eq!(b, WmeId(2));
    }

    #[test]
    fn wm_remove_returns_element_and_frees_slot() {
        let mut wm = WorkingMemory::new();
        let id = wm.add(block("b1", "blue"));
        assert_eq!(wm.len(), 1);
        let w = wm.remove(id).unwrap();
        assert_eq!(w.get(intern("name")), Some(Value::sym("b1")));
        assert!(wm.is_empty());
        assert!(wm.remove(id).is_none());
    }

    #[test]
    fn wm_time_tags_never_reused_after_removal() {
        let mut wm = WorkingMemory::new();
        let a = wm.add(block("b1", "blue"));
        wm.remove(a);
        let b = wm.add(block("b1", "blue"));
        assert_ne!(a, b);
        assert!(b > a);
    }

    #[test]
    fn sign_flip() {
        assert_eq!(Sign::Plus.flipped(), Sign::Minus);
        assert_eq!(Sign::Minus.flipped(), Sign::Plus);
        assert_eq!(Sign::Plus.to_string(), "+");
    }

    #[test]
    fn wm_iteration_in_time_tag_order() {
        let mut wm = WorkingMemory::new();
        for i in 0..5 {
            wm.add(Wme::new("c", &[("i", i.into())]));
        }
        let ids: Vec<u64> = wm.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![1, 2, 3, 4, 5]);
    }
}
