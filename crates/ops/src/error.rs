//! Error types for the OPS5 front end and interpreter.

use std::fmt;

/// A parse error with line/column location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Errors raised while building or running a production system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpsError {
    /// Syntax error in textual OPS5 source.
    Parse(ParseError),
    /// A structurally invalid production (name, reason).
    InvalidProduction(String, String),
    /// Two productions share a name.
    DuplicateProduction(String),
    /// RHS referenced a variable with no LHS binding.
    UnboundVariable(String),
    /// RHS arithmetic failure (type mismatch, modulo by zero).
    Arithmetic(String),
    /// A `remove`/`modify` referred to a WME already gone this cycle.
    StaleWme(String),
    /// A `(call …)` named a function never registered on the interpreter.
    UnknownFunction(String),
}

impl fmt::Display for OpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpsError::Parse(e) => write!(f, "{e}"),
            OpsError::InvalidProduction(name, msg) => {
                write!(f, "invalid production {name}: {msg}")
            }
            OpsError::DuplicateProduction(name) => {
                write!(f, "duplicate production name {name}")
            }
            OpsError::UnboundVariable(v) => write!(f, "unbound variable <{v}>"),
            OpsError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            OpsError::StaleWme(msg) => write!(f, "stale working-memory reference: {msg}"),
            OpsError::UnknownFunction(name) => {
                write!(f, "(call {name}) but no such function is registered")
            }
        }
    }
}

impl std::error::Error for OpsError {}

impl From<ParseError> for OpsError {
    fn from(e: ParseError) -> Self {
        OpsError::Parse(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError {
            line: 3,
            col: 14,
            message: "expected ')'".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:14: expected ')'");
    }

    #[test]
    fn ops_error_wraps_parse_error() {
        let pe = ParseError {
            line: 1,
            col: 1,
            message: "x".into(),
        };
        let oe: OpsError = pe.clone().into();
        assert_eq!(oe, OpsError::Parse(pe));
    }
}
