//! Error types for the OPS5 front end and interpreter.

use std::fmt;

/// A parse error with line/column location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "parse error at {}:{}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// A failure inside a [`crate::Matcher`] during the match phase.
///
/// Sequential matchers are infallible; the variants here describe ways a
/// *distributed* matcher (threads, message passing) can die mid-cycle.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MatchError {
    /// A match-processor thread panicked (or otherwise exited) before the
    /// cycle's token cascade drained; the conflict set is unreliable.
    WorkerPanicked {
        /// Index of the first dead worker detected.
        worker: usize,
    },
    /// Every match-processor channel disconnected at once (the executor
    /// was already torn down when `process` was called).
    Disconnected,
}

impl fmt::Display for MatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatchError::WorkerPanicked { worker } => {
                write!(f, "match worker {worker} panicked mid-cycle")
            }
            MatchError::Disconnected => write!(f, "all match workers disconnected"),
        }
    }
}

impl std::error::Error for MatchError {}

/// Errors raised while building or running a production system.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum OpsError {
    /// Syntax error in textual OPS5 source.
    Parse(ParseError),
    /// A structurally invalid production (name, reason).
    InvalidProduction(String, String),
    /// Two productions share a name.
    DuplicateProduction(String),
    /// RHS referenced a variable with no LHS binding.
    UnboundVariable(String),
    /// RHS arithmetic failure (type mismatch, modulo by zero).
    Arithmetic(String),
    /// A `remove`/`modify` referred to a WME already gone this cycle.
    StaleWme(String),
    /// A `(call …)` named a function never registered on the interpreter.
    UnknownFunction(String),
    /// The matcher failed during the match phase (e.g. a worker thread of
    /// a parallel matcher died).
    Match(MatchError),
}

impl fmt::Display for OpsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OpsError::Parse(e) => write!(f, "{e}"),
            OpsError::InvalidProduction(name, msg) => {
                write!(f, "invalid production {name}: {msg}")
            }
            OpsError::DuplicateProduction(name) => {
                write!(f, "duplicate production name {name}")
            }
            OpsError::UnboundVariable(v) => write!(f, "unbound variable <{v}>"),
            OpsError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            OpsError::StaleWme(msg) => write!(f, "stale working-memory reference: {msg}"),
            OpsError::UnknownFunction(name) => {
                write!(f, "(call {name}) but no such function is registered")
            }
            OpsError::Match(e) => write!(f, "match phase failed: {e}"),
        }
    }
}

impl std::error::Error for OpsError {}

impl From<ParseError> for OpsError {
    fn from(e: ParseError) -> Self {
        OpsError::Parse(e)
    }
}

impl From<MatchError> for OpsError {
    fn from(e: MatchError) -> Self {
        OpsError::Match(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_location() {
        let e = ParseError {
            line: 3,
            col: 14,
            message: "expected ')'".into(),
        };
        assert_eq!(e.to_string(), "parse error at 3:14: expected ')'");
    }

    #[test]
    fn match_error_display_and_wrap() {
        let e = MatchError::WorkerPanicked { worker: 3 };
        assert_eq!(e.to_string(), "match worker 3 panicked mid-cycle");
        let oe: OpsError = e.clone().into();
        assert_eq!(oe, OpsError::Match(e));
        assert!(oe.to_string().contains("match phase failed"));
    }

    #[test]
    fn ops_error_wraps_parse_error() {
        let pe = ParseError {
            line: 1,
            col: 1,
            message: "x".into(),
        };
        let oe: OpsError = pe.clone().into();
        assert_eq!(oe, OpsError::Parse(pe));
    }
}
