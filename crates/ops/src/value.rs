//! Attribute values: symbols and integers.
//!
//! OPS5 values are symbols or numbers. We restrict numbers to `i64` so that
//! [`Value`] is `Eq + Hash` — a requirement for the hashed token memories at
//! the heart of the paper's mapping (tokens hash on the *values* bound to
//! equality-tested variables).

use crate::symbol::{intern, Symbol};
use std::fmt;

/// A working-memory attribute value.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Value {
    /// A symbolic constant (interned).
    Sym(Symbol),
    /// An integer constant.
    Int(i64),
}

impl Value {
    /// Build a symbolic value from a string.
    pub fn sym(s: &str) -> Self {
        Value::Sym(intern(s))
    }

    /// The integer payload, if this value is numeric.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(i),
            Value::Sym(_) => None,
        }
    }

    /// The symbol payload, if this value is symbolic.
    pub fn as_sym(self) -> Option<Symbol> {
        match self {
            Value::Sym(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// A stable 64-bit fingerprint, used by the distributed hash table to
    /// mix bound values into bucket indices. Symbols and integers occupy
    /// disjoint tag spaces so `Sym(x)` never collides with `Int(x)`.
    pub fn fingerprint(self) -> u64 {
        match self {
            Value::Sym(s) => 0x5349_0000_0000_0000 ^ u64::from(s.index()),
            Value::Int(i) => 0x494e_0000_0000_0000 ^ (i as u64).rotate_left(17),
        }
    }

    /// OPS5 ordered comparison. Integers compare numerically; symbols
    /// compare by string; a symbol and an integer are ordered with all
    /// integers first (OPS5 leaves this unspecified — we pick a total
    /// order so conflict resolution stays deterministic).
    pub fn ops_cmp(self, other: Value) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(&b),
            (Value::Sym(a), Value::Sym(b)) => a.as_str().cmp(b.as_str()),
            (Value::Int(_), Value::Sym(_)) => Ordering::Less,
            (Value::Sym(_), Value::Int(_)) => Ordering::Greater,
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Self {
        Value::Sym(s)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Ordering;

    #[test]
    fn sym_and_int_never_equal() {
        assert_ne!(Value::sym("1"), Value::Int(1));
    }

    #[test]
    fn fingerprints_disjoint_by_tag() {
        // An Int can never fingerprint-collide with a Sym of the same raw payload.
        let s = Value::sym("x");
        let i = Value::Int(i64::from(s.as_sym().unwrap().index()));
        assert_ne!(s.fingerprint(), i.fingerprint());
    }

    #[test]
    fn ops_cmp_orders_ints_numerically() {
        assert_eq!(Value::Int(-3).ops_cmp(Value::Int(7)), Ordering::Less);
        assert_eq!(Value::Int(7).ops_cmp(Value::Int(7)), Ordering::Equal);
    }

    #[test]
    fn ops_cmp_orders_syms_lexically() {
        assert_eq!(
            Value::sym("apple").ops_cmp(Value::sym("zebra")),
            Ordering::Less
        );
    }

    #[test]
    fn ops_cmp_ints_before_syms() {
        assert_eq!(Value::Int(999).ops_cmp(Value::sym("a")), Ordering::Less);
        assert_eq!(Value::sym("a").ops_cmp(Value::Int(999)), Ordering::Greater);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(4i32), Value::Int(4));
        assert_eq!(Value::from("blue"), Value::sym("blue"));
        assert_eq!(Value::from(crate::intern("x")), Value::sym("x"));
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::sym("s").as_int(), None);
        assert_eq!(Value::sym("s").as_sym(), Some(crate::intern("s")));
        assert_eq!(Value::Int(5).as_sym(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::sym("free").to_string(), "free");
    }
}
