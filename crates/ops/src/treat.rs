//! The TREAT match algorithm (Miranker 1987) — the paper's reference \[30\].
//!
//! TREAT is the classic alternative to Rete: it keeps **alpha memories
//! only** (per condition element, the WMEs passing its constant tests) and
//! the **conflict set**, but no beta memories. Joins are recomputed on
//! demand:
//!
//! * when a WME is **added**, new instantiations are found by seeding each
//!   condition element it matches and joining the *other* CEs' alpha
//!   memories;
//! * when a WME is **deleted**, instantiations containing it are simply
//!   dropped from the conflict set — no join work at all, which is TREAT's
//!   celebrated advantage on delete-heavy cycles (and exactly the
//!   multiple-modify traffic of §5.2.2);
//! * negated CEs are handled by filtering candidate instantiations against
//!   the negated alpha memories; additions matching a negated CE retract
//!   blocked instantiations, deletions re-derive what they unblocked.
//!   Negation is *positional*: a negated CE sees only the variables bound
//!   by positive CEs that precede it in LHS order, so before testing the
//!   negated memories the instantiation's bindings are restricted to that
//!   visible set — a variable bound by a later positive CE stays an
//!   existential local inside the negation, exactly as in the reference
//!   [`crate::NaiveMatcher`] enumeration.
//!
//! Duplicate-free enumeration uses the standard seeding discipline: when
//! the new WME is pinned at position *k*, positions before *k* join
//! against their memories *without* the new WME and positions after *k*
//! with it, so every combination is generated at exactly one seed.

use crate::cond::{ConditionElement, TestKind};
use crate::matcher::{sort_conflict_set, Instantiation, Matcher, WmeChange};
use crate::production::{Production, ProductionId, Program};
use crate::symbol::Symbol;
use crate::value::Value;
use crate::wme::{Sign, Wme, WmeId};
use mpps_telemetry::{MetricSink, MetricsRegistry, NullMetrics};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Metric names emitted by the TREAT profiling hooks — the per-rule
/// analogue of the Rete kernel's per-node series. Keys are production
/// indices.
pub mod metric {
    /// Instantiations derived into the conflict set, keyed by production.
    pub const RULE_ACTIVATIONS: &str = "rule.activations";
    /// Instantiations dropped (WME deletion or a violated negation),
    /// keyed by production.
    pub const RULE_RETRACTIONS: &str = "rule.retractions";
    /// WMEs inserted into this production's alpha memories, keyed by
    /// production.
    pub const RULE_ALPHA_INSERTS: &str = "rule.alpha-inserts";
    /// Seeded join enumerations started, keyed by production.
    pub const RULE_SEED_JOINS: &str = "rule.seed-joins";
    /// Cumulative sampled match nanoseconds, keyed by production. One
    /// `(production, change)` body in [`SAMPLE_EVERY`](super::SAMPLE_EVERY)
    /// is timed and scaled back up.
    pub const RULE_MATCH_NS: &str = "rule.match-ns";
}

/// Sampling gate for per-rule match timing (same discipline as the Rete
/// kernel's per-node gate).
pub const SAMPLE_EVERY: u32 = 16;

/// A negated condition element with its binding context.
struct NegatedCe {
    /// Index into the production's LHS.
    lhs_idx: usize,
    /// The condition element.
    ce: ConditionElement,
    /// Variables bound by positive CEs *earlier in LHS order* — the only
    /// bindings this negation may observe. Everything else it mentions is
    /// an existential local.
    visible: HashSet<Symbol>,
}

impl NegatedCe {
    /// Does `wme` violate this negation for an instantiation carrying
    /// `bindings`? Only the visible bindings participate in the test.
    fn blocked_by(&self, wme: &Wme, bindings: &HashMap<Symbol, Value>) -> bool {
        // Common case: every binding is visible — test directly without
        // building a restricted copy.
        if bindings.keys().all(|var| self.visible.contains(var)) {
            return self.ce.match_with_bindings(wme, bindings).is_some();
        }
        let restricted: HashMap<Symbol, Value> = bindings
            .iter()
            .filter(|(var, _)| self.visible.contains(*var))
            .map(|(&var, &val)| (var, val))
            .collect();
        self.ce.match_with_bindings(wme, &restricted).is_some()
    }
}

/// Per-production compiled view: positive and negated CEs in LHS order.
struct CompiledProduction {
    /// `(lhs index, CE)` of positive condition elements, in order.
    positive: Vec<(usize, ConditionElement)>,
    /// Negated condition elements, each with its visible-variable set.
    negative: Vec<NegatedCe>,
}

/// Alpha memory of one condition element: WMEs passing its constant tests.
/// Entries share one [`Arc`] per working-memory element, so a WME matching
/// several CEs (the common case) is stored once, not cloned per memory.
#[derive(Default)]
struct AlphaMemory {
    entries: Vec<(WmeId, Arc<Wme>)>,
}

impl AlphaMemory {
    fn add(&mut self, id: WmeId, wme: &Arc<Wme>) {
        self.entries.push((id, wme.clone()));
    }

    fn remove(&mut self, id: WmeId) {
        self.entries.retain(|(e, _)| *e != id);
    }
}

/// The TREAT matcher: alpha memories + conflict set, no beta state.
///
/// `M` is the profiling sink: [`NullMetrics`] (the default — hooks
/// monomorphize away) or a collecting sink installed via
/// [`TreatMatcher::with_metrics`], recording per-rule activation,
/// retraction, and sampled match-time series.
pub struct TreatMatcher<M: MetricSink = NullMetrics> {
    productions: Vec<CompiledProduction>,
    /// `memories[p]` maps an LHS index to its alpha memory.
    memories: Vec<HashMap<usize, AlphaMemory>>,
    conflict: HashMap<(ProductionId, Vec<WmeId>), Instantiation>,
    metrics: M,
    sample_tick: u32,
}

impl TreatMatcher {
    /// Build an unprofiled TREAT matcher for `program`.
    pub fn new(program: &Program) -> Self {
        Self::with_metrics(program, NullMetrics)
    }
}

impl<M: MetricSink> TreatMatcher<M> {
    /// Build a TREAT matcher recording per-rule metrics into `metrics`.
    pub fn with_metrics(program: &Program, metrics: M) -> Self {
        let mut productions = Vec::with_capacity(program.len());
        let mut memories = Vec::with_capacity(program.len());
        for (_, prod) in program.iter() {
            productions.push(compile(prod));
            let mems: HashMap<usize, AlphaMemory> = prod
                .lhs
                .iter()
                .enumerate()
                .map(|(i, _)| (i, AlphaMemory::default()))
                .collect();
            memories.push(mems);
        }
        TreatMatcher {
            productions,
            memories,
            conflict: HashMap::new(),
            metrics,
            sample_tick: 0,
        }
    }

    /// The profiling sink.
    pub fn metrics(&self) -> &M {
        &self.metrics
    }

    /// Snapshot the recorded metrics as a registry (empty when `M` is
    /// [`NullMetrics`]).
    pub fn profile(&self) -> MetricsRegistry {
        self.metrics.export()
    }

    /// Enumerate instantiations of production `p` with the WME `(id, wme)`
    /// pinned at positive position `seed` (index into `positive`).
    /// `exclude_new` controls the duplicate discipline (see module docs).
    fn seeded_instantiations(
        &self,
        p: usize,
        seed: usize,
        id: WmeId,
        wme: &Wme,
        out: &mut Vec<Instantiation>,
    ) {
        let mems = &self.memories[p];
        let mut chosen: Vec<WmeId> = Vec::with_capacity(self.productions[p].positive.len());
        self.extend_positive(p, seed, id, wme, 0, &mut chosen, &HashMap::new(), mems, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn extend_positive(
        &self,
        p: usize,
        seed: usize,
        seed_id: WmeId,
        seed_wme: &Wme,
        pos: usize,
        chosen: &mut Vec<WmeId>,
        bindings: &HashMap<Symbol, Value>,
        mems: &HashMap<usize, AlphaMemory>,
        out: &mut Vec<Instantiation>,
    ) {
        let compiled = &self.productions[p];
        if pos == compiled.positive.len() {
            // All positive CEs satisfied; check the negated ones.
            if self.negations_clear(p, bindings) {
                out.push(Instantiation {
                    production: ProductionId(p as u32),
                    wme_ids: chosen.clone(),
                    bindings: bindings.clone(),
                });
            }
            return;
        }
        let (lhs_idx, ce) = &compiled.positive[pos];
        if pos == seed {
            if let Some(next) = ce.match_with_bindings(seed_wme, bindings) {
                chosen.push(seed_id);
                self.extend_positive(
                    p,
                    seed,
                    seed_id,
                    seed_wme,
                    pos + 1,
                    chosen,
                    &next,
                    mems,
                    out,
                );
                chosen.pop();
            }
            return;
        }
        let memory = &mems[lhs_idx];
        for (cand_id, cand) in &memory.entries {
            // Duplicate discipline: before the seed position the new WME
            // is invisible (an earlier seeding already covers those
            // combinations).
            if pos < seed && *cand_id == seed_id {
                continue;
            }
            if let Some(next) = ce.match_with_bindings(cand, bindings) {
                chosen.push(*cand_id);
                self.extend_positive(
                    p,
                    seed,
                    seed_id,
                    seed_wme,
                    pos + 1,
                    chosen,
                    &next,
                    mems,
                    out,
                );
                chosen.pop();
            }
        }
    }

    /// True when no WME in the negated memories matches under the bindings
    /// each negation is allowed to see (its visible-variable restriction).
    fn negations_clear(&self, p: usize, bindings: &HashMap<Symbol, Value>) -> bool {
        let compiled = &self.productions[p];
        let mems = &self.memories[p];
        compiled.negative.iter().all(|neg| {
            !mems[&neg.lhs_idx]
                .entries
                .iter()
                .any(|(_, w)| neg.blocked_by(w, bindings))
        })
    }

    /// Recompute production `p`'s complete instantiation set (used after a
    /// deletion unblocks a negated CE).
    fn all_instantiations(&self, p: usize) -> Vec<Instantiation> {
        let compiled = &self.productions[p];
        if compiled.positive.is_empty() {
            return Vec::new();
        }
        // Seeding at position 0 with each WME of its memory, with the
        // "new" id set to an impossible value so nothing is excluded.
        let mems = &self.memories[p];
        let first_lhs = compiled.positive[0].0;
        let mut out = Vec::new();
        for (id, wme) in &mems[&first_lhs].entries {
            self.seeded_instantiations(p, 0, *id, wme, &mut out);
        }
        out
    }

    /// One activation in `SAMPLE_EVERY` per `(production, change)` body
    /// is wall-clock timed; returns the timer for this body if sampled.
    fn sample_timer(&mut self) -> Option<std::time::Instant> {
        if !M::ENABLED {
            return None;
        }
        self.sample_tick = self.sample_tick.wrapping_add(1);
        self.sample_tick
            .is_multiple_of(SAMPLE_EVERY)
            .then(std::time::Instant::now)
    }

    fn record_sample(&mut self, p: usize, timer: Option<std::time::Instant>) {
        if let Some(t0) = timer {
            let ns = t0.elapsed().as_nanos() as u64;
            self.metrics
                .add(metric::RULE_MATCH_NS, p as u64, ns * SAMPLE_EVERY as u64);
        }
    }

    fn handle_add(&mut self, id: WmeId, wme: &Arc<Wme>) {
        for p in 0..self.productions.len() {
            let timer = self.sample_timer();
            // Update this production's memories first (a WME may match
            // several CEs). `productions` and `memories` are disjoint
            // fields, so the CE list is walked by reference — no clones.
            let mut matched_pos: Vec<usize> = Vec::new();
            for (i, ce) in &self.productions[p].positive {
                if ce.constant_match(wme) {
                    self.memories[p].get_mut(i).unwrap().add(id, wme);
                    matched_pos.push(*i);
                }
            }
            let mut neg_hits: Vec<usize> = Vec::new();
            for (k, neg) in self.productions[p].negative.iter().enumerate() {
                if neg.ce.constant_match(wme) {
                    self.memories[p].get_mut(&neg.lhs_idx).unwrap().add(id, wme);
                    neg_hits.push(k);
                }
            }
            if M::ENABLED {
                let inserts = (matched_pos.len() + neg_hits.len()) as u64;
                if inserts > 0 {
                    self.metrics
                        .add(metric::RULE_ALPHA_INSERTS, p as u64, inserts);
                }
            }
            // Retractions: the new WME may violate negated CEs of existing
            // instantiations — testing each negation only against the
            // bindings it can see.
            if !neg_hits.is_empty() {
                let negative = &self.productions[p].negative;
                let metrics = &mut self.metrics;
                self.conflict.retain(|(pid, _), inst| {
                    let keep = pid.0 as usize != p
                        || !neg_hits
                            .iter()
                            .any(|&k| negative[k].blocked_by(wme, &inst.bindings));
                    if M::ENABLED && !keep {
                        metrics.add(metric::RULE_RETRACTIONS, p as u64, 1);
                    }
                    keep
                });
            }
            // Assertions: seed each positive position the WME matches.
            let seeds: Vec<usize> = self.productions[p]
                .positive
                .iter()
                .enumerate()
                .filter(|(_, (i, _))| matched_pos.contains(i))
                .map(|(k, _)| k)
                .collect();
            if M::ENABLED && !seeds.is_empty() {
                self.metrics
                    .add(metric::RULE_SEED_JOINS, p as u64, seeds.len() as u64);
            }
            let mut found = Vec::new();
            for k in seeds {
                self.seeded_instantiations(p, k, id, wme, &mut found);
            }
            if M::ENABLED && !found.is_empty() {
                self.metrics
                    .add(metric::RULE_ACTIVATIONS, p as u64, found.len() as u64);
            }
            for inst in found {
                self.conflict.insert(inst.key(), inst);
            }
            self.record_sample(p, timer);
        }
    }

    fn handle_delete(&mut self, id: WmeId) {
        // Drop every instantiation containing the WME: TREAT's cheap path.
        {
            let metrics = &mut self.metrics;
            self.conflict.retain(|(pid, ids), _| {
                let keep = !ids.contains(&id);
                if M::ENABLED && !keep {
                    metrics.add(metric::RULE_RETRACTIONS, pid.0 as u64, 1);
                }
                keep
            });
        }
        for p in 0..self.productions.len() {
            let timer = self.sample_timer();
            let mut unblocked = false;
            let neg_indices: Vec<usize> = self.productions[p]
                .negative
                .iter()
                .map(|neg| neg.lhs_idx)
                .collect();
            for (i, mem) in self.memories[p].iter_mut() {
                let before = mem.entries.len();
                mem.remove(id);
                if mem.entries.len() != before && neg_indices.contains(i) {
                    unblocked = true;
                }
            }
            // A deletion from a negated memory may unblock instantiations:
            // re-derive this production.
            if unblocked {
                for inst in self.all_instantiations(p) {
                    match self.conflict.entry(inst.key()) {
                        std::collections::hash_map::Entry::Occupied(_) => {}
                        std::collections::hash_map::Entry::Vacant(v) => {
                            if M::ENABLED {
                                self.metrics.add(metric::RULE_ACTIVATIONS, p as u64, 1);
                            }
                            v.insert(inst);
                        }
                    }
                }
            }
            self.record_sample(p, timer);
        }
    }
}

fn compile(prod: &Production) -> CompiledProduction {
    let mut positive = Vec::new();
    let mut negative = Vec::new();
    // Variables bound by the positive CEs seen so far, in LHS order.
    let mut bound: HashSet<Symbol> = HashSet::new();
    for (i, ce) in prod.lhs.iter().enumerate() {
        if ce.negated {
            negative.push(NegatedCe {
                lhs_idx: i,
                ce: ce.clone(),
                visible: bound.clone(),
            });
        } else {
            for t in &ce.tests {
                if let TestKind::Variable(v) = t.kind {
                    bound.insert(v);
                }
            }
            positive.push((i, ce.clone()));
        }
    }
    CompiledProduction { positive, negative }
}

impl<M: MetricSink> Matcher for TreatMatcher<M> {
    fn process(&mut self, changes: &[WmeChange]) {
        for c in changes {
            match c.sign {
                // One clone per change to share the WME across all the
                // alpha memories it lands in.
                Sign::Plus => self.handle_add(c.id, &Arc::new(c.wme.clone())),
                Sign::Minus => self.handle_delete(c.id),
            }
        }
    }

    fn conflict_set(&self) -> Vec<Instantiation> {
        let mut out: Vec<Instantiation> = self.conflict.values().cloned().collect();
        sort_conflict_set(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::NaiveMatcher;
    use crate::parser::parse_program;
    use mpps_telemetry::MetricsRegistry;

    fn add(id: u64, wme: Wme) -> WmeChange {
        WmeChange::add(WmeId(id), wme)
    }

    fn del(id: u64, wme: Wme) -> WmeChange {
        WmeChange::remove(WmeId(id), wme)
    }

    fn agree(src: &str, batches: &[Vec<WmeChange>]) {
        let prog = parse_program(src).unwrap();
        let mut naive = NaiveMatcher::new(prog.clone());
        let mut treat = TreatMatcher::new(&prog);
        for batch in batches {
            naive.process(batch);
            treat.process(batch);
            assert_eq!(
                naive.conflict_set(),
                treat.conflict_set(),
                "diverged after batch"
            );
        }
    }

    const BLUE: &str = r#"
        (p clear-the-blue-block
           (block ^name <b2> ^color blue)
           (block ^name <b2> ^on <b1>)
           (hand ^state free)
           -->
           (remove 2))
    "#;

    #[test]
    fn matches_paper_example() {
        agree(
            BLUE,
            &[vec![
                add(
                    1,
                    Wme::new("block", &[("name", "b1".into()), ("color", "blue".into())]),
                ),
                add(
                    2,
                    Wme::new("block", &[("name", "b1".into()), ("on", "t".into())]),
                ),
                add(3, Wme::new("hand", &[("state", "free".into())])),
            ]],
        );
    }

    #[test]
    fn deletion_is_cheap_and_correct() {
        let hand = Wme::new("hand", &[("state", "free".into())]);
        agree(
            BLUE,
            &[
                vec![
                    add(
                        1,
                        Wme::new("block", &[("name", "b1".into()), ("color", "blue".into())]),
                    ),
                    add(
                        2,
                        Wme::new("block", &[("name", "b1".into()), ("on", "t".into())]),
                    ),
                    add(3, hand.clone()),
                ],
                vec![del(3, hand)],
                vec![add(4, Wme::new("hand", &[("state", "free".into())]))],
            ],
        );
    }

    #[test]
    fn self_join_no_duplicates() {
        agree(
            "(p selfj (node ^id <x>) (node ^id <x>) --> (remove 1))",
            &[
                vec![add(1, Wme::new("node", &[("id", 1.into())]))],
                vec![add(2, Wme::new("node", &[("id", 1.into())]))],
                vec![del(1, Wme::new("node", &[("id", 1.into())]))],
            ],
        );
    }

    #[test]
    fn negation_block_and_unblock() {
        let edge = Wme::new("edge", &[("to", 7.into())]);
        agree(
            "(p lonely (node ^id <n>) -(edge ^to <n>) --> (remove 1))",
            &[
                vec![add(1, Wme::new("node", &[("id", 7.into())]))],
                vec![add(2, edge.clone())],
                vec![del(2, edge)],
            ],
        );
    }

    #[test]
    fn cross_product_counts() {
        let prog = parse_program("(p cross (a ^v <x>) (b ^w <y>) --> (remove 1))").unwrap();
        let mut treat = TreatMatcher::new(&prog);
        let mut changes = Vec::new();
        for i in 0..4 {
            changes.push(add(1 + i, Wme::new("a", &[("v", (i as i64).into())])));
        }
        for i in 0..5 {
            changes.push(add(10 + i, Wme::new("b", &[("w", (i as i64).into())])));
        }
        treat.process(&changes);
        assert_eq!(treat.conflict_set().len(), 20);
    }

    #[test]
    fn batch_of_adds_equivalent_to_singles() {
        let prog = parse_program("(p j (a ^v <x>) (b ^v <x>) --> (remove 1))").unwrap();
        let mut together = TreatMatcher::new(&prog);
        let mut one_by_one = TreatMatcher::new(&prog);
        let changes = vec![
            add(1, Wme::new("a", &[("v", 1.into())])),
            add(2, Wme::new("b", &[("v", 1.into())])),
            add(3, Wme::new("a", &[("v", 1.into())])),
        ];
        together.process(&changes);
        for c in &changes {
            one_by_one.process(std::slice::from_ref(c));
        }
        assert_eq!(together.conflict_set(), one_by_one.conflict_set());
        assert_eq!(together.conflict_set().len(), 2);
    }

    #[test]
    fn negation_sees_only_earlier_positive_bindings() {
        // Regression (found by the differential fuzzer): `<v>` is bound by
        // a positive CE *after* the negation, so inside the negation it is
        // an existential local — ANY (b ^q …) WME blocks, not just one
        // whose q equals the later binding. The old TREAT evaluated
        // negations with the instantiation's full bindings and wrongly
        // kept the instantiation alive when q ≠ r.
        agree(
            "(p diverge (a) -(b ^q <v>) (c ^r <v>) --> (remove 1))",
            &[vec![
                add(1, Wme::new("c", &[("r", 1.into())])),
                add(2, Wme::new("a", &[])),
                add(3, Wme::new("b", &[("q", 2.into())])),
            ]],
        );
    }

    #[test]
    fn negation_visibility_on_add_retraction_path() {
        // Same visibility rule on the incremental path: the blocking WME
        // arrives after the instantiation exists, so the retraction filter
        // must also restrict bindings to the negation's visible set.
        agree(
            "(p diverge (a) -(b ^q <v>) (c ^r <v>) --> (remove 1))",
            &[
                vec![
                    add(1, Wme::new("c", &[("r", 1.into())])),
                    add(2, Wme::new("a", &[])),
                ],
                vec![add(3, Wme::new("b", &[("q", 2.into())]))],
                vec![del(3, Wme::new("b", &[("q", 2.into())]))],
            ],
        );
    }

    #[test]
    fn leading_negated_ce_agrees_with_naive() {
        // A negated CE before any positive CE sees no bindings at all.
        let inhibit = Wme::new("inhibit", &[("on", "yes".into())]);
        agree(
            "(p guard -(inhibit ^on <w>) (job ^id <j>) --> (remove 1))",
            &[
                vec![add(1, Wme::new("job", &[("id", 1.into())]))],
                vec![add(2, inhibit.clone())],
                vec![del(2, inhibit)],
            ],
        );
    }

    #[test]
    fn profiled_treat_matches_identically_and_records_per_rule_metrics() {
        let prog =
            parse_program("(p lonely (node ^id <n>) -(edge ^to <n>) --> (remove 1))").unwrap();
        let mut plain = TreatMatcher::new(&prog);
        let mut profiled = TreatMatcher::with_metrics(&prog, MetricsRegistry::new());
        let batches = vec![
            vec![add(1, Wme::new("node", &[("id", 7.into())]))],
            vec![add(2, Wme::new("edge", &[("to", 7.into())]))],
            vec![del(2, Wme::new("edge", &[("to", 7.into())]))],
        ];
        for batch in &batches {
            plain.process(batch);
            profiled.process(batch);
            assert_eq!(plain.conflict_set(), profiled.conflict_set());
        }
        let reg = profiled.profile();
        // Derived once on add, once on the unblocking delete; retracted
        // once by the blocking edge.
        assert_eq!(reg.counter_total(metric::RULE_ACTIVATIONS), 2);
        assert_eq!(reg.counter_total(metric::RULE_RETRACTIONS), 1);
        assert!(reg.counter_total(metric::RULE_ALPHA_INSERTS) >= 2);
        assert!(reg.counter_total(metric::RULE_SEED_JOINS) >= 1);
        assert!(plain.profile().is_empty());
    }

    #[test]
    fn modify_heavy_sequence_agrees_with_naive() {
        // The multiple-modify pattern: repeated delete+add of the same
        // logical WME (fresh ids), where TREAT's cheap deletion shines.
        let mut batches = Vec::new();
        batches.push(vec![
            add(1, Wme::new("counter", &[("v", 0.into())])),
            add(2, Wme::new("watch", &[("on", "yes".into())])),
        ]);
        let mut live = 1u64;
        for (next, step) in (3u64..).zip(1i64..6) {
            batches.push(vec![
                del(live, Wme::new("counter", &[("v", (step - 1).into())])),
                add(next, Wme::new("counter", &[("v", step.into())])),
            ]);
            live = next;
        }
        agree(
            "(p watch (watch ^on yes) (counter ^v <v>) --> (remove 2))",
            &batches,
        );
    }
}
