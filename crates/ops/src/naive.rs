//! The brute-force reference matcher.
//!
//! `NaiveMatcher` recomputes the full conflict set from scratch after every
//! batch of WM changes by enumerating all WME combinations per production.
//! It is exponentially slower than Rete on real programs, but its semantics
//! are transparently correct, which makes it the oracle every other matcher
//! in the workspace is property-tested against.

use crate::matcher::{sort_conflict_set, Instantiation, Matcher, WmeChange};
use crate::production::{Production, Program};
use crate::symbol::Symbol;
use crate::value::Value;
use crate::wme::{Sign, Wme, WmeId};
use std::collections::{BTreeMap, HashMap};

/// Brute-force matcher: the semantic oracle.
pub struct NaiveMatcher {
    program: Program,
    wm: BTreeMap<WmeId, Wme>,
    conflict_set: Vec<Instantiation>,
}

impl NaiveMatcher {
    /// Create a matcher for `program` over an initially empty WM.
    pub fn new(program: Program) -> Self {
        NaiveMatcher {
            program,
            wm: BTreeMap::new(),
            conflict_set: Vec::new(),
        }
    }

    fn recompute(&mut self) {
        let mut out = Vec::new();
        for (pid, prod) in self.program.iter() {
            let mut partial = Vec::new();
            Self::extend(
                &self.wm,
                prod,
                0,
                &mut partial,
                &HashMap::new(),
                &mut |wme_ids, bindings| {
                    out.push(Instantiation {
                        production: pid,
                        wme_ids: wme_ids.to_vec(),
                        bindings: bindings.clone(),
                    });
                },
            );
        }
        sort_conflict_set(&mut out);
        out.dedup();
        self.conflict_set = out;
    }

    /// Depth-first enumeration over the CEs of `prod` starting at `ce_idx`,
    /// with `matched` holding the WME ids consumed by earlier positive CEs.
    fn extend(
        wm: &BTreeMap<WmeId, Wme>,
        prod: &Production,
        ce_idx: usize,
        matched: &mut Vec<WmeId>,
        bindings: &HashMap<Symbol, Value>,
        emit: &mut impl FnMut(&[WmeId], &HashMap<Symbol, Value>),
    ) {
        if ce_idx == prod.lhs.len() {
            emit(matched, bindings);
            return;
        }
        let ce = &prod.lhs[ce_idx];
        if ce.negated {
            // Negated CE: succeeds iff no WME matches under the current
            // bindings. Local (existential) variables don't escape.
            let blocked = wm
                .values()
                .any(|w| ce.match_with_bindings(w, bindings).is_some());
            if !blocked {
                Self::extend(wm, prod, ce_idx + 1, matched, bindings, emit);
            }
        } else {
            for (&id, w) in wm.iter() {
                if let Some(next) = ce.match_with_bindings(w, bindings) {
                    matched.push(id);
                    Self::extend(wm, prod, ce_idx + 1, matched, &next, emit);
                    matched.pop();
                }
            }
        }
    }

    /// Current number of live WMEs (visible for tests).
    pub fn wm_len(&self) -> usize {
        self.wm.len()
    }
}

impl Matcher for NaiveMatcher {
    fn process(&mut self, changes: &[WmeChange]) {
        for c in changes {
            match c.sign {
                Sign::Plus => {
                    self.wm.insert(c.id, c.wme.clone());
                }
                Sign::Minus => {
                    self.wm.remove(&c.id);
                }
            }
        }
        self.recompute();
    }

    fn conflict_set(&self) -> Vec<Instantiation> {
        self.conflict_set.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::symbol::intern;

    fn changes_add(start: u64, wmes: Vec<Wme>) -> Vec<WmeChange> {
        wmes.into_iter()
            .enumerate()
            .map(|(i, w)| WmeChange::add(WmeId(start + i as u64), w))
            .collect()
    }

    fn blue_block_program() -> Program {
        parse_program(
            r#"
            (p clear-the-blue-block
               (block ^name <b2> ^color blue)
               (block ^name <b2> ^on <b1>)
               (hand ^state free)
               -->
               (remove 2))
            "#,
        )
        .unwrap()
    }

    #[test]
    fn paper_figure_2_1_instantiation() {
        // The exact example from Figure 2-1 of the paper.
        let mut m = NaiveMatcher::new(blue_block_program());
        m.process(&changes_add(
            1,
            vec![
                Wme::new("block", &[("name", "b1".into()), ("color", "blue".into())]),
                Wme::new("block", &[("name", "b1".into()), ("on", "table".into())]),
                Wme::new(
                    "hand",
                    &[("state", "free".into()), ("name", "robot-1-hand".into())],
                ),
            ],
        ));
        let cs = m.conflict_set();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].wme_ids, vec![WmeId(1), WmeId(2), WmeId(3)]);
        assert_eq!(cs[0].bindings[&intern("b2")], Value::sym("b1"));
        assert_eq!(cs[0].bindings[&intern("b1")], Value::sym("table"));
    }

    #[test]
    fn no_match_when_variable_inconsistent() {
        let mut m = NaiveMatcher::new(blue_block_program());
        m.process(&changes_add(
            1,
            vec![
                Wme::new("block", &[("name", "b1".into()), ("color", "blue".into())]),
                // Different block name: <b2> cannot bind consistently.
                Wme::new("block", &[("name", "b9".into()), ("on", "table".into())]),
                Wme::new("hand", &[("state", "free".into())]),
            ],
        ));
        assert!(m.conflict_set().is_empty());
    }

    #[test]
    fn deletion_retracts_instantiation() {
        let mut m = NaiveMatcher::new(blue_block_program());
        let wmes = vec![
            Wme::new("block", &[("name", "b1".into()), ("color", "blue".into())]),
            Wme::new("block", &[("name", "b1".into()), ("on", "table".into())]),
            Wme::new("hand", &[("state", "free".into())]),
        ];
        m.process(&changes_add(1, wmes.clone()));
        assert_eq!(m.conflict_set().len(), 1);
        m.process(&[WmeChange::remove(WmeId(3), wmes[2].clone())]);
        assert!(m.conflict_set().is_empty());
    }

    #[test]
    fn negated_ce_blocks_when_matching_wme_present() {
        let prog = parse_program(
            r#"
            (p no-busy-hand
               (block ^name <b>)
               -(hand ^state busy)
               -->
               (remove 1))
            "#,
        )
        .unwrap();
        let mut m = NaiveMatcher::new(prog);
        m.process(&changes_add(
            1,
            vec![Wme::new("block", &[("name", "b1".into())])],
        ));
        assert_eq!(m.conflict_set().len(), 1);
        m.process(&changes_add(
            2,
            vec![Wme::new("hand", &[("state", "busy".into())])],
        ));
        assert!(m.conflict_set().is_empty());
    }

    #[test]
    fn negated_ce_sees_earlier_bindings() {
        let prog = parse_program(
            r#"
            (p unique-color
               (block ^color <c>)
               -(marker ^color <c>)
               -->
               (remove 1))
            "#,
        )
        .unwrap();
        let mut m = NaiveMatcher::new(prog);
        m.process(&changes_add(
            1,
            vec![
                Wme::new("block", &[("color", "blue".into())]),
                Wme::new("block", &[("color", "red".into())]),
                Wme::new("marker", &[("color", "blue".into())]),
            ],
        ));
        let cs = m.conflict_set();
        // Only the red block survives the negation.
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].bindings[&intern("c")], Value::sym("red"));
    }

    #[test]
    fn cross_product_enumerates_all_pairs() {
        let prog = parse_program(
            r#"
            (p pair-up
               (team ^side left ^name <a>)
               (team ^side right ^name <b>)
               -->
               (remove 1))
            "#,
        )
        .unwrap();
        let mut m = NaiveMatcher::new(prog);
        let mut wmes = Vec::new();
        for i in 0..3 {
            wmes.push(Wme::new(
                "team",
                &[("side", "left".into()), ("name", i.into())],
            ));
        }
        for i in 0..4 {
            wmes.push(Wme::new(
                "team",
                &[("side", "right".into()), ("name", (100 + i).into())],
            ));
        }
        m.process(&changes_add(1, wmes));
        assert_eq!(m.conflict_set().len(), 12);
    }

    #[test]
    fn same_wme_may_match_multiple_ces() {
        // OPS5 allows one WME to satisfy several CEs of one instantiation.
        let prog = parse_program(
            r#"
            (p self-join
               (node ^id <x>)
               (node ^id <x>)
               -->
               (remove 1))
            "#,
        )
        .unwrap();
        let mut m = NaiveMatcher::new(prog);
        m.process(&changes_add(1, vec![Wme::new("node", &[("id", 1.into())])]));
        assert_eq!(m.conflict_set().len(), 1);
        assert_eq!(m.conflict_set()[0].wme_ids, vec![WmeId(1), WmeId(1)]);
    }

    #[test]
    fn idempotent_reprocessing_of_empty_delta() {
        let mut m = NaiveMatcher::new(blue_block_program());
        m.process(&changes_add(
            1,
            vec![
                Wme::new("block", &[("name", "b1".into()), ("color", "blue".into())]),
                Wme::new("block", &[("name", "b1".into()), ("on", "t".into())]),
                Wme::new("hand", &[("state", "free".into())]),
            ],
        ));
        let before = m.conflict_set();
        m.process(&[]);
        assert_eq!(before, m.conflict_set());
    }
}
