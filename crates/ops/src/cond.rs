//! Condition elements: the patterns on a production's left-hand side.
//!
//! A condition element (CE) names a WME class and lists per-attribute tests.
//! Tests come in three kinds (§2.1 of the paper):
//!
//! * **constant tests** — compare an attribute against a literal with one of
//!   the OPS5 predicates (`=`, `<>`, `<`, `<=`, `>`, `>=`);
//! * **variable (equality) tests** — bind a variable on first occurrence and
//!   require consistency on later occurrences; these are the tests the
//!   Rete two-input nodes evaluate and the distributed hash table hashes on;
//! * **variable-predicate tests** — compare against an already-bound
//!   variable with a non-equality predicate (e.g. `^size > <s>`).
//!
//! A CE may be negated; a negated CE is satisfied when *no* WME matches it.

use crate::symbol::Symbol;
use crate::value::Value;
use crate::wme::Wme;
use std::collections::HashMap;
use std::fmt;

/// An OPS5 comparison predicate.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Predicate {
    /// `=` — equality (the default when a bare constant is written).
    Eq,
    /// `<>` — inequality.
    Ne,
    /// `<` — numeric/symbolic less-than.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl Predicate {
    /// Apply the predicate to two values using OPS5's total order.
    pub fn eval(self, lhs: Value, rhs: Value) -> bool {
        use std::cmp::Ordering::*;
        let ord = lhs.ops_cmp(rhs);
        match self {
            Predicate::Eq => lhs == rhs,
            Predicate::Ne => lhs != rhs,
            Predicate::Lt => ord == Less,
            Predicate::Le => ord != Greater,
            Predicate::Gt => ord == Greater,
            Predicate::Ge => ord != Less,
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Predicate::Eq => "=",
            Predicate::Ne => "<>",
            Predicate::Lt => "<",
            Predicate::Le => "<=",
            Predicate::Gt => ">",
            Predicate::Ge => ">=",
        })
    }
}

/// The body of one attribute test.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum TestKind {
    /// Compare the attribute against a literal.
    Constant(Predicate, Value),
    /// OPS5 disjunction `<< v1 v2 … >>`: the attribute must equal one of
    /// the listed constants. Stored sorted and deduplicated (canonical).
    Disjunction(Vec<Value>),
    /// Bind the attribute's value to a variable (or, if the variable is
    /// already bound in this production, require equality with the binding).
    Variable(Symbol),
    /// Compare the attribute against an already-bound variable with a
    /// non-equality predicate, e.g. `^size > <s>`.
    VariablePred(Predicate, Symbol),
}

impl TestKind {
    /// Build a canonical disjunction (sorted, deduplicated).
    pub fn disjunction(mut values: Vec<Value>) -> TestKind {
        values.sort_unstable();
        values.dedup();
        TestKind::Disjunction(values)
    }
}

/// One `^attr test` entry of a condition element.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct AttrTest {
    /// The attribute being tested.
    pub attr: Symbol,
    /// The test applied to its value.
    pub kind: TestKind,
}

impl fmt::Display for AttrTest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            TestKind::Constant(Predicate::Eq, v) => write!(f, "^{} {}", self.attr, v),
            TestKind::Constant(p, v) => write!(f, "^{} {} {}", self.attr, p, v),
            TestKind::Disjunction(vals) => {
                write!(f, "^{} <<", self.attr)?;
                for v in vals {
                    write!(f, " {v}")?;
                }
                write!(f, " >>")
            }
            TestKind::Variable(var) => write!(f, "^{} <{}>", self.attr, var),
            TestKind::VariablePred(p, var) => write!(f, "^{} {} <{}>", self.attr, p, var),
        }
    }
}

/// A condition element: class, attribute tests, and an optional negation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ConditionElement {
    /// Required WME class.
    pub class: Symbol,
    /// Attribute tests, in source order. The same attribute may appear more
    /// than once (conjunction of tests).
    pub tests: Vec<AttrTest>,
    /// True for `-(...)` CEs: satisfied when no WME matches.
    pub negated: bool,
}

impl ConditionElement {
    /// A non-negated CE.
    pub fn positive(class: impl Into<Symbol>, tests: Vec<AttrTest>) -> Self {
        ConditionElement {
            class: class.into(),
            tests,
            negated: false,
        }
    }

    /// A negated CE.
    pub fn negative(class: impl Into<Symbol>, tests: Vec<AttrTest>) -> Self {
        ConditionElement {
            class: class.into(),
            tests,
            negated: true,
        }
    }

    /// Variables this CE *binds* (first-occurrence scan must be done at the
    /// production level; this lists every variable the CE mentions in an
    /// equality position).
    pub fn equality_variables(&self) -> impl Iterator<Item = (Symbol, Symbol)> + '_ {
        self.tests.iter().filter_map(|t| match &t.kind {
            TestKind::Variable(v) => Some((*v, t.attr)),
            _ => None,
        })
    }

    /// Does `wme` pass all the *constant* tests (class + literals +
    /// disjunctions) of this CE? Variable tests are ignored; they are the
    /// join tests.
    pub fn constant_match(&self, wme: &Wme) -> bool {
        if wme.class() != self.class {
            return false;
        }
        self.tests.iter().all(|t| match &t.kind {
            TestKind::Constant(p, v) => wme.get(t.attr).is_some_and(|w| p.eval(w, *v)),
            TestKind::Disjunction(vals) => wme.get(t.attr).is_some_and(|w| vals.contains(&w)),
            // A variable test requires the attribute to be *present*.
            TestKind::Variable(_) | TestKind::VariablePred(..) => wme.get(t.attr).is_some(),
        })
    }

    /// Full match of `wme` against this CE under the partial `bindings`
    /// accumulated from earlier CEs. On success, returns the bindings map
    /// extended with this CE's new variable bindings.
    ///
    /// This is the semantics the naive matcher uses directly and the Rete
    /// engine must agree with.
    pub fn match_with_bindings(
        &self,
        wme: &Wme,
        bindings: &HashMap<Symbol, Value>,
    ) -> Option<HashMap<Symbol, Value>> {
        if !self.constant_match(wme) {
            return None;
        }
        let mut out = bindings.clone();
        for t in &self.tests {
            let wv = wme.get(t.attr)?;
            match &t.kind {
                TestKind::Constant(..) | TestKind::Disjunction(_) => {} // already checked
                TestKind::Variable(var) => match out.get(var) {
                    Some(&bound) if bound != wv => return None,
                    Some(_) => {}
                    None => {
                        out.insert(*var, wv);
                    }
                },
                TestKind::VariablePred(p, var) => {
                    // Unbound comparison variables never match: the parser
                    // rejects forward references, so this only occurs for
                    // malformed hand-built productions.
                    let bound = *out.get(var)?;
                    if !p.eval(wv, bound) {
                        return None;
                    }
                }
            }
        }
        Some(out)
    }

    /// Count of individual tests, used by LEX specificity.
    pub fn test_count(&self) -> usize {
        // The class test counts as one test in OPS5 specificity.
        1 + self.tests.len()
    }
}

impl fmt::Display for ConditionElement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "-")?;
        }
        write!(f, "({}", self.class)?;
        for t in &self.tests {
            write!(f, " {t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::intern;

    fn ce(class: &str, tests: Vec<AttrTest>) -> ConditionElement {
        ConditionElement::positive(class, tests)
    }

    fn test_const(attr: &str, v: Value) -> AttrTest {
        AttrTest {
            attr: intern(attr),
            kind: TestKind::Constant(Predicate::Eq, v),
        }
    }

    fn test_var(attr: &str, var: &str) -> AttrTest {
        AttrTest {
            attr: intern(attr),
            kind: TestKind::Variable(intern(var)),
        }
    }

    #[test]
    fn predicates_on_ints() {
        assert!(Predicate::Lt.eval(1.into(), 2.into()));
        assert!(Predicate::Le.eval(2.into(), 2.into()));
        assert!(Predicate::Gt.eval(3.into(), 2.into()));
        assert!(Predicate::Ge.eval(2.into(), 2.into()));
        assert!(Predicate::Ne.eval(1.into(), 2.into()));
        assert!(Predicate::Eq.eval(2.into(), 2.into()));
        assert!(!Predicate::Eq.eval(1.into(), 2.into()));
    }

    #[test]
    fn predicates_on_syms() {
        assert!(Predicate::Lt.eval("apple".into(), "zebra".into()));
        assert!(Predicate::Ne.eval("a".into(), "b".into()));
    }

    #[test]
    fn constant_match_checks_class() {
        let c = ce("block", vec![]);
        let w = Wme::new("hand", &[]);
        assert!(!c.constant_match(&w));
    }

    #[test]
    fn constant_match_checks_literals() {
        let c = ce("block", vec![test_const("color", "blue".into())]);
        let blue = Wme::new("block", &[("color", "blue".into())]);
        let red = Wme::new("block", &[("color", "red".into())]);
        let none = Wme::new("block", &[]);
        assert!(c.constant_match(&blue));
        assert!(!c.constant_match(&red));
        assert!(!c.constant_match(&none));
    }

    #[test]
    fn variable_test_requires_attribute_presence() {
        let c = ce("block", vec![test_var("on", "x")]);
        let w = Wme::new("block", &[]);
        assert!(!c.constant_match(&w));
    }

    #[test]
    fn match_binds_fresh_variable() {
        let c = ce("block", vec![test_var("name", "b")]);
        let w = Wme::new("block", &[("name", "b1".into())]);
        let b = c.match_with_bindings(&w, &HashMap::new()).unwrap();
        assert_eq!(b[&intern("b")], Value::sym("b1"));
    }

    #[test]
    fn match_requires_consistency_with_existing_binding() {
        let c = ce("block", vec![test_var("name", "b")]);
        let w = Wme::new("block", &[("name", "b1".into())]);
        let mut pre = HashMap::new();
        pre.insert(intern("b"), Value::sym("b1"));
        assert!(c.match_with_bindings(&w, &pre).is_some());
        pre.insert(intern("b"), Value::sym("b2"));
        assert!(c.match_with_bindings(&w, &pre).is_none());
    }

    #[test]
    fn same_variable_twice_in_one_ce_must_agree() {
        let c = ce("pair", vec![test_var("a", "x"), test_var("b", "x")]);
        let same = Wme::new("pair", &[("a", 1.into()), ("b", 1.into())]);
        let diff = Wme::new("pair", &[("a", 1.into()), ("b", 2.into())]);
        assert!(c.match_with_bindings(&same, &HashMap::new()).is_some());
        assert!(c.match_with_bindings(&diff, &HashMap::new()).is_none());
    }

    #[test]
    fn variable_pred_compares_against_binding() {
        let c = ce(
            "box",
            vec![AttrTest {
                attr: intern("size"),
                kind: TestKind::VariablePred(Predicate::Gt, intern("s")),
            }],
        );
        let w = Wme::new("box", &[("size", 10.into())]);
        let mut pre = HashMap::new();
        pre.insert(intern("s"), Value::Int(5));
        assert!(c.match_with_bindings(&w, &pre).is_some());
        pre.insert(intern("s"), Value::Int(50));
        assert!(c.match_with_bindings(&w, &pre).is_none());
    }

    #[test]
    fn variable_pred_with_unbound_variable_fails() {
        let c = ce(
            "box",
            vec![AttrTest {
                attr: intern("size"),
                kind: TestKind::VariablePred(Predicate::Gt, intern("unbound")),
            }],
        );
        let w = Wme::new("box", &[("size", 10.into())]);
        assert!(c.match_with_bindings(&w, &HashMap::new()).is_none());
    }

    #[test]
    fn test_count_includes_class() {
        let c = ce("block", vec![test_var("name", "b")]);
        assert_eq!(c.test_count(), 2);
    }

    #[test]
    fn display_roundtrip_shape() {
        let c = ConditionElement::negative(
            "hand",
            vec![test_const("state", "busy".into()), test_var("name", "h")],
        );
        assert_eq!(c.to_string(), "-(hand ^state busy ^name <h>)");
    }
}
