//! The matcher abstraction: anything that can maintain a conflict set.
//!
//! The interpreter drives a [`Matcher`] with working-memory deltas; the
//! matcher answers with the current conflict set. Implementations in this
//! workspace:
//!
//! * [`crate::NaiveMatcher`] — brute-force recomputation (the semantic
//!   reference);
//! * `mpps_rete::ReteMatcher` — the sequential hashed-memory Rete engine;
//! * [`crate::TreatMatcher`] — the TREAT algorithm (alpha memories plus
//!   conflict set, no beta state; the paper's reference \[30\]);
//! * `mpps_core::ThreadedMatcher` — the paper's distributed-hash-table
//!   mapping running on real threads with message passing.
//!
//! Property tests and the `mpps-difftest` differential fuzzer assert all
//! four produce identical conflict sets on the same change schedules.

use crate::error::MatchError;
use crate::production::ProductionId;
use crate::symbol::Symbol;
use crate::value::Value;
use crate::wme::{Sign, Wme, WmeId};
use std::collections::HashMap;
use std::fmt;

/// One working-memory change: an addition or deletion of a concrete WME.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WmeChange {
    /// Add or delete.
    pub sign: Sign,
    /// The element's time tag.
    pub id: WmeId,
    /// The element itself. Carried even on deletion so matchers don't need
    /// to keep a WM mirror (though they may).
    pub wme: Wme,
}

impl WmeChange {
    /// Convenience constructor for an addition.
    pub fn add(id: WmeId, wme: Wme) -> Self {
        WmeChange {
            sign: Sign::Plus,
            id,
            wme,
        }
    }

    /// Convenience constructor for a deletion.
    pub fn remove(id: WmeId, wme: Wme) -> Self {
        WmeChange {
            sign: Sign::Minus,
            id,
            wme,
        }
    }
}

/// A production instantiation: the WMEs that conjunctively satisfy a
/// production, plus the variable bindings they induce.
#[derive(Clone, Debug)]
pub struct Instantiation {
    /// Which production is satisfied.
    pub production: ProductionId,
    /// Time tags of the WMEs matching the non-negated CEs, in CE order.
    pub wme_ids: Vec<WmeId>,
    /// Variable bindings induced by the match.
    pub bindings: HashMap<Symbol, Value>,
}

impl Instantiation {
    /// Identity key for refraction and set comparison: a production fired
    /// with the same WME combination is the same instantiation regardless
    /// of how the matcher derived it.
    pub fn key(&self) -> (ProductionId, Vec<WmeId>) {
        (self.production, self.wme_ids.clone())
    }

    /// Time tags sorted descending — the LEX recency vector.
    pub fn recency_vector(&self) -> Vec<WmeId> {
        let mut v = self.wme_ids.clone();
        v.sort_unstable_by(|a, b| b.cmp(a));
        v
    }
}

impl PartialEq for Instantiation {
    fn eq(&self, other: &Self) -> bool {
        self.production == other.production && self.wme_ids == other.wme_ids
    }
}

impl Eq for Instantiation {}

impl std::hash::Hash for Instantiation {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.production.hash(state);
        self.wme_ids.hash(state);
    }
}

impl fmt::Display for Instantiation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[", self.production)?;
        for (i, id) in self.wme_ids.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{id}")?;
        }
        write!(f, "]")
    }
}

/// Maintains the conflict set of a fixed program under WM deltas.
pub trait Matcher {
    /// Apply a batch of WM changes (one MRA cycle's act-phase output).
    ///
    /// Infallible by contract: a matcher that *can* fail (a distributed
    /// one losing a worker thread) must panic here with context rather
    /// than hang — callers that want the failure as a value use
    /// [`Matcher::try_process`].
    fn process(&mut self, changes: &[WmeChange]);

    /// Like [`Matcher::process`], but surfaces match-phase failures as a
    /// typed [`MatchError`] instead of panicking. The default forwards to
    /// `process` (sequential matchers cannot fail); fallible matchers
    /// override it and implement `process` on top.
    fn try_process(&mut self, changes: &[WmeChange]) -> Result<(), MatchError> {
        self.process(changes);
        Ok(())
    }

    /// The current conflict set, sorted by `(production, wme_ids)` so that
    /// different matchers are directly comparable.
    fn conflict_set(&self) -> Vec<Instantiation>;
}

/// Boxed matchers forward — this lets heterogeneous matcher collections
/// (e.g. the differential oracle) drive `Interpreter<Box<dyn Matcher>>`.
impl Matcher for Box<dyn Matcher> {
    fn process(&mut self, changes: &[WmeChange]) {
        (**self).process(changes)
    }

    fn try_process(&mut self, changes: &[WmeChange]) -> Result<(), MatchError> {
        (**self).try_process(changes)
    }

    fn conflict_set(&self) -> Vec<Instantiation> {
        (**self).conflict_set()
    }
}

/// Sort instantiations into the canonical comparison order.
pub fn sort_conflict_set(set: &mut [Instantiation]) {
    set.sort_by(|a, b| {
        a.production
            .cmp(&b.production)
            .then_with(|| a.wme_ids.cmp(&b.wme_ids))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(p: u32, ids: &[u64]) -> Instantiation {
        Instantiation {
            production: ProductionId(p),
            wme_ids: ids.iter().map(|&i| WmeId(i)).collect(),
            bindings: HashMap::new(),
        }
    }

    #[test]
    fn equality_ignores_bindings() {
        let mut a = inst(0, &[1, 2]);
        let b = inst(0, &[1, 2]);
        a.bindings.insert(crate::intern("x"), Value::Int(1));
        assert_eq!(a, b);
    }

    #[test]
    fn recency_vector_sorted_descending() {
        let i = inst(0, &[3, 9, 1]);
        assert_eq!(i.recency_vector(), vec![WmeId(9), WmeId(3), WmeId(1)]);
    }

    #[test]
    fn sorting_is_by_production_then_ids() {
        let mut v = vec![inst(1, &[1]), inst(0, &[9]), inst(0, &[2])];
        sort_conflict_set(&mut v);
        assert_eq!(v, vec![inst(0, &[2]), inst(0, &[9]), inst(1, &[1])]);
    }

    #[test]
    fn display_shape() {
        assert_eq!(inst(2, &[4, 7]).to_string(), "p2[t4 t7]");
    }
}
