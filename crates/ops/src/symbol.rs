//! Interned symbols.
//!
//! OPS5 programs are dominated by small symbolic constants (`blue`, `block`,
//! `^on`, variable names). Interning turns them into copyable `u32` handles
//! so that the hot match path compares and hashes integers instead of
//! strings — the same trick the OPS83-encoded Rete of the paper relies on.
//!
//! The interner is process-global and append-only: a symbol, once interned,
//! lives for the lifetime of the process. This keeps [`Symbol`] `Copy` and
//! `'static`-resolvable without threading a table through every API.

use std::collections::HashMap;
use std::fmt;
use std::sync::{OnceLock, RwLock};

/// A handle to an interned string.
///
/// Equality and hashing are on the handle (O(1)). Two `Symbol`s are equal
/// iff their source strings are equal.
///
/// Two orders exist, with different jobs:
///
/// * [`Ord`] is *lexicographic on the underlying string* — a canonical,
///   process-independent order for anything textual (trace goldens, WME
///   `Display`, sorted program listings).
/// * [`Symbol::index`] is the *id order* key — the raw `u32` interning
///   order, `Copy` and comparable without touching the string table. Hot
///   containers (WME attribute vectors, token [`Bindings`] in the rete
///   crate) sort on this instead; their iteration order is deterministic
///   within a process but not lexicographic.
///
/// [`Bindings`]: https://docs.rs/mpps-rete
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Symbol(u32);

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

struct Interner {
    /// Map from string to handle index.
    map: HashMap<&'static str, u32>,
    /// Handle index to leaked string.
    strings: Vec<&'static str>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

/// Intern `s`, returning its stable handle.
pub fn intern(s: &str) -> Symbol {
    {
        let guard = interner().read().expect("symbol interner poisoned");
        if let Some(&idx) = guard.map.get(s) {
            return Symbol(idx);
        }
    }
    let mut guard = interner().write().expect("symbol interner poisoned");
    if let Some(&idx) = guard.map.get(s) {
        return Symbol(idx);
    }
    let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
    let idx = u32::try_from(guard.strings.len()).expect("interner full");
    guard.strings.push(leaked);
    guard.map.insert(leaked, idx);
    Symbol(idx)
}

/// Resolve a handle back to its string.
pub fn resolve(sym: Symbol) -> &'static str {
    let guard = interner().read().expect("symbol interner poisoned");
    guard.strings[sym.0 as usize]
}

impl Symbol {
    /// The string this symbol was interned from.
    pub fn as_str(self) -> &'static str {
        resolve(self)
    }

    /// Raw handle value; stable for the lifetime of the process.
    ///
    /// This is the **id-order key**: hot containers sort and search on it
    /// because it is `Copy`, compares as a single `u32`, and never touches
    /// the string table. The Rete hash function also mixes it into node
    /// and value identities. Id order is interning order — deterministic
    /// within a process, *not* lexicographic; use [`Ord`] where canonical
    /// textual order matters.
    pub fn index(self) -> u32 {
        self.0
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        intern(s)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = intern("blue");
        let b = intern("blue");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "blue");
    }

    #[test]
    fn distinct_strings_distinct_symbols() {
        assert_ne!(intern("left"), intern("right"));
    }

    #[test]
    fn empty_string_is_a_valid_symbol() {
        let e = intern("");
        assert_eq!(e.as_str(), "");
        assert_eq!(e, intern(""));
    }

    #[test]
    fn display_roundtrips() {
        let s = intern("clear-the-blue-block");
        assert_eq!(s.to_string(), "clear-the-blue-block");
    }

    #[test]
    fn concurrent_interning_agrees() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("shared-symbol")))
            .collect();
        let syms: Vec<Symbol> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn index_is_stable() {
        let a = intern("stable-idx-test");
        assert_eq!(a.index(), intern("stable-idx-test").index());
    }

    #[test]
    fn id_order_is_interning_order_not_lexicographic() {
        // Freshly interned symbols get increasing indices regardless of
        // their lexicographic relation — the two orders are independent.
        let z = intern("zzz-id-order-probe");
        let a = intern("aaa-id-order-probe");
        assert!(z.index() < a.index(), "interning order");
        assert!(z > a, "Ord stays lexicographic");
    }
}
