//! Conflict resolution: choosing which instantiation fires.
//!
//! Implements the two standard OPS5 strategies. Both start from
//! *refraction* (an instantiation never fires twice), which the
//! [`crate::Interpreter`] enforces by filtering before calling [`resolve`].
//!
//! * **LEX** — order instantiations by recency: compare the time tags of
//!   their WMEs sorted in descending order, lexicographically; if one
//!   vector is a prefix of the other, the longer dominates. Ties are broken
//!   by specificity (total number of LHS tests), then deterministically by
//!   production id and WME ids (OPS5 says "arbitrary"; we need
//!   reproducibility).
//! * **MEA** — like LEX but first compares the recency of the WME matching
//!   the first *positive* condition element (the "means–ends-analysis"
//!   goal element; negated CEs match no WME and are skipped), then falls
//!   back to the LEX ordering.

use crate::matcher::Instantiation;
use crate::production::Program;
use crate::wme::WmeId;
use std::cmp::Ordering;

/// Conflict-resolution strategy.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Strategy {
    /// The LEX strategy (default in OPS5).
    #[default]
    Lex,
    /// The MEA strategy.
    Mea,
}

/// Compare recency vectors (descending time-tag lists) lexicographically;
/// the more recent dominates. Returns `Greater` when `a` dominates `b`.
fn compare_recency(a: &[WmeId], b: &[WmeId]) -> Ordering {
    for (x, y) in a.iter().zip(b.iter()) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    // Prefix rule: the instantiation with more time tags dominates.
    a.len().cmp(&b.len())
}

/// Full LEX dominance test. Returns `Greater` when `a` should fire over `b`.
fn lex_cmp(program: &Program, a: &Instantiation, b: &Instantiation) -> Ordering {
    compare_recency(&a.recency_vector(), &b.recency_vector())
        .then_with(|| {
            program
                .get(a.production)
                .specificity()
                .cmp(&program.get(b.production).specificity())
        })
        // Deterministic final tie-break (OPS5: arbitrary). Reversed so that
        // the *lowest* production id / WME ids win, matching textual order.
        .then_with(|| b.production.cmp(&a.production))
        .then_with(|| b.wme_ids.cmp(&a.wme_ids))
}

/// The MEA goal element: the WME matching the production's first
/// *positive* condition element. `wme_ids` lists the matches of the
/// non-negated CEs in LHS order — negated CEs contribute no entry — so the
/// goal element is the first entry even when the production's LHS *starts*
/// with negated CEs. An instantiation with no WMEs at all (only possible
/// for hand-built values; validation requires a positive CE) compares
/// below every real one via `None < Some`.
fn mea_goal(inst: &Instantiation) -> Option<WmeId> {
    inst.wme_ids.first().copied()
}

/// MEA dominance: first-positive-CE recency first, then LEX.
fn mea_cmp(program: &Program, a: &Instantiation, b: &Instantiation) -> Ordering {
    mea_goal(a)
        .cmp(&mea_goal(b))
        .then_with(|| lex_cmp(program, a, b))
}

/// Compare two instantiations under `strategy`; `Greater` means `a` fires
/// over `b`. This is the exact comparator [`resolve`] maximizes with, made
/// public so tests can check it is a total order (antisymmetric and
/// transitive, with `Equal` only for identical `(production, wme_ids)`
/// keys) — the contract `max_by` and sort-based callers rely on.
pub fn compare(
    program: &Program,
    strategy: Strategy,
    a: &Instantiation,
    b: &Instantiation,
) -> Ordering {
    match strategy {
        Strategy::Lex => lex_cmp(program, a, b),
        Strategy::Mea => mea_cmp(program, a, b),
    }
}

/// Select the winning instantiation from `candidates` (already filtered for
/// refraction). Returns `None` when the conflict set is empty.
pub fn resolve<'a>(
    program: &Program,
    strategy: Strategy,
    candidates: impl IntoIterator<Item = &'a Instantiation>,
) -> Option<&'a Instantiation> {
    candidates
        .into_iter()
        .max_by(|a, b| compare(program, strategy, a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::ConditionElement;
    use crate::production::{Action, Production, ProductionId};
    use crate::symbol::intern;
    use std::collections::HashMap;

    fn inst(p: u32, ids: &[u64]) -> Instantiation {
        Instantiation {
            production: ProductionId(p),
            wme_ids: ids.iter().map(|&i| WmeId(i)).collect(),
            bindings: HashMap::new(),
        }
    }

    /// A program with two productions: p0 with one CE (specificity 1),
    /// p1 with one CE carrying an extra test (specificity 2).
    fn two_prod_program() -> Program {
        let p0 = Production {
            name: intern("cr-low-spec"),
            lhs: vec![ConditionElement::positive("a", vec![])],
            rhs: vec![Action::Halt],
        };
        let p1 = Production {
            name: intern("cr-high-spec"),
            lhs: vec![ConditionElement::positive(
                "a",
                vec![crate::cond::AttrTest {
                    attr: intern("x"),
                    kind: crate::cond::TestKind::Variable(intern("v")),
                }],
            )],
            rhs: vec![Action::Halt],
        };
        Program::from_productions(vec![p0, p1]).unwrap()
    }

    #[test]
    fn empty_conflict_set_yields_none() {
        let prog = two_prod_program();
        assert!(resolve(&prog, Strategy::Lex, []).is_none());
    }

    #[test]
    fn lex_prefers_more_recent() {
        let prog = two_prod_program();
        let a = inst(0, &[5]);
        let b = inst(0, &[9]);
        let w = resolve(&prog, Strategy::Lex, [&a, &b]).unwrap();
        assert_eq!(w, &b);
    }

    #[test]
    fn lex_compares_full_recency_vector() {
        let prog = two_prod_program();
        // Both have max tag 9; second tags 3 vs 7 decide.
        let a = inst(0, &[9, 3]);
        let b = inst(0, &[9, 7]);
        assert_eq!(resolve(&prog, Strategy::Lex, [&a, &b]).unwrap(), &b);
    }

    #[test]
    fn lex_prefix_rule_longer_dominates() {
        let prog = two_prod_program();
        let a = inst(0, &[9]);
        let b = inst(0, &[9, 1]);
        assert_eq!(resolve(&prog, Strategy::Lex, [&a, &b]).unwrap(), &b);
    }

    #[test]
    fn lex_ties_broken_by_specificity() {
        let prog = two_prod_program();
        let a = inst(0, &[4]); // specificity 1
        let b = inst(1, &[4]); // specificity 2
        assert_eq!(resolve(&prog, Strategy::Lex, [&a, &b]).unwrap(), &b);
    }

    #[test]
    fn final_tie_break_is_deterministic() {
        let prog = two_prod_program();
        // Same recency, same production, different WME identity (possible
        // with self-joins). Lowest wme_ids wins, both orders of presentation.
        let a = inst(0, &[4, 4]);
        let b = inst(0, &[4, 4]);
        assert_eq!(
            resolve(&prog, Strategy::Lex, [&a, &b]).unwrap().key(),
            a.key()
        );
        assert_eq!(
            resolve(&prog, Strategy::Lex, [&b, &a]).unwrap().key(),
            a.key()
        );
    }

    #[test]
    fn mea_prefers_recent_first_ce_even_if_lex_disagrees() {
        let prog = two_prod_program();
        // a's first CE matched a newer WME (10 > 2) although b is globally
        // more recent (99).
        let a = inst(0, &[10, 1]);
        let b = inst(0, &[2, 99]);
        assert_eq!(resolve(&prog, Strategy::Mea, [&a, &b]).unwrap(), &a);
        // LEX would pick b.
        assert_eq!(resolve(&prog, Strategy::Lex, [&a, &b]).unwrap(), &b);
    }

    #[test]
    fn mea_falls_back_to_lex_on_first_ce_tie() {
        let prog = two_prod_program();
        let a = inst(0, &[10, 1]);
        let b = inst(0, &[10, 5]);
        assert_eq!(resolve(&prog, Strategy::Mea, [&a, &b]).unwrap(), &b);
    }

    #[test]
    fn mea_goal_element_with_negated_first_ce_against_naive() {
        // Regression: the production's LHS *starts* with a negated CE, so
        // the MEA goal element is the first positive CE's WME — which is
        // still `wme_ids[0]`, because negated CEs contribute no entry.
        // NaiveMatcher produces the conflict set; MEA must serve the goal
        // with the more recent `goal` WME even though LEX prefers the
        // instantiation holding the globally newest WME.
        use crate::matcher::{Matcher, WmeChange};
        use crate::naive::NaiveMatcher;
        use crate::parser::{parse_program, parse_wme};
        let prog = parse_program(
            r#"
            (p serve
               -(inhibit ^on yes)
               (goal ^id <g>)
               (item ^for <g>)
               -->
               (remove 2))
            "#,
        )
        .unwrap();
        let mut naive = NaiveMatcher::new(prog.clone());
        let wmes = [
            "(goal ^id g1)",  // t1: old goal
            "(goal ^id g2)",  // t2: recent goal
            "(item ^for g2)", // t3
            "(item ^for g1)", // t4: globally newest WME belongs to g1
        ];
        let changes: Vec<WmeChange> = wmes
            .iter()
            .enumerate()
            .map(|(i, s)| WmeChange::add(WmeId(i as u64 + 1), parse_wme(s).unwrap()))
            .collect();
        naive.process(&changes);
        let cs = naive.conflict_set();
        assert_eq!(cs.len(), 2);
        // Every instantiation's first id is a goal WME (the negated CE
        // added nothing in front of it).
        assert!(cs.iter().all(|i| i.wme_ids[0] <= WmeId(2)));
        let mea = resolve(&prog, Strategy::Mea, cs.iter()).unwrap();
        assert_eq!(mea.wme_ids, vec![WmeId(2), WmeId(3)], "goal recency rules");
        let lex = resolve(&prog, Strategy::Lex, cs.iter()).unwrap();
        assert_eq!(lex.wme_ids, vec![WmeId(1), WmeId(4)], "global recency");
    }

    #[test]
    fn compare_equal_only_for_identical_keys() {
        let prog = two_prod_program();
        let a = inst(0, &[4, 2]);
        let b = inst(0, &[2, 4]); // same recency vector, different key
        for s in [Strategy::Lex, Strategy::Mea] {
            assert_ne!(compare(&prog, s, &a, &b), Ordering::Equal);
            assert_eq!(compare(&prog, s, &a, &a), Ordering::Equal);
        }
    }
}
