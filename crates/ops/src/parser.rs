//! Parser for the OPS5-like textual syntax.
//!
//! Grammar (s-expressions, `;` comments to end of line):
//!
//! ```text
//! program    := production*
//! production := '(' 'p' name ce+ '-->' action* ')'
//! ce         := ['-'] '(' class test* ')'
//! test       := '^' attr ([pred] (constant | variable) | '<<' constant+ '>>')
//! pred       := '=' | '<>' | '<' | '<=' | '>' | '>='
//! action     := '(' 'make' class (attrval)* ')'
//!             | '(' 'remove' INT ')'
//!             | '(' 'modify' INT attrval* ')'
//!             | '(' 'write' rhsval* ')'
//!             | '(' 'halt' ')'
//! attrval    := '^' attr rhsval
//! rhsval     := constant | variable | '(' ('+'|'-'|'*'|'mod') rhsval rhsval ')'
//! ```
//!
//! Variables are written `<name>`. A bare constant after `^attr` means an
//! equality test; a predicate token before the operand makes it relational,
//! e.g. `^size > 4` or `^size > <s>`.

use crate::cond::{AttrTest, ConditionElement, Predicate, TestKind};
use crate::error::{OpsError, ParseError};
use crate::production::{Action, Production, Program, RhsOp, RhsValue};
use crate::symbol::{intern, Symbol};
use crate::value::Value;
use crate::wme::Wme;

#[derive(Clone, PartialEq, Eq, Debug)]
enum Tok {
    LParen,
    RParen,
    Arrow,
    /// `-` immediately before `(`: CE negation.
    NegDash,
    /// `^attr`
    Attr(Symbol),
    /// `<name>`
    Var(Symbol),
    /// Relational predicate token.
    Pred(Predicate),
    /// `<<` — start of a disjunction.
    LDisj,
    /// `>>` — end of a disjunction.
    RDisj,
    /// Bare identifier.
    Sym(Symbol),
    /// Integer literal.
    Int(i64),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

/// A token together with its source location.
struct Spanned {
    tok: Tok,
    line: usize,
    col: usize,
}

fn is_ident_char(c: u8) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, b'-' | b'_' | b'*' | b'+' | b'?' | b'.' | b'/' | b'!')
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek()?;
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => {
                    self.bump();
                }
                Some(b';') => {
                    while let Some(c) = self.peek() {
                        if c == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn ident(&mut self) -> String {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if is_ident_char(c) {
                self.bump();
            } else {
                break;
            }
        }
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    fn next_token(&mut self) -> Result<Option<Spanned>, ParseError> {
        self.skip_trivia();
        let (line, col) = (self.line, self.col);
        let span = |tok| Spanned { tok, line, col };
        let Some(c) = self.peek() else {
            return Ok(None);
        };
        let tok = match c {
            b'(' => {
                self.bump();
                Tok::LParen
            }
            b')' => {
                self.bump();
                Tok::RParen
            }
            b'^' => {
                self.bump();
                let name = self.ident();
                if name.is_empty() {
                    return Err(self.err("expected attribute name after '^'"));
                }
                Tok::Attr(intern(&name))
            }
            b'<' => {
                self.bump();
                match self.peek() {
                    Some(b'<') => {
                        self.bump();
                        Tok::LDisj
                    }
                    Some(b'>') => {
                        self.bump();
                        Tok::Pred(Predicate::Ne)
                    }
                    Some(b'=') => {
                        self.bump();
                        Tok::Pred(Predicate::Le)
                    }
                    Some(d) if is_ident_char(d) => {
                        let name = self.ident();
                        if self.peek() == Some(b'>') {
                            self.bump();
                            Tok::Var(intern(&name))
                        } else {
                            return Err(self.err(format!("unterminated variable <{name}")));
                        }
                    }
                    _ => Tok::Pred(Predicate::Lt),
                }
            }
            b'>' => {
                self.bump();
                match self.peek() {
                    Some(b'=') => {
                        self.bump();
                        Tok::Pred(Predicate::Ge)
                    }
                    Some(b'>') => {
                        self.bump();
                        Tok::RDisj
                    }
                    _ => Tok::Pred(Predicate::Gt),
                }
            }
            b'=' => {
                self.bump();
                Tok::Pred(Predicate::Eq)
            }
            b'-' => {
                if self.peek2() == Some(b'-') && self.src.get(self.pos + 2).copied() == Some(b'>') {
                    self.bump();
                    self.bump();
                    self.bump();
                    Tok::Arrow
                } else if self.peek2() == Some(b'(') {
                    self.bump();
                    Tok::NegDash
                } else if self.peek2().is_some_and(|d| d.is_ascii_digit()) {
                    self.bump();
                    let digits = self.ident();
                    let n: i64 = digits
                        .parse()
                        .map_err(|_| self.err(format!("bad integer -{digits}")))?;
                    Tok::Int(-n)
                } else {
                    self.bump();
                    // Bare '-': the subtraction operator symbol.
                    Tok::Sym(intern("-"))
                }
            }
            d if d.is_ascii_digit() => {
                let digits = self.ident();
                match digits.parse::<i64>() {
                    Ok(n) => Tok::Int(n),
                    // Identifiers may start with a digit in OPS5 (rare);
                    // treat unparsable numerics as symbols.
                    Err(_) => Tok::Sym(intern(&digits)),
                }
            }
            c if is_ident_char(c) => {
                let name = self.ident();
                Tok::Sym(intern(&name))
            }
            other => {
                return Err(self.err(format!("unexpected character {:?}", other as char)));
            }
        };
        Ok(Some(span(tok)))
    }
}

fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut lexer = Lexer::new(src);
    let mut out = Vec::new();
    while let Some(t) = lexer.next_token()? {
        out.push(t);
    }
    Ok(out)
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn err_at(&self, message: impl Into<String>) -> ParseError {
        let (line, col) = self
            .toks
            .get(self.pos.min(self.toks.len().saturating_sub(1)))
            .map_or((0, 0), |s| (s.line, s.col));
        ParseError {
            line,
            col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|s| &s.tok)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|s| s.tok.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Tok, what: &str) -> Result<(), ParseError> {
        match self.next() {
            Some(ref t) if t == want => Ok(()),
            Some(t) => Err(self.err_at(format!("expected {what}, found {t:?}"))),
            None => Err(self.err_at(format!("expected {what}, found end of input"))),
        }
    }

    fn expect_sym(&mut self, what: &str) -> Result<Symbol, ParseError> {
        match self.next() {
            Some(Tok::Sym(s)) => Ok(s),
            Some(t) => Err(self.err_at(format!("expected {what}, found {t:?}"))),
            None => Err(self.err_at(format!("expected {what}, found end of input"))),
        }
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn production(&mut self) -> Result<Production, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let head = self.expect_sym("'p'")?;
        if head.as_str() != "p" {
            return Err(self.err_at(format!("expected 'p', found '{head}'")));
        }
        let name = self.expect_sym("production name")?;
        let mut lhs = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::Arrow) => {
                    self.next();
                    break;
                }
                Some(Tok::LParen) => lhs.push(self.condition_element(false)?),
                Some(Tok::NegDash) => {
                    self.next();
                    lhs.push(self.condition_element(true)?);
                }
                _ => return Err(self.err_at("expected condition element or '-->'")),
            }
        }
        let mut rhs = Vec::new();
        while self.peek() == Some(&Tok::LParen) {
            rhs.push(self.action()?);
        }
        self.expect(&Tok::RParen, "')' closing production")?;
        Ok(Production { name, lhs, rhs })
    }

    fn condition_element(&mut self, negated: bool) -> Result<ConditionElement, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let class = self.expect_sym("condition-element class")?;
        let mut tests = Vec::new();
        loop {
            match self.next() {
                Some(Tok::RParen) => break,
                Some(Tok::Attr(attr)) => {
                    let kind = self.attr_test_kind()?;
                    tests.push(AttrTest { attr, kind });
                }
                Some(t) => return Err(self.err_at(format!("expected '^attr' or ')', found {t:?}"))),
                None => return Err(self.err_at("unterminated condition element")),
            }
        }
        Ok(ConditionElement {
            class,
            tests,
            negated,
        })
    }

    fn attr_test_kind(&mut self) -> Result<TestKind, ParseError> {
        match self.next() {
            Some(Tok::LDisj) => {
                let mut values = Vec::new();
                loop {
                    match self.next() {
                        Some(Tok::RDisj) => break,
                        Some(Tok::Sym(s)) => values.push(Value::Sym(s)),
                        Some(Tok::Int(i)) => values.push(Value::Int(i)),
                        other => {
                            return Err(self.err_at(format!(
                                "expected constant or '>>' in disjunction, found {other:?}"
                            )))
                        }
                    }
                }
                if values.is_empty() {
                    return Err(self.err_at("empty disjunction << >>"));
                }
                Ok(TestKind::disjunction(values))
            }
            Some(Tok::Sym(s)) => Ok(TestKind::Constant(Predicate::Eq, Value::Sym(s))),
            Some(Tok::Int(i)) => Ok(TestKind::Constant(Predicate::Eq, Value::Int(i))),
            Some(Tok::Var(v)) => Ok(TestKind::Variable(v)),
            Some(Tok::Pred(p)) => match self.next() {
                Some(Tok::Sym(s)) => Ok(TestKind::Constant(p, Value::Sym(s))),
                Some(Tok::Int(i)) => Ok(TestKind::Constant(p, Value::Int(i))),
                Some(Tok::Var(v)) => {
                    if p == Predicate::Eq {
                        Ok(TestKind::Variable(v))
                    } else {
                        Ok(TestKind::VariablePred(p, v))
                    }
                }
                other => {
                    Err(self.err_at(format!("expected value after predicate, found {other:?}")))
                }
            },
            other => Err(self.err_at(format!("expected test value, found {other:?}"))),
        }
    }

    fn action(&mut self) -> Result<Action, ParseError> {
        self.expect(&Tok::LParen, "'('")?;
        let head = self.expect_sym("action name")?;
        let action = match head.as_str() {
            "make" => {
                let class = self.expect_sym("class for make")?;
                let attrs = self.attr_values()?;
                Action::Make { class, attrs }
            }
            "remove" => {
                let k = self.expect_index()?;
                Action::Remove(k)
            }
            "modify" => {
                let ce = self.expect_index()?;
                let attrs = self.attr_values()?;
                Action::Modify { ce, attrs }
            }
            "write" => {
                let mut vals = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    vals.push(self.rhs_value()?);
                }
                Action::Write(vals)
            }
            "bind" => {
                let var = match self.next() {
                    Some(Tok::Var(v)) => v,
                    other => {
                        return Err(
                            self.err_at(format!("expected variable after bind, found {other:?}"))
                        )
                    }
                };
                Action::Bind(var, self.rhs_value()?)
            }
            "call" => {
                let name = self.expect_sym("function name")?;
                let mut args = Vec::new();
                while self.peek() != Some(&Tok::RParen) {
                    args.push(self.rhs_value()?);
                }
                Action::Call(name, args)
            }
            "halt" => Action::Halt,
            other => return Err(self.err_at(format!("unknown action '{other}'"))),
        };
        self.expect(&Tok::RParen, "')' closing action")?;
        Ok(action)
    }

    fn expect_index(&mut self) -> Result<usize, ParseError> {
        match self.next() {
            Some(Tok::Int(i)) if i > 0 => Ok(i as usize),
            Some(t) => Err(self.err_at(format!(
                "expected positive condition-element index, found {t:?}"
            ))),
            None => Err(self.err_at("expected condition-element index")),
        }
    }

    /// `^attr rhsval` pairs until the closing paren (not consumed).
    fn attr_values(&mut self) -> Result<Vec<(Symbol, RhsValue)>, ParseError> {
        let mut out = Vec::new();
        while let Some(Tok::Attr(_)) = self.peek() {
            let Some(Tok::Attr(attr)) = self.next() else {
                unreachable!()
            };
            out.push((attr, self.rhs_value()?));
        }
        Ok(out)
    }

    fn rhs_value(&mut self) -> Result<RhsValue, ParseError> {
        match self.next() {
            Some(Tok::Sym(s)) => Ok(RhsValue::Const(Value::Sym(s))),
            Some(Tok::Int(i)) => Ok(RhsValue::Const(Value::Int(i))),
            Some(Tok::Var(v)) => Ok(RhsValue::Var(v)),
            Some(Tok::LParen) => {
                let op = match self.next() {
                    Some(Tok::Sym(s)) => match s.as_str() {
                        "+" => RhsOp::Add,
                        "-" => RhsOp::Sub,
                        "*" => RhsOp::Mul,
                        "mod" => RhsOp::Mod,
                        other => return Err(self.err_at(format!("unknown operator '{other}'"))),
                    },
                    other => return Err(self.err_at(format!("expected operator, found {other:?}"))),
                };
                let a = self.rhs_value()?;
                let b = self.rhs_value()?;
                self.expect(&Tok::RParen, "')' closing computation")?;
                Ok(RhsValue::Compute(op, Box::new(a), Box::new(b)))
            }
            other => Err(self.err_at(format!("expected RHS value, found {other:?}"))),
        }
    }
}

/// Parse a single production.
pub fn parse_production(src: &str) -> Result<Production, OpsError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    let prod = p.production()?;
    if !p.at_end() {
        return Err(p.err_at("trailing input after production").into());
    }
    prod.validate()?;
    Ok(prod)
}

/// Parse a whole program (any number of productions).
pub fn parse_program(src: &str) -> Result<Program, OpsError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    let mut prods = Vec::new();
    while !p.at_end() {
        prods.push(p.production()?);
    }
    Program::from_productions(prods)
}

/// Parse a literal WME, e.g. `(block ^name b1 ^color blue)`. Only constant
/// values are allowed.
pub fn parse_wme(src: &str) -> Result<Wme, OpsError> {
    let mut p = Parser {
        toks: lex(src)?,
        pos: 0,
    };
    p.expect(&Tok::LParen, "'('").map_err(OpsError::Parse)?;
    let class = p.expect_sym("WME class").map_err(OpsError::Parse)?;
    let mut pairs = Vec::new();
    loop {
        match p.next() {
            Some(Tok::RParen) => break,
            Some(Tok::Attr(attr)) => {
                let v = match p.next() {
                    Some(Tok::Sym(s)) => Value::Sym(s),
                    Some(Tok::Int(i)) => Value::Int(i),
                    other => {
                        return Err(p
                            .err_at(format!("expected constant value, found {other:?}"))
                            .into())
                    }
                };
                pairs.push((attr, v));
            }
            other => {
                return Err(p
                    .err_at(format!("expected '^attr' or ')', found {other:?}"))
                    .into())
            }
        }
    }
    if !p.at_end() {
        return Err(p.err_at("trailing input after WME").into());
    }
    Ok(Wme::from_pairs(class, pairs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::intern;

    #[test]
    fn parses_paper_production() {
        let p = parse_production(
            r#"
            (p clear-the-blue-block
               (block ^name <block2> ^color blue)
               (block ^name <block2> ^on <block1>)
               (hand ^state free)
               -->
               (remove 2))
            "#,
        )
        .unwrap();
        assert_eq!(p.name.as_str(), "clear-the-blue-block");
        assert_eq!(p.lhs.len(), 3);
        assert_eq!(p.rhs, vec![Action::Remove(2)]);
        assert_eq!(
            p.lhs[0].tests[1].kind,
            TestKind::Constant(Predicate::Eq, Value::sym("blue"))
        );
        assert_eq!(p.lhs[0].tests[0].kind, TestKind::Variable(intern("block2")));
    }

    #[test]
    fn parses_negated_ce() {
        let p = parse_production("(p neg (a ^x 1) -(b ^y <> 2) --> (halt))").unwrap();
        assert!(p.lhs[1].negated);
        assert_eq!(
            p.lhs[1].tests[0].kind,
            TestKind::Constant(Predicate::Ne, Value::Int(2))
        );
    }

    #[test]
    fn parses_relational_predicates() {
        let p = parse_production(
            "(p rel (a ^v <x>) (box ^size > 4 ^w <= 9 ^d >= <x> ^e < 0) --> (halt))",
        )
        .unwrap();
        let t = &p.lhs[1].tests;
        assert_eq!(t[0].kind, TestKind::Constant(Predicate::Gt, Value::Int(4)));
        assert_eq!(t[1].kind, TestKind::Constant(Predicate::Le, Value::Int(9)));
        assert_eq!(
            t[2].kind,
            TestKind::VariablePred(Predicate::Ge, intern("x"))
        );
        assert_eq!(t[3].kind, TestKind::Constant(Predicate::Lt, Value::Int(0)));
    }

    #[test]
    fn eq_predicate_before_variable_is_plain_binding() {
        let p = parse_production("(p eqv (a ^x <v>) (b ^y = <v>) --> (halt))").unwrap();
        assert_eq!(p.lhs[1].tests[0].kind, TestKind::Variable(intern("v")));
    }

    #[test]
    fn parses_arithmetic_rhs() {
        let p =
            parse_production("(p arith (c ^v <v>) --> (modify 1 ^v (+ (* <v> 2) -3)))").unwrap();
        let Action::Modify { attrs, .. } = &p.rhs[0] else {
            panic!("expected modify");
        };
        let (attr, val) = &attrs[0];
        assert_eq!(attr.as_str(), "v");
        assert_eq!(val.to_string(), "(+ (* <v> 2) -3)");
    }

    #[test]
    fn parses_negative_integers() {
        let p = parse_production("(p negint (a ^x -5) --> (halt))").unwrap();
        assert_eq!(
            p.lhs[0].tests[0].kind,
            TestKind::Constant(Predicate::Eq, Value::Int(-5))
        );
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program("; a leading comment\n(p c (a) --> (halt)) ; trailing\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn unterminated_variable_errors() {
        let e = parse_production("(p bad (a ^x <oops) --> (halt))").unwrap_err();
        assert!(e.to_string().contains("unterminated variable"));
    }

    #[test]
    fn unknown_action_errors() {
        let e = parse_production("(p bad (a) --> (explode))").unwrap_err();
        assert!(e.to_string().contains("unknown action"));
    }

    #[test]
    fn missing_arrow_errors() {
        assert!(parse_production("(p bad (a) (halt))").is_err());
    }

    #[test]
    fn remove_zero_index_rejected() {
        assert!(parse_production("(p bad (a) --> (remove 0))").is_err());
    }

    #[test]
    fn validation_runs_on_parse() {
        // RHS variable never bound on LHS → semantic validation error.
        let e = parse_production("(p bad (a) --> (write <ghost>))").unwrap_err();
        assert!(matches!(e, OpsError::InvalidProduction(..)));
    }

    #[test]
    fn parse_wme_roundtrip() {
        let w = parse_wme("(block ^name b1 ^color blue ^weight 3)").unwrap();
        assert_eq!(w.class().as_str(), "block");
        assert_eq!(w.get(intern("weight")), Some(Value::Int(3)));
        assert_eq!(parse_wme(&w.to_string()).unwrap(), w);
    }

    #[test]
    fn parse_wme_rejects_variables() {
        assert!(parse_wme("(block ^name <b>)").is_err());
    }

    #[test]
    fn multi_production_program() {
        let prog = parse_program(
            r#"
            (p first  (a ^x <v>) --> (write <v>))
            (p second (b ^y 1) --> (halt))
            "#,
        )
        .unwrap();
        assert_eq!(prog.len(), 2);
        assert!(prog.find(intern("first")).is_some());
        assert!(prog.find(intern("second")).is_some());
    }

    #[test]
    fn error_location_is_reported() {
        let e = parse_production("(p bad\n   (a ^ ) --> (halt))").unwrap_err();
        let OpsError::Parse(pe) = e else { panic!() };
        assert_eq!(pe.line, 2);
    }

    #[test]
    fn display_parse_roundtrip_for_production() {
        let src = r#"
            (p round-trip
               (block ^name <b> ^size > 4)
               -(hand ^state busy)
               -->
               (make goal ^obj <b> ^n (+ 1 2))
               (modify 1 ^size 0)
               (remove 1)
               (write done <b>)
               (halt))
        "#;
        let p1 = parse_production(src).unwrap();
        let p2 = parse_production(&p1.to_string()).unwrap();
        assert_eq!(p1, p2);
    }
}

#[cfg(test)]
mod disjunction_tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn parses_disjunction() {
        let p =
            parse_production("(p disj (block ^color << red blue 3 >>) --> (remove 1))").unwrap();
        let TestKind::Disjunction(vals) = &p.lhs[0].tests[0].kind else {
            panic!("expected disjunction, got {:?}", p.lhs[0].tests[0].kind);
        };
        assert_eq!(vals.len(), 3);
        assert!(vals.contains(&Value::sym("red")));
        assert!(vals.contains(&Value::Int(3)));
    }

    #[test]
    fn disjunction_is_canonical() {
        let a = parse_production("(p a (b ^c << x y >>) --> (remove 1))").unwrap();
        let b = parse_production("(p a (b ^c << y x x >>) --> (remove 1))").unwrap();
        assert_eq!(a.lhs, b.lhs);
    }

    #[test]
    fn empty_disjunction_rejected() {
        assert!(parse_production("(p a (b ^c << >>) --> (remove 1))").is_err());
    }

    #[test]
    fn disjunction_rejects_variables_inside() {
        assert!(parse_production("(p a (b ^c << <v> x >>) --> (remove 1))").is_err());
    }

    #[test]
    fn disjunction_display_roundtrip() {
        let p = parse_production("(p a (b ^c << red blue >> ^n <v>) --> (write <v>))").unwrap();
        let q = parse_production(&p.to_string()).unwrap();
        assert_eq!(p, q);
    }

    #[test]
    fn ne_predicate_still_lexes_next_to_disjunction() {
        let p = parse_production("(p a (b ^c <> red ^d << 1 2 >>) --> (remove 1))").unwrap();
        assert!(matches!(
            p.lhs[0].tests[0].kind,
            TestKind::Constant(Predicate::Ne, _)
        ));
    }
}
