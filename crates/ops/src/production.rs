//! Productions, right-hand sides, and whole programs.

use crate::cond::{ConditionElement, TestKind};
use crate::error::OpsError;
use crate::symbol::Symbol;
use crate::value::Value;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Index of a production within a [`Program`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProductionId(pub u32);

impl fmt::Display for ProductionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Arithmetic operator usable in RHS value expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RhsOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Euclidean remainder (`a.rem_euclid(b)`); division by zero is an
    /// interpreter error.
    Mod,
}

impl RhsOp {
    /// Apply the operator to integer operands.
    pub fn apply(self, a: i64, b: i64) -> Result<i64, OpsError> {
        match self {
            RhsOp::Add => Ok(a.wrapping_add(b)),
            RhsOp::Sub => Ok(a.wrapping_sub(b)),
            RhsOp::Mul => Ok(a.wrapping_mul(b)),
            RhsOp::Mod => {
                if b == 0 {
                    Err(OpsError::Arithmetic("modulo by zero".into()))
                } else {
                    Ok(a.rem_euclid(b))
                }
            }
        }
    }
}

/// A value expression on the right-hand side: a literal, a variable bound on
/// the LHS, or a (recursively nested) integer computation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum RhsValue {
    /// A literal value.
    Const(Value),
    /// The value bound to an LHS variable.
    Var(Symbol),
    /// `(op a b)` — integer arithmetic over two sub-expressions.
    Compute(RhsOp, Box<RhsValue>, Box<RhsValue>),
}

impl RhsValue {
    /// Evaluate under the instantiation's bindings.
    pub fn eval(&self, bindings: &HashMap<Symbol, Value>) -> Result<Value, OpsError> {
        match self {
            RhsValue::Const(v) => Ok(*v),
            RhsValue::Var(var) => bindings
                .get(var)
                .copied()
                .ok_or_else(|| OpsError::UnboundVariable(var.as_str().to_owned())),
            RhsValue::Compute(op, a, b) => {
                let av = a.eval(bindings)?;
                let bv = b.eval(bindings)?;
                match (av.as_int(), bv.as_int()) {
                    (Some(ai), Some(bi)) => Ok(Value::Int(op.apply(ai, bi)?)),
                    _ => Err(OpsError::Arithmetic(format!(
                        "non-integer operand in ({op:?} {av} {bv})"
                    ))),
                }
            }
        }
    }

    /// All variables mentioned in this expression.
    pub fn variables(&self, out: &mut HashSet<Symbol>) {
        match self {
            RhsValue::Const(_) => {}
            RhsValue::Var(v) => {
                out.insert(*v);
            }
            RhsValue::Compute(_, a, b) => {
                a.variables(out);
                b.variables(out);
            }
        }
    }
}

impl From<Value> for RhsValue {
    fn from(v: Value) -> Self {
        RhsValue::Const(v)
    }
}

impl fmt::Display for RhsValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RhsValue::Const(v) => write!(f, "{v}"),
            RhsValue::Var(v) => write!(f, "<{v}>"),
            RhsValue::Compute(op, a, b) => {
                let sym = match op {
                    RhsOp::Add => "+",
                    RhsOp::Sub => "-",
                    RhsOp::Mul => "*",
                    RhsOp::Mod => "mod",
                };
                write!(f, "({sym} {a} {b})")
            }
        }
    }
}

/// A right-hand-side action.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Action {
    /// `(make class ^attr val ...)` — add a WME.
    Make {
        /// Class of the new WME.
        class: Symbol,
        /// Attribute expressions.
        attrs: Vec<(Symbol, RhsValue)>,
    },
    /// `(remove k)` — delete the WME matched by the `k`-th (1-based,
    /// counting only non-negated) condition element.
    Remove(usize),
    /// `(modify k ^attr val ...)` — delete then re-add the `k`-th matched
    /// WME with the given attributes overwritten. OPS5 semantics: the
    /// re-added WME gets a *fresh* time tag, which is exactly what produces
    /// the paper's "multiple-modify-effect" token churn.
    Modify {
        /// 1-based non-negated CE index.
        ce: usize,
        /// Attributes to overwrite.
        attrs: Vec<(Symbol, RhsValue)>,
    },
    /// `(write ...)` — append values to the run's output log.
    Write(Vec<RhsValue>),
    /// `(bind <var> expr)` — bind (or rebind) a variable for use by the
    /// *later* actions of the same right-hand side.
    Bind(Symbol, RhsValue),
    /// `(call fn args…)` — invoke a user-defined function registered on
    /// the interpreter ("RHS actions may … call a user-defined function",
    /// §2.1 of the paper).
    Call(Symbol, Vec<RhsValue>),
    /// `(halt)` — stop the recognize–act cycle after this firing.
    Halt,
}

/// An if-then rule: named LHS/RHS pair.
#[derive(Clone, PartialEq, Debug)]
pub struct Production {
    /// Rule name (unique within a program).
    pub name: Symbol,
    /// Condition elements in source order.
    pub lhs: Vec<ConditionElement>,
    /// Actions executed when an instantiation fires.
    pub rhs: Vec<Action>,
}

impl Production {
    /// Validate structural invariants:
    ///
    /// * at least one *non-negated* CE (a production made only of negated
    ///   CEs has no working-memory support and could never be retracted
    ///   deterministically); negated CEs may appear anywhere, including
    ///   before the first positive CE — a leading negated CE simply has no
    ///   visible bindings, so all its variables are existential locals;
    /// * every variable used in a negated CE, a `VariablePred` test, or the
    ///   RHS must be bound by an equality test in an earlier (or same,
    ///   for negated CE locals) non-negated CE;
    /// * `remove`/`modify` indices must point at non-negated CEs.
    pub fn validate(&self) -> Result<(), OpsError> {
        let err = |msg: String| Err(OpsError::InvalidProduction(self.name.to_string(), msg));
        if self.lhs.is_empty() {
            return err("production has no condition elements".into());
        }
        if self.lhs.iter().all(|ce| ce.negated) {
            return err("production needs at least one non-negated condition element".into());
        }
        // Walk CEs tracking bound variables.
        let mut bound: HashSet<Symbol> = HashSet::new();
        for ce in &self.lhs {
            let mut local: HashSet<Symbol> = HashSet::new();
            for t in &ce.tests {
                match &t.kind {
                    TestKind::Variable(v) => {
                        local.insert(*v);
                    }
                    TestKind::VariablePred(_, v) => {
                        if !bound.contains(v) && !local.contains(v) {
                            return err(format!(
                                "variable <{v}> used in a predicate before being bound"
                            ));
                        }
                    }
                    TestKind::Constant(..) => {}
                    TestKind::Disjunction(vals) => {
                        if vals.is_empty() {
                            return err("empty disjunction << >> can never match".into());
                        }
                    }
                }
            }
            if !ce.negated {
                bound.extend(local);
            }
            // Variables appearing only inside a negated CE are existential
            // locals; they may not escape, which is enforced by `bound`
            // simply not including them.
        }
        let positive_count = self.lhs.iter().filter(|c| !c.negated).count();
        // RHS `(bind …)` actions extend the visible bindings for the
        // actions that follow them.
        let mut rhs_bound = bound.clone();
        for a in &self.rhs {
            let mut used: HashSet<Symbol> = HashSet::new();
            match a {
                Action::Make { attrs, .. } => {
                    for (_, v) in attrs {
                        v.variables(&mut used);
                    }
                }
                Action::Modify { ce, attrs } => {
                    if *ce == 0 || *ce > positive_count {
                        return err(format!(
                            "(modify {ce}) out of range: production has {positive_count} \
                             non-negated condition elements"
                        ));
                    }
                    for (_, v) in attrs {
                        v.variables(&mut used);
                    }
                }
                Action::Remove(ce) => {
                    if *ce == 0 || *ce > positive_count {
                        return err(format!(
                            "(remove {ce}) out of range: production has {positive_count} \
                             non-negated condition elements"
                        ));
                    }
                }
                Action::Write(vals) => {
                    for v in vals {
                        v.variables(&mut used);
                    }
                }
                Action::Bind(_, expr) => {
                    expr.variables(&mut used);
                }
                Action::Call(_, args) => {
                    for v in args {
                        v.variables(&mut used);
                    }
                }
                Action::Halt => {}
            }
            if let Some(v) = used.iter().find(|v| !rhs_bound.contains(v)) {
                return err(format!("RHS uses unbound variable <{v}>"));
            }
            if let Action::Bind(var, _) = a {
                rhs_bound.insert(*var);
            }
        }
        Ok(())
    }

    /// Total number of LHS tests — the LEX specificity measure.
    pub fn specificity(&self) -> usize {
        self.lhs.iter().map(|c| c.test_count()).sum()
    }

    /// Indices (into `lhs`) of the non-negated CEs, in order. The `k`-th
    /// entry is what `(remove k+1)` refers to.
    pub fn positive_ce_indices(&self) -> Vec<usize> {
        self.lhs
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.negated)
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for Production {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "(p {}", self.name)?;
        for ce in &self.lhs {
            writeln!(f, "   {ce}")?;
        }
        writeln!(f, "  -->")?;
        for a in &self.rhs {
            match a {
                Action::Make { class, attrs } => {
                    write!(f, "   (make {class}")?;
                    for (at, v) in attrs {
                        write!(f, " ^{at} {v}")?;
                    }
                    writeln!(f, ")")?;
                }
                Action::Remove(k) => writeln!(f, "   (remove {k})")?,
                Action::Modify { ce, attrs } => {
                    write!(f, "   (modify {ce}")?;
                    for (at, v) in attrs {
                        write!(f, " ^{at} {v}")?;
                    }
                    writeln!(f, ")")?;
                }
                Action::Write(vals) => {
                    write!(f, "   (write")?;
                    for v in vals {
                        write!(f, " {v}")?;
                    }
                    writeln!(f, ")")?;
                }
                Action::Bind(var, expr) => writeln!(f, "   (bind <{var}> {expr})")?,
                Action::Call(name, args) => {
                    write!(f, "   (call {name}")?;
                    for v in args {
                        write!(f, " {v}")?;
                    }
                    writeln!(f, ")")?;
                }
                Action::Halt => writeln!(f, "   (halt)")?,
            }
        }
        write!(f, ")")
    }
}

/// A production-system program: an ordered set of uniquely named rules.
#[derive(Clone, Debug, Default)]
pub struct Program {
    productions: Vec<Production>,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Program {
            productions: Vec::new(),
        }
    }

    /// Build a program from rules, validating each and rejecting duplicate
    /// names.
    pub fn from_productions(rules: Vec<Production>) -> Result<Self, OpsError> {
        let mut p = Program::new();
        for r in rules {
            p.add(r)?;
        }
        Ok(p)
    }

    /// Add a rule, validating it.
    pub fn add(&mut self, production: Production) -> Result<ProductionId, OpsError> {
        production.validate()?;
        if self.productions.iter().any(|p| p.name == production.name) {
            return Err(OpsError::DuplicateProduction(production.name.to_string()));
        }
        let id = ProductionId(u32::try_from(self.productions.len()).expect("program too large"));
        self.productions.push(production);
        Ok(id)
    }

    /// The rule with the given id.
    pub fn get(&self, id: ProductionId) -> &Production {
        &self.productions[id.0 as usize]
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.productions.len()
    }

    /// True when the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.productions.is_empty()
    }

    /// Iterate `(id, production)` pairs in definition order.
    pub fn iter(&self) -> impl Iterator<Item = (ProductionId, &Production)> {
        self.productions
            .iter()
            .enumerate()
            .map(|(i, p)| (ProductionId(i as u32), p))
    }

    /// Look up a rule by name.
    pub fn find(&self, name: Symbol) -> Option<ProductionId> {
        self.productions
            .iter()
            .position(|p| p.name == name)
            .map(|i| ProductionId(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cond::{AttrTest, Predicate};
    use crate::symbol::intern;

    fn var_test(attr: &str, var: &str) -> AttrTest {
        AttrTest {
            attr: intern(attr),
            kind: TestKind::Variable(intern(var)),
        }
    }

    fn simple_prod(name: &str) -> Production {
        Production {
            name: intern(name),
            lhs: vec![ConditionElement::positive(
                "block",
                vec![var_test("name", "b")],
            )],
            rhs: vec![Action::Remove(1)],
        }
    }

    #[test]
    fn valid_simple_production() {
        assert!(simple_prod("ok").validate().is_ok());
    }

    #[test]
    fn empty_lhs_rejected() {
        let p = Production {
            name: intern("empty"),
            lhs: vec![],
            rhs: vec![],
        };
        assert!(matches!(p.validate(), Err(OpsError::InvalidProduction(..))));
    }

    #[test]
    fn all_negated_lhs_rejected() {
        let p = Production {
            name: intern("all-neg"),
            lhs: vec![
                ConditionElement::negative("block", vec![]),
                ConditionElement::negative("hand", vec![]),
            ],
            rhs: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn negated_first_ce_accepted_with_positive_support() {
        // A leading negated CE is legal: its variables are existential
        // locals evaluated before any binding exists.
        let p = Production {
            name: intern("neg-first"),
            lhs: vec![
                ConditionElement::negative("inhibit", vec![var_test("on", "v")]),
                ConditionElement::positive("block", vec![var_test("name", "b")]),
            ],
            rhs: vec![Action::Remove(1)],
        };
        assert!(p.validate().is_ok());
    }

    #[test]
    fn rhs_unbound_variable_rejected() {
        let p = Production {
            name: intern("unbound"),
            lhs: vec![ConditionElement::positive("block", vec![])],
            rhs: vec![Action::Write(vec![RhsValue::Var(intern("nowhere"))])],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn remove_index_out_of_range_rejected() {
        let mut p = simple_prod("range");
        p.rhs = vec![Action::Remove(2)];
        assert!(p.validate().is_err());
        p.rhs = vec![Action::Remove(0)];
        assert!(p.validate().is_err());
    }

    #[test]
    fn modify_counts_only_positive_ces() {
        let p = Production {
            name: intern("mod-neg"),
            lhs: vec![
                ConditionElement::positive("a", vec![]),
                ConditionElement::negative("b", vec![]),
            ],
            rhs: vec![Action::Modify {
                ce: 2,
                attrs: vec![],
            }],
        };
        // Only one positive CE, so (modify 2) is invalid.
        assert!(p.validate().is_err());
    }

    #[test]
    fn negated_ce_local_variables_do_not_escape() {
        let p = Production {
            name: intern("neg-local"),
            lhs: vec![
                ConditionElement::positive("a", vec![]),
                ConditionElement::negative("b", vec![var_test("x", "v")]),
            ],
            rhs: vec![Action::Write(vec![RhsValue::Var(intern("v"))])],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn variable_pred_forward_reference_rejected() {
        let p = Production {
            name: intern("fwd"),
            lhs: vec![ConditionElement::positive(
                "a",
                vec![AttrTest {
                    attr: intern("size"),
                    kind: TestKind::VariablePred(Predicate::Gt, intern("later")),
                }],
            )],
            rhs: vec![],
        };
        assert!(p.validate().is_err());
    }

    #[test]
    fn rhs_value_eval() {
        let mut b = HashMap::new();
        b.insert(intern("x"), Value::Int(10));
        let expr = RhsValue::Compute(
            RhsOp::Add,
            Box::new(RhsValue::Var(intern("x"))),
            Box::new(RhsValue::Const(Value::Int(5))),
        );
        assert_eq!(expr.eval(&b).unwrap(), Value::Int(15));
    }

    #[test]
    fn rhs_mod_by_zero_errors() {
        let expr = RhsValue::Compute(
            RhsOp::Mod,
            Box::new(RhsValue::Const(Value::Int(5))),
            Box::new(RhsValue::Const(Value::Int(0))),
        );
        assert!(expr.eval(&HashMap::new()).is_err());
    }

    #[test]
    fn rhs_arith_on_symbol_errors() {
        let expr = RhsValue::Compute(
            RhsOp::Add,
            Box::new(RhsValue::Const(Value::sym("a"))),
            Box::new(RhsValue::Const(Value::Int(1))),
        );
        assert!(expr.eval(&HashMap::new()).is_err());
    }

    #[test]
    fn mod_is_euclidean() {
        assert_eq!(RhsOp::Mod.apply(-1, 4).unwrap(), 3);
    }

    #[test]
    fn program_rejects_duplicate_names() {
        let mut prog = Program::new();
        prog.add(simple_prod("dup")).unwrap();
        assert!(matches!(
            prog.add(simple_prod("dup")),
            Err(OpsError::DuplicateProduction(_))
        ));
    }

    #[test]
    fn program_lookup_by_name() {
        let mut prog = Program::new();
        let id = prog.add(simple_prod("findme")).unwrap();
        assert_eq!(prog.find(intern("findme")), Some(id));
        assert_eq!(prog.find(intern("ghost")), None);
    }

    #[test]
    fn specificity_counts_all_tests() {
        let p = Production {
            name: intern("spec"),
            lhs: vec![
                ConditionElement::positive("a", vec![var_test("x", "v")]),
                ConditionElement::positive("b", vec![]),
            ],
            rhs: vec![],
        };
        // (class + 1 test) + (class) = 3
        assert_eq!(p.specificity(), 3);
    }

    #[test]
    fn positive_ce_indices_skip_negated() {
        let p = Production {
            name: intern("idx"),
            lhs: vec![
                ConditionElement::positive("a", vec![]),
                ConditionElement::negative("b", vec![]),
                ConditionElement::positive("c", vec![]),
            ],
            rhs: vec![],
        };
        assert_eq!(p.positive_ce_indices(), vec![0, 2]);
    }
}
