//! Fluent programmatic construction of productions.
//!
//! The workload generators in `mpps-workloads` build hundreds of structured
//! productions; writing them as text and re-parsing would be slow and
//! noisy. [`ProductionBuilder`] offers a typed alternative:
//!
//! ```
//! use mpps_ops::{ProductionBuilder, Predicate, RhsValue, Value};
//!
//! let p = ProductionBuilder::new("clear-blue")
//!     .ce("block", |ce| ce.var("name", "b2").constant("color", "blue"))
//!     .ce("block", |ce| ce.var("name", "b2").var("on", "b1"))
//!     .neg_ce("hand", |ce| ce.constant("state", "busy"))
//!     .remove(2)
//!     .make("goal", &[("obj", RhsValue::Var("b1".into()))])
//!     .build()
//!     .unwrap();
//! assert_eq!(p.lhs.len(), 3);
//! ```

use crate::cond::{AttrTest, ConditionElement, Predicate, TestKind};
use crate::error::OpsError;
use crate::production::{Action, Production, RhsValue};
use crate::symbol::{intern, Symbol};
use crate::value::Value;

/// Builder for one condition element.
#[derive(Default)]
pub struct CeBuilder {
    tests: Vec<AttrTest>,
}

impl CeBuilder {
    /// Add an equality constant test `^attr value`.
    pub fn constant(mut self, attr: &str, value: impl Into<Value>) -> Self {
        self.tests.push(AttrTest {
            attr: intern(attr),
            kind: TestKind::Constant(Predicate::Eq, value.into()),
        });
        self
    }

    /// Add a relational constant test `^attr pred value`.
    pub fn pred(mut self, attr: &str, pred: Predicate, value: impl Into<Value>) -> Self {
        self.tests.push(AttrTest {
            attr: intern(attr),
            kind: TestKind::Constant(pred, value.into()),
        });
        self
    }

    /// Add a disjunction test `^attr << v1 v2 … >>`.
    pub fn disj(mut self, attr: &str, values: &[Value]) -> Self {
        self.tests.push(AttrTest {
            attr: intern(attr),
            kind: TestKind::disjunction(values.to_vec()),
        });
        self
    }

    /// Add a variable (equality) test `^attr <var>`.
    pub fn var(mut self, attr: &str, var: &str) -> Self {
        self.tests.push(AttrTest {
            attr: intern(attr),
            kind: TestKind::Variable(intern(var)),
        });
        self
    }

    /// Add a relational test against a bound variable `^attr pred <var>`.
    pub fn var_pred(mut self, attr: &str, pred: Predicate, var: &str) -> Self {
        self.tests.push(AttrTest {
            attr: intern(attr),
            kind: TestKind::VariablePred(pred, intern(var)),
        });
        self
    }
}

/// Builder for a production.
pub struct ProductionBuilder {
    name: Symbol,
    lhs: Vec<ConditionElement>,
    rhs: Vec<Action>,
}

impl ProductionBuilder {
    /// Start building a production named `name`.
    pub fn new(name: &str) -> Self {
        ProductionBuilder {
            name: intern(name),
            lhs: Vec::new(),
            rhs: Vec::new(),
        }
    }

    /// Append a positive condition element of class `class`.
    pub fn ce(mut self, class: &str, f: impl FnOnce(CeBuilder) -> CeBuilder) -> Self {
        let b = f(CeBuilder::default());
        self.lhs.push(ConditionElement::positive(class, b.tests));
        self
    }

    /// Append a negated condition element.
    pub fn neg_ce(mut self, class: &str, f: impl FnOnce(CeBuilder) -> CeBuilder) -> Self {
        let b = f(CeBuilder::default());
        self.lhs.push(ConditionElement::negative(class, b.tests));
        self
    }

    /// Append a `(make class ...)` action.
    pub fn make(mut self, class: &str, attrs: &[(&str, RhsValue)]) -> Self {
        self.rhs.push(Action::Make {
            class: intern(class),
            attrs: attrs.iter().map(|(a, v)| (intern(a), v.clone())).collect(),
        });
        self
    }

    /// Append a `(remove k)` action (1-based positive CE index).
    pub fn remove(mut self, ce: usize) -> Self {
        self.rhs.push(Action::Remove(ce));
        self
    }

    /// Append a `(modify k ...)` action.
    pub fn modify(mut self, ce: usize, attrs: &[(&str, RhsValue)]) -> Self {
        self.rhs.push(Action::Modify {
            ce,
            attrs: attrs.iter().map(|(a, v)| (intern(a), v.clone())).collect(),
        });
        self
    }

    /// Append a `(write ...)` action.
    pub fn write(mut self, vals: &[RhsValue]) -> Self {
        self.rhs.push(Action::Write(vals.to_vec()));
        self
    }

    /// Append a `(bind <var> expr)` action.
    pub fn bind(mut self, var_name: &str, expr: RhsValue) -> Self {
        self.rhs.push(Action::Bind(intern(var_name), expr));
        self
    }

    /// Append a `(halt)` action.
    pub fn halt(mut self) -> Self {
        self.rhs.push(Action::Halt);
        self
    }

    /// Finish, validating the production.
    pub fn build(self) -> Result<Production, OpsError> {
        let p = Production {
            name: self.name,
            lhs: self.lhs,
            rhs: self.rhs,
        };
        p.validate()?;
        Ok(p)
    }
}

/// Shorthand for `RhsValue::Var`.
pub fn var(name: &str) -> RhsValue {
    RhsValue::Var(intern(name))
}

/// Shorthand for `RhsValue::Const`.
pub fn lit(v: impl Into<Value>) -> RhsValue {
    RhsValue::Const(v.into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_production;

    #[test]
    fn builder_matches_parsed_equivalent() {
        let built = ProductionBuilder::new("clear-the-blue-block")
            .ce("block", |ce| {
                ce.var("name", "block2").constant("color", "blue")
            })
            .ce("block", |ce| ce.var("name", "block2").var("on", "block1"))
            .ce("hand", |ce| ce.constant("state", "free"))
            .remove(2)
            .build()
            .unwrap();
        let parsed = parse_production(
            r#"
            (p clear-the-blue-block
               (block ^name <block2> ^color blue)
               (block ^name <block2> ^on <block1>)
               (hand ^state free)
               -->
               (remove 2))
            "#,
        )
        .unwrap();
        assert_eq!(built, parsed);
    }

    #[test]
    fn builder_validates() {
        let bad = ProductionBuilder::new("bad")
            .ce("a", |ce| ce)
            .write(&[var("ghost")])
            .build();
        assert!(bad.is_err());
    }

    #[test]
    fn builder_supports_all_actions() {
        let p = ProductionBuilder::new("all-actions")
            .ce("a", |ce| ce.var("x", "v").pred("n", Predicate::Gt, 3))
            .neg_ce("b", |ce| ce.var_pred("m", Predicate::Lt, "v"))
            .make("c", &[("y", var("v"))])
            .modify(1, &[("n", lit(0))])
            .remove(1)
            .write(&[lit("done")])
            .halt()
            .build()
            .unwrap();
        assert_eq!(p.rhs.len(), 5);
        assert!(p.lhs[1].negated);
    }
}
