#![warn(missing_docs)]

//! # mpps-ops — an OPS5-subset production-system language
//!
//! This crate provides the language substrate for the `mpps` workspace, a
//! reproduction of *"Production Systems on Message Passing Computers"*
//! (Tambe, Acharya & Gupta, ICPP 1989). It implements the parts of OPS5 that
//! the paper's match-parallelism study depends on:
//!
//! * **Working memory**: records-with-attributes ([`Wme`]) identified by
//!   monotonically increasing time tags ([`WmeId`]).
//! * **Productions**: left-hand sides made of condition elements with
//!   constant tests, variable (equality) tests and negated condition
//!   elements; right-hand sides with `make` / `remove` / `modify` / `write` /
//!   `halt` actions.
//! * A textual parser for an OPS5-like s-expression syntax and a
//!   programmatic [`builder`] API.
//! * **Conflict resolution**: the OPS5 LEX and MEA strategies with
//!   refraction.
//! * The **match–resolve–act interpreter** ([`Interpreter`]) parameterized
//!   over a [`Matcher`], so the naive matcher in this crate, the sequential
//!   Rete engine in `mpps-rete`, and the parallel executors in `mpps-core`
//!   are interchangeable.
//!
//! ## Quick example
//!
//! ```
//! use mpps_ops::{parse_program, Interpreter, Strategy};
//!
//! let program = parse_program(
//!     r#"
//!     (p count-down
//!        (counter ^value <v>)
//!        -(counter ^value 0)
//!        -->
//!        (modify 1 ^value (- <v> 1))
//!        (write tick <v>))
//!     "#,
//! )
//! .unwrap();
//!
//! let mut interp = Interpreter::new(program, Strategy::Lex);
//! interp.wm_make("counter", &[("value", 3.into())]);
//! let result = interp.run(100).unwrap();
//! assert_eq!(result.fired.len(), 3); // fires for 3, 2, 1 and then quiesces
//! ```

pub mod builder;
pub mod cond;
pub mod conflict;
pub mod error;
pub mod interpreter;
pub mod matcher;
pub mod naive;
pub mod parser;
pub mod production;
pub mod symbol;
pub mod treat;
pub mod value;
pub mod wme;

pub use builder::ProductionBuilder;
pub use cond::{AttrTest, ConditionElement, Predicate, TestKind};
pub use conflict::{compare, resolve, Strategy};
pub use error::{MatchError, OpsError, ParseError};
pub use interpreter::{FiredRecord, Interpreter, InterpreterState, RunOutcome, RunResult};
pub use matcher::{sort_conflict_set, Instantiation, Matcher, WmeChange};
pub use naive::NaiveMatcher;
pub use parser::{parse_production, parse_program, parse_wme};
pub use production::{Action, Production, ProductionId, Program, RhsOp, RhsValue};
pub use symbol::{intern, Symbol};
pub use treat::TreatMatcher;
pub use value::Value;
pub use wme::{Sign, Wme, WmeId, WorkingMemory};
