use mpps_ops::{parse_program, Interpreter, Matcher, NaiveMatcher, Strategy};

#[test]
fn add_then_remove_before_step_survives_restore() {
    let prog = parse_program("(p t (a) --> (write saw-a))").unwrap();
    // Uninterrupted: add then remove before any step => never matched.
    let mut whole = Interpreter::new(prog.clone(), Strategy::Lex);
    let id = whole.wm_make("a", &[]);
    whole.remove_wme(id).unwrap();
    whole.run(10).unwrap();
    assert!(whole.output().is_empty());

    // Interrupted at the same point.
    let mut first = Interpreter::new(prog.clone(), Strategy::Lex);
    let id = first.wm_make("a", &[]);
    first.remove_wme(id).unwrap();
    let state = first.export_state();
    let matcher = NaiveMatcher::new(prog.clone());
    let mut resumed = Interpreter::with_matcher_state(prog, matcher, state).unwrap();
    resumed.run(10).unwrap();
    assert_eq!(resumed.output(), whole.output(), "restored run diverged");
    assert_eq!(
        resumed.matcher().conflict_set(),
        whole.matcher().conflict_set()
    );
}
