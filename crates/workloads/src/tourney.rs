//! A runnable tournament-scheduling ruleset with a genuine cross-product.
//!
//! The paper's Tourney section came from "a program to do scheduling for a
//! tournament", whose interesting cycle contains a heavy **cross-product**:
//! a two-input node with *no equality-tested variable*, so the hash
//! function cannot discriminate and all of its tokens land in one bucket
//! (§5.2.2). The pairing rule below joins east-division teams against
//! west-division teams with no shared variable — exactly that shape.
//! [`crate::section::capture_trace`] over this program yields a trace
//! whose cross join is single-bucket, and
//! [`mpps_rete::copy_and_constrain`] applied to the pairing rule (split on
//! the west team's integer id) restores discrimination — the Figure 5-6
//! experiment, on a real ruleset.

use crate::section::{capture_trace, CapturedRun};
use mpps_ops::builder::var;
use mpps_ops::{OpsError, Production, ProductionBuilder, Program, Strategy, Wme};
use mpps_rete::transform::copy_and_constrain;

/// The pairing rule: the cross-product production.
pub fn pairing_rule() -> Production {
    ProductionBuilder::new("pair-teams")
        .ce("round", |ce| ce.var("n", "r"))
        .ce("team", |ce| ce.constant("div", "east").var("id", "a"))
        .ce("team", |ce| ce.constant("div", "west").var("id", "b"))
        .neg_ce("game", |ce| ce.var("east", "a").var("west", "b"))
        .neg_ce("busy", |ce| ce.var("round", "r").var("team", "a"))
        .neg_ce("busy", |ce| ce.var("round", "r").var("team", "b"))
        .make(
            "game",
            &[("east", var("a")), ("west", var("b")), ("round", var("r"))],
        )
        .make("busy", &[("round", var("r")), ("team", var("a"))])
        .make("busy", &[("round", var("r")), ("team", var("b"))])
        .build()
        .expect("pairing rule is valid")
}

/// The complete program (pairing only; rounds are injected as WMEs).
pub fn program() -> Program {
    Program::from_productions(vec![pairing_rule()]).expect("tourney program is valid")
}

/// The program with the pairing rule split `ways` copies by
/// copy-and-constraint on the west team's id (ids are `100..100+west`).
pub fn program_copy_constrained(west: usize, ways: usize) -> Result<Program, OpsError> {
    assert!(ways >= 2, "splitting needs at least two copies");
    let span = west.div_ceil(ways) as i64;
    let boundaries: Vec<i64> = (1..ways as i64).map(|k| 100 + k * span).collect();
    // CE index 2 (0-based) is the west-team condition element.
    let copies = copy_and_constrain(&pairing_rule(), 2, "id", &boundaries)?;
    Program::from_productions(copies)
}

/// Initial WM: `east` + `west` teams and round 1. East ids are `0..east`,
/// west ids `100..100+west`.
pub fn initial(east: usize, west: usize) -> Vec<Wme> {
    let mut wmes = Vec::new();
    for i in 0..east {
        wmes.push(Wme::new(
            "team",
            &[("div", "east".into()), ("id", (i as i64).into())],
        ));
    }
    for i in 0..west {
        wmes.push(Wme::new(
            "team",
            &[("div", "west".into()), ("id", (100 + i as i64).into())],
        ));
    }
    wmes.push(Wme::new("round", &[("n", 1.into())]));
    wmes
}

/// Capture a section: `cycles` MRA cycles over an east×west tournament.
/// The first match phase contains the cross-product explosion.
pub fn section(east: usize, west: usize, cycles: usize, table_size: u64) -> CapturedRun {
    capture_trace(
        program(),
        initial(east, west),
        Strategy::Lex,
        cycles,
        table_size,
    )
    .expect("tourney section runs")
}

/// The same section with the copy-and-constraint program.
pub fn section_copy_constrained(
    east: usize,
    west: usize,
    ways: usize,
    cycles: usize,
    table_size: u64,
) -> CapturedRun {
    capture_trace(
        program_copy_constrained(west, ways).expect("split program valid"),
        initial(east, west),
        Strategy::Lex,
        cycles,
        table_size,
    )
    .expect("tourney cc section runs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_ops::{Interpreter, Matcher};
    use mpps_rete::trace::ActKind;
    use mpps_rete::{NodeKind, ReteMatcher, ReteNetwork, Side};

    #[test]
    fn cross_join_has_no_hash_discrimination() {
        let net = ReteNetwork::compile(&program()).unwrap();
        // The join of east×west (the second two-input node) tests no
        // variable.
        let cross = net
            .iter()
            .filter_map(|(_, n)| match n {
                NodeKind::TwoInput(j) if !j.negative => Some(j),
                _ => None,
            })
            .find(|j| j.spec.eq_checks.is_empty());
        assert!(cross.is_some(), "program contains a cross-product join");
    }

    #[test]
    fn pairing_produces_full_cross_product_in_conflict_set() {
        let mut m = ReteMatcher::from_program(&program()).unwrap();
        let changes: Vec<_> = initial(4, 5)
            .into_iter()
            .enumerate()
            .map(|(i, w)| mpps_ops::WmeChange::add(mpps_ops::WmeId(1 + i as u64), w))
            .collect();
        m.process(&changes);
        assert_eq!(m.conflict_set().len(), 20);
    }

    #[test]
    fn firing_schedules_disjoint_pairs_per_round() {
        let mut interp = Interpreter::new(program(), Strategy::Lex);
        for w in initial(3, 3) {
            interp.add_wme(w);
        }
        let r = interp.run(50).unwrap();
        // Each team can play once in round 1: three games.
        let games = interp
            .working_memory()
            .iter()
            .filter(|(_, w)| w.class().as_str() == "game")
            .count();
        assert_eq!(games, 3);
        assert!(r.fired.iter().all(|f| f.name.as_str() == "pair-teams"));
    }

    #[test]
    fn section_is_left_heavy_and_single_bucket_at_the_cross_join() {
        let run = section(8, 8, 3, 512);
        let stats = run.trace.stats();
        assert!(
            stats.left_fraction() > 0.6,
            "cross-product sections are left-heavy: {stats}"
        );
        // The cross-product join cannot discriminate: there must be a node
        // with many left activations all landing in a single bucket.
        use std::collections::HashMap;
        let mut per_node: HashMap<u32, Vec<u64>> = HashMap::new();
        for c in &run.trace.cycles {
            for a in &c.activations {
                if a.kind == ActKind::TwoInput && a.side == Side::Left {
                    per_node.entry(a.node.0).or_default().push(a.bucket);
                }
            }
        }
        let single_bucket_hot = per_node.values().any(|buckets| {
            let mut uniq = buckets.clone();
            uniq.sort_unstable();
            uniq.dedup();
            buckets.len() >= 8 && uniq.len() == 1
        });
        assert!(
            single_bucket_hot,
            "expected a non-discriminating (single-bucket) hot node"
        );
    }

    #[test]
    fn copy_and_constraint_spreads_the_cross_join() {
        let plain = section(8, 8, 2, 512);
        let split = section_copy_constrained(8, 8, 4, 2, 512);
        let spread = |run: &CapturedRun| {
            let mut buckets: Vec<u64> = run
                .trace
                .cycles
                .iter()
                .flat_map(|c| c.activations.iter())
                .filter(|a| a.kind == ActKind::TwoInput && a.side == Side::Left)
                .map(|a| a.bucket)
                .collect();
            buckets.sort_unstable();
            buckets.dedup();
            buckets.len()
        };
        assert!(
            spread(&split) > spread(&plain),
            "copies spread left tokens over more buckets ({} vs {})",
            spread(&split),
            spread(&plain)
        );
    }

    #[test]
    fn copy_constrained_program_schedules_the_same_games() {
        let mut a = Interpreter::new(program(), Strategy::Lex);
        let mut b = Interpreter::new(program_copy_constrained(4, 2).unwrap(), Strategy::Lex);
        for w in initial(3, 4) {
            a.add_wme(w.clone());
            b.add_wme(w);
        }
        a.run(60).unwrap();
        b.run(60).unwrap();
        let games = |i: &Interpreter<_>| {
            i.working_memory()
                .iter()
                .filter(|(_, w)| w.class().as_str() == "game")
                .count()
        };
        assert_eq!(games(&a), games(&b));
    }
}
