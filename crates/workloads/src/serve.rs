//! The per-session workload behind `mpps serve --synthetic`.
//!
//! The ROADMAP's serving direction inverts the paper: instead of one
//! production system spread across processors, one compiled network is
//! shared by many independent working-memory sessions (one per simulated
//! user). This module provides the session program and its request
//! generator: a small ticket-triage loop (route → finish → retire) whose
//! working memory returns to just the per-session `stats` element after
//! every round, so WM stays bounded no matter how many rounds a session
//! lives — the property a long-running server needs.
//!
//! Every ingested request costs exactly three firings (route, finish,
//! retire), which makes sustained WME-changes/sec and cycles/sec directly
//! comparable across session counts in `BENCH_server.json`.

use mpps_ops::{parse_program, Program, Wme};

/// Number of MRA cycles one request costs (route, finish, retire).
pub const CYCLES_PER_REQUEST: usize = 3;

/// The session program: triage incoming `request` elements into `task`s,
/// complete them, and fold completions into the session's `stats` counter.
pub fn program() -> Program {
    parse_program(
        r#"
        (p route
           (request ^id <r> ^kind <k>)
           -(task ^req <r>)
           -->
           (make task ^req <r> ^kind <k> ^state open))
        (p finish
           (task ^req <r> ^state open)
           (request ^id <r>)
           -->
           (remove 2)
           (modify 1 ^state done))
        (p retire
           (stats ^done <n>)
           (task ^state done)
           -->
           (remove 2)
           (modify 1 ^done (+ <n> 1)))
        "#,
    )
    .expect("serve workload program is valid")
}

/// A session's initial working memory: the `stats` accumulator.
pub fn initial() -> Vec<Wme> {
    vec![Wme::new("stats", &[("done", 0.into())])]
}

/// The request kinds sessions cycle through (varies alpha routing and
/// join-value hashing across requests).
const KINDS: [&str; 4] = ["alert", "order", "query", "sync"];

/// One round of requests for `session`: `count` WMEs with ids unique
/// within the session's lifetime (so refraction never confuses rounds)
/// and kinds that vary by session and position.
pub fn round(session: u64, round: u64, count: usize) -> Vec<Wme> {
    (0..count)
        .map(|j| {
            let id = round * count as u64 + j as u64;
            let kind = KINDS[((session + id) % KINDS.len() as u64) as usize];
            Wme::new(
                "request",
                &[("id", (id as i64).into()), ("kind", kind.into())],
            )
        })
        .collect()
}

/// Upper bound on the cycles a round of `count` requests needs to
/// quiesce (three firings per request plus the final quiescent match).
pub fn cycle_budget(count: usize) -> usize {
    CYCLES_PER_REQUEST * count + 1
}

/// A minimal single-request probe: one `request` WME whose id is taken
/// from a private high range so it never collides with [`round`] ids.
/// Used to *touch* a session — e.g. forcing an evicted one to fault back
/// in — without perturbing the per-round accounting the benches assert.
pub fn touch(session: u64, seq: u64) -> Vec<Wme> {
    let id = (1 << 40) | seq;
    let kind = KINDS[((session + seq) % KINDS.len() as u64) as usize];
    vec![Wme::new(
        "request",
        &[("id", (id as i64).into()), ("kind", kind.into())],
    )]
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_ops::{Interpreter, RunOutcome, Strategy};

    #[test]
    fn each_round_quiesces_with_bounded_wm() {
        let mut interp = Interpreter::new(program(), Strategy::Lex);
        for w in initial() {
            interp.add_wme(w);
        }
        for r in 0..3u64 {
            for w in round(7, r, 4) {
                interp.add_wme(w);
            }
            let result = interp.run(cycle_budget(4)).unwrap();
            assert_eq!(result.outcome, RunOutcome::Quiescent, "round {r}");
            assert_eq!(result.fired.len(), CYCLES_PER_REQUEST * 4, "round {r}");
            // WM is back to just the stats element.
            assert_eq!(interp.working_memory().len(), 1, "round {r}");
        }
        let (_, stats) = interp.working_memory().iter().next().unwrap();
        assert_eq!(
            stats.get(mpps_ops::intern("done")),
            Some(mpps_ops::Value::Int(12))
        );
    }

    #[test]
    fn rounds_differ_across_sessions_and_rounds() {
        assert_ne!(round(0, 0, 4), round(1, 0, 4));
        assert_ne!(round(0, 0, 4), round(0, 1, 4));
    }
}
