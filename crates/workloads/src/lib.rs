#![warn(missing_docs)]

//! # mpps-workloads — the paper's characteristic sections, runnable and calibrated
//!
//! §5 of the paper evaluates three "characteristic sections of production
//! system execution": Rubik (good speedups, right-heavy), Weaver (small
//! cycles) and Tourney (a cross-product cycle). This crate provides each
//! twice:
//!
//! * **Runnable rulesets** ([`rubik`], [`tourney`], [`weaver`]) — real
//!   OPS5-subset programs with the same qualitative match character,
//!   executed through the interpreter and traced via [`section`]. These
//!   demonstrate the full pipeline and feed the examples.
//! * **Calibrated synthetic sections** ([`synth`]) — seeded trace
//!   generators that hit the paper's Table 5-2 activation counts
//!   *exactly* (Rubik 2388 L / 6114 R; Tourney 10667 L / 83 R; Weaver
//!   338 L / 78 R) with the documented structural pathologies
//!   (single-bucket cross-product, three-generator small cycle, shifting
//!   active-bucket sets). The figure reproductions sweep these.

pub mod rubik;
pub mod section;
pub mod serve;
pub mod synth;
pub mod tourney;
pub mod weaver;

pub use section::{capture_trace, capture_trace_on, CapturedRun};
