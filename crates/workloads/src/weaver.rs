//! A runnable VLSI-channel-routing ruleset with small cycles.
//!
//! The paper's Weaver section came from a knowledge-based VLSI router.
//! Its defining property is **small cycles**: match phases with 100 or
//! fewer tokens, where per-cycle parallelism is scarce and a handful of
//! left activations generate most of the successors (§5.2.1). This
//! workload routes nets across a grid one step per MRA cycle — each
//! firing changes only a few WMEs (the path head, one cell), so every
//! cycle is small, and the shared extension join concentrates successor
//! generation the way the paper describes.

use crate::section::{capture_trace, CapturedRun};
use mpps_ops::builder::{lit, var};
use mpps_ops::{ProductionBuilder, Program, RhsOp, RhsValue, Strategy, Wme};

/// The routing program: extend the path head onto a free adjacent cell,
/// and finish a net when its head reaches the target.
pub fn program() -> Program {
    let plus_one = |v: &str| RhsValue::Compute(RhsOp::Add, Box::new(var(v)), Box::new(lit(1)));
    let extend = ProductionBuilder::new("extend-path")
        .ce("head", |ce| {
            ce.var("net", "n")
                .var("x", "x")
                .var("y", "y")
                .var("dist", "d")
        })
        .ce("edge", |ce| {
            ce.var("fx", "x")
                .var("fy", "y")
                .var("tx", "tx")
                .var("ty", "ty")
        })
        .ce("cell", |ce| {
            ce.var("x", "tx").var("y", "ty").constant("state", "free")
        })
        .neg_ce("target", |ce| {
            ce.var("net", "n").var("x", "x").var("y", "y")
        })
        .modify(
            1,
            &[("x", var("tx")), ("y", var("ty")), ("dist", plus_one("d"))],
        )
        .modify(3, &[("state", lit("used"))])
        .make(
            "segment",
            &[("net", var("n")), ("x", var("tx")), ("y", var("ty"))],
        )
        .build()
        .expect("extend rule is valid");
    let arrive = ProductionBuilder::new("net-routed")
        .ce("head", |ce| ce.var("net", "n").var("x", "x").var("y", "y"))
        .ce("target", |ce| {
            ce.var("net", "n").var("x", "x").var("y", "y")
        })
        .remove(1)
        .make("routed", &[("net", var("n"))])
        .write(&[lit("routed"), var("n")])
        .build()
        .expect("arrive rule is valid");
    Program::from_productions(vec![arrive, extend]).expect("weaver program is valid")
}

/// Initial WM for a `width × height` grid with one net to route from
/// `(0, 0)` to `(width-1, 0)`.
///
/// Cells, 4-neighbourhood edges, the net's head and its target.
pub fn initial(width: i64, height: i64) -> Vec<Wme> {
    let mut wmes = Vec::new();
    for x in 0..width {
        for y in 0..height {
            // The start cell is occupied by the head already.
            let state = if (x, y) == (0, 0) { "used" } else { "free" };
            wmes.push(Wme::new(
                "cell",
                &[("x", x.into()), ("y", y.into()), ("state", state.into())],
            ));
        }
    }
    let mut edge = |fx: i64, fy: i64, tx: i64, ty: i64| {
        wmes.push(Wme::new(
            "edge",
            &[
                ("fx", fx.into()),
                ("fy", fy.into()),
                ("tx", tx.into()),
                ("ty", ty.into()),
            ],
        ));
    };
    for x in 0..width {
        for y in 0..height {
            if x + 1 < width {
                edge(x, y, x + 1, y);
                edge(x + 1, y, x, y);
            }
            if y + 1 < height {
                edge(x, y, x, y + 1);
                edge(x, y + 1, x, y);
            }
        }
    }
    wmes.push(Wme::new(
        "head",
        &[
            ("net", 1.into()),
            ("x", 0.into()),
            ("y", 0.into()),
            ("dist", 0.into()),
        ],
    ));
    wmes.push(Wme::new(
        "target",
        &[
            ("net", 1.into()),
            ("x", (width - 1).into()),
            ("y", 0.into()),
        ],
    ));
    wmes
}

/// Route on a `width × height` grid for up to `cycles` MRA cycles and
/// capture the trace — the runnable counterpart of the paper's Weaver
/// small-cycle section.
pub fn section(width: i64, height: i64, cycles: usize, table_size: u64) -> CapturedRun {
    capture_trace(
        program(),
        initial(width, height),
        Strategy::Lex,
        cycles,
        table_size,
    )
    .expect("weaver section runs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_ops::{Interpreter, Value};

    #[test]
    fn program_compiles() {
        assert!(mpps_rete::ReteNetwork::compile(&program()).is_ok());
    }

    #[test]
    fn routes_a_straight_channel() {
        // 4x1 grid: the only route is straight east; three extensions then
        // arrival.
        let mut interp = Interpreter::new(program(), Strategy::Lex);
        for w in initial(4, 1) {
            interp.add_wme(w);
        }
        let r = interp.run(50).unwrap();
        let routed = interp
            .working_memory()
            .iter()
            .any(|(_, w)| w.class().as_str() == "routed");
        assert!(routed, "net reaches its target");
        assert_eq!(
            interp.output().last().unwrap(),
            &vec![Value::sym("routed"), Value::Int(1)]
        );
        assert!(r.fired.iter().any(|f| f.name.as_str() == "net-routed"));
        // Heads are removed on arrival.
        assert!(!interp
            .working_memory()
            .iter()
            .any(|(_, w)| w.class().as_str() == "head"));
    }

    #[test]
    fn extension_marks_cells_used() {
        let mut interp = Interpreter::new(program(), Strategy::Lex);
        for w in initial(3, 1) {
            interp.add_wme(w);
        }
        interp.run(30).unwrap();
        let used = interp
            .working_memory()
            .iter()
            .filter(|(_, w)| {
                w.class().as_str() == "cell"
                    && w.get(mpps_ops::intern("state")) == Some(Value::sym("used"))
            })
            .count();
        assert_eq!(used, 3, "the whole channel is consumed");
    }

    #[test]
    fn section_cycles_are_small() {
        let run = section(5, 3, 25, 256);
        let stats = run.trace.stats();
        assert!(stats.total() > 0);
        for (i, c) in run.trace.cycles.iter().enumerate() {
            assert!(
                c.two_input_count() <= 150,
                "cycle {i} has {} activations — not a small cycle",
                c.two_input_count()
            );
        }
    }

    #[test]
    fn section_is_left_leaning() {
        // Most activity is beta-side: heads/edges/cells joining.
        let run = section(6, 2, 40, 256);
        let stats = run.trace.stats();
        assert!(
            stats.left_fraction() > 0.3,
            "expected substantial left activity: {stats}"
        );
    }
}
