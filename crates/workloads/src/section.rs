//! Capturing activation traces from real production-system runs.
//!
//! The paper fed its simulator "a detailed trace of the activity of the
//! hash-table … corresponding to the actual production system runs", then
//! cut out *characteristic sections* (a few consecutive cycles). This
//! module does the same for the runnable rulesets in this crate: execute a
//! program under the MRA interpreter with a tracing Rete matcher, and
//! return the recorded trace alongside the run outcome.

use mpps_ops::{Interpreter, OpsError, Program, RunResult, Strategy, Wme};
use mpps_rete::{EngineConfig, ReteMatcher, ReteNetwork, Trace};

/// A completed run with its activation trace.
pub struct CapturedRun {
    /// Per-cycle hash-table activity (the simulator input).
    pub trace: Trace,
    /// Interpreter outcome (cycles, firings, halt reason).
    pub result: RunResult,
    /// Final working-memory size.
    pub wm_len: usize,
}

/// Run `program` from `initial` working memory for up to `max_cycles`
/// cycles, recording the Rete activation trace over `table_size` hash
/// buckets.
pub fn capture_trace(
    program: Program,
    initial: Vec<Wme>,
    strategy: Strategy,
    max_cycles: usize,
    table_size: u64,
) -> Result<CapturedRun, OpsError> {
    let network = ReteNetwork::compile(&program)?;
    capture_trace_on(network, program, initial, strategy, max_cycles, table_size)
}

/// Like [`capture_trace`] but over a caller-compiled network (e.g. one
/// compiled with sharing disabled, for the unsharing experiment).
pub fn capture_trace_on(
    network: ReteNetwork,
    program: Program,
    initial: Vec<Wme>,
    strategy: Strategy,
    max_cycles: usize,
    table_size: u64,
) -> Result<CapturedRun, OpsError> {
    let matcher = ReteMatcher::new(
        network,
        EngineConfig {
            table_size,
            record_trace: true,
        },
    );
    let mut interp = Interpreter::with_matcher(program, strategy, matcher);
    for wme in initial {
        interp.add_wme(wme);
    }
    let result = interp.run(max_cycles)?;
    let wm_len = interp.working_memory().len();
    let trace = interp
        .matcher_mut()
        .take_trace()
        .expect("tracing was enabled");
    Ok(CapturedRun {
        trace,
        result,
        wm_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_ops::parse_program;

    #[test]
    fn capture_produces_one_trace_cycle_per_match() {
        let program = parse_program(
            r#"
            (p step (counter ^v <v>) -(counter ^v 0)
               --> (modify 1 ^v (- <v> 1)))
            "#,
        )
        .unwrap();
        let run = capture_trace(
            program,
            vec![Wme::new("counter", &[("v", 2.into())])],
            Strategy::Lex,
            50,
            64,
        )
        .unwrap();
        assert_eq!(run.trace.cycles.len(), run.result.cycles);
        assert_eq!(run.result.fired.len(), 2);
        assert!(run.trace.stats().total() > 0);
        assert_eq!(run.wm_len, 1);
    }

    #[test]
    fn unshared_network_capture_works() {
        let src = r#"
            (p a (g ^id <g>) (t ^g <g> ^k 1) --> (remove 2))
            (p b (g ^id <g>) (t ^g <g> ^k 2) --> (remove 2))
        "#;
        let program = parse_program(src).unwrap();
        let unshared = mpps_rete::transform::unshare(&program).unwrap();
        let run = capture_trace_on(
            unshared,
            program,
            vec![
                Wme::new("g", &[("id", 1.into())]),
                Wme::new("t", &[("g", 1.into()), ("k", 1.into())]),
                Wme::new("t", &[("g", 1.into()), ("k", 2.into())]),
            ],
            Strategy::Lex,
            10,
            64,
        )
        .unwrap();
        assert_eq!(run.result.fired.len(), 2);
    }
}
