//! A runnable pocket-cube (2×2×2) move-application ruleset.
//!
//! The paper's Rubik section came from "a program to solve the Rubik's
//! cube". This workload reproduces its match character: each production
//! firing applies one face turn by *modifying* a dozen sticker WMEs at
//! once. Every modify is a delete + add with a fresh time tag, so each
//! cycle floods the network with right activations (the sticker CEs are
//! constant-position alpha patterns) and regenerates the long beta chains
//! below — the *multiple-modify-effect* of §5.2.2, which the paper notes
//! it discovered in exactly this kind of trace.
//!
//! The two face permutations are a faithful abstraction of a pocket cube's
//! U and R quarter-turns (sticker positions: U 0–3, D 4–7, F 8–11,
//! B 12–15, L 16–19, R 20–23); any fixed 12-sticker permutation produces
//! the same match behaviour, which is what the workload is for.

use crate::section::{capture_trace, CapturedRun};
use mpps_ops::builder::{lit, var};
use mpps_ops::{OpsError, Production, ProductionBuilder, Program, RhsOp, RhsValue, Strategy, Wme};

/// The two faces this workload turns.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Face {
    /// Up-face quarter turn.
    U,
    /// Right-face quarter turn.
    R,
}

impl Face {
    fn name(self) -> &'static str {
        match self {
            Face::U => "u",
            Face::R => "r",
        }
    }

    /// `(destination, source)` sticker pairs: after the turn, sticker
    /// `destination` shows the colour previously at `source`.
    fn permutation(self) -> &'static [(u8, u8); 12] {
        match self {
            Face::U => &[
                // U face corner cycle 0→1→3→2→0.
                (1, 0),
                (3, 1),
                (2, 3),
                (0, 2),
                // Top rows: F→L→B→R→F.
                (16, 8),
                (17, 9),
                (12, 16),
                (13, 17),
                (20, 12),
                (21, 13),
                (8, 20),
                (9, 21),
            ],
            Face::R => &[
                // R face corner cycle 20→21→23→22→20.
                (21, 20),
                (23, 21),
                (22, 23),
                (20, 22),
                // Right columns: F→U→B→D→F (with the back-face flip).
                (1, 9),
                (3, 11),
                (14, 1),
                (12, 3),
                (5, 14),
                (7, 12),
                (9, 5),
                (11, 7),
            ],
        }
    }
}

/// Build the `apply-<face>` production: matches the plan step, the tick,
/// and the twelve affected stickers; modifies all twelve plus the tick.
fn apply_rule(face: Face) -> Result<Production, OpsError> {
    let perm = face.permutation();
    let mut b = ProductionBuilder::new(&format!("apply-{}", face.name()))
        .ce("plan", |ce| {
            ce.constant("face", face.name()).var("step", "s")
        })
        .ce("tick", |ce| ce.var("n", "s"));
    for &(dest, _) in perm {
        let cvar = format!("c{dest}");
        b = b.ce("sticker", move |ce| {
            ce.constant("pos", i64::from(dest)).var("color", &cvar)
        });
    }
    // CE numbering (positive CEs): 1 = plan, 2 = tick, 3.. = stickers in
    // permutation order.
    for (idx, &(_, src)) in perm.iter().enumerate() {
        b = b.modify(3 + idx, &[("color", var(&format!("c{src}")))]);
    }
    b = b.modify(
        2,
        &[(
            "n",
            RhsValue::Compute(RhsOp::Add, Box::new(var("s")), Box::new(lit(1))),
        )],
    );
    b.build()
}

/// Dormant pattern-detection rules. A real cube solver carries dozens of
/// rules watching for sticker configurations (solved faces, oriented
/// corners, …) that almost never fire; their join right-memories absorb
/// every sticker change as a *right* activation with no successors. These
/// are what make Rubik-style traces right-activation-heavy (Table 5-2:
/// 72% right).
fn observer_rules(count: usize) -> Vec<Production> {
    (0..count)
        .map(|k| {
            let p0 = ((k * 7 + 1) % 24) as i64;
            let p1 = ((k * 11 + 5) % 24) as i64;
            let p2 = ((k * 13 + 9) % 24) as i64;
            ProductionBuilder::new(&format!("watch-config-{k}"))
                // No `probe` WME ever exists, so the rule never fires —
                // but its sticker right-memories see every change.
                .ce("probe", |ce| ce.constant("id", k as i64))
                .ce("sticker", |ce| ce.constant("pos", p0).var("color", "c"))
                .ce("sticker", |ce| ce.constant("pos", p1).var("color", "c"))
                .ce("sticker", |ce| ce.constant("pos", p2).var("color", "c"))
                .write(&[lit("seen"), lit(k as i64)])
                .build()
                .expect("observer rule is valid")
        })
        .collect()
}

/// The complete program: one apply rule per face, the halt rule that
/// fires when the plan runs out, and a bank of dormant observer rules.
pub fn program() -> Program {
    program_with_observers(100)
}

/// Like [`program`] with an explicit observer-rule count (0 gives the
/// minimal, left-heavy variant).
pub fn program_with_observers(observers: usize) -> Program {
    let done = ProductionBuilder::new("rubik-done")
        .ce("tick", |ce| ce.var("n", "n"))
        .neg_ce("plan", |ce| ce.var("step", "n"))
        .halt()
        .build()
        .expect("done rule is valid");
    let mut rules = vec![
        apply_rule(Face::U).expect("apply-u is valid"),
        apply_rule(Face::R).expect("apply-r is valid"),
        done,
    ];
    rules.extend(observer_rules(observers));
    Program::from_productions(rules).expect("rubik program is valid")
}

/// Initial working memory: a solved cube (sticker colour = its face) plus
/// a plan of `moves` and the tick at zero.
pub fn initial(moves: &[Face]) -> Vec<Wme> {
    let face_color = |pos: i64| match pos / 4 {
        0 => "white",
        1 => "yellow",
        2 => "green",
        3 => "blue",
        4 => "orange",
        _ => "red",
    };
    let mut wmes = Vec::new();
    for pos in 0..24i64 {
        wmes.push(Wme::new(
            "sticker",
            &[("pos", pos.into()), ("color", face_color(pos).into())],
        ));
    }
    for (step, face) in moves.iter().enumerate() {
        wmes.push(Wme::new(
            "plan",
            &[("step", (step as i64).into()), ("face", face.name().into())],
        ));
    }
    wmes.push(Wme::new("tick", &[("n", 0.into())]));
    wmes
}

/// A standard alternating move sequence of the given length.
pub fn alternating_moves(n: usize) -> Vec<Face> {
    (0..n)
        .map(|i| if i % 2 == 0 { Face::U } else { Face::R })
        .collect()
}

/// Run `n_moves` turns and capture the activation trace — the runnable
/// counterpart of the paper's Rubik section.
pub fn section(n_moves: usize, table_size: u64) -> CapturedRun {
    capture_trace(
        program(),
        initial(&alternating_moves(n_moves)),
        Strategy::Lex,
        // One cycle per move, one for the halt, one for quiescence, plus
        // slack for the initial match.
        n_moves + 8,
        table_size,
    )
    .expect("rubik section runs")
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_ops::{Interpreter, RunOutcome, Value};

    #[test]
    fn permutations_are_true_permutations() {
        for face in [Face::U, Face::R] {
            let perm = face.permutation();
            let mut dests: Vec<u8> = perm.iter().map(|&(d, _)| d).collect();
            let mut srcs: Vec<u8> = perm.iter().map(|&(_, s)| s).collect();
            dests.sort_unstable();
            srcs.sort_unstable();
            dests.dedup();
            srcs.dedup();
            assert_eq!(dests.len(), 12, "{face:?} destinations unique");
            assert_eq!(srcs.len(), 12, "{face:?} sources unique");
            assert_eq!(dests, srcs, "{face:?} permutes a fixed sticker set");
        }
    }

    #[test]
    fn program_compiles_and_validates() {
        let p = program();
        assert_eq!(p.len(), 103); // 2 apply rules + done + 100 observers
        assert!(mpps_rete::ReteNetwork::compile(&p).is_ok());
        assert_eq!(program_with_observers(0).len(), 3);
    }

    #[test]
    fn one_move_fires_and_advances_tick() {
        let mut interp = Interpreter::new(program(), Strategy::Lex);
        for w in initial(&[Face::U]) {
            interp.add_wme(w);
        }
        let r = interp.run(10).unwrap();
        assert_eq!(r.outcome, RunOutcome::Halted);
        // apply-u once, then rubik-done.
        assert_eq!(r.fired.len(), 2);
        assert_eq!(r.fired[0].name.as_str(), "apply-u");
        let tick = interp
            .working_memory()
            .iter()
            .find(|(_, w)| w.class().as_str() == "tick")
            .unwrap()
            .1
            .get(mpps_ops::intern("n"));
        assert_eq!(tick, Some(Value::Int(1)));
    }

    #[test]
    fn four_u_turns_restore_the_cube() {
        let mut interp = Interpreter::new(program(), Strategy::Lex);
        for w in initial(&[Face::U, Face::U, Face::U, Face::U]) {
            interp.add_wme(w);
        }
        let r = interp.run(20).unwrap();
        assert_eq!(r.outcome, RunOutcome::Halted);
        // A quarter turn has order 4: all stickers back to face colours.
        for (_, w) in interp.working_memory().iter() {
            if w.class().as_str() == "sticker" {
                let pos = w.get(mpps_ops::intern("pos")).unwrap().as_int().unwrap();
                let color = w.get(mpps_ops::intern("color")).unwrap();
                let expected = match pos / 4 {
                    0 => "white",
                    1 => "yellow",
                    2 => "green",
                    3 => "blue",
                    4 => "orange",
                    _ => "red",
                };
                assert_eq!(color, Value::sym(expected), "sticker {pos}");
            }
        }
    }

    #[test]
    fn section_is_right_activation_heavy() {
        let run = section(4, 256);
        let stats = run.trace.stats();
        assert!(stats.total() > 200, "non-trivial section: {stats}");
        assert!(
            stats.left_fraction() < 0.5,
            "rubik-like sections are right-heavy: {stats}"
        );
    }

    #[test]
    fn section_halts_after_all_moves() {
        let run = section(6, 256);
        assert_eq!(run.result.outcome, RunOutcome::Halted);
        assert_eq!(run.result.fired.len(), 7); // 6 moves + done
    }
}
