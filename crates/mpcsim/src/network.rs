//! Interconnection-network models.
//!
//! The paper's simulations use a constant point-to-point latency (0.5 µs,
//! the Nectar figure) and find the network 97–98% idle. [`NetworkModel`]
//! also offers hop-based latencies over classic first-generation MPC
//! topologies ([`Topology`]) so the benches can ablate what a slower,
//! store-and-forward era interconnect would have done.
//!
//! Utilization is accounted as the union of transfer intervals (the wire is
//! "busy" whenever at least one message is in flight), which is what the
//! paper's idle-percentage statement measures.

use crate::machine::ProcId;
use crate::time::SimTime;

/// Processor-to-processor interconnect topologies for hop-count latency.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Topology {
    /// Single shared link: every distinct pair is one hop.
    Bus,
    /// Bidirectional ring.
    Ring,
    /// 2-D mesh of the given width (height implied by processor count).
    Mesh {
        /// Columns in the mesh; processor `i` sits at `(i % width, i / width)`.
        width: usize,
    },
    /// Binary hypercube (hop count = Hamming distance).
    Hypercube,
}

impl Topology {
    /// Number of hops between two processors among `n`.
    pub fn hops(self, n: usize, from: ProcId, to: ProcId) -> u64 {
        assert!(from < n && to < n, "processor id out of range");
        if from == to {
            return 0;
        }
        match self {
            Topology::Bus => 1,
            Topology::Ring => {
                let d = from.abs_diff(to);
                d.min(n - d) as u64
            }
            Topology::Mesh { width } => {
                assert!(width > 0, "mesh width must be positive");
                let (fx, fy) = (from % width, from / width);
                let (tx, ty) = (to % width, to / width);
                (fx.abs_diff(tx) + fy.abs_diff(ty)) as u64
            }
            Topology::Hypercube => u64::from((from ^ to).count_ones()),
        }
    }
}

/// How long a message spends on the wire.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetworkModel {
    /// Fixed latency between any two distinct processors (worm-hole routing
    /// with negligible per-hop cost — the Nectar/new-generation model).
    Constant(SimTime),
    /// Per-hop latency over a topology (the first-generation
    /// store-and-forward model).
    PerHop {
        /// Latency contributed by each hop.
        per_hop: SimTime,
        /// The interconnect shape.
        topology: Topology,
    },
}

impl NetworkModel {
    /// Wire time from `from` to `to` among `n` processors.
    pub fn latency(self, n: usize, from: ProcId, to: ProcId) -> SimTime {
        if from == to {
            return SimTime::ZERO;
        }
        match self {
            NetworkModel::Constant(l) => l,
            NetworkModel::PerHop { per_hop, topology } => per_hop * topology.hops(n, from, to),
        }
    }
}

/// Accumulates transfer intervals and reports busy/idle fractions.
///
/// Intervals are merged *incrementally*: the structure keeps a sorted set
/// of disjoint busy intervals plus a running busy total, so [`record`] is
/// `O(log n)` amortized and [`busy_time`] is `O(1)`. (The original
/// implementation stored every transfer forever and re-sorted the whole
/// history on each query, which made long simulations quadratic.)
///
/// [`record`]: NetworkUsage::record
/// [`busy_time`]: NetworkUsage::busy_time
#[derive(Clone, Debug, Default)]
pub struct NetworkUsage {
    /// Sorted, pairwise-disjoint busy intervals `(start, end)`.
    intervals: Vec<(SimTime, SimTime)>,
    /// Cached union length of `intervals`.
    busy: SimTime,
    /// Total number of messages carried.
    pub messages: u64,
}

impl NetworkUsage {
    /// Record a transfer occupying `[start, end)`, merging it into the
    /// disjoint interval set.
    pub fn record(&mut self, start: SimTime, end: SimTime) {
        self.messages += 1;
        if end <= start {
            return;
        }
        // Everything strictly left of us (ends before our start) stays;
        // `[lo, hi)` is the run of intervals that touch `[start, end]`
        // (adjacency counts as touching, matching the old `s <= ce` merge).
        let lo = self.intervals.partition_point(|&(_, e)| e < start);
        let hi = lo + self.intervals[lo..].partition_point(|&(s, _)| s <= end);
        if lo == hi {
            self.intervals.insert(lo, (start, end));
            self.busy += end - start;
        } else {
            let merged_start = start.min(self.intervals[lo].0);
            let merged_end = end.max(self.intervals[hi - 1].1);
            for &(s, e) in &self.intervals[lo..hi] {
                self.busy -= e - s;
            }
            self.busy += merged_end - merged_start;
            self.intervals[lo] = (merged_start, merged_end);
            self.intervals.drain(lo + 1..hi);
        }
    }

    /// Total time at least one message was in flight.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }

    /// Fraction of `[0, makespan)` during which the network was idle.
    /// Delegates to the canonical [`crate::metrics::idle_fraction`].
    pub fn idle_fraction(&self, makespan: SimTime) -> f64 {
        crate::metrics::idle_fraction(self.busy_time(), makespan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_latency_is_symmetric_and_zero_local() {
        let m = NetworkModel::Constant(SimTime::from_ns(500));
        assert_eq!(m.latency(8, 1, 2), SimTime::from_ns(500));
        assert_eq!(m.latency(8, 2, 1), SimTime::from_ns(500));
        assert_eq!(m.latency(8, 3, 3), SimTime::ZERO);
    }

    #[test]
    fn ring_hops_wrap_around() {
        assert_eq!(Topology::Ring.hops(8, 0, 1), 1);
        assert_eq!(Topology::Ring.hops(8, 0, 7), 1);
        assert_eq!(Topology::Ring.hops(8, 0, 4), 4);
        assert_eq!(Topology::Ring.hops(8, 2, 6), 4);
    }

    #[test]
    fn mesh_hops_manhattan() {
        let t = Topology::Mesh { width: 4 };
        // Processor 0 = (0,0); processor 7 = (3,1).
        assert_eq!(t.hops(16, 0, 7), 4);
        assert_eq!(t.hops(16, 5, 6), 1);
    }

    #[test]
    fn hypercube_hops_hamming() {
        assert_eq!(Topology::Hypercube.hops(8, 0b000, 0b111), 3);
        assert_eq!(Topology::Hypercube.hops(8, 0b101, 0b100), 1);
    }

    #[test]
    fn per_hop_latency_scales() {
        let m = NetworkModel::PerHop {
            per_hop: SimTime::from_us(2),
            topology: Topology::Hypercube,
        };
        assert_eq!(m.latency(8, 0, 7), SimTime::from_us(6));
    }

    #[test]
    fn usage_merges_overlapping_intervals() {
        let mut u = NetworkUsage::default();
        u.record(SimTime::from_us(0), SimTime::from_us(2));
        u.record(SimTime::from_us(1), SimTime::from_us(3)); // overlap
        u.record(SimTime::from_us(10), SimTime::from_us(11));
        assert_eq!(u.busy_time(), SimTime::from_us(4));
        assert_eq!(u.messages, 3);
        let idle = u.idle_fraction(SimTime::from_us(100));
        assert!((idle - 0.96).abs() < 1e-9);
    }

    #[test]
    fn usage_empty_is_fully_idle() {
        let u = NetworkUsage::default();
        assert_eq!(u.busy_time(), SimTime::ZERO);
        assert_eq!(u.idle_fraction(SimTime::from_us(5)), 1.0);
        assert_eq!(u.idle_fraction(SimTime::ZERO), 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn hops_rejects_bad_proc() {
        Topology::Bus.hops(4, 0, 9);
    }

    /// The historical sort-everything-on-query implementation, kept as a
    /// test oracle for the incremental merge.
    fn oracle_busy_time(raw: &[(SimTime, SimTime)]) -> SimTime {
        let mut iv: Vec<_> = raw.iter().copied().filter(|&(s, e)| e > s).collect();
        iv.sort_unstable();
        let mut busy = SimTime::ZERO;
        let mut cur: Option<(SimTime, SimTime)> = None;
        for (s, e) in iv {
            match cur {
                None => cur = Some((s, e)),
                Some((cs, ce)) => {
                    if s <= ce {
                        cur = Some((cs, ce.max(e)));
                    } else {
                        busy += ce - cs;
                        cur = Some((s, e));
                    }
                }
            }
        }
        if let Some((cs, ce)) = cur {
            busy += ce - cs;
        }
        busy
    }

    #[test]
    fn incremental_merge_matches_oracle() {
        // Deterministic LCG stream of nasty intervals: duplicates,
        // containments, exact adjacency, zero-length, arrival out of order.
        let mut state: u64 = 0x1989_1989_1989_1989;
        let mut next = |m: u64| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) % m
        };
        let mut u = NetworkUsage::default();
        let mut raw = Vec::new();
        for i in 0..500 {
            let start = SimTime::from_ns(next(2_000));
            let len = SimTime::from_ns(next(60));
            let end = start + len;
            raw.push((start, end));
            u.record(start, end);
            if i % 17 == 0 {
                // Query mid-stream too: busy must be correct at any point.
                assert_eq!(
                    u.busy_time(),
                    oracle_busy_time(&raw),
                    "after {} records",
                    i + 1
                );
            }
        }
        assert_eq!(u.busy_time(), oracle_busy_time(&raw));
        assert_eq!(u.messages, 500);
        // Invariant check: stored intervals are sorted and disjoint.
        for w in u.intervals.windows(2) {
            assert!(w[0].1 < w[1].0, "intervals not disjoint: {w:?}");
        }
    }

    #[test]
    fn adjacent_intervals_coalesce() {
        let mut u = NetworkUsage::default();
        u.record(SimTime::from_us(0), SimTime::from_us(1));
        u.record(SimTime::from_us(2), SimTime::from_us(3));
        u.record(SimTime::from_us(1), SimTime::from_us(2)); // bridges both
        assert_eq!(u.intervals.len(), 1);
        assert_eq!(u.busy_time(), SimTime::from_us(3));
    }
}
