//! Simulated time: fixed-point nanoseconds.
//!
//! The paper's cost model is expressed in microseconds (constant tests
//! 30 µs, left token 32 µs, network latency 0.5 µs, …). We store
//! nanoseconds in a `u64` so that sub-microsecond quantities (the 0.5 µs
//! Nectar latency) are exact and all arithmetic is integral and
//! deterministic.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0);

    /// From whole nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From whole microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From fractional microseconds (e.g. the 0.5 µs Nectar latency).
    /// Rounds to the nearest nanosecond.
    pub fn from_us_f64(us: f64) -> Self {
        assert!(us >= 0.0 && us.is_finite(), "time must be non-negative");
        SimTime((us * 1_000.0).round() as u64)
    }

    /// Whole nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds as a float (for reporting).
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two times.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("simulated time overflow"))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("simulated time underflow"))
    }
}

impl SubAssign for SimTime {
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    fn mul(self, rhs: u64) -> SimTime {
        SimTime(self.0.checked_mul(rhs).expect("simulated time overflow"))
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(1_000) {
            write!(f, "{}us", self.0 / 1_000)
        } else {
            write!(f, "{:.3}us", self.as_us())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_us(3), SimTime::from_ns(3_000));
        assert_eq!(SimTime::from_us_f64(0.5), SimTime::from_ns(500));
        assert_eq!(SimTime::from_us_f64(0.0), SimTime::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_us(10);
        let b = SimTime::from_us(4);
        assert_eq!(a + b, SimTime::from_us(14));
        assert_eq!(a - b, SimTime::from_us(6));
        assert_eq!(b * 3, SimTime::from_us(12));
        assert_eq!(a / 2, SimTime::from_us(5));
        assert_eq!(a.max(b), a);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
    }

    #[test]
    fn sum_of_iter() {
        let total: SimTime = (1..=4).map(SimTime::from_us).sum();
        assert_eq!(total, SimTime::from_us(10));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_us(1) - SimTime::from_us(2);
    }

    #[test]
    fn display() {
        assert_eq!(SimTime::from_us(16).to_string(), "16us");
        assert_eq!(SimTime::from_ns(500).to_string(), "0.500us");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_ns(999) < SimTime::from_us(1));
    }
}
