#![warn(missing_docs)]

//! # mpps-mpcsim — a discrete-event message-passing computer simulator
//!
//! The substrate under the paper's experiments: a deterministic
//! discrete-event simulation of a message-passing computer in the style of
//! Nectar — sequential processors exchanging messages over a low-latency
//! interconnect, with explicit **send overhead** (CPU time on the sender),
//! **network latency** (wire time, not occupying either CPU) and **receive
//! overhead** (CPU time on the receiver). These are precisely the knobs of
//! Table 5-1.
//!
//! The programming model is actor-like: a [`Node`] per processor handles
//! messages, declaring simulated compute time and sending messages through
//! a [`Ctx`]. Each processor is strictly sequential — messages queue while
//! it is busy — and the whole simulation is deterministic: ties are broken
//! by event sequence number, never by host-map iteration order.
//!
//! Self-sends model local work handoff: they bypass send/receive overheads
//! and the network, but still queue (a processor works on one unit at a
//! time).

pub mod event;
pub mod machine;
pub mod metrics;
pub mod network;
pub mod time;

pub use event::EventQueue;
pub use machine::{Ctx, MachineConfig, Node, ProcId, RunReport, Simulator};
pub use metrics::{idle_fraction, MachineMetrics, ProcessorMetrics};
pub use network::{NetworkModel, Topology};
pub use time::SimTime;

// Re-exported so downstream crates can name recorder types without a
// separate dependency edge.
pub use mpps_telemetry as telemetry;
