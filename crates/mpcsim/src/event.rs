//! A deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`: two events at the same
//! simulated instant pop in insertion order, which makes every simulation
//! in this workspace bit-reproducible regardless of hash-map iteration
//! order or platform.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want earliest first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A min-queue of timestamped events with FIFO tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// An empty queue with room for `capacity` events before the backing
    /// heap reallocates. Simulators that replay traces know their event
    /// volume up front; pre-sizing avoids the log₂(n) doubling
    /// reallocations on the hot path.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_seq: 0,
        }
    }

    /// Schedule `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
    }

    /// Pop the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pop every event scheduled at exactly `time`, in insertion order.
    ///
    /// Handy for cycle-synchronous simulators: all deliveries at a cycle
    /// boundary drain as one batch. Events later than `time` stay queued;
    /// an event *earlier* than `time` also stays (the caller has not
    /// reached it yet).
    pub fn drain_at(&mut self, time: SimTime) -> impl Iterator<Item = E> + '_ {
        std::iter::from_fn(move || {
            if self.peek_time() == Some(time) {
                self.pop().map(|(_, e)| e)
            } else {
                None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(5), "b");
        q.push(SimTime::from_us(1), "a");
        q.push(SimTime::from_us(9), "c");
        assert_eq!(q.pop().unwrap().1, "a");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.pop().is_none());
    }

    #[test]
    fn ties_break_in_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_us(3);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_stays_ordered() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_us(10), "late");
        q.push(SimTime::from_us(1), "early");
        assert_eq!(q.pop().unwrap().1, "early");
        q.push(SimTime::from_us(5), "mid");
        assert_eq!(q.pop().unwrap().1, "mid");
        assert_eq!(q.pop().unwrap().1, "late");
    }

    #[test]
    fn drain_at_takes_exactly_one_instant() {
        let mut q = EventQueue::with_capacity(8);
        let t = SimTime::from_us(4);
        q.push(t, "x");
        q.push(SimTime::from_us(7), "later");
        q.push(t, "y");
        let batch: Vec<&str> = q.drain_at(t).collect();
        assert_eq!(batch, ["x", "y"]);
        assert_eq!(q.len(), 1);
        // Nothing at an instant before the earliest event: empty drain.
        assert_eq!(q.drain_at(SimTime::from_us(5)).count(), 0);
        assert_eq!(q.pop().unwrap().1, "later");
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_us(2), ());
        assert_eq!(q.len(), 1);
        assert_eq!(q.peek_time(), Some(SimTime::from_us(2)));
    }
}
