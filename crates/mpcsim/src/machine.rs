//! The message-passing machine: sequential processors + interconnect.
//!
//! Cost semantics (matching §4 / Table 5-1 of the paper):
//!
//! * a handler's declared [`Ctx::compute`] time occupies its processor;
//! * every remote [`Ctx::send`] costs `send_overhead` of *sender* CPU; the
//!   message then spends the network latency on the wire (occupying no
//!   CPU) and `recv_overhead` of *receiver* CPU when its handler starts;
//! * a [`Ctx::broadcast`] costs one `send_overhead` (Nectar-style hardware
//!   broadcast) and delivers to every other processor;
//! * self-sends bypass all three costs but still queue — a processor works
//!   on one message at a time, FIFO in arrival order.
//!
//! The simulation is event-driven and fully deterministic.

use crate::event::EventQueue;
use crate::metrics::{MachineMetrics, ProcessorMetrics};
use crate::network::{NetworkModel, NetworkUsage};
use crate::time::SimTime;
use mpps_telemetry::{NullRecorder, Recorder, Track};
use std::collections::VecDeque;

/// Index of a processor in the machine.
pub type ProcId = usize;

/// Machine-wide cost parameters.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Number of processors (nodes).
    pub processors: usize,
    /// CPU time a sender spends per remote message (Table 5-1 "send").
    pub send_overhead: SimTime,
    /// CPU time a receiver spends per remote message (Table 5-1 "receive").
    pub recv_overhead: SimTime,
    /// The interconnect model (latency only; never occupies a CPU).
    pub network: NetworkModel,
}

impl MachineConfig {
    /// A machine with `processors` nodes and zero communication costs.
    pub fn ideal(processors: usize) -> Self {
        MachineConfig {
            processors,
            send_overhead: SimTime::ZERO,
            recv_overhead: SimTime::ZERO,
            network: NetworkModel::Constant(SimTime::ZERO),
        }
    }
}

/// Behaviour of one processor.
pub trait Node {
    /// Message type exchanged between nodes.
    type Msg: Clone;

    /// Called once at time zero, in processor-id order.
    fn on_start(&mut self, _ctx: &mut Ctx<'_, Self::Msg>) {}

    /// Called for each delivered message.
    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg>, from: ProcId, msg: Self::Msg);

    /// Static label for the handler that `msg` will run — used to name
    /// telemetry spans. Only called when the simulator's [`Recorder`] is
    /// enabled.
    fn describe(&self, _msg: &Self::Msg) -> &'static str {
        "message"
    }
}

/// Where an outgoing message should go.
struct Outgoing<M> {
    /// Simulated instant the message leaves the sender.
    departure: SimTime,
    to: ProcId,
    msg: M,
    /// True when produced by `send`/`broadcast` to a remote node (pays
    /// network latency + receive overhead); false for self-sends.
    remote: bool,
}

/// Handler-side view of the machine: declares compute time and sends.
pub struct Ctx<'a, M> {
    me: ProcId,
    start: SimTime,
    elapsed: SimTime,
    cfg: &'a MachineConfig,
    outgoing: Vec<Outgoing<M>>,
}

impl<'a, M: Clone> Ctx<'a, M> {
    /// This processor's id.
    pub fn me(&self) -> ProcId {
        self.me
    }

    /// Current simulated time inside the handler.
    pub fn now(&self) -> SimTime {
        self.start + self.elapsed
    }

    /// Number of processors in the machine.
    pub fn processors(&self) -> usize {
        self.cfg.processors
    }

    /// Spend `dt` of this processor's time.
    pub fn compute(&mut self, dt: SimTime) {
        self.elapsed += dt;
    }

    /// Send `msg` to `to`. Remote sends cost `send_overhead` CPU time here
    /// and latency + `recv_overhead` on the way; self-sends are free but
    /// queue behind other work.
    pub fn send(&mut self, to: ProcId, msg: M) {
        assert!(to < self.cfg.processors, "send to unknown processor {to}");
        if to == self.me {
            self.outgoing.push(Outgoing {
                departure: self.now(),
                to,
                msg,
                remote: false,
            });
        } else {
            self.elapsed += self.cfg.send_overhead;
            self.outgoing.push(Outgoing {
                departure: self.now(),
                to,
                msg,
                remote: true,
            });
        }
    }

    /// Broadcast to every *other* processor for the cost of a single send
    /// overhead (hardware broadcast, as the paper assumes for the control
    /// processor's WME packet).
    pub fn broadcast(&mut self, msg: M) {
        self.elapsed += self.cfg.send_overhead;
        let departure = self.now();
        for to in 0..self.cfg.processors {
            if to != self.me {
                self.outgoing.push(Outgoing {
                    departure,
                    to,
                    msg: msg.clone(),
                    remote: true,
                });
            }
        }
    }
}

enum Event<M> {
    /// A message finished its network transit and joins `to`'s queue.
    Arrival {
        to: ProcId,
        from: ProcId,
        msg: M,
        remote: bool,
    },
    /// `proc` may have finished its current work; check its queue.
    Wakeup { proc: ProcId },
}

/// Outcome of a [`Simulator::run`].
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Time the last processor finished.
    pub makespan: SimTime,
    /// Per-processor and network statistics.
    pub metrics: MachineMetrics,
}

/// The discrete-event machine simulator.
///
/// Generic over a telemetry [`Recorder`]; the default [`NullRecorder`]
/// monomorphizes every recording site away, so `Simulator<N>` is the
/// uninstrumented simulator it always was. Pass a
/// [`mpps_telemetry::TraceRecorder`] (usually via
/// [`Simulator::with_recorder`]) to capture per-processor busy spans in
/// simulated time, queue-depth counters, and network-transit samples.
pub struct Simulator<N: Node, R: Recorder = NullRecorder> {
    cfg: MachineConfig,
    nodes: Vec<N>,
    queue: EventQueue<Event<N::Msg>>,
    pending: Vec<VecDeque<(ProcId, N::Msg, bool)>>,
    free_at: Vec<SimTime>,
    proc_metrics: Vec<ProcessorMetrics>,
    usage: NetworkUsage,
    max_events: u64,
    recorder: R,
}

impl<N: Node> Simulator<N> {
    /// Build a simulator; `nodes.len()` must equal `cfg.processors`.
    pub fn new(cfg: MachineConfig, nodes: Vec<N>) -> Self {
        Simulator::with_recorder(cfg, nodes, NullRecorder)
    }
}

impl<N: Node, R: Recorder> Simulator<N, R> {
    /// Build a simulator that reports telemetry to `recorder`.
    pub fn with_recorder(cfg: MachineConfig, nodes: Vec<N>, recorder: R) -> Self {
        assert_eq!(
            nodes.len(),
            cfg.processors,
            "one node per configured processor"
        );
        assert!(cfg.processors > 0, "need at least one processor");
        Simulator {
            pending: (0..cfg.processors).map(|_| VecDeque::new()).collect(),
            free_at: vec![SimTime::ZERO; cfg.processors],
            proc_metrics: vec![ProcessorMetrics::default(); cfg.processors],
            nodes,
            cfg,
            // Every processor typically has at least a couple of deliveries
            // in flight; pre-size so small simulations never reallocate the
            // heap mid-cycle.
            queue: EventQueue::with_capacity(4 * cfg.processors),
            usage: NetworkUsage::default(),
            max_events: u64::MAX,
            recorder,
        }
    }

    /// Safety valve: abort after this many events (default unlimited).
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Inject an external message (delivered like a self-send: no
    /// overheads). Useful for driving tests and cycle restarts.
    pub fn inject(&mut self, time: SimTime, to: ProcId, msg: N::Msg) {
        assert!(to < self.cfg.processors, "inject to unknown processor");
        self.queue.push(
            time,
            Event::Arrival {
                to,
                from: to,
                msg,
                remote: false,
            },
        );
    }

    /// Immutable access to a node (e.g. to read results after `run`).
    pub fn node(&self, id: ProcId) -> &N {
        &self.nodes[id]
    }

    /// Mutable access to a node between runs.
    pub fn node_mut(&mut self, id: ProcId) -> &mut N {
        &mut self.nodes[id]
    }

    /// The telemetry recorder.
    pub fn recorder(&self) -> &R {
        &self.recorder
    }

    /// Consume the simulator and return its recorder (to export a trace
    /// after the run).
    pub fn into_recorder(self) -> R {
        self.recorder
    }

    /// Run a handler on `proc` starting at `start`; schedules outgoing
    /// messages and advances the processor clock.
    fn execute<F>(&mut self, proc: ProcId, start: SimTime, label: &'static str, f: F)
    where
        F: FnOnce(&mut N, &mut Ctx<'_, N::Msg>),
    {
        let mut ctx = Ctx {
            me: proc,
            start,
            elapsed: SimTime::ZERO,
            cfg: &self.cfg,
            outgoing: Vec::new(),
        };
        f(&mut self.nodes[proc], &mut ctx);
        let elapsed = ctx.elapsed;
        let outgoing = ctx.outgoing;
        for out in outgoing {
            if out.remote {
                let latency = self.cfg.network.latency(self.cfg.processors, proc, out.to);
                let arrival = out.departure + latency;
                self.usage.record(out.departure, arrival);
                self.proc_metrics[proc].messages_sent += 1;
                if R::ENABLED {
                    self.recorder.sample("network-transit-ns", latency.as_ns());
                }
                self.queue.push(
                    arrival,
                    Event::Arrival {
                        to: out.to,
                        from: proc,
                        msg: out.msg,
                        remote: true,
                    },
                );
            } else {
                self.queue.push(
                    out.departure,
                    Event::Arrival {
                        to: out.to,
                        from: proc,
                        msg: out.msg,
                        remote: false,
                    },
                );
            }
        }
        let end = start + elapsed;
        if R::ENABLED && elapsed > SimTime::ZERO {
            self.recorder
                .span(Track::sim_proc(proc), label, start.as_ns(), end.as_ns());
        }
        self.free_at[proc] = end;
        self.proc_metrics[proc].busy_time += elapsed;
        if !self.pending[proc].is_empty() {
            self.queue.push(end, Event::Wakeup { proc });
        }
    }

    /// Start the next queued message on `proc` at `now` (which must be ≥
    /// its free time).
    fn run_next_pending(&mut self, proc: ProcId, now: SimTime) {
        if let Some((from, msg, remote)) = self.pending[proc].pop_front() {
            if R::ENABLED {
                self.recorder.counter(
                    Track::sim_proc(proc),
                    "queue-depth",
                    now.as_ns(),
                    self.pending[proc].len() as u64,
                );
            }
            self.start_message(proc, now, from, msg, remote);
        }
    }

    fn start_message(
        &mut self,
        proc: ProcId,
        start: SimTime,
        from: ProcId,
        msg: N::Msg,
        remote: bool,
    ) {
        self.proc_metrics[proc].messages_handled += 1;
        let recv = if remote {
            self.cfg.recv_overhead
        } else {
            SimTime::ZERO
        };
        let label = if R::ENABLED {
            self.nodes[proc].describe(&msg)
        } else {
            "message"
        };
        self.execute(proc, start, label, |node, ctx| {
            ctx.compute(recv);
            node.on_message(ctx, from, msg);
        });
    }

    /// Run to quiescence: `on_start` on every node at time zero, then
    /// process events until none remain.
    pub fn run(&mut self) -> RunReport {
        for proc in 0..self.cfg.processors {
            let start = self.free_at[proc];
            self.execute(proc, start, "start", |node, ctx| node.on_start(ctx));
        }
        self.drain();
        self.report()
    }

    /// Process queued events until quiescence without calling `on_start`
    /// (for multi-phase simulations driven by `inject`).
    pub fn run_injected(&mut self) -> RunReport {
        self.drain();
        self.report()
    }

    fn drain(&mut self) {
        let mut events: u64 = 0;
        while let Some((time, ev)) = self.queue.pop() {
            events += 1;
            assert!(
                events <= self.max_events,
                "event budget exhausted: likely livelock in node logic"
            );
            match ev {
                Event::Arrival {
                    to,
                    from,
                    msg,
                    remote,
                } => {
                    if self.free_at[to] <= time && self.pending[to].is_empty() {
                        self.start_message(to, time, from, msg, remote);
                    } else {
                        self.pending[to].push_back((from, msg, remote));
                        if R::ENABLED {
                            let depth = self.pending[to].len() as u64;
                            self.recorder.counter(
                                Track::sim_proc(to),
                                "queue-depth",
                                time.as_ns(),
                                depth,
                            );
                            self.recorder.sample("queue-depth", depth);
                        }
                        // Guarantee a wakeup no earlier than both now and
                        // the processor's current busy horizon. Redundant
                        // wakeups are harmless: they re-check the queue.
                        let wake = self.free_at[to].max(time);
                        self.queue.push(wake, Event::Wakeup { proc: to });
                    }
                }
                Event::Wakeup { proc } => {
                    if self.free_at[proc] <= time {
                        self.run_next_pending(proc, time);
                    }
                    // If still busy, the active handler's completion will
                    // schedule another wakeup.
                }
            }
        }
    }

    fn report(&self) -> RunReport {
        let makespan = self.free_at.iter().copied().max().unwrap_or(SimTime::ZERO);
        RunReport {
            makespan,
            metrics: MachineMetrics {
                processors: self.proc_metrics.clone(),
                network_busy: self.usage.busy_time(),
                network_messages: self.usage.messages,
            },
        }
    }

    /// Reset clocks and metrics but keep node state (phase boundaries).
    pub fn reset_clocks(&mut self) {
        assert!(
            self.queue.is_empty() && self.pending.iter().all(VecDeque::is_empty),
            "cannot reset with work in flight"
        );
        self.free_at.fill(SimTime::ZERO);
        self.proc_metrics = vec![ProcessorMetrics::default(); self.cfg.processors];
        self.usage = NetworkUsage::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Relays a counter around the ring `hops` times, spending `work` per
    /// hop.
    struct Relay {
        work: SimTime,
        hops: u32,
        received: u32,
    }

    impl Node for Relay {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send(1 % ctx.processors(), self.hops);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _from: ProcId, remaining: u32) {
            self.received += 1;
            ctx.compute(self.work);
            if remaining > 0 {
                let next = (ctx.me() + 1) % ctx.processors();
                ctx.send(next, remaining - 1);
            }
        }
    }

    fn relay_machine(
        procs: usize,
        send: u64,
        recv: u64,
        latency: u64,
        work: u64,
        hops: u32,
    ) -> Simulator<Relay> {
        let cfg = MachineConfig {
            processors: procs,
            send_overhead: SimTime::from_us(send),
            recv_overhead: SimTime::from_us(recv),
            network: NetworkModel::Constant(SimTime::from_us(latency)),
        };
        let nodes = (0..procs)
            .map(|_| Relay {
                work: SimTime::from_us(work),
                hops,
                received: 0,
            })
            .collect();
        Simulator::new(cfg, nodes)
    }

    #[test]
    fn single_hop_accounts_all_costs() {
        // send(5) on proc0, latency(2), recv(3)+work(10) on proc1.
        let mut sim = relay_machine(2, 5, 3, 2, 10, 0);
        let report = sim.run();
        assert_eq!(report.makespan, SimTime::from_us(5 + 2 + 3 + 10));
        assert_eq!(report.metrics.processors[0].busy_time, SimTime::from_us(5));
        assert_eq!(report.metrics.processors[1].busy_time, SimTime::from_us(13));
        assert_eq!(report.metrics.network_messages, 1);
        assert_eq!(report.metrics.network_busy, SimTime::from_us(2));
    }

    #[test]
    fn ring_of_hops_sums_linearly() {
        // 4 hops around 4 procs: each hop = send 1 + latency 1 + recv 1 + work 2.
        let mut sim = relay_machine(4, 1, 1, 1, 2, 3);
        let report = sim.run();
        // Walk: p0's send completes at 1; arrive p1 at 2; each relaying
        // handler takes recv(1)+work(2)+send(1)=4 and the message spends
        // latency 1 on the wire. p1: 2..6, p2: 7..11, p3: 12..16 (receives
        // remaining=1, still relays a final 0), p0: 17..20 (recv+work, no
        // further send).
        assert_eq!(report.makespan, SimTime::from_us(20));
        let handled: u32 = (0..4).map(|i| sim.node(i).received).sum();
        assert_eq!(handled, 4);
    }

    #[test]
    fn self_send_skips_overheads_but_queues() {
        struct SelfLoop {
            left: u32,
        }
        impl Node for SelfLoop {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.compute(SimTime::from_us(4));
                ctx.send(ctx.me(), ());
                ctx.send(ctx.me(), ());
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _f: ProcId, _m: ()) {
                self.left -= 1;
                ctx.compute(SimTime::from_us(10));
            }
        }
        let cfg = MachineConfig {
            processors: 1,
            send_overhead: SimTime::from_us(99),
            recv_overhead: SimTime::from_us(99),
            network: NetworkModel::Constant(SimTime::from_us(99)),
        };
        let mut sim = Simulator::new(cfg, vec![SelfLoop { left: 2 }]);
        let report = sim.run();
        // No send/recv overhead, no latency: 4 + 10 + 10.
        assert_eq!(report.makespan, SimTime::from_us(24));
        assert_eq!(sim.node(0).left, 0);
        assert_eq!(report.metrics.network_messages, 0);
    }

    #[test]
    fn busy_processor_queues_messages_fifo() {
        /// Node 0 sends three jobs to node 1 back-to-back; node 1 records
        /// processing order.
        struct Sink {
            order: Vec<u32>,
        }
        impl Node for Sink {
            type Msg = u32;
            fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
                if ctx.me() == 0 {
                    for k in 0..3 {
                        ctx.send(1, k);
                    }
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _f: ProcId, k: u32) {
                self.order.push(k);
                ctx.compute(SimTime::from_us(50));
            }
        }
        let cfg = MachineConfig {
            processors: 2,
            send_overhead: SimTime::from_us(1),
            recv_overhead: SimTime::from_us(1),
            network: NetworkModel::Constant(SimTime::from_ns(500)),
        };
        let mut sim = Simulator::new(cfg, vec![Sink { order: vec![] }, Sink { order: vec![] }]);
        let report = sim.run();
        assert_eq!(sim.node(1).order, vec![0, 1, 2]);
        // p0: 3 sends = 3us. p1: three handlers of 51us each, first starts
        // at 1.5us => ends 154.5us.
        assert_eq!(report.makespan, SimTime::from_ns(154_500));
        assert_eq!(report.metrics.processors[1].messages_handled, 3);
    }

    #[test]
    fn broadcast_costs_one_send() {
        struct Bcast {
            got: bool,
        }
        impl Node for Bcast {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                if ctx.me() == 0 {
                    ctx.broadcast(());
                }
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _f: ProcId, _m: ()) {
                self.got = true;
                ctx.compute(SimTime::from_us(7));
            }
        }
        let cfg = MachineConfig {
            processors: 5,
            send_overhead: SimTime::from_us(2),
            recv_overhead: SimTime::from_us(1),
            network: NetworkModel::Constant(SimTime::from_us(1)),
        };
        let mut sim = Simulator::new(cfg, (0..5).map(|_| Bcast { got: false }).collect());
        let report = sim.run();
        assert!((1..5).all(|i| sim.node(i).got));
        assert!(!sim.node(0).got);
        // One send overhead on p0; everyone receives at 3us, done at 11us.
        assert_eq!(report.metrics.processors[0].busy_time, SimTime::from_us(2));
        assert_eq!(report.makespan, SimTime::from_us(11));
    }

    #[test]
    fn inject_and_run_injected() {
        struct Echo {
            count: u32,
        }
        impl Node for Echo {
            type Msg = ();
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _f: ProcId, _m: ()) {
                self.count += 1;
                ctx.compute(SimTime::from_us(3));
            }
        }
        let mut sim = Simulator::new(
            MachineConfig::ideal(2),
            vec![Echo { count: 0 }, Echo { count: 0 }],
        );
        sim.inject(SimTime::from_us(10), 1, ());
        let report = sim.run_injected();
        assert_eq!(sim.node(1).count, 1);
        assert_eq!(report.makespan, SimTime::from_us(13));
    }

    #[test]
    fn reset_clocks_between_phases() {
        struct Echo;
        impl Node for Echo {
            type Msg = ();
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _f: ProcId, _m: ()) {
                ctx.compute(SimTime::from_us(5));
            }
        }
        let mut sim = Simulator::new(MachineConfig::ideal(1), vec![Echo]);
        sim.inject(SimTime::ZERO, 0, ());
        assert_eq!(sim.run_injected().makespan, SimTime::from_us(5));
        sim.reset_clocks();
        sim.inject(SimTime::ZERO, 0, ());
        assert_eq!(sim.run_injected().makespan, SimTime::from_us(5));
    }

    #[test]
    fn trace_recorder_captures_spans_without_changing_results() {
        use mpps_telemetry::TraceRecorder;

        let plain = {
            let mut sim = relay_machine(4, 1, 1, 1, 2, 3);
            sim.run()
        };
        let cfg = MachineConfig {
            processors: 4,
            send_overhead: SimTime::from_us(1),
            recv_overhead: SimTime::from_us(1),
            network: NetworkModel::Constant(SimTime::from_us(1)),
        };
        let nodes = (0..4)
            .map(|_| Relay {
                work: SimTime::from_us(2),
                hops: 3,
                received: 0,
            })
            .collect();
        let mut sim = Simulator::with_recorder(cfg, nodes, TraceRecorder::new());
        let traced = sim.run();
        assert_eq!(traced.makespan, plain.makespan);
        assert_eq!(traced.metrics, plain.metrics);

        let rec = sim.into_recorder();
        // Every busy interval shows up as a span; their per-track sum must
        // equal the reported busy time.
        for (proc, pm) in plain.metrics.processors.iter().enumerate() {
            let track_busy: u64 = rec
                .spans()
                .iter()
                .filter(|s| s.track == Track::sim_proc(proc))
                .map(|s| s.end_ns - s.start_ns)
                .sum();
            assert_eq!(track_busy, pm.busy_time.as_ns(), "proc {proc}");
        }
        // Default describe() labels message handlers.
        assert!(rec.spans().iter().any(|s| s.name == "message"));
        assert_eq!(
            rec.histogram("network-transit-ns").unwrap().count(),
            plain.metrics.network_messages
        );
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            let mut sim = relay_machine(8, 2, 1, 1, 3, 20);
            sim.run().makespan
        };
        assert_eq!(run(), run());
    }

    #[test]
    #[should_panic(expected = "event budget")]
    fn livelock_guard_trips() {
        struct Forever;
        impl Node for Forever {
            type Msg = ();
            fn on_start(&mut self, ctx: &mut Ctx<'_, ()>) {
                ctx.send(ctx.me(), ());
            }
            fn on_message(&mut self, ctx: &mut Ctx<'_, ()>, _f: ProcId, _m: ()) {
                ctx.send(ctx.me(), ());
            }
        }
        let mut sim = Simulator::new(MachineConfig::ideal(1), vec![Forever]);
        sim.set_max_events(1000);
        sim.run();
    }

    #[test]
    #[should_panic(expected = "one node per configured processor")]
    fn node_count_mismatch_panics() {
        struct N;
        impl Node for N {
            type Msg = ();
            fn on_message(&mut self, _c: &mut Ctx<'_, ()>, _f: ProcId, _m: ()) {}
        }
        let _ = Simulator::new(MachineConfig::ideal(3), vec![N]);
    }
}
