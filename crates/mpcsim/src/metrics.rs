//! Machine-level metrics: processor utilization and network occupancy.

use crate::time::SimTime;

/// The canonical idle-fraction computation: the fraction of `[0, span)`
/// during which a resource busy for `busy` was idle. Every idle-percentage
/// figure in the workspace (network idle, `MappingReport`'s run-level
/// number) delegates here; a zero span counts as fully idle.
pub fn idle_fraction(busy: SimTime, span: SimTime) -> f64 {
    if span == SimTime::ZERO {
        return 1.0;
    }
    1.0 - busy.as_ns() as f64 / span.as_ns() as f64
}

/// Per-processor counters for one simulation run.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ProcessorMetrics {
    /// Total CPU time spent in handlers (compute + send/receive overheads).
    pub busy_time: SimTime,
    /// Remote messages sent.
    pub messages_sent: u64,
    /// Messages whose handler ran here (remote + self + injected).
    pub messages_handled: u64,
}

/// Whole-machine metrics for one simulation run.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MachineMetrics {
    /// One entry per processor.
    pub processors: Vec<ProcessorMetrics>,
    /// Union of in-flight intervals on the interconnect.
    pub network_busy: SimTime,
    /// Messages carried by the interconnect (remote sends only).
    pub network_messages: u64,
}

impl MachineMetrics {
    /// `1 - network_busy / makespan` — the paper reports 97–98% here.
    /// Delegates to the canonical [`idle_fraction`].
    pub fn network_idle_fraction(&self, makespan: SimTime) -> f64 {
        idle_fraction(self.network_busy, makespan)
    }

    /// Mean processor utilization over `[0, makespan)`.
    pub fn mean_utilization(&self, makespan: SimTime) -> f64 {
        if makespan == SimTime::ZERO || self.processors.is_empty() {
            return 0.0;
        }
        let total: u64 = self.processors.iter().map(|p| p.busy_time.as_ns()).sum();
        total as f64 / (makespan.as_ns() as f64 * self.processors.len() as f64)
    }

    /// Mean idle time per processor — §5.2.2 observes this grows with the
    /// processor count under uneven token distributions.
    pub fn mean_idle(&self, makespan: SimTime) -> SimTime {
        if self.processors.is_empty() {
            return SimTime::ZERO;
        }
        let total_idle: u64 = self
            .processors
            .iter()
            .map(|p| makespan.saturating_sub(p.busy_time).as_ns())
            .sum();
        SimTime::from_ns(total_idle / self.processors.len() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(busy_us: &[u64]) -> MachineMetrics {
        MachineMetrics {
            processors: busy_us
                .iter()
                .map(|&b| ProcessorMetrics {
                    busy_time: SimTime::from_us(b),
                    ..Default::default()
                })
                .collect(),
            ..Default::default()
        }
    }

    #[test]
    fn mean_utilization_is_busy_over_span() {
        let m = metrics(&[10, 0]);
        assert!((m.mean_utilization(SimTime::from_us(10)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn mean_idle_averages_gaps() {
        let m = metrics(&[10, 4]);
        assert_eq!(m.mean_idle(SimTime::from_us(10)), SimTime::from_us(3));
    }

    #[test]
    fn idle_fraction_is_canonical() {
        assert_eq!(idle_fraction(SimTime::ZERO, SimTime::ZERO), 1.0);
        assert_eq!(idle_fraction(SimTime::from_us(50), SimTime::ZERO), 1.0);
        let f = idle_fraction(SimTime::from_us(3), SimTime::from_us(100));
        assert!((f - 0.97).abs() < 1e-12);
        let m = MachineMetrics {
            network_busy: SimTime::from_us(3),
            ..Default::default()
        };
        assert_eq!(m.network_idle_fraction(SimTime::from_us(100)), f);
    }

    #[test]
    fn degenerate_cases() {
        let m = metrics(&[]);
        assert_eq!(m.mean_utilization(SimTime::from_us(10)), 0.0);
        assert_eq!(m.mean_idle(SimTime::from_us(10)), SimTime::ZERO);
        let m2 = metrics(&[5]);
        assert_eq!(m2.mean_utilization(SimTime::ZERO), 0.0);
    }
}
