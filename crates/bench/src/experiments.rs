//! The experiment definitions behind every table and figure of §5.
//!
//! Each function regenerates one artifact of the paper's evaluation on the
//! calibrated characteristic sections (exact Table 5-2 activation mixes).
//! The `repro` binary prints them; the criterion benches time them; the
//! integration tests assert their *shapes* (who wins, by what rough
//! factor) against the paper's claims.

use mpps_analysis::{greedy_improvement_bound, greedy_per_cycle};
use mpps_core::sweep::{baseline, overhead_sweep, speedup_curve, PartitionStrategy, SpeedupPoint};
use mpps_core::{
    bucket_activity, simulate, simulate_per_cycle, MappingConfig, OverheadSetting, Partition,
};
use mpps_rete::{split_fanout, SplitFanoutOptions, Trace};
use mpps_workloads::synth;

/// One named speedup curve per overhead row.
pub type OverheadCurves = Vec<(OverheadSetting, Vec<SpeedupPoint>)>;

/// Per-section rows of `(processors, metric_a, metric_b)`.
pub type ComparisonRows = Vec<(&'static str, Vec<(usize, f64, f64)>)>;

/// Processor counts swept in the figures (the paper plots 1–32).
pub const PROCS: &[usize] = &[1, 2, 4, 8, 12, 16, 24, 32];

/// The fixed seed of the calibrated sections (any seed reproduces the
/// Table 5-2 mix; this one is shared by all reported artifacts).
pub const SEED: u64 = 1989;

/// The three characteristic sections, by paper name.
pub fn sections() -> Vec<(&'static str, Trace)> {
    vec![
        ("Rubik", synth::rubik(SEED)),
        ("Tourney", synth::tourney(SEED)),
        ("Weaver", synth::weaver(SEED)),
    ]
}

/// Figure 5-1: speedups with zero message-passing overheads (and zero
/// latency), round-robin buckets, for all three sections.
pub fn fig5_1() -> Vec<(&'static str, Vec<SpeedupPoint>)> {
    sections()
        .into_iter()
        .map(|(name, trace)| {
            let mut curve = Vec::with_capacity(PROCS.len());
            let base = baseline(&trace);
            for &p in PROCS {
                let config = MappingConfig {
                    network: mpps_mpcsim::NetworkModel::Constant(mpps_mpcsim::SimTime::ZERO),
                    ..MappingConfig::standard(p, OverheadSetting::ZERO)
                };
                let partition = Partition::round_robin(trace.table_size, p);
                let report = simulate(&trace, &config, &partition);
                curve.push(SpeedupPoint {
                    processors: p,
                    speedup: report.speedup_vs(&base),
                    total_us: report.total.as_us(),
                });
            }
            (name, curve)
        })
        .collect()
}

/// Table 5-1: the overhead settings (input parameters, echoed for
/// completeness).
pub fn table5_1() -> Vec<Vec<String>> {
    OverheadSetting::table_5_1()
        .iter()
        .enumerate()
        .map(|(i, o)| {
            vec![
                format!("Run {}", i + 1),
                format!("{}", o.send),
                format!("{}", o.recv),
                format!("{}", o.total()),
            ]
        })
        .collect()
}

/// Figure 5-2: speedup curves under each Table 5-1 overhead row (0.5 µs
/// network latency), per section.
pub fn fig5_2() -> Vec<(&'static str, OverheadCurves)> {
    sections()
        .into_iter()
        .map(|(name, trace)| {
            let rows = OverheadSetting::table_5_1();
            (
                name,
                overhead_sweep(&trace, PROCS, &rows, PartitionStrategy::RoundRobin),
            )
        })
        .collect()
}

/// §5.1's headline: relative peak-speedup loss at the 32 µs overhead row
/// (paper: Rubik ≈30%, Tourney ≈45%, Weaver ≈50%), alongside each
/// section's left-activation fraction which explains the ordering.
pub fn fig5_2_losses() -> Vec<(&'static str, f64, f64)> {
    sections()
        .into_iter()
        .map(|(name, trace)| {
            let zero = speedup_curve(
                &trace,
                PROCS,
                OverheadSetting::ZERO,
                PartitionStrategy::RoundRobin,
            );
            let heavy = speedup_curve(
                &trace,
                PROCS,
                OverheadSetting::table_5_1()[3],
                PartitionStrategy::RoundRobin,
            );
            let loss = mpps_core::sweep::speedup_loss(&zero, &heavy);
            (name, loss, trace.stats().left_fraction())
        })
        .collect()
}

/// Table 5-2: the activation mix of each section.
pub fn table5_2() -> Vec<Vec<String>> {
    sections()
        .into_iter()
        .map(|(name, trace)| {
            let s = trace.stats();
            vec![
                name.to_owned(),
                format!("{} ({:.0}%)", s.left, s.left_fraction() * 100.0),
                format!("{} ({:.0}%)", s.right, (1.0 - s.left_fraction()) * 100.0),
                format!("{}", s.total()),
            ]
        })
        .collect()
}

/// Figure 5-4: Weaver speedups with and without the unsharing / dummy-node
/// transform (applied at trace level: the three 40-successor generators
/// are split four ways, so successor generation proceeds in parallel).
pub fn fig5_4() -> (Vec<SpeedupPoint>, Vec<SpeedupPoint>) {
    let weaver = synth::weaver(SEED);
    let unshared = split_fanout(
        &weaver,
        SplitFanoutOptions {
            threshold: 8,
            ways: 4,
        },
    );
    let shared_curve = speedup_curve(
        &weaver,
        PROCS,
        OverheadSetting::ZERO,
        PartitionStrategy::RoundRobin,
    );
    // Speedups for the transformed trace are still measured against the
    // *untransformed* serial baseline, as in the paper.
    let base = baseline(&weaver);
    let unshared_curve: Vec<SpeedupPoint> = PROCS
        .iter()
        .map(|&p| {
            let config = MappingConfig::standard(p, OverheadSetting::ZERO);
            let partition = Partition::round_robin(unshared.table_size, p);
            let report = simulate(&unshared, &config, &partition);
            SpeedupPoint {
                processors: p,
                speedup: report.speedup_vs(&base),
                total_us: report.total.as_us(),
            }
        })
        .collect();
    (shared_curve, unshared_curve)
}

/// Figure 5-5: per-processor left-activation counts in two consecutive
/// Rubik cycles on 16 processors (round-robin buckets).
pub fn fig5_5() -> Vec<Vec<u64>> {
    let trace = synth::rubik(SEED);
    let p = 16;
    let config = MappingConfig::standard(p, OverheadSetting::ZERO);
    let partition = Partition::round_robin(trace.table_size, p);
    let report = simulate(&trace, &config, &partition);
    report.left_load_matrix()[0..2].to_vec()
}

/// Figure 5-6: Tourney speedups with and without copy-and-constraint
/// (cross production split four ways).
pub fn fig5_6() -> (Vec<SpeedupPoint>, Vec<SpeedupPoint>) {
    let plain = synth::tourney(SEED);
    let split = synth::tourney_with_copies(SEED, 4);
    let base = baseline(&plain);
    let curve = |trace: &Trace| -> Vec<SpeedupPoint> {
        PROCS
            .iter()
            .map(|&p| {
                let config = MappingConfig::standard(p, OverheadSetting::ZERO);
                let partition = Partition::round_robin(trace.table_size, p);
                let report = simulate(trace, &config, &partition);
                SpeedupPoint {
                    processors: p,
                    speedup: report.speedup_vs(&base),
                    total_us: report.total.as_us(),
                }
            })
            .collect()
    };
    (curve(&plain), curve(&split))
}

/// §5.1's network-idle observation: fraction of time the interconnect is
/// idle at 16 processors under the 8 µs overhead row (paper: 97–98%).
pub fn network_idle() -> Vec<(&'static str, f64)> {
    sections()
        .into_iter()
        .map(|(name, trace)| {
            let p = 16;
            let config = MappingConfig::standard(p, OverheadSetting::table_5_1()[1]);
            let partition = Partition::round_robin(trace.table_size, p);
            let report = simulate(&trace, &config, &partition);
            (name, report.network_idle_fraction())
        })
        .collect()
}

/// §5.2.2's greedy experiment: simulated speedup improvement of per-cycle
/// offline greedy bucket distributions over round-robin (paper: ×~1.4),
/// plus the load-only analytical bound.
pub fn greedy_gains() -> Vec<(&'static str, f64, f64)> {
    sections()
        .into_iter()
        .map(|(name, trace)| {
            let p = 16;
            let config = MappingConfig::standard(p, OverheadSetting::ZERO);
            let rr = Partition::round_robin(trace.table_size, p);
            let rr_report = simulate(&trace, &config, &rr);
            let parts = greedy_per_cycle(&trace, p);
            let greedy_report = simulate_per_cycle(&trace, &config, &parts);
            let simulated = rr_report.total.as_ns() as f64 / greedy_report.total.as_ns() as f64;
            let bound = greedy_improvement_bound(&trace, &rr);
            (name, simulated, bound)
        })
        .collect()
}

/// §5.2.2's random-distribution negative result: random placement does
/// not significantly beat round-robin (both stay well below greedy).
pub fn random_vs_round_robin() -> Vec<(&'static str, f64)> {
    sections()
        .into_iter()
        .map(|(name, trace)| {
            let p = 16;
            let config = MappingConfig::standard(p, OverheadSetting::ZERO);
            let rr = simulate(&trace, &config, &Partition::round_robin(trace.table_size, p));
            let rnd = simulate(
                &trace,
                &config,
                &Partition::random(trace.table_size, p, SEED),
            );
            (name, rr.total.as_ns() as f64 / rnd.total.as_ns() as f64)
        })
        .collect()
}

/// §6 continuum: serial vs replicated vs single-master vs the distributed
/// mapping, on the Rubik section at 16 processors.
pub fn continuum() -> Vec<(String, f64)> {
    let trace = synth::rubik(SEED);
    let cost = mpps_core::CostModel::default();
    let overhead = OverheadSetting::table_5_1()[1];
    let p = 16;
    let mut out: Vec<(String, f64)> = mpps_core::continuum::endpoints(&trace, &cost, overhead, p)
        .into_iter()
        .map(|pt| (pt.label.to_owned(), pt.speedup))
        .collect();
    let base = baseline(&trace);
    let distributed = simulate(
        &trace,
        &MappingConfig::standard(p, overhead),
        &Partition::round_robin(trace.table_size, p),
    );
    out.push(("distributed (this paper)".to_owned(), distributed.speedup_vs(&base)));
    out
}

/// Per-bucket activity skew of a section (drives the greedy experiment).
pub fn activity_skew(trace: &Trace) -> (usize, u64) {
    let act = bucket_activity(trace);
    let active = act.iter().filter(|&&a| a > 0).count();
    let max = act.iter().copied().max().unwrap_or(0);
    (active, max)
}

/// §5.2 comparison: the distributed (MPC) mapping vs the shared-bus
/// mapping at each processor count (zero message overheads for the MPC —
/// the paper's "comparable speedup" claim is about the best case; queue
/// claims cost 4 µs on the bus).
pub fn shared_bus_comparison() -> ComparisonRows {
    use mpps_core::continuum::serial_time;
    use mpps_core::{shared_bus_simulate, CostModel, SharedBusConfig};
    sections()
        .into_iter()
        .map(|(name, trace)| {
            let serial = serial_time(&trace, &CostModel::default());
            let base = baseline(&trace);
            let rows: Vec<(usize, f64, f64)> = PROCS
                .iter()
                .map(|&p| {
                    let mpc = simulate(
                        &trace,
                        &MappingConfig::standard(p, OverheadSetting::ZERO),
                        &Partition::round_robin(trace.table_size, p),
                    )
                    .speedup_vs(&base);
                    let bus = shared_bus_simulate(&trace, &SharedBusConfig::new(p))
                        .speedup_vs_serial(serial);
                    (p, mpc, bus)
                })
                .collect();
            (name, rows)
        })
        .collect()
}

/// Future-work experiment: the cost of real (ring-token) termination
/// detection per section at each processor count, vs the omniscient
/// simulation — small cycles pay proportionally more.
pub fn termination_cost() -> ComparisonRows {
    use mpps_core::TerminationModel;
    sections()
        .into_iter()
        .map(|(name, trace)| {
            let base = baseline(&trace);
            let overhead = OverheadSetting::table_5_1()[1];
            let rows: Vec<(usize, f64, f64)> = PROCS
                .iter()
                .map(|&p| {
                    let partition = Partition::round_robin(trace.table_size, p);
                    let omniscient = simulate(
                        &trace,
                        &MappingConfig::standard(p, overhead),
                        &partition,
                    )
                    .speedup_vs(&base);
                    let ring = simulate(
                        &trace,
                        &MappingConfig {
                            termination: TerminationModel::RingToken,
                            ..MappingConfig::standard(p, overhead)
                        },
                        &partition,
                    )
                    .speedup_vs(&base);
                    (p, omniscient, ring)
                })
                .collect();
            (name, rows)
        })
        .collect()
}

/// The paper's motivating contrast (§1): first-generation MPCs (Cosmic
/// Cube era: ~2 ms store-and-forward latency, ~300 µs message handling)
/// made fine-grained match parallelism impossible; the new generation
/// (Nectar/MDP era: 0.5 µs wormhole latency, ≤ 32 µs handling) makes it
/// attractive. Speedups of the three sections at 16 processors under both
/// machine models.
pub fn era_comparison() -> Vec<(&'static str, f64, f64)> {
    use mpps_mpcsim::{NetworkModel, SimTime, Topology};
    let p = 16;
    let first_gen = MappingConfig {
        overhead: mpps_core::cost::OverheadSetting {
            name: "cosmic-cube",
            send: SimTime::from_us(150),
            recv: SimTime::from_us(150),
        },
        network: NetworkModel::PerHop {
            per_hop: SimTime::from_us(500),
            topology: Topology::Hypercube,
        },
        ..MappingConfig::standard(p, OverheadSetting::ZERO)
    };
    sections()
        .into_iter()
        .map(|(name, trace)| {
            let base = baseline(&trace);
            let partition = Partition::round_robin(trace.table_size, p);
            let new_gen = simulate(
                &trace,
                &MappingConfig::standard(p, OverheadSetting::table_5_1()[1]),
                &partition,
            )
            .speedup_vs(&base);
            let old = simulate(&trace, &first_gen, &partition).speedup_vs(&base);
            (name, new_gen, old)
        })
        .collect()
}
