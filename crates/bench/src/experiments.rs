//! The experiment definitions behind every table and figure of §5.
//!
//! Each artifact is split into two phases so the `repro` binary can batch
//! every figure into **one** [`SweepPlan`]:
//!
//! * `plan_*` registers the figure's simulation points on a shared plan
//!   (traces registered once, identical points collapsed, baselines
//!   memoized per trace) and returns a small id bundle;
//! * `render_*` turns the executed [`SweepResults`] back into the figure's
//!   data, byte-identical to the historical serial output.
//!
//! The original one-shot functions (`fig5_1()`, `greedy_gains()`, …) are
//! kept as thin wrappers that build a private plan and run it serially —
//! the integration tests and criterion benches use those.

use mpps_analysis::greedy_improvement_bound;
use mpps_core::sweep::{
    PartitionSpec, PartitionStrategy, PointId, PointSpec, SpeedupPoint, SweepPlan, SweepResults,
    TraceId,
};
use mpps_core::{bucket_activity, MappingConfig, OverheadSetting, Partition, TerminationModel};
use mpps_mpcsim::{NetworkModel, SimTime, Topology};
use mpps_rete::{split_fanout, SplitFanoutOptions, Trace};
use mpps_workloads::synth;

/// One named speedup curve per overhead row.
pub type OverheadCurves = Vec<(OverheadSetting, Vec<SpeedupPoint>)>;

/// Per-section rows of `(processors, metric_a, metric_b)`.
pub type ComparisonRows = Vec<(&'static str, Vec<(usize, f64, f64)>)>;

/// Processor counts swept in the figures (the paper plots 1–32).
pub const PROCS: &[usize] = &[1, 2, 4, 8, 12, 16, 24, 32];

/// The fixed seed of the calibrated sections (any seed reproduces the
/// Table 5-2 mix; this one is shared by all reported artifacts).
pub const SEED: u64 = 1989;

/// The three characteristic sections, by paper name.
pub fn sections() -> Vec<(&'static str, Trace)> {
    vec![
        ("Rubik", synth::rubik(SEED)),
        ("Tourney", synth::tourney(SEED)),
        ("Weaver", synth::weaver(SEED)),
    ]
}

/// Every trace the figures replay, generated exactly once per run and
/// shared by reference through the plan.
pub struct Sections {
    /// Rubik's-cube solver section.
    pub rubik: Trace,
    /// Tournament scheduler section.
    pub tourney: Trace,
    /// VLSI-routing (Weaver) section.
    pub weaver: Trace,
    /// Weaver after the Figure 5-4 unsharing transform.
    pub weaver_unshared: Trace,
    /// Tourney after copy-and-constraint (Figure 5-6).
    pub tourney_copies: Trace,
}

impl Sections {
    /// Generate all traces from [`SEED`].
    pub fn generate() -> Self {
        let weaver = synth::weaver(SEED);
        let weaver_unshared = split_fanout(
            &weaver,
            SplitFanoutOptions {
                threshold: 8,
                ways: 4,
            },
        );
        Sections {
            rubik: synth::rubik(SEED),
            tourney: synth::tourney(SEED),
            tourney_copies: synth::tourney_with_copies(SEED, 4),
            weaver,
            weaver_unshared,
        }
    }

    /// The three paper sections in report order.
    pub fn named(&self) -> [(&'static str, &Trace); 3] {
        [
            ("Rubik", &self.rubik),
            ("Tourney", &self.tourney),
            ("Weaver", &self.weaver),
        ]
    }
}

/// Ids of one speedup curve: points over a processor sweep, all measured
/// against `base`'s memoized baseline (usually the point's own trace; the
/// transform figures measure against the *untransformed* section).
pub struct CurvePlan {
    base: TraceId,
    points: Vec<(usize, PointId)>,
}

impl CurvePlan {
    fn curve(&self, r: &SweepResults) -> Vec<SpeedupPoint> {
        let base = r.baseline(self.base);
        self.points
            .iter()
            .map(|&(p, id)| {
                let report = r.report(id);
                SpeedupPoint {
                    processors: p,
                    speedup: report.speedup_vs(base),
                    total_us: report.total.as_us(),
                }
            })
            .collect()
    }
}

fn plan_curve<'t>(
    plan: &mut SweepPlan<'t>,
    trace: TraceId,
    base: TraceId,
    procs: &[usize],
    config: impl Fn(usize) -> MappingConfig,
    partition: PartitionSpec,
) -> CurvePlan {
    CurvePlan {
        base,
        points: procs
            .iter()
            .map(|&p| {
                let id = plan.add_point(PointSpec {
                    trace,
                    config: config(p),
                    partition,
                });
                (p, id)
            })
            .collect(),
    }
}

/// The Figure 5-1 configuration: zero overheads *and* zero latency.
fn no_comm(p: usize) -> MappingConfig {
    MappingConfig {
        network: NetworkModel::Constant(SimTime::ZERO),
        ..MappingConfig::standard(p, OverheadSetting::ZERO)
    }
}

const RR: PartitionSpec = PartitionSpec::Strategy(PartitionStrategy::RoundRobin);

/// Build a single-figure plan, run it serially, render — the historical
/// one-shot API.
fn run_solo<P, T>(
    plan_fn: impl for<'t> FnOnce(&'t Sections, &mut SweepPlan<'t>) -> P,
    render: impl FnOnce(&P, &Sections, &SweepResults) -> T,
) -> T {
    let s = Sections::generate();
    let mut plan = SweepPlan::new();
    let ids = plan_fn(&s, &mut plan);
    let results = plan.run(1);
    render(&ids, &s, &results)
}

// ---------------------------------------------------------------- fig 5-1

/// Id bundle of Figure 5-1.
pub struct Fig51Plan(Vec<(&'static str, CurvePlan)>);

/// Register Figure 5-1's points: speedups with zero message-passing
/// overheads (and zero latency), round-robin buckets, for all sections.
pub fn plan_fig5_1<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> Fig51Plan {
    Fig51Plan(
        s.named()
            .map(|(name, trace)| {
                let t = plan.add_trace(trace);
                (name, plan_curve(plan, t, t, PROCS, no_comm, RR))
            })
            .into(),
    )
}

/// Render Figure 5-1 from executed results.
pub fn render_fig5_1(p: &Fig51Plan, r: &SweepResults) -> Vec<(&'static str, Vec<SpeedupPoint>)> {
    p.0.iter().map(|(name, c)| (*name, c.curve(r))).collect()
}

/// Figure 5-1 (one-shot).
pub fn fig5_1() -> Vec<(&'static str, Vec<SpeedupPoint>)> {
    run_solo(plan_fig5_1, |p, _, r| render_fig5_1(p, r))
}

// -------------------------------------------------------------- table 5-1

/// Table 5-1: the overhead settings (input parameters, echoed for
/// completeness).
pub fn table5_1() -> Vec<Vec<String>> {
    OverheadSetting::table_5_1()
        .iter()
        .enumerate()
        .map(|(i, o)| {
            vec![
                format!("Run {}", i + 1),
                format!("{}", o.send),
                format!("{}", o.recv),
                format!("{}", o.total()),
            ]
        })
        .collect()
}

// ---------------------------------------------------------------- fig 5-2

/// Id bundle of Figure 5-2.
pub struct Fig52Plan(Vec<(&'static str, Vec<(OverheadSetting, CurvePlan)>)>);

/// Register Figure 5-2's points: one curve per Table 5-1 overhead row
/// (0.5 µs network latency), per section.
pub fn plan_fig5_2<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> Fig52Plan {
    Fig52Plan(
        s.named()
            .map(|(name, trace)| {
                let t = plan.add_trace(trace);
                let rows = OverheadSetting::table_5_1()
                    .iter()
                    .map(|&o| {
                        let c =
                            plan_curve(plan, t, t, PROCS, |p| MappingConfig::standard(p, o), RR);
                        (o, c)
                    })
                    .collect();
                (name, rows)
            })
            .into(),
    )
}

/// Render Figure 5-2 from executed results.
pub fn render_fig5_2(p: &Fig52Plan, r: &SweepResults) -> Vec<(&'static str, OverheadCurves)> {
    p.0.iter()
        .map(|(name, rows)| (*name, rows.iter().map(|(o, c)| (*o, c.curve(r))).collect()))
        .collect()
}

/// Figure 5-2 (one-shot).
pub fn fig5_2() -> Vec<(&'static str, OverheadCurves)> {
    run_solo(plan_fig5_2, |p, _, r| render_fig5_2(p, r))
}

// ------------------------------------------------------- fig 5-2 (losses)

/// Id bundle of the §5.1 loss summary.
pub struct LossesPlan(Vec<(&'static str, CurvePlan, CurvePlan)>);

/// Register the loss summary's points: zero-overhead and 32 µs curves per
/// section (both share Figure 5-2's points when planned together).
pub fn plan_fig5_2_losses<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> LossesPlan {
    let heavy = OverheadSetting::table_5_1()[3];
    LossesPlan(
        s.named()
            .map(|(name, trace)| {
                let t = plan.add_trace(trace);
                let zero = plan_curve(
                    plan,
                    t,
                    t,
                    PROCS,
                    |p| MappingConfig::standard(p, OverheadSetting::ZERO),
                    RR,
                );
                let heavy =
                    plan_curve(plan, t, t, PROCS, |p| MappingConfig::standard(p, heavy), RR);
                (name, zero, heavy)
            })
            .into(),
    )
}

/// Render the loss summary: §5.1's headline relative peak-speedup loss at
/// the 32 µs overhead row (paper: Rubik ≈30%, Tourney ≈45%, Weaver ≈50%),
/// alongside each section's left-activation fraction.
pub fn render_fig5_2_losses(
    p: &LossesPlan,
    s: &Sections,
    r: &SweepResults,
) -> Vec<(&'static str, f64, f64)> {
    p.0.iter()
        .zip(s.named())
        .map(|((name, zero, heavy), (_, trace))| {
            let loss = mpps_core::sweep::speedup_loss(&zero.curve(r), &heavy.curve(r));
            (*name, loss, trace.stats().left_fraction())
        })
        .collect()
}

/// Loss summary (one-shot).
pub fn fig5_2_losses() -> Vec<(&'static str, f64, f64)> {
    run_solo(plan_fig5_2_losses, render_fig5_2_losses)
}

// -------------------------------------------------------------- table 5-2

/// Table 5-2 rows from already-generated sections.
pub fn table5_2_for(s: &Sections) -> Vec<Vec<String>> {
    s.named()
        .map(|(name, trace)| {
            let st = trace.stats();
            vec![
                name.to_owned(),
                format!("{} ({:.0}%)", st.left, st.left_fraction() * 100.0),
                format!("{} ({:.0}%)", st.right, (1.0 - st.left_fraction()) * 100.0),
                format!("{}", st.total()),
            ]
        })
        .into()
}

/// Table 5-2: the activation mix of each section.
pub fn table5_2() -> Vec<Vec<String>> {
    table5_2_for(&Sections::generate())
}

// ---------------------------------------------------------------- fig 5-4

/// Id bundle of Figure 5-4.
pub struct Fig54Plan {
    shared: CurvePlan,
    unshared: CurvePlan,
}

/// Register Figure 5-4's points: Weaver with and without the unsharing /
/// dummy-node transform. Both curves are measured against the
/// *untransformed* serial baseline, as in the paper.
pub fn plan_fig5_4<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> Fig54Plan {
    let weaver = plan.add_trace(&s.weaver);
    let unshared = plan.add_trace(&s.weaver_unshared);
    let std_cfg = |p| MappingConfig::standard(p, OverheadSetting::ZERO);
    Fig54Plan {
        shared: plan_curve(plan, weaver, weaver, PROCS, std_cfg, RR),
        unshared: plan_curve(plan, unshared, weaver, PROCS, std_cfg, RR),
    }
}

/// Render Figure 5-4 from executed results.
pub fn render_fig5_4(p: &Fig54Plan, r: &SweepResults) -> (Vec<SpeedupPoint>, Vec<SpeedupPoint>) {
    (p.shared.curve(r), p.unshared.curve(r))
}

/// Figure 5-4 (one-shot).
pub fn fig5_4() -> (Vec<SpeedupPoint>, Vec<SpeedupPoint>) {
    run_solo(plan_fig5_4, |p, _, r| render_fig5_4(p, r))
}

// ---------------------------------------------------------------- fig 5-5

/// Id bundle of Figure 5-5.
pub struct Fig55Plan(PointId);

/// Register Figure 5-5's single point: Rubik on 16 processors,
/// round-robin buckets, zero overheads.
pub fn plan_fig5_5<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> Fig55Plan {
    let t = plan.add_trace(&s.rubik);
    Fig55Plan(plan.add_point(PointSpec {
        trace: t,
        config: MappingConfig::standard(16, OverheadSetting::ZERO),
        partition: RR,
    }))
}

/// Render Figure 5-5: per-processor left-activation counts in the first
/// two Rubik cycles.
pub fn render_fig5_5(p: &Fig55Plan, r: &SweepResults) -> Vec<Vec<u64>> {
    r.report(p.0)
        .left_load_matrix()
        .take(2)
        .map(<[u64]>::to_vec)
        .collect()
}

/// Figure 5-5 (one-shot).
pub fn fig5_5() -> Vec<Vec<u64>> {
    run_solo(plan_fig5_5, |p, _, r| render_fig5_5(p, r))
}

// ---------------------------------------------------------------- fig 5-6

/// Id bundle of Figure 5-6.
pub struct Fig56Plan {
    plain: CurvePlan,
    copies: CurvePlan,
}

/// Register Figure 5-6's points: Tourney with and without
/// copy-and-constraint (cross production split four ways), both against
/// the original section's baseline.
pub fn plan_fig5_6<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> Fig56Plan {
    let plain = plan.add_trace(&s.tourney);
    let copies = plan.add_trace(&s.tourney_copies);
    let std_cfg = |p| MappingConfig::standard(p, OverheadSetting::ZERO);
    Fig56Plan {
        plain: plan_curve(plan, plain, plain, PROCS, std_cfg, RR),
        copies: plan_curve(plan, copies, plain, PROCS, std_cfg, RR),
    }
}

/// Render Figure 5-6 from executed results.
pub fn render_fig5_6(p: &Fig56Plan, r: &SweepResults) -> (Vec<SpeedupPoint>, Vec<SpeedupPoint>) {
    (p.plain.curve(r), p.copies.curve(r))
}

/// Figure 5-6 (one-shot).
pub fn fig5_6() -> (Vec<SpeedupPoint>, Vec<SpeedupPoint>) {
    run_solo(plan_fig5_6, |p, _, r| render_fig5_6(p, r))
}

// ------------------------------------------------------------ network idle

/// Id bundle of the network-idle table.
pub struct NetworkIdlePlan(Vec<(&'static str, PointId)>);

/// Register the §5.1 network-idle points: 16 processors under the 8 µs
/// overhead row, per section.
pub fn plan_network_idle<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> NetworkIdlePlan {
    NetworkIdlePlan(
        s.named()
            .map(|(name, trace)| {
                let t = plan.add_trace(trace);
                let id = plan.add_point(PointSpec {
                    trace: t,
                    config: MappingConfig::standard(16, OverheadSetting::table_5_1()[1]),
                    partition: RR,
                });
                (name, id)
            })
            .into(),
    )
}

/// Render the network-idle fractions (paper: 97–98%).
pub fn render_network_idle(p: &NetworkIdlePlan, r: &SweepResults) -> Vec<(&'static str, f64)> {
    p.0.iter()
        .map(|&(name, id)| (name, r.report(id).network_idle_fraction()))
        .collect()
}

/// Network idle fractions (one-shot).
pub fn network_idle() -> Vec<(&'static str, f64)> {
    run_solo(plan_network_idle, |p, _, r| render_network_idle(p, r))
}

// ---------------------------------------------------------------- greedy

/// Id bundle of the §5.2.2 greedy experiment.
pub struct GreedyPlan(Vec<(&'static str, PointId, PointId)>);

/// Register the greedy experiment's points: round-robin vs per-cycle
/// offline greedy at 16 processors, zero overheads, per section.
pub fn plan_greedy_gains<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> GreedyPlan {
    GreedyPlan(
        s.named()
            .map(|(name, trace)| {
                let t = plan.add_trace(trace);
                let config = MappingConfig::standard(16, OverheadSetting::ZERO);
                let rr = plan.add_point(PointSpec {
                    trace: t,
                    config,
                    partition: RR,
                });
                let greedy = plan.add_point(PointSpec {
                    trace: t,
                    config,
                    partition: PartitionSpec::GreedyPerCycle,
                });
                (name, rr, greedy)
            })
            .into(),
    )
}

/// Render the greedy experiment: simulated speedup improvement of
/// per-cycle offline greedy over round-robin (paper: ×~1.4), plus the
/// load-only analytical bound.
pub fn render_greedy_gains(
    p: &GreedyPlan,
    s: &Sections,
    r: &SweepResults,
) -> Vec<(&'static str, f64, f64)> {
    p.0.iter()
        .zip(s.named())
        .map(|(&(name, rr, greedy), (_, trace))| {
            let simulated =
                r.report(rr).total.as_ns() as f64 / r.report(greedy).total.as_ns() as f64;
            let bound =
                greedy_improvement_bound(trace, &Partition::round_robin(trace.table_size, 16));
            (name, simulated, bound)
        })
        .collect()
}

/// Greedy gains (one-shot).
pub fn greedy_gains() -> Vec<(&'static str, f64, f64)> {
    run_solo(plan_greedy_gains, render_greedy_gains)
}

// --------------------------------------------------------- random buckets

/// Id bundle of the random-placement experiment.
pub struct RandomPlan(Vec<(&'static str, PointId, PointId)>);

/// Register the §5.2.2 random-distribution points: round-robin vs seeded
/// random placement at 16 processors, zero overheads.
pub fn plan_random_vs_round_robin<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> RandomPlan {
    RandomPlan(
        s.named()
            .map(|(name, trace)| {
                let t = plan.add_trace(trace);
                let config = MappingConfig::standard(16, OverheadSetting::ZERO);
                let rr = plan.add_point(PointSpec {
                    trace: t,
                    config,
                    partition: RR,
                });
                let rnd = plan.add_point(PointSpec {
                    trace: t,
                    config,
                    partition: PartitionSpec::Strategy(PartitionStrategy::Random(SEED)),
                });
                (name, rr, rnd)
            })
            .into(),
    )
}

/// Render the random-placement result: random does not significantly beat
/// round-robin.
pub fn render_random_vs_round_robin(p: &RandomPlan, r: &SweepResults) -> Vec<(&'static str, f64)> {
    p.0.iter()
        .map(|&(name, rr, rnd)| {
            (
                name,
                r.report(rr).total.as_ns() as f64 / r.report(rnd).total.as_ns() as f64,
            )
        })
        .collect()
}

/// Random vs round-robin (one-shot).
pub fn random_vs_round_robin() -> Vec<(&'static str, f64)> {
    run_solo(plan_random_vs_round_robin, |p, _, r| {
        render_random_vs_round_robin(p, r)
    })
}

// -------------------------------------------------------------- continuum

/// Id bundle of the §6 continuum comparison.
pub struct ContinuumPlan {
    trace: TraceId,
    distributed: PointId,
}

/// Register the continuum's simulated point (the distributed mapping on
/// Rubik at 16 processors; the analytic endpoints are computed at render).
pub fn plan_continuum<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> ContinuumPlan {
    let t = plan.add_trace(&s.rubik);
    ContinuumPlan {
        trace: t,
        distributed: plan.add_point(PointSpec {
            trace: t,
            config: MappingConfig::standard(16, OverheadSetting::table_5_1()[1]),
            partition: RR,
        }),
    }
}

/// Render the §6 continuum: serial vs replicated vs single-master vs the
/// distributed mapping, on the Rubik section at 16 processors.
pub fn render_continuum(p: &ContinuumPlan, s: &Sections, r: &SweepResults) -> Vec<(String, f64)> {
    let cost = mpps_core::CostModel::default();
    let overhead = OverheadSetting::table_5_1()[1];
    let mut out: Vec<(String, f64)> =
        mpps_core::continuum::endpoints(&s.rubik, &cost, overhead, 16)
            .into_iter()
            .map(|pt| (pt.label.to_owned(), pt.speedup))
            .collect();
    let distributed = r.report(p.distributed).speedup_vs(r.baseline(p.trace));
    out.push(("distributed (this paper)".to_owned(), distributed));
    out
}

/// Continuum comparison (one-shot).
pub fn continuum() -> Vec<(String, f64)> {
    run_solo(plan_continuum, render_continuum)
}

/// Per-bucket activity skew of a section (drives the greedy experiment).
pub fn activity_skew(trace: &Trace) -> (usize, u64) {
    let act = bucket_activity(trace);
    let active = act.iter().filter(|&&a| a > 0).count();
    let max = act.iter().copied().max().unwrap_or(0);
    (active, max)
}

// ------------------------------------------------------------- shared bus

/// One point id per swept processor count.
type ProcPoints = Vec<(usize, PointId)>;

/// Id bundle of the §5.2 shared-bus comparison (the MPC half; the bus
/// simulations run at render time — they use a different simulator).
pub struct SharedBusPlan(Vec<(&'static str, TraceId, ProcPoints)>);

/// Register the MPC side of the shared-bus comparison: zero message
/// overheads at every processor count, per section.
pub fn plan_shared_bus<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> SharedBusPlan {
    SharedBusPlan(
        s.named()
            .map(|(name, trace)| {
                let t = plan.add_trace(trace);
                let ids = PROCS
                    .iter()
                    .map(|&p| {
                        let id = plan.add_point(PointSpec {
                            trace: t,
                            config: MappingConfig::standard(p, OverheadSetting::ZERO),
                            partition: RR,
                        });
                        (p, id)
                    })
                    .collect();
                (name, t, ids)
            })
            .into(),
    )
}

/// Render the §5.2 comparison: the distributed (MPC) mapping vs the
/// shared-bus mapping at each processor count (queue claims cost 4 µs on
/// the bus).
pub fn render_shared_bus(p: &SharedBusPlan, s: &Sections, r: &SweepResults) -> ComparisonRows {
    use mpps_core::continuum::serial_time;
    use mpps_core::{shared_bus_simulate, CostModel, SharedBusConfig};
    p.0.iter()
        .zip(s.named())
        .map(|((name, t, ids), (_, trace))| {
            let serial = serial_time(trace, &CostModel::default());
            let base = r.baseline(*t);
            let rows: Vec<(usize, f64, f64)> = ids
                .iter()
                .map(|&(procs, id)| {
                    let mpc = r.report(id).speedup_vs(base);
                    let bus = shared_bus_simulate(trace, &SharedBusConfig::new(procs))
                        .speedup_vs_serial(serial);
                    (procs, mpc, bus)
                })
                .collect();
            (*name, rows)
        })
        .collect()
}

/// Shared-bus comparison (one-shot).
pub fn shared_bus_comparison() -> ComparisonRows {
    run_solo(plan_shared_bus, render_shared_bus)
}

// ------------------------------------------------------- termination cost

/// Per processor count: the omniscient point and the ring-token point.
type TerminationRows = Vec<(usize, PointId, PointId)>;

/// Id bundle of the termination-detection experiment.
pub struct TerminationPlan(Vec<(&'static str, TraceId, TerminationRows)>);

/// Register the termination-cost points: omniscient vs ring-token cycle
/// boundaries at each processor count under the 8 µs overhead row.
pub fn plan_termination_cost<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> TerminationPlan {
    let overhead = OverheadSetting::table_5_1()[1];
    TerminationPlan(
        s.named()
            .map(|(name, trace)| {
                let t = plan.add_trace(trace);
                let rows = PROCS
                    .iter()
                    .map(|&p| {
                        let omniscient = plan.add_point(PointSpec {
                            trace: t,
                            config: MappingConfig::standard(p, overhead),
                            partition: RR,
                        });
                        let ring = plan.add_point(PointSpec {
                            trace: t,
                            config: MappingConfig {
                                termination: TerminationModel::RingToken,
                                ..MappingConfig::standard(p, overhead)
                            },
                            partition: RR,
                        });
                        (p, omniscient, ring)
                    })
                    .collect();
                (name, t, rows)
            })
            .into(),
    )
}

/// Render the termination-cost comparison — small cycles pay
/// proportionally more.
pub fn render_termination_cost(p: &TerminationPlan, r: &SweepResults) -> ComparisonRows {
    p.0.iter()
        .map(|(name, t, rows)| {
            let base = r.baseline(*t);
            let out: Vec<(usize, f64, f64)> = rows
                .iter()
                .map(|&(procs, omniscient, ring)| {
                    (
                        procs,
                        r.report(omniscient).speedup_vs(base),
                        r.report(ring).speedup_vs(base),
                    )
                })
                .collect();
            (*name, out)
        })
        .collect()
}

/// Termination cost (one-shot).
pub fn termination_cost() -> ComparisonRows {
    run_solo(plan_termination_cost, |p, _, r| {
        render_termination_cost(p, r)
    })
}

// ------------------------------------------------------------------- eras

/// Id bundle of the §1 era comparison.
pub struct EraPlan(Vec<(&'static str, TraceId, PointId, PointId)>);

/// The Cosmic-Cube-era machine model: ~2 ms store-and-forward latency
/// (500 µs per hypercube hop), ~300 µs message handling.
fn first_gen_config(p: usize) -> MappingConfig {
    MappingConfig {
        overhead: OverheadSetting {
            name: "cosmic-cube",
            send: SimTime::from_us(150),
            recv: SimTime::from_us(150),
        },
        network: NetworkModel::PerHop {
            per_hop: SimTime::from_us(500),
            topology: Topology::Hypercube,
        },
        ..MappingConfig::standard(p, OverheadSetting::ZERO)
    }
}

/// Register the era-comparison points: each section at 16 processors under
/// the Nectar-era row and the Cosmic-Cube-era model.
pub fn plan_era_comparison<'t>(s: &'t Sections, plan: &mut SweepPlan<'t>) -> EraPlan {
    EraPlan(
        s.named()
            .map(|(name, trace)| {
                let t = plan.add_trace(trace);
                let new_gen = plan.add_point(PointSpec {
                    trace: t,
                    config: MappingConfig::standard(16, OverheadSetting::table_5_1()[1]),
                    partition: RR,
                });
                let old = plan.add_point(PointSpec {
                    trace: t,
                    config: first_gen_config(16),
                    partition: RR,
                });
                (name, t, new_gen, old)
            })
            .into(),
    )
}

/// Render the era comparison: first-generation MPCs made fine-grained
/// match parallelism impossible; the new generation makes it attractive.
pub fn render_era_comparison(p: &EraPlan, r: &SweepResults) -> Vec<(&'static str, f64, f64)> {
    p.0.iter()
        .map(|&(name, t, new_gen, old)| {
            let base = r.baseline(t);
            (
                name,
                r.report(new_gen).speedup_vs(base),
                r.report(old).speedup_vs(base),
            )
        })
        .collect()
}

/// Era comparison (one-shot).
pub fn era_comparison() -> Vec<(&'static str, f64, f64)> {
    run_solo(plan_era_comparison, |p, _, r| render_era_comparison(p, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_core::simulate;
    use mpps_core::sweep::baseline;

    /// The one-shot wrappers and the batched plan must produce identical
    /// figures; the batch must also be smaller than the sum of its parts
    /// (shared points deduplicate).
    #[test]
    fn batched_plan_matches_one_shot_and_deduplicates() {
        let s = Sections::generate();
        let mut plan = SweepPlan::new();
        let idle = plan_network_idle(&s, &mut plan);
        let idle_points = plan.point_count();
        let era = plan_era_comparison(&s, &mut plan);
        // The era's new-generation points are exactly the network-idle
        // points: only the Cosmic-Cube points are new.
        assert_eq!(plan.point_count(), idle_points + 3);
        assert_eq!(plan.trace_count(), 3);
        let r = plan.run(2);
        assert_eq!(render_network_idle(&idle, &r), network_idle());
        assert_eq!(render_era_comparison(&era, &r), era_comparison());
    }

    #[test]
    fn solo_wrappers_match_legacy_direct_simulation() {
        // Spot-check one figure against a hand-rolled simulate() loop.
        let s = Sections::generate();
        let got = fig5_5();
        let report = simulate(
            &s.rubik,
            &MappingConfig::standard(16, OverheadSetting::ZERO),
            &Partition::round_robin(s.rubik.table_size, 16),
        );
        let want: Vec<Vec<u64>> = report
            .left_load_matrix()
            .take(2)
            .map(<[u64]>::to_vec)
            .collect();
        assert_eq!(got, want);
        // And the baseline memoization agrees with the helper.
        let mut plan = SweepPlan::new();
        let t = plan.add_trace(&s.rubik);
        let r = plan.run(3);
        assert_eq!(r.baseline(t).total, baseline(&s.rubik).total);
    }
}
