//! `matchkernel` — match-kernel benchmark baselines and regression gate.
//!
//! ```text
//! matchkernel                      # measure, print table
//! matchkernel --out BENCH_matchkernel.json   # measure + write manifest
//! matchkernel --check [--max-regress 0.10]   # measure, compare against
//!                                            # the committed manifest
//! matchkernel --profile DIR        # replay each section once under the
//!                                  # profiled kernel, write
//!                                  # DIR/match_profile.json
//! matchkernel --check-profile FILE # validate a match_profile.json
//!                                  # against the v1 schema
//! ```
//!
//! Measures the three characteristic sections of the `match_executors`
//! criterion group (Rubik: modify-heavy; Tourney: cross-product; Weaver:
//! in between) end to end — network compile + full replay of the
//! captured change batches — exactly as the criterion group does, plus a
//! compile-only lane so compile and match cost can be tracked apart.
//!
//! The manifest (`BENCH_matchkernel.json`, same style as
//! `BENCH_repro.json`) records the median of `--samples` runs together
//! with the commit hash, machine info, and the frozen **pre-rework
//! baselines** measured before the arena/id-keyed-hash kernel landed.
//! `--check` re-measures and fails (exit 1) if any section regressed
//! more than `--max-regress` (default 10%) against the committed
//! medians — the CI gate for the match-kernel speed work.
//!
//! `--out` additionally runs the closed-skew-loop scenario
//! ([`mpps_bench::adapt`]: Tourney cross-product, 8 workers, suggested
//! copy-and-constraint + online migration vs static greedy) and records
//! its before/after skew factors in the manifest's `"adapt"` block.

use mpps_ops::{Matcher, Program, Wme, WmeChange, WmeId};
use mpps_rete::{EngineConfig, ReteMatcher, ReteNetwork};
use mpps_telemetry::MetricsRegistry;
use mpps_workloads::{rubik, tourney, weaver};
use std::hint::black_box;
use std::time::Instant;

/// Pre-rework sequential medians (µs), measured on the CI container at
/// the commit immediately before the match-kernel rework. The rework's
/// acceptance bar is ≥2× against these.
const PRE_REWORK_BASELINE_US: &[(&str, f64)] =
    &[("rubik", 738.10), ("tourney", 855.71), ("weaver", 217.96)];

/// WM changes that trigger a sizable cross-product match (the Tourney
/// pathology) — mirrors the criterion group.
fn cross_changes(n: usize) -> Vec<WmeChange> {
    let mut changes = Vec::new();
    for i in 0..n {
        changes.push(WmeChange::add(
            WmeId(1 + i as u64),
            Wme::new("team", &[("div", "east".into()), ("id", (i as i64).into())]),
        ));
        changes.push(WmeChange::add(
            WmeId(1000 + i as u64),
            Wme::new(
                "team",
                &[("div", "west".into()), ("id", (100 + i as i64).into())],
            ),
        ));
    }
    changes.push(WmeChange::add(
        WmeId(5000),
        Wme::new("round", &[("n", 1.into())]),
    ));
    changes
}

/// Replay-capture helper: run `program` under the interpreter and return
/// the per-cycle WM change batches it handed the matcher.
fn section_batches(program: &Program, initial: Vec<Wme>, cycles: usize) -> Vec<Vec<WmeChange>> {
    use mpps_ops::{Interpreter, Strategy};
    let m = ReteMatcher::from_program(program).unwrap();
    let mut interp = Interpreter::with_matcher(program.clone(), Strategy::Lex, m);
    for w in initial {
        interp.add_wme(w);
    }
    interp.run(cycles).unwrap();
    interp.change_log().to_vec()
}

fn sections() -> Vec<(&'static str, Program, Vec<Vec<WmeChange>>)> {
    vec![
        (
            "rubik",
            rubik::program(),
            section_batches(
                &rubik::program(),
                rubik::initial(&rubik::alternating_moves(2)),
                10,
            ),
        ),
        ("tourney", tourney::program(), vec![cross_changes(20)]),
        (
            "weaver",
            weaver::program(),
            section_batches(&weaver::program(), weaver::initial(4, 4), 12),
        ),
    ]
}

/// Median of `samples` timed runs of `f`, in µs.
fn median_us(samples: usize, mut f: impl FnMut()) -> f64 {
    // One warmup run to populate the symbol interner and allocator.
    f();
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).unwrap());
    times[times.len() / 2]
}

struct SectionResult {
    name: &'static str,
    compile_us: f64,
    total_us: f64,
    baseline_us: f64,
}

fn measure(samples: usize) -> Vec<SectionResult> {
    sections()
        .into_iter()
        .map(|(name, program, batches)| {
            let compile_us = median_us(samples, || {
                black_box(ReteNetwork::compile(black_box(&program)).unwrap());
            });
            let total_us = median_us(samples, || {
                let mut m = ReteMatcher::from_program(&program).unwrap();
                for batch in &batches {
                    m.process(black_box(batch));
                }
                black_box(m.conflict_set().len());
            });
            let baseline_us = PRE_REWORK_BASELINE_US
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, us)| *us)
                .unwrap();
            SectionResult {
                name,
                compile_us,
                total_us,
                baseline_us,
            }
        })
        .collect()
}

/// The current git commit hash. `"unknown"` outside a work tree.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Replay every section once under the profiled sequential kernel and
/// write the merged `match_profile.json` into `dir`. Profiling is kept
/// out of the timed `measure` loop on purpose: the baselines stay
/// unprofiled, so `--check` gates the zero-cost-when-disabled claim.
fn write_profile(dir: &str) {
    let mut merged = MetricsRegistry::new();
    for (name, program, batches) in sections() {
        let network = ReteNetwork::compile(&program).unwrap();
        let mut m =
            ReteMatcher::with_metrics(network, EngineConfig::default(), MetricsRegistry::new());
        for batch in &batches {
            m.process(batch);
        }
        black_box(m.conflict_set().len());
        let reg = m.profile();
        eprintln!(
            "matchkernel --profile: {name}: {} series",
            reg.counters().len() + reg.gauges().len() + reg.histograms().len()
        );
        merged.merge(&reg);
    }
    let json = mpps_core::render_match_profile("rete", 1, &merged);
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("matchkernel --profile: cannot create {dir}: {e}");
        std::process::exit(1);
    }
    let path = format!("{dir}/match_profile.json");
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("matchkernel --profile: wrote {path}"),
        Err(e) => {
            eprintln!("matchkernel --profile: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}

/// The manifest's `"adapt"` block: the closed skew loop's before/after
/// numbers (see [`mpps_bench::adapt`]).
fn adapt_json(report: &mpps_bench::adapt::AdaptReport) -> String {
    let opt = |v: Option<f64>| match v {
        Some(v) => format!("{v:.3}"),
        None => "null".to_owned(),
    };
    format!(
        "{{\"workload\": \"tourney-cross\", \"workers\": {}, \
         \"probe_skew_static\": {:.3}, \"probe_skew_adaptive\": {:.3}, \
         \"skew_reduction\": {:.2}, \"bucket_skew_static\": {}, \
         \"bucket_skew_adaptive\": {}, \"rebalances\": {}, \
         \"plan\": \"{}\", \"equivalent\": {}}}",
        report.workers,
        report.static_skew(),
        report.adaptive_skew(),
        report.reduction(),
        opt(report.static_bucket_skew),
        opt(report.adaptive_bucket_skew),
        report.rebalances,
        report.plan_summary,
        report.equivalent
    )
}

fn manifest(results: &[SectionResult], adapt: &mpps_bench::adapt::AdaptReport) -> String {
    let cpus = mpps_telemetry::available_cpus();
    let sections = results
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"compile_us\": {:.2}, \"total_us\": {:.2}, \"pre_rework_us\": {:.2}, \"speedup\": {:.2}}}",
                r.name,
                r.compile_us,
                r.total_us,
                r.baseline_us,
                r.baseline_us / r.total_us
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"matchkernel\",\n  \"commit\": \"{}\",\n  \"machine\": {{\"os\": \"{}\", \"arch\": \"{}\", \"cpus\": {}}},\n  \"sections\": [\n{}\n  ],\n  \"adapt\": {}\n}}\n",
        git_commit(),
        std::env::consts::OS,
        std::env::consts::ARCH,
        cpus,
        sections,
        adapt_json(adapt)
    )
}

/// Pull `"total_us"` for `name` out of a committed manifest. The manifest
/// is machine-written by this binary, so a line-oriented scan suffices
/// (no JSON dependency in the sealed build environment).
fn committed_total_us(manifest: &str, name: &str) -> Option<f64> {
    let tag = format!("\"name\": \"{name}\"");
    manifest
        .lines()
        .find(|l| l.contains(&tag))?
        .split("\"total_us\": ")
        .nth(1)?
        .split(&[',', '}'][..])
        .next()?
        .trim()
        .parse()
        .ok()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut check = false;
    let mut max_regress = 0.10f64;
    let mut samples = 21usize;
    let mut profile: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(args.get(i).expect("--out needs a path").clone());
            }
            "--check" => check = true,
            "--profile" => {
                i += 1;
                profile = Some(args.get(i).expect("--profile needs a directory").clone());
            }
            "--check-profile" => {
                i += 1;
                let path = args.get(i).expect("--check-profile needs a file").clone();
                match mpps_bench::telemetry::check_profile(std::path::Path::new(&path)) {
                    Ok(report) => {
                        println!("matchkernel --check-profile: {report}");
                        std::process::exit(0);
                    }
                    Err(e) => {
                        eprintln!("matchkernel --check-profile: {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--max-regress" => {
                i += 1;
                max_regress = args
                    .get(i)
                    .expect("--max-regress needs a fraction")
                    .parse()
                    .expect("--max-regress: not a number");
            }
            "--samples" => {
                i += 1;
                samples = args
                    .get(i)
                    .expect("--samples needs a count")
                    .parse()
                    .expect("--samples: not a number");
            }
            other => {
                eprintln!("matchkernel: unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    if let Some(dir) = profile {
        write_profile(&dir);
    }

    let results = measure(samples);
    println!("section    compile      total     pre-rework   speedup");
    for r in &results {
        println!(
            "{:<10} {:>8.2}µs {:>9.2}µs {:>10.2}µs {:>8.2}x",
            r.name,
            r.compile_us,
            r.total_us,
            r.baseline_us,
            r.baseline_us / r.total_us
        );
    }

    if let Some(path) = out {
        let adapt = mpps_bench::adapt::measure(&mpps_bench::adapt::AdaptScenario::default());
        eprintln!(
            "matchkernel: adapt skew {:.3} -> {:.3} ({:.2}x, {} rebalances)",
            adapt.static_skew(),
            adapt.adaptive_skew(),
            adapt.reduction(),
            adapt.rebalances
        );
        let json = manifest(&results, &adapt);
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("matchkernel: wrote {path}"),
            Err(e) => {
                eprintln!("matchkernel: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    if check {
        let committed = match std::fs::read_to_string("BENCH_matchkernel.json") {
            Ok(s) => s,
            Err(e) => {
                eprintln!("matchkernel --check: cannot read BENCH_matchkernel.json: {e}");
                std::process::exit(1);
            }
        };
        let mut failed = false;
        for r in &results {
            let Some(recorded) = committed_total_us(&committed, r.name) else {
                eprintln!("matchkernel --check: {} missing from manifest", r.name);
                failed = true;
                continue;
            };
            let limit = recorded * (1.0 + max_regress);
            if r.total_us > limit {
                eprintln!(
                    "matchkernel --check: {} regressed: {:.2}µs > {:.2}µs (recorded {:.2}µs + {:.0}%)",
                    r.name,
                    r.total_us,
                    limit,
                    recorded,
                    max_regress * 100.0
                );
                failed = true;
            } else {
                eprintln!(
                    "matchkernel --check: {} ok ({:.2}µs vs recorded {:.2}µs)",
                    r.name, r.total_us, recorded
                );
            }
        }
        if failed {
            std::process::exit(1);
        }
    }
}
