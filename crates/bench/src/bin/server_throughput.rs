//! `server_throughput` — serving-layer throughput tiers and manifest.
//!
//! ```text
//! server_throughput                          # measure tiers, print table
//! server_throughput --out BENCH_server.json  # measure + write manifest
//! server_throughput --check FILE             # validate a manifest's schema
//! server_throughput --tiers 1000,10000       # override the session tiers
//! server_throughput --resident-budget 65536  # cap resident sessions/worker
//! server_throughput --evict-dir DIR          # where evicted snapshots spill
//! server_throughput --migrate                # greedy rebalance+migrate per round
//! ```
//!
//! Each tier admits N concurrent sessions of the synthetic ticket-triage
//! workload into one `mpps_server::Server`, ingests `--rounds` WME
//! batches of `--wmes` requests into every session (retrying through the
//! bounded-queue backpressure, so the `Overloaded` path is exercised
//! under real load), drains to completion, and records sustained
//! WME-changes/sec plus per-cycle latency percentiles from the merged
//! worker metrics.
//!
//! The manifest (`BENCH_server.json`, same style as
//! `BENCH_matchkernel.json`) records every tier together with the commit
//! hash and machine info; `--check` validates a committed manifest
//! structurally via [`mpps_bench::telemetry::check_server_manifest`] —
//! the CI smoke job runs a 1k-session tier, writes the manifest, and
//! checks it.

use mpps_bench::telemetry::{
    check_server_manifest, render_server_manifest, ServerManifestInfo, ServerTierRecord,
};
use mpps_server::{run_synthetic, ServerConfig, SyntheticSpec};

/// The current git commit hash. `"unknown"` outside a work tree.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_owned())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn measure(config: ServerConfig, spec: &SyntheticSpec) -> ServerTierRecord {
    let report = run_synthetic(config, spec).unwrap_or_else(|e| {
        eprintln!("server_throughput: tier {} failed: {e}", spec.sessions);
        std::process::exit(1);
    });
    ServerTierRecord {
        sessions: report.sessions as u64,
        replies: report.replies,
        failures: report.failures,
        overloads: report.overloads,
        wme_changes: report.wme_changes,
        changes_per_sec: report.changes_per_sec,
        cycles_per_sec: report.cycles_per_sec,
        elapsed_s: report.elapsed.as_secs_f64(),
        p50_cycle_ns: report.p50_cycle_ns,
        p95_cycle_ns: report.p95_cycle_ns,
        p95_batch_ns: report.p95_batch_ns,
        resident_budget: report.resident_budget.map(|b| b as u64),
        evictions: report.evictions,
        faultins: report.faultins,
        migrations: report.migrations,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut tiers: Vec<usize> = vec![1_000, 10_000, 100_000];
    let mut rounds = 2u64;
    let mut wmes = 2usize;
    let mut workers = ServerConfig::default().workers;
    let mut resident_budget: Option<usize> = None;
    let mut evict_dir: Option<std::path::PathBuf> = None;
    let mut migrate = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--out" => {
                i += 1;
                out = Some(args.get(i).expect("--out needs a path").clone());
            }
            "--check" => {
                i += 1;
                let path = args.get(i).expect("--check needs a file").clone();
                match check_server_manifest(std::path::Path::new(&path)) {
                    Ok(report) => {
                        println!("server_throughput --check: {report}");
                        std::process::exit(0);
                    }
                    Err(e) => {
                        eprintln!("server_throughput --check: {path}: {e}");
                        std::process::exit(1);
                    }
                }
            }
            "--tiers" => {
                i += 1;
                tiers = args
                    .get(i)
                    .expect("--tiers needs a comma-separated list")
                    .split(',')
                    .map(|s| s.trim().parse().expect("--tiers: not a session count"))
                    .collect();
            }
            "--rounds" => {
                i += 1;
                rounds = args
                    .get(i)
                    .expect("--rounds needs a count")
                    .parse()
                    .expect("--rounds: not a number");
            }
            "--wmes" => {
                i += 1;
                wmes = args
                    .get(i)
                    .expect("--wmes needs a count")
                    .parse()
                    .expect("--wmes: not a number");
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .expect("--workers needs a count")
                    .parse()
                    .expect("--workers: not a number");
            }
            "--resident-budget" => {
                i += 1;
                resident_budget = Some(
                    args.get(i)
                        .expect("--resident-budget needs a count")
                        .parse()
                        .expect("--resident-budget: not a number"),
                );
            }
            "--evict-dir" => {
                i += 1;
                evict_dir = Some(
                    args.get(i)
                        .expect("--evict-dir needs a path")
                        .clone()
                        .into(),
                );
            }
            "--migrate" => {
                migrate = true;
            }
            other => {
                eprintln!("server_throughput: unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let config = ServerConfig {
        workers,
        resident_budget,
        evict_dir,
        ..ServerConfig::default()
    };
    let mut records = Vec::with_capacity(tiers.len());
    println!("sessions    changes/s     cycles/s   p50 cycle   p95 cycle   overloads     wall");
    for &sessions in &tiers {
        let spec = SyntheticSpec {
            sessions,
            rounds,
            wmes_per_round: wmes,
            migrate,
        };
        let r = measure(config.clone(), &spec);
        println!(
            "{:>8} {:>12.0} {:>12.0} {:>9}ns {:>9}ns {:>11} {:>7.2}s",
            r.sessions,
            r.changes_per_sec,
            r.cycles_per_sec,
            r.p50_cycle_ns,
            r.p95_cycle_ns,
            r.overloads,
            r.elapsed_s
        );
        if r.evictions > 0 || r.migrations > 0 {
            eprintln!(
                "  tier {}: {} evictions, {} fault-ins, {} migrations (budget {:?})",
                r.sessions, r.evictions, r.faultins, r.migrations, r.resident_budget
            );
        }
        if r.failures > 0 {
            eprintln!(
                "server_throughput: tier {} had {} failed requests",
                r.sessions, r.failures
            );
            std::process::exit(1);
        }
        records.push(r);
    }

    if let Some(path) = out {
        let info = ServerManifestInfo {
            commit: git_commit(),
            workers: workers as u64,
            queue_capacity: config.queue_capacity as u64,
            rounds,
            wmes_per_round: wmes as u64,
        };
        let json = render_server_manifest(&info, &records);
        match std::fs::write(&path, &json) {
            Ok(()) => eprintln!("server_throughput: wrote {path}"),
            Err(e) => {
                eprintln!("server_throughput: cannot write {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}
