//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [FIGURE] [--figures a,b,c] [--jobs N] [--bench-out PATH]
//!       [--telemetry-out DIR] [--check-telemetry DIR]
//!
//! repro all            # everything below, in paper order (the default)
//! repro fig5-1         # speedups, zero overhead
//! repro table5-1       # overhead settings
//! repro fig5-2         # speedups under each overhead row (+ loss summary)
//! repro table5-2       # activation mixes
//! repro fig5-3         # the unsharing transform, illustrated on a network
//! repro fig5-4         # Weaver with/without unsharing
//! repro fig5-5         # per-processor left-token counts, two Rubik cycles
//! repro fig5-6         # Tourney with/without copy-and-constraint
//! repro network-idle   # §5.1 interconnect idle fractions
//! repro greedy         # §5.2.2 offline-greedy improvement
//! repro probmodel      # §5.2.2 probabilistic model conclusions
//! repro continuum      # §6 mapping continuum endpoints
//! repro shared-bus     # §5.2 comparison vs the shared-bus mapping
//! repro termination-cost # pricing ring-token termination detection
//! repro era            # §1 motivation: first- vs new-generation MPCs
//! repro adapt          # closed skew loop: copy-and-constraint + online migration
//! ```
//!
//! All selected figures contribute their simulation points to **one**
//! [`SweepPlan`]; shared points (same trace, mapping, and partition) are
//! simulated once, and the plan executes on `--jobs` worker threads
//! (default: available parallelism). Results are keyed by point id, so
//! stdout is byte-identical for every `--jobs` value. A run manifest —
//! git commit, jobs, seed, sweep configuration, dedup hits, and
//! per-figure wall-clock histograms — is written to `BENCH_repro.json`
//! (stderr notes the path); pass `--bench-out ''` to skip the file.
//!
//! `--telemetry-out DIR` runs the sweep with wall-time telemetry and
//! writes `trace.json` (Chrome `trace_event`, one lane per worker —
//! open at <https://ui.perfetto.dev>), `events.jsonl`, and
//! `summary.json` into DIR. `--check-telemetry DIR` validates such a
//! directory structurally and exits; CI uses it as the schema check.

use std::time::Instant;

use mpps_analysis::{render_series, render_table};
use mpps_bench::experiments as exp;
use mpps_bench::telemetry as tel;
use mpps_core::sweep::{SpeedupPoint, SweepPlan, SweepResults};
use mpps_telemetry::{Histogram, TraceRecorder};

/// Canonical figure order (paper order) — also the output order.
const FIGURES: &[&str] = &[
    "fig5-1",
    "table5-1",
    "fig5-2",
    "table5-2",
    "fig5-3",
    "fig5-4",
    "fig5-5",
    "fig5-6",
    "network-idle",
    "greedy",
    "probmodel",
    "continuum",
    "shared-bus",
    "termination-cost",
    "era",
    "adapt",
];

fn curve_points(curve: &[SpeedupPoint]) -> Vec<(f64, f64)> {
    curve
        .iter()
        .map(|p| (p.processors as f64, p.speedup))
        .collect()
}

/// Planned ids for one figure (the figures that simulate nothing at plan
/// time hold `None`).
enum FigPlan {
    None,
    F51(exp::Fig51Plan),
    F52(exp::Fig52Plan, exp::LossesPlan),
    F54(exp::Fig54Plan),
    F55(exp::Fig55Plan),
    F56(exp::Fig56Plan),
    Idle(exp::NetworkIdlePlan),
    Greedy(exp::GreedyPlan, exp::RandomPlan),
    Continuum(exp::ContinuumPlan),
    SharedBus(exp::SharedBusPlan),
    Termination(exp::TerminationPlan),
    Era(exp::EraPlan),
}

fn plan_figure<'t>(name: &str, s: &'t exp::Sections, plan: &mut SweepPlan<'t>) -> FigPlan {
    match name {
        "fig5-1" => FigPlan::F51(exp::plan_fig5_1(s, plan)),
        "fig5-2" => FigPlan::F52(exp::plan_fig5_2(s, plan), exp::plan_fig5_2_losses(s, plan)),
        "fig5-4" => FigPlan::F54(exp::plan_fig5_4(s, plan)),
        "fig5-5" => FigPlan::F55(exp::plan_fig5_5(s, plan)),
        "fig5-6" => FigPlan::F56(exp::plan_fig5_6(s, plan)),
        "network-idle" => FigPlan::Idle(exp::plan_network_idle(s, plan)),
        "greedy" => FigPlan::Greedy(
            exp::plan_greedy_gains(s, plan),
            exp::plan_random_vs_round_robin(s, plan),
        ),
        "continuum" => FigPlan::Continuum(exp::plan_continuum(s, plan)),
        "shared-bus" => FigPlan::SharedBus(exp::plan_shared_bus(s, plan)),
        "termination-cost" => FigPlan::Termination(exp::plan_termination_cost(s, plan)),
        "era" => FigPlan::Era(exp::plan_era_comparison(s, plan)),
        _ => FigPlan::None,
    }
}

fn render_figure(name: &str, ids: &FigPlan, s: &exp::Sections, r: &SweepResults) {
    match (name, ids) {
        ("fig5-1", FigPlan::F51(p)) => fig5_1(&exp::render_fig5_1(p, r)),
        ("table5-1", _) => table5_1(),
        ("fig5-2", FigPlan::F52(p, losses)) => fig5_2(
            &exp::render_fig5_2(p, r),
            &exp::render_fig5_2_losses(losses, s, r),
        ),
        ("table5-2", _) => table5_2(s),
        ("fig5-3", _) => fig5_3(),
        ("fig5-4", FigPlan::F54(p)) => {
            let (shared, unshared) = exp::render_fig5_4(p, r);
            fig5_4(&shared, &unshared);
        }
        ("fig5-5", FigPlan::F55(p)) => fig5_5(&exp::render_fig5_5(p, r)),
        ("fig5-6", FigPlan::F56(p)) => {
            let (plain, cc) = exp::render_fig5_6(p, r);
            fig5_6(&plain, &cc);
        }
        ("network-idle", FigPlan::Idle(p)) => network_idle(&exp::render_network_idle(p, r)),
        ("greedy", FigPlan::Greedy(g, rnd)) => greedy(
            &exp::render_greedy_gains(g, s, r),
            &exp::render_random_vs_round_robin(rnd, r),
        ),
        ("probmodel", _) => probmodel(),
        ("continuum", FigPlan::Continuum(p)) => continuum(&exp::render_continuum(p, s, r)),
        ("shared-bus", FigPlan::SharedBus(p)) => shared_bus(&exp::render_shared_bus(p, s, r)),
        ("termination-cost", FigPlan::Termination(p)) => {
            termination_cost(&exp::render_termination_cost(p, r))
        }
        ("era", FigPlan::Era(p)) => era(&exp::render_era_comparison(p, r)),
        ("adapt", _) => adapt_figure(),
        _ => unreachable!("figure {name} planned inconsistently"),
    }
}

fn fig5_1(curves: &[(&'static str, Vec<SpeedupPoint>)]) {
    let series: Vec<(&str, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|(name, c)| (*name, curve_points(c)))
        .collect();
    println!(
        "{}",
        render_series(
            "Figure 5-1: speedups with zero message-passing overheads",
            "P",
            &series,
            40,
        )
    );
    // The paper's "interesting dips": report any decrease with more
    // processors.
    for (name, curve) in curves {
        let pts: Vec<(usize, f64)> = curve.iter().map(|p| (p.processors, p.speedup)).collect();
        for d in mpps_analysis::find_dips(&pts, 0.01) {
            println!(
                "dip ({name}): {} -> {} processors, speedup {:.2} -> {:.2}                  (uneven active-bucket distribution)",
                d.from_procs, d.to_procs, d.before, d.after
            );
        }
    }
    println!();
}

fn table5_1() {
    println!(
        "{}",
        render_table(
            "Table 5-1: message-processing overhead settings",
            &["Run", "Send", "Receive", "Total"],
            &exp::table5_1(),
        )
    );
}

fn fig5_2(curves: &[(&'static str, exp::OverheadCurves)], losses: &[(&'static str, f64, f64)]) {
    for (name, sweeps) in curves {
        let series: Vec<(String, Vec<(f64, f64)>)> = sweeps
            .iter()
            .map(|(o, c)| (format!("{}:{}", name, o.name), curve_points(c)))
            .collect();
        let series_ref: Vec<(&str, Vec<(f64, f64)>)> = series
            .iter()
            .map(|(n, pts)| (n.as_str(), pts.clone()))
            .collect();
        println!(
            "{}",
            render_series(
                &format!("Figure 5-2 ({name}): speedups under varying overheads"),
                "P",
                &series_ref,
                40,
            )
        );
    }
    let rows: Vec<Vec<String>> = losses
        .iter()
        .map(|&(name, loss, left_frac)| {
            vec![
                name.to_owned(),
                format!("{:.0}%", loss * 100.0),
                format!("{:.0}%", left_frac * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Peak-speedup loss at 32us overhead (paper: Rubik 30%, Tourney 45%, Weaver 50%)",
            &["Section", "Speedup loss", "Left-activation share"],
            &rows,
        )
    );
}

fn table5_2(s: &exp::Sections) {
    println!(
        "{}",
        render_table(
            "Table 5-2: tokens in the sections of the three programs",
            &["Program", "Left activations", "Right activations", "Total"],
            &exp::table5_2_for(s),
        )
    );
}

fn fig5_3() {
    use mpps_ops::parse_program;
    use mpps_rete::{transform::unshare, ReteNetwork};
    let src = r#"
        (p o1 (i1 ^k <k>) (i2 ^k <k> ^tag a) --> (remove 1))
        (p o2 (i1 ^k <k>) (i2 ^k <k> ^tag b) --> (remove 1))
    "#;
    let program = parse_program(src).unwrap();
    let shared = ReteNetwork::compile(&program).unwrap();
    let unshared = unshare(&program).unwrap();
    println!("Figure 5-3: unsharing the Rete network (illustrative)\n");
    println!("productions O1, O2 share the join of conditions I1 and I2\n");
    let s = shared.stats();
    let u = unshared.stats();
    println!(
        "  shared   network: {} two-input nodes ({} with multiple outputs)",
        s.two_input, s.shared_two_input
    );
    println!(
        "  unshared network: {} two-input nodes ({} with multiple outputs)",
        u.two_input, u.shared_two_input
    );
    println!("\nafter unsharing, O1 and O2 generate their outputs independently\n");
}

fn fig5_4(shared: &[SpeedupPoint], unshared: &[SpeedupPoint]) {
    println!(
        "{}",
        render_series(
            "Figure 5-4: Weaver speedups with unsharing (zero overheads)",
            "P",
            &[
                ("shared", curve_points(shared)),
                ("unshared", curve_points(unshared)),
            ],
            40,
        )
    );
}

fn fig5_5(cycles: &[Vec<u64>]) {
    for (c, loads) in cycles.iter().enumerate() {
        let series: Vec<(f64, f64)> = loads
            .iter()
            .enumerate()
            .map(|(p, &l)| (p as f64, l as f64))
            .collect();
        println!(
            "{}",
            render_series(
                &format!("Figure 5-5 (cycle {c}): left tokens per processor, Rubik, 16 procs"),
                "proc",
                &[("tokens", series)],
                40,
            )
        );
    }
}

fn fig5_6(plain: &[SpeedupPoint], cc: &[SpeedupPoint]) {
    println!(
        "{}",
        render_series(
            "Figure 5-6: Tourney speedups with copy-and-constraint (zero overheads)",
            "P",
            &[
                ("original", curve_points(plain)),
                ("copy+constrain", curve_points(cc)),
            ],
            40,
        )
    );
}

fn network_idle(fractions: &[(&'static str, f64)]) {
    let rows: Vec<Vec<String>> = fractions
        .iter()
        .map(|&(name, idle)| vec![name.to_owned(), format!("{:.1}%", idle * 100.0)])
        .collect();
    println!(
        "{}",
        render_table(
            "Interconnect idle time at 16 processors, 8us overheads (paper: 97-98%)",
            &["Section", "Network idle"],
            &rows,
        )
    );
}

fn greedy(gains: &[(&'static str, f64, f64)], random: &[(&'static str, f64)]) {
    let rows: Vec<Vec<String>> = gains
        .iter()
        .map(|&(name, simulated, bound)| {
            vec![
                name.to_owned(),
                format!("x{simulated:.2}"),
                format!("x{bound:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Offline greedy bucket distribution vs round-robin, 16 procs (paper: x1.4)",
            &["Section", "Simulated speedup gain", "Load-balance bound"],
            &rows,
        )
    );
    let rows: Vec<Vec<String>> = random
        .iter()
        .map(|&(name, gain)| vec![name.to_owned(), format!("x{gain:.2}")])
        .collect();
    println!(
        "{}",
        render_table(
            "Random placement vs round-robin (paper: no significant improvement)",
            &["Section", "Gain from random placement"],
            &rows,
        )
    );
}

fn probmodel() {
    use mpps_analysis::{estimate_max_load, prob_perfectly_even, prob_totally_uneven};
    println!("Probabilistic model of active-bucket distribution (section 5.2.2)\n");
    let (a, p) = (128u64, 16u64);
    println!(
        "  {a} active buckets on {p} processors: P(perfectly even) = {:.2e}, \
         P(totally uneven) = {:.2e}  (both < 1%)",
        prob_perfectly_even(a, p),
        prob_totally_uneven(a, p)
    );
    println!("\n  relative imbalance E[max]/ideal at 8 processors:");
    for active in [16u64, 64, 256, 1024] {
        let est = estimate_max_load(active, 8, 0, 2000, 7);
        println!(
            "    {active:>5} active buckets: {:.2}",
            est.mean_max_load / est.ideal as f64
        );
    }
    println!("\n  P(near-linear speedup) with 64 active buckets (slack 1):");
    for procs in [2usize, 4, 8, 16, 32] {
        let est = estimate_max_load(64, procs, 1, 2000, 11);
        println!("    {procs:>3} processors: {:.2}", est.prob_near_linear);
    }
    println!();
}

fn continuum(points: &[(String, f64)]) {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|(label, speedup)| vec![label.clone(), format!("{speedup:.2}x")])
        .collect();
    println!(
        "{}",
        render_table(
            "Section 6 continuum (Rubik, 16 procs, 8us overheads): match speedup vs serial",
            &["Mapping", "Speedup"],
            &rows,
        )
    );
}

fn shared_bus(sections: &exp::ComparisonRows) {
    for (name, rows) in sections {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|&(p, mpc, bus)| vec![format!("{p}"), format!("{mpc:.2}"), format!("{bus:.2}")])
            .collect();
        println!(
            "{}",
            render_table(
                &format!("Section 5.2 comparison ({name}): distributed MPC vs shared-bus mapping"),
                &["P", "MPC speedup", "Shared-bus speedup"],
                &table,
            )
        );
    }
}

fn termination_cost(sections: &exp::ComparisonRows) {
    for (name, rows) in sections {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|&(p, omniscient, ring)| {
                vec![
                    format!("{p}"),
                    format!("{omniscient:.2}"),
                    format!("{ring:.2}"),
                    format!("{:.0}%", (1.0 - ring / omniscient) * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "Termination detection cost ({name}): omniscient vs ring-token, 8us overheads"
                ),
                &["P", "Omniscient", "Ring token", "Loss"],
                &table,
            )
        );
    }
}

fn era(rows_in: &[(&'static str, f64, f64)]) {
    let rows: Vec<Vec<String>> = rows_in
        .iter()
        .map(|&(name, new_gen, old)| {
            vec![
                name.to_owned(),
                format!("{new_gen:.2}x"),
                format!("{old:.2}x"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Section 1 motivation: new-generation vs first-generation MPC, 16 procs",
            &[
                "Section",
                "Nectar-era (8us, 0.5us)",
                "Cosmic-Cube-era (300us, 500us/hop)"
            ],
            &rows,
        )
    );
}

/// The closed skew loop, run live (no sweep points): profiled pre-run →
/// `suggest_plan` copy-and-constraint → online migration, before/after
/// on the Tourney cross-product. Stdout sticks to run-invariant facts
/// (bucket-activation counts are order-invariant; exact per-worker probe
/// loads shift by a few entries with thread interleaving, so the precise
/// ratio goes to stderr to keep `--jobs` diffs byte-identical).
fn adapt_figure() {
    use mpps_bench::adapt::{measure, AdaptScenario};
    let report = measure(&AdaptScenario::default());
    println!(
        "Closed skew loop: copy-and-constraint + online migration (Tourney cross-product, {} workers)\n",
        report.workers
    );
    println!("  transform plan: {}", report.plan_summary);
    match (report.static_bucket_skew, report.adaptive_bucket_skew) {
        (Some(b), Some(a)) => println!("  bucket-activation skew factor: {b:.3} -> {a:.3}"),
        _ => println!("  bucket-activation skew factor: unavailable"),
    }
    println!(
        "  probe-load skew at least halved: {}",
        if report.adaptive_skew() * 2.0 <= report.static_skew() {
            "yes"
        } else {
            "NO"
        }
    );
    println!(
        "  online migration rebalanced the partition: {}",
        if report.rebalances > 0 { "yes" } else { "NO" }
    );
    println!(
        "  threaded == sequential: {} ({} firings)\n",
        if report.equivalent { "yes" } else { "NO" },
        report.firings
    );
    eprintln!(
        "repro adapt: probe skew static {:.3} -> adaptive {:.3} ({:.2}x, {} rebalances, {} buckets moved)",
        report.static_skew(),
        report.adaptive_skew(),
        report.reduction(),
        report.rebalances,
        report.moved_buckets
    );
}

struct Args {
    figures: Vec<&'static str>,
    jobs: usize,
    bench_out: Option<String>,
    telemetry_out: Option<String>,
    check_telemetry: Option<String>,
}

fn usage(code: i32) -> ! {
    eprintln!(
        "usage: repro [FIGURE|all] [--figures a,b,c] [--jobs N] [--bench-out PATH]\n\
         \x20            [--telemetry-out DIR] [--check-telemetry DIR]\n\
         figures: {}",
        FIGURES.join(", ")
    );
    std::process::exit(code);
}

fn canonical(name: &str) -> &'static str {
    FIGURES
        .iter()
        .copied()
        .find(|f| *f == name)
        .unwrap_or_else(|| {
            eprintln!("unknown experiment {name:?}; see `repro` source header for the list");
            std::process::exit(2);
        })
}

fn parse_args() -> Args {
    let mut figures: Vec<&'static str> = Vec::new();
    let mut jobs: Option<usize> = None;
    let mut bench_out: Option<String> = Some("BENCH_repro.json".to_owned());
    let mut telemetry_out: Option<String> = None;
    let mut check_telemetry: Option<String> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |what: &str| {
            argv.next().unwrap_or_else(|| {
                eprintln!("{what} requires a value");
                usage(2)
            })
        };
        match arg.as_str() {
            "--jobs" | "-j" => {
                let v = value("--jobs");
                jobs = Some(v.parse().unwrap_or_else(|_| {
                    eprintln!("--jobs: not a number: {v:?}");
                    usage(2)
                }));
            }
            "--figures" => {
                let v = value("--figures");
                for name in v.split(',').filter(|s| !s.is_empty()) {
                    if name == "all" {
                        figures.extend(FIGURES);
                    } else {
                        figures.push(canonical(name));
                    }
                }
            }
            "--bench-out" => {
                let v = value("--bench-out");
                bench_out = if v.is_empty() { None } else { Some(v) };
            }
            "--telemetry-out" => telemetry_out = Some(value("--telemetry-out")),
            "--check-telemetry" => check_telemetry = Some(value("--check-telemetry")),
            "--help" | "-h" => usage(0),
            "all" => figures.extend(FIGURES),
            name if !name.starts_with('-') => figures.push(canonical(name)),
            _ => {
                eprintln!("unknown flag {arg:?}");
                usage(2)
            }
        }
    }
    if figures.is_empty() {
        figures.extend(FIGURES);
    }
    // Canonical order, once each — output must not depend on request order.
    let mut ordered: Vec<&'static str> = FIGURES
        .iter()
        .copied()
        .filter(|f| figures.contains(f))
        .collect();
    ordered.dedup();
    let jobs = jobs.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    });
    Args {
        figures: ordered,
        jobs,
        bench_out,
        telemetry_out,
        check_telemetry,
    }
}

/// The current git commit hash, for the run manifest. `"unknown"` when
/// the binary runs outside a git checkout.
fn git_commit() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// Nearest-rank summary of a slice of wall-clock samples, as JSON.
fn wall_ns_json(samples: &[u64]) -> String {
    let mut hist = Histogram::new();
    for &ns in samples {
        hist.record(ns);
    }
    hist.summary().to_json()
}

fn main() {
    let args = parse_args();
    if let Some(dir) = &args.check_telemetry {
        match tel::check_dir(std::path::Path::new(dir)) {
            Ok(report) => {
                eprintln!("repro: {dir}: {report}");
                return;
            }
            Err(e) => {
                eprintln!("repro: {dir}: {e}");
                std::process::exit(1);
            }
        }
    }
    let wall = Instant::now();

    // Phase 1: one shared plan across every selected figure. Identical
    // points registered by different figures are simulated once.
    let sections = exp::Sections::generate();
    let mut plan = SweepPlan::new();
    let mut planned: Vec<(&'static str, FigPlan, std::ops::Range<usize>)> = Vec::new();
    for name in &args.figures {
        let before = plan.point_count();
        let ids = plan_figure(name, &sections, &mut plan);
        planned.push((name, ids, before..plan.point_count()));
    }

    // Phase 2: execute every point (plus one baseline per trace) on the
    // worker pool — with wall-time telemetry when requested.
    let mut recorder = args.telemetry_out.as_ref().map(|_| TraceRecorder::new());
    let run_start = Instant::now();
    let results = match recorder.as_mut() {
        Some(rec) => plan.run_traced(args.jobs, rec),
        None => plan.run(args.jobs),
    };
    let run_ms = run_start.elapsed().as_secs_f64() * 1e3;
    if let (Some(dir), Some(rec)) = (&args.telemetry_out, &recorder) {
        match tel::write_dir(std::path::Path::new(dir), rec) {
            Ok(written) => eprintln!(
                "repro: telemetry ({} files) written to {dir}",
                written.len()
            ),
            Err(e) => {
                eprintln!("repro: cannot write telemetry to {dir}: {e}");
                std::process::exit(1);
            }
        }
    }

    // Phase 3: render in canonical order — byte-identical for any --jobs.
    let separators = args.figures.len() > 1;
    let mut figure_stats: Vec<(&'static str, &std::ops::Range<usize>, f64)> = Vec::new();
    for (name, ids, points) in &planned {
        if separators {
            println!("==================================================================");
        }
        let render_start = Instant::now();
        render_figure(name, ids, &sections, &results);
        figure_stats.push((name, points, render_start.elapsed().as_secs_f64() * 1e3));
    }

    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    if let Some(path) = &args.bench_out {
        let mut per_figure = String::new();
        for (i, (name, points, render_ms)) in figure_stats.iter().enumerate() {
            if i > 0 {
                per_figure.push_str(",\n");
            }
            per_figure.push_str(&format!(
                "    {{\"name\": \"{name}\", \"points_added\": {}, \"render_ms\": {render_ms:.3}, \
                 \"sim_wall_ns\": {}}}",
                points.len(),
                wall_ns_json(&results.point_wall_ns_all()[points.start..points.end])
            ));
        }
        let procs: Vec<String> = exp::PROCS.iter().map(ToString::to_string).collect();
        let json = format!(
            "{{\n  \"bench\": \"repro\",\n  \"commit\": \"{}\",\n  \"jobs\": {},\n  \"seed\": {},\n  \"procs\": [{}],\n  \"default_partition\": \"round-robin\",\n  \"traces\": {},\n  \"points\": {},\n  \"baselines\": {},\n  \"dedup_hits\": {},\n  \"plan_run_ms\": {:.3},\n  \"wall_ms\": {:.3},\n  \"point_wall_ns\": {},\n  \"figures\": [\n{}\n  ]\n}}\n",
            git_commit(),
            args.jobs,
            exp::SEED,
            procs.join(", "),
            plan.trace_count(),
            plan.point_count(),
            plan.trace_count(),
            plan.dedup_hits(),
            run_ms,
            wall_ms,
            wall_ns_json(results.point_wall_ns_all()),
            per_figure
        );
        match std::fs::write(path, json) {
            Ok(()) => eprintln!(
                "repro: {} points ({} traces) in {:.1} ms on {} jobs; wrote {path}",
                plan.point_count(),
                plan.trace_count(),
                run_ms,
                args.jobs
            ),
            Err(e) => eprintln!("repro: cannot write {path}: {e}"),
        }
    }
}
