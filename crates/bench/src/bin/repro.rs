//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro all            # everything below, in paper order
//! repro fig5-1         # speedups, zero overhead
//! repro table5-1       # overhead settings
//! repro fig5-2         # speedups under each overhead row (+ loss summary)
//! repro table5-2       # activation mixes
//! repro fig5-3         # the unsharing transform, illustrated on a network
//! repro fig5-4         # Weaver with/without unsharing
//! repro fig5-5         # per-processor left-token counts, two Rubik cycles
//! repro fig5-6         # Tourney with/without copy-and-constraint
//! repro network-idle   # §5.1 interconnect idle fractions
//! repro greedy         # §5.2.2 offline-greedy improvement
//! repro probmodel      # §5.2.2 probabilistic model conclusions
//! repro continuum      # §6 mapping continuum endpoints
//! repro shared-bus     # §5.2 comparison vs the shared-bus mapping
//! repro termination-cost # pricing ring-token termination detection
//! repro era            # §1 motivation: first- vs new-generation MPCs
//! ```

use mpps_analysis::{render_series, render_table};
use mpps_bench::experiments as exp;
use mpps_core::sweep::SpeedupPoint;

fn curve_points(curve: &[SpeedupPoint]) -> Vec<(f64, f64)> {
    curve
        .iter()
        .map(|p| (p.processors as f64, p.speedup))
        .collect()
}

fn fig5_1() {
    let curves = exp::fig5_1();
    let series: Vec<(&str, Vec<(f64, f64)>)> = curves
        .iter()
        .map(|(name, c)| (*name, curve_points(c)))
        .collect();
    println!(
        "{}",
        render_series(
            "Figure 5-1: speedups with zero message-passing overheads",
            "P",
            &series,
            40,
        )
    );
    // The paper's "interesting dips": report any decrease with more
    // processors.
    for (name, curve) in &curves {
        let pts: Vec<(usize, f64)> = curve
            .iter()
            .map(|p| (p.processors, p.speedup))
            .collect();
        for d in mpps_analysis::find_dips(&pts, 0.01) {
            println!(
                "dip ({name}): {} -> {} processors, speedup {:.2} -> {:.2}                  (uneven active-bucket distribution)",
                d.from_procs, d.to_procs, d.before, d.after
            );
        }
    }
    println!();
}

fn table5_1() {
    println!(
        "{}",
        render_table(
            "Table 5-1: message-processing overhead settings",
            &["Run", "Send", "Receive", "Total"],
            &exp::table5_1(),
        )
    );
}

fn fig5_2() {
    for (name, sweeps) in exp::fig5_2() {
        let series: Vec<(String, Vec<(f64, f64)>)> = sweeps
            .iter()
            .map(|(o, c)| (format!("{}:{}", name, o.name), curve_points(c)))
            .collect();
        let series_ref: Vec<(&str, Vec<(f64, f64)>)> = series
            .iter()
            .map(|(n, pts)| (n.as_str(), pts.clone()))
            .collect();
        println!(
            "{}",
            render_series(
                &format!("Figure 5-2 ({name}): speedups under varying overheads"),
                "P",
                &series_ref,
                40,
            )
        );
    }
    let rows: Vec<Vec<String>> = exp::fig5_2_losses()
        .into_iter()
        .map(|(name, loss, left_frac)| {
            vec![
                name.to_owned(),
                format!("{:.0}%", loss * 100.0),
                format!("{:.0}%", left_frac * 100.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Peak-speedup loss at 32us overhead (paper: Rubik 30%, Tourney 45%, Weaver 50%)",
            &["Section", "Speedup loss", "Left-activation share"],
            &rows,
        )
    );
}

fn table5_2() {
    println!(
        "{}",
        render_table(
            "Table 5-2: tokens in the sections of the three programs",
            &["Program", "Left activations", "Right activations", "Total"],
            &exp::table5_2(),
        )
    );
}

fn fig5_3() {
    use mpps_ops::parse_program;
    use mpps_rete::{transform::unshare, ReteNetwork};
    let src = r#"
        (p o1 (i1 ^k <k>) (i2 ^k <k> ^tag a) --> (remove 1))
        (p o2 (i1 ^k <k>) (i2 ^k <k> ^tag b) --> (remove 1))
    "#;
    let program = parse_program(src).unwrap();
    let shared = ReteNetwork::compile(&program).unwrap();
    let unshared = unshare(&program).unwrap();
    println!("Figure 5-3: unsharing the Rete network (illustrative)\n");
    println!("productions O1, O2 share the join of conditions I1 and I2\n");
    let s = shared.stats();
    let u = unshared.stats();
    println!(
        "  shared   network: {} two-input nodes ({} with multiple outputs)",
        s.two_input, s.shared_two_input
    );
    println!(
        "  unshared network: {} two-input nodes ({} with multiple outputs)",
        u.two_input, u.shared_two_input
    );
    println!("\nafter unsharing, O1 and O2 generate their outputs independently\n");
}

fn fig5_4() {
    let (shared, unshared) = exp::fig5_4();
    println!(
        "{}",
        render_series(
            "Figure 5-4: Weaver speedups with unsharing (zero overheads)",
            "P",
            &[
                ("shared", curve_points(&shared)),
                ("unshared", curve_points(&unshared)),
            ],
            40,
        )
    );
}

fn fig5_5() {
    let cycles = exp::fig5_5();
    for (c, loads) in cycles.iter().enumerate() {
        let series: Vec<(f64, f64)> = loads
            .iter()
            .enumerate()
            .map(|(p, &l)| (p as f64, l as f64))
            .collect();
        println!(
            "{}",
            render_series(
                &format!("Figure 5-5 (cycle {c}): left tokens per processor, Rubik, 16 procs"),
                "proc",
                &[("tokens", series)],
                40,
            )
        );
    }
}

fn fig5_6() {
    let (plain, cc) = exp::fig5_6();
    println!(
        "{}",
        render_series(
            "Figure 5-6: Tourney speedups with copy-and-constraint (zero overheads)",
            "P",
            &[
                ("original", curve_points(&plain)),
                ("copy+constrain", curve_points(&cc)),
            ],
            40,
        )
    );
}

fn network_idle() {
    let rows: Vec<Vec<String>> = exp::network_idle()
        .into_iter()
        .map(|(name, idle)| vec![name.to_owned(), format!("{:.1}%", idle * 100.0)])
        .collect();
    println!(
        "{}",
        render_table(
            "Interconnect idle time at 16 processors, 8us overheads (paper: 97-98%)",
            &["Section", "Network idle"],
            &rows,
        )
    );
}

fn greedy() {
    let rows: Vec<Vec<String>> = exp::greedy_gains()
        .into_iter()
        .map(|(name, simulated, bound)| {
            vec![
                name.to_owned(),
                format!("x{simulated:.2}"),
                format!("x{bound:.2}"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Offline greedy bucket distribution vs round-robin, 16 procs (paper: x1.4)",
            &["Section", "Simulated speedup gain", "Load-balance bound"],
            &rows,
        )
    );
    let rows: Vec<Vec<String>> = exp::random_vs_round_robin()
        .into_iter()
        .map(|(name, gain)| vec![name.to_owned(), format!("x{gain:.2}")])
        .collect();
    println!(
        "{}",
        render_table(
            "Random placement vs round-robin (paper: no significant improvement)",
            &["Section", "Gain from random placement"],
            &rows,
        )
    );
}

fn probmodel() {
    use mpps_analysis::{estimate_max_load, prob_perfectly_even, prob_totally_uneven};
    println!("Probabilistic model of active-bucket distribution (section 5.2.2)\n");
    let (a, p) = (128u64, 16u64);
    println!(
        "  {a} active buckets on {p} processors: P(perfectly even) = {:.2e}, \
         P(totally uneven) = {:.2e}  (both < 1%)",
        prob_perfectly_even(a, p),
        prob_totally_uneven(a, p)
    );
    println!("\n  relative imbalance E[max]/ideal at 8 processors:");
    for active in [16u64, 64, 256, 1024] {
        let est = estimate_max_load(active, 8, 0, 2000, 7);
        println!(
            "    {active:>5} active buckets: {:.2}",
            est.mean_max_load / est.ideal as f64
        );
    }
    println!("\n  P(near-linear speedup) with 64 active buckets (slack 1):");
    for procs in [2usize, 4, 8, 16, 32] {
        let est = estimate_max_load(64, procs, 1, 2000, 11);
        println!("    {procs:>3} processors: {:.2}", est.prob_near_linear);
    }
    println!();
}

fn continuum() {
    let rows: Vec<Vec<String>> = exp::continuum()
        .into_iter()
        .map(|(label, speedup)| vec![label, format!("{speedup:.2}x")])
        .collect();
    println!(
        "{}",
        render_table(
            "Section 6 continuum (Rubik, 16 procs, 8us overheads): match speedup vs serial",
            &["Mapping", "Speedup"],
            &rows,
        )
    );
}

fn shared_bus() {
    for (name, rows) in exp::shared_bus_comparison() {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|&(p, mpc, bus)| {
                vec![format!("{p}"), format!("{mpc:.2}"), format!("{bus:.2}")]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "Section 5.2 comparison ({name}): distributed MPC vs shared-bus mapping"
                ),
                &["P", "MPC speedup", "Shared-bus speedup"],
                &table,
            )
        );
    }
}

fn termination_cost() {
    for (name, rows) in exp::termination_cost() {
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|&(p, omniscient, ring)| {
                vec![
                    format!("{p}"),
                    format!("{omniscient:.2}"),
                    format!("{ring:.2}"),
                    format!("{:.0}%", (1.0 - ring / omniscient) * 100.0),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(
                &format!(
                    "Termination detection cost ({name}): omniscient vs ring-token, 8us overheads"
                ),
                &["P", "Omniscient", "Ring token", "Loss"],
                &table,
            )
        );
    }
}

fn era() {
    let rows: Vec<Vec<String>> = exp::era_comparison()
        .into_iter()
        .map(|(name, new_gen, old)| {
            vec![
                name.to_owned(),
                format!("{new_gen:.2}x"),
                format!("{old:.2}x"),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            "Section 1 motivation: new-generation vs first-generation MPC, 16 procs",
            &["Section", "Nectar-era (8us, 0.5us)", "Cosmic-Cube-era (300us, 500us/hop)"],
            &rows,
        )
    );
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let run = |what: &str| match what {
        "fig5-1" => fig5_1(),
        "table5-1" => table5_1(),
        "fig5-2" => fig5_2(),
        "table5-2" => table5_2(),
        "fig5-3" => fig5_3(),
        "fig5-4" => fig5_4(),
        "fig5-5" => fig5_5(),
        "fig5-6" => fig5_6(),
        "network-idle" => network_idle(),
        "greedy" => greedy(),
        "probmodel" => probmodel(),
        "continuum" => continuum(),
        "shared-bus" => shared_bus(),
        "termination-cost" => termination_cost(),
        "era" => era(),
        other => {
            eprintln!("unknown experiment {other:?}; see `repro` source header for the list");
            std::process::exit(2);
        }
    };
    if arg == "all" {
        for what in [
            "fig5-1",
            "table5-1",
            "fig5-2",
            "table5-2",
            "fig5-3",
            "fig5-4",
            "fig5-5",
            "fig5-6",
            "network-idle",
            "greedy",
            "probmodel",
            "continuum",
            "shared-bus",
            "termination-cost",
            "era",
        ] {
            println!("==================================================================");
            run(what);
        }
    } else {
        run(&arg);
    }
}
