//! # mpps-bench — the harness that regenerates every table and figure
//!
//! [`experiments`] defines one function per artifact of the paper's §5
//! evaluation; the `repro` binary prints them and the criterion benches in
//! `benches/` time them (plus the design-choice ablations called out in
//! DESIGN.md).

pub mod experiments;
pub mod telemetry;
