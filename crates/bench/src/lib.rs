//! # mpps-bench — the harness that regenerates every table and figure
//!
//! [`experiments`] defines one function per artifact of the paper's §5
//! evaluation; the `repro` binary prints them and the criterion benches in
//! `benches/` time them (plus the design-choice ablations called out in
//! DESIGN.md). [`adapt`] is the live closed-skew-loop scenario shared by
//! the `matchkernel` manifest, the `repro adapt` figure, and the adapt
//! smoke test.

pub mod adapt;
pub mod experiments;
pub mod telemetry;
