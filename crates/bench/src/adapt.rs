//! The closed skew loop, measured live on the Tourney cross-product.
//!
//! One scenario shared by the `matchkernel` manifest, the `repro adapt`
//! figure, and the root `adapt_smoke` integration test: the pairing
//! rule's east×west join has no equality-tested variable, so every token
//! hashes to a single bucket and a static partition necessarily
//! serializes the whole join on one worker (§5.2.2). The closed loop —
//! profiled sequential pre-run → [`mpps_rete::suggest_plan`]
//! copy-and-constraint → online bucket migration at cycle barriers —
//! must spread that work without changing a single observable.
//!
//! The workload seeds every off-diagonal pairing as an already-played
//! `game`, so pair tokens for them die at the negation after one cheap
//! probe and the cross-product bucket dominates total probe work — the
//! shape where greedy placement genuinely cannot balance. The skew
//! measure is the per-worker *probe load* (hash-table entries examined
//! per worker, max/mean): deterministic for this add-only workload, and
//! exactly the work a hot bucket concentrates on its owner.

use mpps_core::{
    bucket_activity, bucket_skew_factor, load_skew, AdaptOptions, Partition, ThreadedMatcher,
};
use mpps_ops::{sort_conflict_set, Instantiation, Interpreter, Matcher, Strategy, Wme};
use mpps_rete::{
    kernel, suggest_plan, CompileOptions, EngineConfig, ReteMatcher, ReteNetwork, SuggestOptions,
};
use mpps_telemetry::MetricsRegistry;
use mpps_workloads::tourney;

/// The adapt scenario's fixed shape (the acceptance configuration).
#[derive(Clone, Copy, Debug)]
pub struct AdaptScenario {
    /// East-division teams.
    pub east: usize,
    /// West-division teams.
    pub west: usize,
    /// Threaded-executor workers.
    pub workers: usize,
    /// Hash-table buckets.
    pub table_size: u64,
}

impl Default for AdaptScenario {
    fn default() -> Self {
        AdaptScenario {
            east: 24,
            west: 24,
            workers: 8,
            table_size: 2048,
        }
    }
}

/// Before/after measurements of one closed-loop run.
#[derive(Clone, Debug)]
pub struct AdaptReport {
    /// Worker count the scenario ran with.
    pub workers: usize,
    /// Per-worker probe loads under the static greedy partition.
    pub static_loads: Vec<u64>,
    /// Per-worker probe loads under transform + online migration.
    pub adaptive_loads: Vec<u64>,
    /// Per-bucket activation skew factor, untransformed network.
    pub static_bucket_skew: Option<f64>,
    /// Per-bucket activation skew factor, transformed network.
    pub adaptive_bucket_skew: Option<f64>,
    /// Online rebalances the repartitioner performed.
    pub rebalances: usize,
    /// Buckets whose owner changed across all rebalances.
    pub moved_buckets: u64,
    /// Human-readable summary of the suggested transform plan.
    pub plan_summary: String,
    /// Productions fired (identical across all three runs).
    pub firings: usize,
    /// Both threaded runs matched the sequential reference exactly
    /// (firing sequence, final WM, final conflict set).
    pub equivalent: bool,
}

impl AdaptReport {
    /// Probe-load skew (max/mean) under the static greedy partition.
    pub fn static_skew(&self) -> f64 {
        load_skew(&self.static_loads)
    }

    /// Probe-load skew (max/mean) under the closed loop.
    pub fn adaptive_skew(&self) -> f64 {
        load_skew(&self.adaptive_loads)
    }

    /// How many times smaller the skew got.
    pub fn reduction(&self) -> f64 {
        let adaptive = self.adaptive_skew();
        if adaptive > 0.0 {
            self.static_skew() / adaptive
        } else {
            0.0
        }
    }
}

/// Every off-diagonal pairing, already played. Ingested as its own
/// cycle *before* the teams (see [`initial_wm`]).
fn game_seeds(sc: &AdaptScenario) -> Vec<Wme> {
    let mut wmes = Vec::new();
    for a in 0..sc.east as i64 {
        for b in 0..sc.west as i64 {
            if a == b {
                continue;
            }
            wmes.push(Wme::new(
                "game",
                &[("east", a.into()), ("west", (100 + b).into())],
            ));
        }
    }
    wmes
}

/// The full scenario WM — tourney's round + teams plus the off-diagonal
/// game seeds; the diagonal stays open, so the run still fires once per
/// east team. This is the `suggest_plan` WME sample; [`drive`] ingests
/// the two halves as separate cycles.
pub fn initial_wm(sc: &AdaptScenario) -> Vec<Wme> {
    let mut wmes = tourney::initial(sc.east, sc.west);
    wmes.extend(game_seeds(sc));
    wmes
}

struct Observed {
    fired: Vec<(usize, String)>,
    wm: Vec<Wme>,
    conflict: Vec<Instantiation>,
}

impl Observed {
    fn same_as(&self, other: &Observed) -> bool {
        self.fired == other.fired && self.wm == other.wm && self.conflict == other.conflict
    }
}

/// Drive `matcher` over the scenario workload to quiescence and capture
/// everything observable.
fn drive<M: Matcher>(sc: &AdaptScenario, matcher: M) -> (Observed, Interpreter<M>) {
    let mut interp = Interpreter::with_matcher(tourney::program(), Strategy::Lex, matcher);
    // Seed the played games one cycle ahead of the teams: pair tokens
    // must find the negation memories already populated, not race their
    // own kill. (In one batch, a pair token reaching the neg-game node
    // before the seeded game entry passes through, spawns downstream
    // probe work, and is only then retracted — making per-worker probe
    // loads swing with thread interleaving.)
    for w in game_seeds(sc) {
        interp.add_wme(w);
    }
    interp.step().expect("game-seed cycle completes");
    for w in tourney::initial(sc.east, sc.west) {
        interp.add_wme(w);
    }
    let result = interp.run(10_000).expect("tourney scenario completes");
    let fired = result
        .fired
        .iter()
        .map(|f| (f.cycle, f.name.to_string()))
        .collect();
    let mut wm: Vec<Wme> = interp
        .working_memory()
        .iter()
        .map(|(_, w)| w.clone())
        .collect();
    wm.sort_by_key(|w| w.to_string());
    let mut conflict = interp.matcher().conflict_set();
    sort_conflict_set(&mut conflict);
    (
        Observed {
            fired,
            wm,
            conflict,
        },
        interp,
    )
}

/// `mpps run --partition greedy`: traced sequential pre-run, then LPT
/// over measured per-bucket activity.
fn static_greedy_partition(sc: &AdaptScenario) -> Partition {
    let matcher = ReteMatcher::new(
        ReteNetwork::compile(&tourney::program()).unwrap(),
        EngineConfig {
            table_size: sc.table_size,
            record_trace: true,
        },
    );
    let (_, mut interp) = drive(sc, matcher);
    let trace = interp.matcher_mut().take_trace().unwrap();
    Partition::greedy(&bucket_activity(&trace), sc.workers)
}

/// `mpps run --adapt`'s pre-run: profiled sequential run → suggested
/// plan (copy-and-constraint the hot cross-product) → transformed
/// network, plus the plan's summary.
fn adaptive_network(sc: &AdaptScenario) -> (ReteNetwork, String) {
    let program = tourney::program();
    let matcher = ReteMatcher::with_metrics(
        ReteNetwork::compile(&program).unwrap(),
        EngineConfig {
            table_size: sc.table_size,
            record_trace: false,
        },
        MetricsRegistry::new(),
    );
    let (_, mut interp) = drive(sc, matcher);
    let reg = interp.matcher_mut().profile();
    let empty = std::collections::BTreeMap::new();
    let acts = reg
        .counter(kernel::metric::NODE_ACTIVATIONS)
        .unwrap_or(&empty);
    let net = ReteNetwork::compile(&program).unwrap();
    let plan = suggest_plan(
        &net,
        &program,
        acts,
        &initial_wm(sc),
        &SuggestOptions::default(),
    );
    let summary = plan.summary(&program);
    let transformed =
        ReteNetwork::compile_planned(&program, CompileOptions::default(), &plan).unwrap();
    (transformed, summary)
}

/// Per-worker probe load: hash-table entries examined on each worker's
/// shard.
fn probe_loads(matcher: &ThreadedMatcher) -> Vec<u64> {
    matcher
        .stats()
        .per_worker
        .iter()
        .map(|w| w.left_probes + w.right_probes)
        .collect()
}

/// Run the full before/after comparison: sequential reference, static
/// greedy on the untransformed network, and the closed loop (transformed
/// network + online migration from a plain round-robin start).
pub fn measure(sc: &AdaptScenario) -> AdaptReport {
    let (reference, _) = drive(sc, ReteMatcher::from_program(&tourney::program()).unwrap());

    let static_matcher = ThreadedMatcher::with_partition_profiled(
        ReteNetwork::compile(&tourney::program()).unwrap(),
        static_greedy_partition(sc),
    );
    let (static_run, mut static_interp) = drive(sc, static_matcher);
    let static_loads = probe_loads(static_interp.matcher());
    let static_bucket_skew =
        bucket_skew_factor(&static_interp.matcher_mut().profile_snapshot().unwrap());

    let (network, plan_summary) = adaptive_network(sc);
    let mut adaptive_matcher = ThreadedMatcher::with_partition_profiled(
        network,
        Partition::round_robin(sc.table_size, sc.workers),
    );
    adaptive_matcher.enable_adaptation(AdaptOptions::default());
    let (adaptive_run, mut adaptive_interp) = drive(sc, adaptive_matcher);
    let adaptive_loads = probe_loads(adaptive_interp.matcher());
    let events = adaptive_interp.matcher().rebalance_events();
    let rebalances = events.len();
    let moved_buckets = events.iter().map(|e| e.moved_buckets).sum();
    let adaptive_bucket_skew =
        bucket_skew_factor(&adaptive_interp.matcher_mut().profile_snapshot().unwrap());

    AdaptReport {
        workers: sc.workers,
        static_loads,
        adaptive_loads,
        static_bucket_skew,
        adaptive_bucket_skew,
        rebalances,
        moved_buckets,
        plan_summary,
        firings: reference.fired.len(),
        equivalent: static_run.same_as(&reference) && adaptive_run.same_as(&reference),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cheap configuration still closes the loop: transforms found,
    /// equivalence holds, skew does not get worse.
    #[test]
    fn small_scenario_closes_the_loop() {
        let sc = AdaptScenario {
            east: 8,
            west: 8,
            workers: 4,
            table_size: 256,
        };
        let report = measure(&sc);
        assert!(report.firings > 0, "scenario must fire");
        assert!(report.equivalent, "threaded diverged from sequential");
        assert!(
            report.plan_summary.contains("split"),
            "suggest_plan must find the cross-product: {}",
            report.plan_summary
        );
        assert!(
            report.adaptive_skew() <= report.static_skew(),
            "skew got worse: {report:?}"
        );
    }
}
