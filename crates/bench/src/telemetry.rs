//! Telemetry export for `repro --telemetry-out DIR`, and the schema check
//! behind `repro --check-telemetry DIR`.
//!
//! A telemetry directory holds three files produced from one traced sweep:
//!
//! * `trace.json` — Chrome `trace_event` JSON (open at
//!   <https://ui.perfetto.dev>), one wall-time lane per sweep worker.
//! * `events.jsonl` — the same spans and counters, one JSON object per
//!   line, for ad-hoc scripting.
//! * `summary.json` — per-metric histogram percentiles.
//!
//! [`check_dir`] validates the directory structurally — required keys,
//! types, and cross-file consistency — using only the workspace's own
//! JSON parser, so CI can assert schema validity without a `jsonschema`
//! dependency.

use std::path::Path;

use mpps_telemetry::json::{parse, Value};
use mpps_telemetry::{chrome::chrome_trace, jsonl, TraceRecorder};

/// File names written into a telemetry directory.
pub const FILES: [&str; 3] = ["trace.json", "events.jsonl", "summary.json"];

/// Write the three telemetry files for `rec` into `dir` (created if
/// missing). Returns the paths written.
pub fn write_dir(dir: &Path, rec: &TraceRecorder) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let contents = [
        chrome_trace(rec),
        jsonl::events_jsonl(rec),
        jsonl::summary_json(rec),
    ];
    let mut written = Vec::with_capacity(FILES.len());
    for (name, text) in FILES.iter().zip(contents) {
        let path = dir.join(name);
        std::fs::write(&path, text)?;
        written.push(path);
    }
    Ok(written)
}

fn read(dir: &Path, name: &str) -> Result<String, String> {
    std::fs::read_to_string(dir.join(name)).map_err(|e| format!("{name}: cannot read: {e}"))
}

fn require_u64(obj: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer {key:?}"))
}

fn require_f64(obj: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric {key:?}"))
}

fn require_str<'v>(obj: &'v Value, key: &str, ctx: &str) -> Result<&'v str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{ctx}: missing or non-string {key:?}"))
}

/// Validate `trace.json`: a Chrome `trace_event` document whose events
/// all carry a phase and pid, with well-formed metadata, complete-span
/// and counter records. Returns the number of `"X"` spans.
fn check_trace(text: &str) -> Result<u64, String> {
    let doc = parse(text).map_err(|e| format!("trace.json: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("trace.json: missing \"traceEvents\" array")?;
    let mut spans = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let ctx = format!("trace.json: event {i}");
        let ph = require_str(ev, "ph", &ctx)?;
        require_u64(ev, "pid", &ctx)?;
        match ph {
            "M" => {
                let name = require_str(ev, "name", &ctx)?;
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("{ctx}: metadata without \"args\""))?;
                match name {
                    "process_name" | "thread_name" => {
                        require_str(args, "name", &ctx)?;
                    }
                    "thread_sort_index" => {
                        require_f64(args, "sort_index", &ctx)?;
                    }
                    other => return Err(format!("{ctx}: unknown metadata {other:?}")),
                }
            }
            "X" => {
                require_str(ev, "name", &ctx)?;
                require_u64(ev, "tid", &ctx)?;
                require_f64(ev, "ts", &ctx)?;
                require_f64(ev, "dur", &ctx)?;
                spans += 1;
            }
            "C" => {
                require_str(ev, "name", &ctx)?;
                require_f64(ev, "ts", &ctx)?;
                ev.get("args")
                    .and_then(Value::as_object)
                    .filter(|args| args.values().all(|v| v.as_f64().is_some()))
                    .ok_or_else(|| format!("{ctx}: counter args must be numeric"))?;
            }
            other => return Err(format!("{ctx}: unknown phase {other:?}")),
        }
    }
    Ok(spans)
}

/// Validate `events.jsonl`: one object per line, each a span or counter
/// with the full field set. Returns the number of span lines.
fn check_events(text: &str) -> Result<u64, String> {
    let mut spans = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let ctx = format!("events.jsonl: line {}", lineno + 1);
        let ev = parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        require_u64(&ev, "pid", &ctx)?;
        require_u64(&ev, "tid", &ctx)?;
        require_str(&ev, "name", &ctx)?;
        match require_str(&ev, "type", &ctx)? {
            "span" => {
                let start = require_u64(&ev, "start_ns", &ctx)?;
                let end = require_u64(&ev, "end_ns", &ctx)?;
                if start > end {
                    return Err(format!("{ctx}: span ends before it starts"));
                }
                spans += 1;
            }
            "counter" => {
                require_u64(&ev, "t_ns", &ctx)?;
                require_u64(&ev, "value", &ctx)?;
            }
            other => return Err(format!("{ctx}: unknown event type {other:?}")),
        }
    }
    Ok(spans)
}

/// Validate `summary.json`: a `"metrics"` object mapping metric names to
/// complete histogram summaries with internally consistent percentiles.
fn check_summary(text: &str) -> Result<(), String> {
    let doc = parse(text).map_err(|e| format!("summary.json: {e}"))?;
    let metrics = doc
        .get("metrics")
        .and_then(Value::as_object)
        .ok_or("summary.json: missing \"metrics\" object")?;
    for (name, stats) in metrics {
        let ctx = format!("summary.json: metric {name:?}");
        let count = require_u64(stats, "count", &ctx)?;
        let min = require_u64(stats, "min", &ctx)?;
        let max = require_u64(stats, "max", &ctx)?;
        let p50 = require_u64(stats, "p50", &ctx)?;
        let p95 = require_u64(stats, "p95", &ctx)?;
        require_f64(stats, "mean", &ctx)?;
        if count > 0 && !(min <= p50 && p50 <= p95 && p95 <= max) {
            return Err(format!(
                "{ctx}: percentiles out of order (min {min}, p50 {p50}, p95 {p95}, max {max})"
            ));
        }
    }
    Ok(())
}

/// Validate a telemetry directory written by [`write_dir`]. Checks each
/// file's structure and that the two event files agree on the span count.
/// Returns a one-line description of what was validated.
pub fn check_dir(dir: &Path) -> Result<String, String> {
    let trace_spans = check_trace(&read(dir, "trace.json")?)?;
    let event_spans = check_events(&read(dir, "events.jsonl")?)?;
    check_summary(&read(dir, "summary.json")?)?;
    if trace_spans != event_spans {
        return Err(format!(
            "span count mismatch: trace.json has {trace_spans}, events.jsonl has {event_spans}"
        ));
    }
    Ok(format!(
        "telemetry ok: {} files, {trace_spans} spans",
        FILES.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_telemetry::{Recorder, Track};

    fn sample_recorder() -> TraceRecorder {
        let mut rec = TraceRecorder::new();
        rec.name_process(2, "sweep workers");
        rec.name_track(Track::worker(0), "worker 0");
        rec.span(Track::worker(0), "point", 100, 250);
        rec.counter(Track::worker(0), "queue-depth", 150, 3);
        rec.sample("task-wall-ns", 150);
        rec
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mpps-bench-tel-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn written_dir_passes_the_check() {
        let dir = tmp_dir("ok");
        let written = write_dir(&dir, &sample_recorder()).unwrap();
        assert_eq!(written.len(), FILES.len());
        let report = check_dir(&dir).unwrap();
        assert!(report.contains("1 spans"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_fails() {
        let dir = tmp_dir("missing");
        write_dir(&dir, &sample_recorder()).unwrap();
        std::fs::remove_file(dir.join("summary.json")).unwrap();
        let err = check_dir(&dir).unwrap_err();
        assert!(err.contains("summary.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_trace_fails() {
        let dir = tmp_dir("corrupt");
        write_dir(&dir, &sample_recorder()).unwrap();
        std::fs::write(
            dir.join("trace.json"),
            "{\"traceEvents\": [{\"ph\": \"X\"}]}",
        )
        .unwrap();
        let err = check_dir(&dir).unwrap_err();
        assert!(err.contains("event 0"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn span_count_mismatch_fails() {
        let dir = tmp_dir("mismatch");
        write_dir(&dir, &sample_recorder()).unwrap();
        std::fs::write(dir.join("events.jsonl"), "").unwrap();
        let err = check_dir(&dir).unwrap_err();
        assert!(err.contains("span count mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_recorder_round_trips() {
        let dir = tmp_dir("empty");
        write_dir(&dir, &TraceRecorder::new()).unwrap();
        check_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
