//! Telemetry export for `repro --telemetry-out DIR`, and the schema check
//! behind `repro --check-telemetry DIR`.
//!
//! A telemetry directory holds three files produced from one traced sweep:
//!
//! * `trace.json` — Chrome `trace_event` JSON (open at
//!   <https://ui.perfetto.dev>), one wall-time lane per sweep worker.
//! * `events.jsonl` — the same spans and counters, one JSON object per
//!   line, for ad-hoc scripting.
//! * `summary.json` — per-metric histogram percentiles.
//!
//! [`check_dir`] validates the directory structurally — required keys,
//! types, and cross-file consistency — using only the workspace's own
//! JSON parser, so CI can assert schema validity without a `jsonschema`
//! dependency.

use std::path::Path;

use mpps_telemetry::json::{parse, Value};
use mpps_telemetry::{chrome::chrome_trace, jsonl, TraceRecorder};

/// File names written into a telemetry directory.
pub const FILES: [&str; 3] = ["trace.json", "events.jsonl", "summary.json"];

/// Write the three telemetry files for `rec` into `dir` (created if
/// missing). Returns the paths written.
pub fn write_dir(dir: &Path, rec: &TraceRecorder) -> std::io::Result<Vec<std::path::PathBuf>> {
    std::fs::create_dir_all(dir)?;
    let contents = [
        chrome_trace(rec),
        jsonl::events_jsonl(rec),
        jsonl::summary_json(rec),
    ];
    let mut written = Vec::with_capacity(FILES.len());
    for (name, text) in FILES.iter().zip(contents) {
        let path = dir.join(name);
        std::fs::write(&path, text)?;
        written.push(path);
    }
    Ok(written)
}

fn read(dir: &Path, name: &str) -> Result<String, String> {
    std::fs::read_to_string(dir.join(name)).map_err(|e| format!("{name}: cannot read: {e}"))
}

fn require_u64(obj: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("{ctx}: missing or non-integer {key:?}"))
}

fn require_f64(obj: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(Value::as_f64)
        .ok_or_else(|| format!("{ctx}: missing or non-numeric {key:?}"))
}

fn require_str<'v>(obj: &'v Value, key: &str, ctx: &str) -> Result<&'v str, String> {
    obj.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("{ctx}: missing or non-string {key:?}"))
}

/// Validate `trace.json`: a Chrome `trace_event` document whose events
/// all carry a phase and pid, with well-formed metadata, complete-span
/// and counter records. Returns the number of `"X"` spans.
fn check_trace(text: &str) -> Result<u64, String> {
    let doc = parse(text).map_err(|e| format!("trace.json: {e}"))?;
    let events = doc
        .get("traceEvents")
        .and_then(Value::as_array)
        .ok_or("trace.json: missing \"traceEvents\" array")?;
    let mut spans = 0u64;
    for (i, ev) in events.iter().enumerate() {
        let ctx = format!("trace.json: event {i}");
        let ph = require_str(ev, "ph", &ctx)?;
        require_u64(ev, "pid", &ctx)?;
        match ph {
            "M" => {
                let name = require_str(ev, "name", &ctx)?;
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("{ctx}: metadata without \"args\""))?;
                match name {
                    "process_name" | "thread_name" => {
                        require_str(args, "name", &ctx)?;
                    }
                    "thread_sort_index" => {
                        require_f64(args, "sort_index", &ctx)?;
                    }
                    other => return Err(format!("{ctx}: unknown metadata {other:?}")),
                }
            }
            "X" => {
                require_str(ev, "name", &ctx)?;
                require_u64(ev, "tid", &ctx)?;
                require_f64(ev, "ts", &ctx)?;
                require_f64(ev, "dur", &ctx)?;
                spans += 1;
            }
            "C" => {
                require_str(ev, "name", &ctx)?;
                require_f64(ev, "ts", &ctx)?;
                ev.get("args")
                    .and_then(Value::as_object)
                    .filter(|args| args.values().all(|v| v.as_f64().is_some()))
                    .ok_or_else(|| format!("{ctx}: counter args must be numeric"))?;
            }
            other => return Err(format!("{ctx}: unknown phase {other:?}")),
        }
    }
    Ok(spans)
}

/// Validate `events.jsonl`: one object per line, each a span or counter
/// with the full field set. Returns the number of span lines.
fn check_events(text: &str) -> Result<u64, String> {
    let mut spans = 0u64;
    for (lineno, line) in text.lines().enumerate() {
        let ctx = format!("events.jsonl: line {}", lineno + 1);
        let ev = parse(line).map_err(|e| format!("{ctx}: {e}"))?;
        require_u64(&ev, "pid", &ctx)?;
        require_u64(&ev, "tid", &ctx)?;
        require_str(&ev, "name", &ctx)?;
        match require_str(&ev, "type", &ctx)? {
            "span" => {
                let start = require_u64(&ev, "start_ns", &ctx)?;
                let end = require_u64(&ev, "end_ns", &ctx)?;
                if start > end {
                    return Err(format!("{ctx}: span ends before it starts"));
                }
                spans += 1;
            }
            "counter" => {
                require_u64(&ev, "t_ns", &ctx)?;
                require_u64(&ev, "value", &ctx)?;
            }
            other => return Err(format!("{ctx}: unknown event type {other:?}")),
        }
    }
    Ok(spans)
}

/// Validate `summary.json`: a `"metrics"` object mapping metric names to
/// complete histogram summaries with internally consistent percentiles.
fn check_summary(text: &str) -> Result<(), String> {
    let doc = parse(text).map_err(|e| format!("summary.json: {e}"))?;
    let metrics = doc
        .get("metrics")
        .and_then(Value::as_object)
        .ok_or("summary.json: missing \"metrics\" object")?;
    for (name, stats) in metrics {
        let ctx = format!("summary.json: metric {name:?}");
        let count = require_u64(stats, "count", &ctx)?;
        let min = require_u64(stats, "min", &ctx)?;
        let max = require_u64(stats, "max", &ctx)?;
        let p50 = require_u64(stats, "p50", &ctx)?;
        let p95 = require_u64(stats, "p95", &ctx)?;
        require_f64(stats, "mean", &ctx)?;
        if count > 0 && !(min <= p50 && p50 <= p95 && p95 <= max) {
            return Err(format!(
                "{ctx}: percentiles out of order (min {min}, p50 {p50}, p95 {p95}, max {max})"
            ));
        }
    }
    Ok(())
}

/// Validate a telemetry directory written by [`write_dir`]. Checks each
/// file's structure and that the two event files agree on the span count.
/// Returns a one-line description of what was validated.
pub fn check_dir(dir: &Path) -> Result<String, String> {
    let trace_spans = check_trace(&read(dir, "trace.json")?)?;
    let event_spans = check_events(&read(dir, "events.jsonl")?)?;
    check_summary(&read(dir, "summary.json")?)?;
    if trace_spans != event_spans {
        return Err(format!(
            "span count mismatch: trace.json has {trace_spans}, events.jsonl has {event_spans}"
        ));
    }
    Ok(format!(
        "telemetry ok: {} files, {trace_spans} spans",
        FILES.len()
    ))
}

/// A histogram-summary value inside a profile: either `null` (the series
/// was never recorded) or a complete summary object with consistent
/// percentiles.
fn check_profile_hist(v: &Value, ctx: &str) -> Result<(), String> {
    if matches!(v, Value::Null) {
        return Ok(());
    }
    let count = require_u64(v, "count", ctx)?;
    let min = require_u64(v, "min", ctx)?;
    let max = require_u64(v, "max", ctx)?;
    let p50 = require_u64(v, "p50", ctx)?;
    let p95 = require_u64(v, "p95", ctx)?;
    require_f64(v, "mean", ctx)?;
    if count > 0 && !(min <= p50 && p50 <= p95 && p95 <= max) {
        return Err(format!(
            "{ctx}: percentiles out of order (min {min}, p50 {p50}, p95 {p95}, max {max})"
        ));
    }
    Ok(())
}

fn check_u64_fields(v: &Value, fields: &[&str], ctx: &str) -> Result<(), String> {
    for f in fields {
        require_u64(v, f, ctx)?;
    }
    Ok(())
}

/// Validate a `match_profile.json` document written by
/// `mpps_core::render_match_profile` (`mpps run --profile`). Checks the
/// schema tag, machine info, totals, hot-node/hot-rule ordering, the
/// bucket-skew invariants (`max ≥ mean`, `factor = max/mean`), arena
/// occupancy, phase histograms, and per-worker lanes. Returns a one-line
/// description of what was validated.
pub fn check_profile(path: &Path) -> Result<String, String> {
    let name = path.display();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{name}: cannot read: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{name}: {e}"))?;
    let ctx = format!("{name}");

    let schema = require_str(&doc, "schema", &ctx)?;
    if schema != "mpps.match_profile.v1" {
        return Err(format!("{ctx}: unknown schema {schema:?}"));
    }
    let matcher = require_str(&doc, "matcher", &ctx)?;
    if matcher.is_empty() {
        return Err(format!("{ctx}: empty matcher name"));
    }

    let machine = doc
        .get("machine")
        .ok_or_else(|| format!("{ctx}: missing \"machine\""))?;
    if require_u64(machine, "cpus", &ctx)? == 0 {
        return Err(format!("{ctx}: machine.cpus must be at least 1"));
    }
    if require_u64(machine, "workers", &ctx)? == 0 {
        return Err(format!("{ctx}: machine.workers must be at least 1"));
    }

    let totals = doc
        .get("totals")
        .ok_or_else(|| format!("{ctx}: missing \"totals\""))?;
    check_u64_fields(
        totals,
        &[
            "activations",
            "left_probes",
            "right_probes",
            "prefilter_hits",
            "match_ns",
        ],
        &format!("{ctx}: totals"),
    )?;
    let total_acts = require_u64(totals, "activations", &ctx)?;

    let hot_nodes = doc
        .get("hot_nodes")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"hot_nodes\" array"))?;
    let mut prev = u64::MAX;
    for (i, entry) in hot_nodes.iter().enumerate() {
        let ectx = format!("{ctx}: hot_nodes[{i}]");
        check_u64_fields(
            entry,
            &[
                "node",
                "activations",
                "left_probes",
                "right_probes",
                "prefilter_hits",
                "match_ns",
            ],
            &ectx,
        )?;
        let acts = require_u64(entry, "activations", &ectx)?;
        if acts > prev {
            return Err(format!("{ectx}: not sorted by activations"));
        }
        if acts > total_acts {
            return Err(format!("{ectx}: node exceeds total activations"));
        }
        prev = acts;
    }
    let hot_rules = doc
        .get("hot_rules")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"hot_rules\" array"))?;
    for (i, entry) in hot_rules.iter().enumerate() {
        check_u64_fields(
            entry,
            &[
                "rule",
                "activations",
                "retractions",
                "alpha_inserts",
                "seed_joins",
                "match_ns",
            ],
            &format!("{ctx}: hot_rules[{i}]"),
        )?;
    }

    let skew = doc
        .get("bucket_skew")
        .ok_or_else(|| format!("{ctx}: missing \"bucket_skew\""))?;
    if !matches!(skew, Value::Null) {
        let sctx = format!("{ctx}: bucket_skew");
        let hit = require_u64(skew, "buckets_hit", &sctx)?;
        let max = require_u64(skew, "max_activations", &sctx)?;
        let mean = require_f64(skew, "mean_activations", &sctx)?;
        let factor = require_f64(skew, "skew_factor", &sctx)?;
        if hit == 0 {
            return Err(format!("{sctx}: present but no buckets hit"));
        }
        if (max as f64) < mean {
            return Err(format!("{sctx}: max {max} below mean {mean}"));
        }
        if mean > 0.0 && (factor - max as f64 / mean).abs() > 0.01 {
            return Err(format!(
                "{sctx}: skew_factor {factor} is not max/mean ({max}/{mean})"
            ));
        }
    }

    let arena = doc
        .get("arena")
        .ok_or_else(|| format!("{ctx}: missing \"arena\""))?;
    check_u64_fields(
        arena,
        &["allocs", "frees", "live", "high_water", "free_high_water"],
        &format!("{ctx}: arena"),
    )?;

    let phases = doc
        .get("phases")
        .ok_or_else(|| format!("{ctx}: missing \"phases\""))?;
    let cycles = require_u64(phases, "cycles", &format!("{ctx}: phases"))?;
    for series in ["wall_ns", "work_ns", "wait_ns", "drain_activations"] {
        let v = phases
            .get(series)
            .ok_or_else(|| format!("{ctx}: phases missing {series:?}"))?;
        check_profile_hist(v, &format!("{ctx}: phases.{series}"))?;
    }

    let workers = doc
        .get("workers")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"workers\" array"))?;
    for (i, lane) in workers.iter().enumerate() {
        check_u64_fields(
            lane,
            &["worker", "work_ns", "wait_ns", "forwarded_in"],
            &format!("{ctx}: workers[{i}]"),
        )?;
    }

    Ok(format!(
        "profile ok: matcher {matcher:?}, {total_acts} activations, {cycles} cycles, \
         {} hot nodes, {} worker lanes",
        hot_nodes.len(),
        workers.len()
    ))
}

/// One measured tier of the `server_throughput` bench.
#[derive(Clone, Copy, Debug)]
pub struct ServerTierRecord {
    /// Concurrent sessions admitted.
    pub sessions: u64,
    /// Requests answered (creations + ingestion batches).
    pub replies: u64,
    /// Requests that came back `Failed`.
    pub failures: u64,
    /// Submissions rejected with `Overloaded` (each was retried).
    pub overloads: u64,
    /// Total WME changes the matchers processed.
    pub wme_changes: u64,
    /// Sustained WME changes per second over the run.
    pub changes_per_sec: f64,
    /// Sustained MRA cycles per second over the run.
    pub cycles_per_sec: f64,
    /// Wall-clock of the whole tier, seconds.
    pub elapsed_s: f64,
    /// p50 of per-cycle latency on the workers, nanoseconds.
    pub p50_cycle_ns: u64,
    /// p95 of per-cycle latency on the workers, nanoseconds.
    pub p95_cycle_ns: u64,
    /// p95 of per-batch latency on the workers, nanoseconds.
    pub p95_batch_ns: u64,
    /// Per-worker resident-session budget the tier ran under (`None` =
    /// everything stayed in memory; rendered as JSON `null`).
    pub resident_budget: Option<u64>,
    /// Sessions snapshotted to disk by the eviction sweep.
    pub evictions: u64,
    /// Evicted sessions transparently faulted back in.
    pub faultins: u64,
    /// Sessions live-migrated between workers.
    pub migrations: u64,
}

/// Identity and load-shape header of a server manifest.
#[derive(Clone, Debug)]
pub struct ServerManifestInfo {
    /// Git commit the numbers were measured at.
    pub commit: String,
    /// Worker threads serving the sessions.
    pub workers: u64,
    /// Bounded per-worker submission-queue capacity.
    pub queue_capacity: u64,
    /// Ingestion rounds per session.
    pub rounds: u64,
    /// Request WMEs per round per session.
    pub wmes_per_round: u64,
}

/// Render `BENCH_server.json` — the manifest [`check_server_manifest`]
/// validates. Kept next to the checker so the writer and the schema
/// cannot drift apart.
pub fn render_server_manifest(info: &ServerManifestInfo, tiers: &[ServerTierRecord]) -> String {
    let cpus = mpps_telemetry::available_cpus();
    let rows = tiers
        .iter()
        .map(|t| {
            format!(
                "    {{\"sessions\": {}, \"replies\": {}, \"failures\": {}, \"overloads\": {}, \
                 \"wme_changes\": {}, \"changes_per_sec\": {:.1}, \"cycles_per_sec\": {:.1}, \
                 \"elapsed_s\": {:.3}, \"p50_cycle_ns\": {}, \"p95_cycle_ns\": {}, \
                 \"p95_batch_ns\": {}, \"resident_budget\": {}, \"evictions\": {}, \
                 \"faultins\": {}, \"migrations\": {}}}",
                t.sessions,
                t.replies,
                t.failures,
                t.overloads,
                t.wme_changes,
                t.changes_per_sec,
                t.cycles_per_sec,
                t.elapsed_s,
                t.p50_cycle_ns,
                t.p95_cycle_ns,
                t.p95_batch_ns,
                t.resident_budget
                    .map_or("null".to_owned(), |b| b.to_string()),
                t.evictions,
                t.faultins,
                t.migrations
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"server\",\n  \"commit\": \"{}\",\n  \"machine\": {{\"os\": \"{}\", \
         \"arch\": \"{}\", \"cpus\": {}}},\n  \"config\": {{\"workers\": {}, \
         \"queue_capacity\": {}, \"rounds\": {}, \"wmes_per_round\": {}}},\n  \"tiers\": [\n{}\n  ]\n}}\n",
        info.commit,
        std::env::consts::OS,
        std::env::consts::ARCH,
        cpus,
        info.workers,
        info.queue_capacity,
        info.rounds,
        info.wmes_per_round,
        rows
    )
}

/// Validate a `BENCH_server.json` manifest written by the
/// `server_throughput` bench binary: identity fields, machine info, the
/// load shape, and per-tier throughput records with internally
/// consistent latency percentiles. Returns a one-line description of
/// what was validated.
pub fn check_server_manifest(path: &Path) -> Result<String, String> {
    let name = path.display();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{name}: cannot read: {e}"))?;
    let doc = parse(&text).map_err(|e| format!("{name}: {e}"))?;
    let ctx = format!("{name}");

    let bench = require_str(&doc, "bench", &ctx)?;
    if bench != "server" {
        return Err(format!("{ctx}: unexpected bench {bench:?}"));
    }
    require_str(&doc, "commit", &ctx)?;
    let machine = doc
        .get("machine")
        .ok_or_else(|| format!("{ctx}: missing \"machine\""))?;
    require_str(machine, "os", &ctx)?;
    require_str(machine, "arch", &ctx)?;
    if require_u64(machine, "cpus", &ctx)? == 0 {
        return Err(format!("{ctx}: machine.cpus must be at least 1"));
    }
    let config = doc
        .get("config")
        .ok_or_else(|| format!("{ctx}: missing \"config\""))?;
    check_u64_fields(
        config,
        &["workers", "queue_capacity", "rounds", "wmes_per_round"],
        &format!("{ctx}: config"),
    )?;
    if require_u64(config, "workers", &ctx)? == 0 {
        return Err(format!("{ctx}: config.workers must be at least 1"));
    }

    let tiers = doc
        .get("tiers")
        .and_then(Value::as_array)
        .ok_or_else(|| format!("{ctx}: missing \"tiers\" array"))?;
    if tiers.is_empty() {
        return Err(format!("{ctx}: no tiers measured"));
    }
    let mut prev_sessions = 0u64;
    let mut peak_changes_per_sec = 0f64;
    for (i, tier) in tiers.iter().enumerate() {
        let tctx = format!("{ctx}: tiers[{i}]");
        check_u64_fields(
            tier,
            &[
                "sessions",
                "replies",
                "failures",
                "overloads",
                "wme_changes",
                "p50_cycle_ns",
                "p95_cycle_ns",
                "evictions",
                "faultins",
                "migrations",
            ],
            &tctx,
        )?;
        // `resident_budget` is null (everything resident) or a positive
        // per-worker session count.
        match tier.get("resident_budget") {
            Some(Value::Null) => {}
            Some(v) => match v.as_u64() {
                Some(0) => return Err(format!("{tctx}: resident_budget must be at least 1")),
                Some(_) => {}
                None => return Err(format!("{tctx}: resident_budget must be null or integer")),
            },
            None => return Err(format!("{tctx}: missing \"resident_budget\"")),
        }
        let evictions = require_u64(tier, "evictions", &tctx)?;
        let faultins = require_u64(tier, "faultins", &tctx)?;
        if faultins > 0 && evictions == 0 {
            return Err(format!(
                "{tctx}: {faultins} fault-ins but no evictions — nothing was on disk"
            ));
        }
        let sessions = require_u64(tier, "sessions", &tctx)?;
        if sessions <= prev_sessions {
            return Err(format!("{tctx}: tiers must grow (sessions {sessions})"));
        }
        prev_sessions = sessions;
        if require_u64(tier, "failures", &tctx)? != 0 {
            return Err(format!("{tctx}: run had failures"));
        }
        let changes_per_sec = require_f64(tier, "changes_per_sec", &tctx)?;
        if changes_per_sec <= 0.0 {
            return Err(format!("{tctx}: no sustained throughput"));
        }
        peak_changes_per_sec = peak_changes_per_sec.max(changes_per_sec);
        require_f64(tier, "cycles_per_sec", &tctx)?;
        require_f64(tier, "elapsed_s", &tctx)?;
        let p50 = require_u64(tier, "p50_cycle_ns", &tctx)?;
        let p95 = require_u64(tier, "p95_cycle_ns", &tctx)?;
        if p95 < p50 {
            return Err(format!("{tctx}: p95 {p95} below p50 {p50}"));
        }
    }
    Ok(format!(
        "server manifest ok: {} tiers up to {prev_sessions} sessions, \
         peak {peak_changes_per_sec:.0} WME changes/s",
        tiers.len()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_telemetry::{Recorder, Track};

    fn sample_recorder() -> TraceRecorder {
        let mut rec = TraceRecorder::new();
        rec.name_process(2, "sweep workers");
        rec.name_track(Track::worker(0), "worker 0");
        rec.span(Track::worker(0), "point", 100, 250);
        rec.counter(Track::worker(0), "queue-depth", 150, 3);
        rec.sample("task-wall-ns", 150);
        rec
    }

    fn tmp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mpps-bench-tel-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn written_dir_passes_the_check() {
        let dir = tmp_dir("ok");
        let written = write_dir(&dir, &sample_recorder()).unwrap();
        assert_eq!(written.len(), FILES.len());
        let report = check_dir(&dir).unwrap();
        assert!(report.contains("1 spans"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_fails() {
        let dir = tmp_dir("missing");
        write_dir(&dir, &sample_recorder()).unwrap();
        std::fs::remove_file(dir.join("summary.json")).unwrap();
        let err = check_dir(&dir).unwrap_err();
        assert!(err.contains("summary.json"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_trace_fails() {
        let dir = tmp_dir("corrupt");
        write_dir(&dir, &sample_recorder()).unwrap();
        std::fs::write(
            dir.join("trace.json"),
            "{\"traceEvents\": [{\"ph\": \"X\"}]}",
        )
        .unwrap();
        let err = check_dir(&dir).unwrap_err();
        assert!(err.contains("event 0"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn span_count_mismatch_fails() {
        let dir = tmp_dir("mismatch");
        write_dir(&dir, &sample_recorder()).unwrap();
        std::fs::write(dir.join("events.jsonl"), "").unwrap();
        let err = check_dir(&dir).unwrap_err();
        assert!(err.contains("span count mismatch"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn empty_recorder_round_trips() {
        let dir = tmp_dir("empty");
        write_dir(&dir, &TraceRecorder::new()).unwrap();
        check_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// End-to-end: a real profiled threaded run renders a profile that
    /// passes the schema check.
    #[test]
    fn threaded_profile_passes_the_check() {
        use mpps_ops::{parse_program, Matcher, Wme, WmeChange, WmeId};

        let prog = parse_program("(p j (a ^v <x>) (b ^v <x>) --> (remove 1))").unwrap();
        let mut m = mpps_core::ThreadedMatcher::from_program_profiled(&prog, 2).unwrap();
        let mut changes = Vec::new();
        for v in 0..16i64 {
            changes.push(WmeChange::add(
                WmeId(v as u64 * 2 + 1),
                Wme::new("a", &[("v", v.into())]),
            ));
            changes.push(WmeChange::add(
                WmeId(v as u64 * 2 + 2),
                Wme::new("b", &[("v", v.into())]),
            ));
        }
        m.process(&changes);
        let reg = m.profile_snapshot().unwrap();
        let text = mpps_core::render_match_profile("threaded", m.worker_count(), &reg);

        let dir = tmp_dir("profile");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("match_profile.json");
        std::fs::write(&path, &text).unwrap();
        let report = check_profile(&path).unwrap();
        assert!(report.contains("matcher \"threaded\""), "{report}");
        assert!(report.contains("2 worker lanes"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An empty (unprofiled) registry still renders a schema-valid
    /// profile — null skew, empty hot lists.
    #[test]
    fn empty_profile_passes_the_check() {
        let text =
            mpps_core::render_match_profile("rete", 1, &mpps_telemetry::MetricsRegistry::new());
        let dir = tmp_dir("profile-empty");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("match_profile.json");
        std::fs::write(&path, &text).unwrap();
        check_profile(&path).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    fn sample_server_manifest() -> String {
        let info = ServerManifestInfo {
            commit: "deadbeef".into(),
            workers: 4,
            queue_capacity: 64,
            rounds: 2,
            wmes_per_round: 2,
        };
        let tiers = [
            ServerTierRecord {
                sessions: 1000,
                replies: 3000,
                failures: 0,
                overloads: 12,
                wme_changes: 50_000,
                changes_per_sec: 1.5e6,
                cycles_per_sec: 4.0e5,
                elapsed_s: 0.033,
                p50_cycle_ns: 900,
                p95_cycle_ns: 2100,
                p95_batch_ns: 14_000,
                resident_budget: None,
                evictions: 0,
                faultins: 0,
                migrations: 0,
            },
            ServerTierRecord {
                sessions: 10_000,
                replies: 30_000,
                failures: 0,
                overloads: 310,
                wme_changes: 500_000,
                changes_per_sec: 1.4e6,
                cycles_per_sec: 3.8e5,
                elapsed_s: 0.36,
                p50_cycle_ns: 950,
                p95_cycle_ns: 2500,
                p95_batch_ns: 16_000,
                resident_budget: Some(2048),
                evictions: 7936,
                faultins: 5120,
                migrations: 64,
            },
        ];
        render_server_manifest(&info, &tiers)
    }

    /// The writer's output passes the checker — the two cannot drift.
    #[test]
    fn server_manifest_round_trips_the_check() {
        let dir = tmp_dir("server-ok");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_server.json");
        std::fs::write(&path, sample_server_manifest()).unwrap();
        let report = check_server_manifest(&path).unwrap();
        assert!(report.contains("2 tiers up to 10000 sessions"), "{report}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_server_manifest_fails_the_check() {
        let dir = tmp_dir("server-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_server.json");
        for (mangle, expect) in [
            (
                ("\"bench\": \"server\"", "\"bench\": \"matchkernel\""),
                "bench",
            ),
            (("\"failures\": 0,", "\"failures\": 7,"), "failures"),
            (
                ("\"p95_cycle_ns\": 2100", "\"p95_cycle_ns\": 10"),
                "below p50",
            ),
            (("\"sessions\": 10000", "\"sessions\": 1000"), "must grow"),
            (
                ("\"resident_budget\": 2048", "\"resident_budget\": 0"),
                "resident_budget",
            ),
            (("\"evictions\": 7936", "\"evictions\": 0"), "no evictions"),
        ] {
            let text = sample_server_manifest().replacen(mangle.0, mangle.1, 1);
            std::fs::write(&path, text).unwrap();
            let err = check_server_manifest(&path).unwrap_err();
            assert!(err.contains(expect), "{mangle:?}: {err}");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_profile_fails_the_check() {
        let dir = tmp_dir("profile-bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("match_profile.json");

        std::fs::write(&path, "{\"schema\": \"something-else\"}").unwrap();
        let err = check_profile(&path).unwrap_err();
        assert!(err.contains("schema"), "{err}");

        // Valid schema tag but inconsistent skew factor.
        let text =
            mpps_core::render_match_profile("threaded", 2, &mpps_telemetry::MetricsRegistry::new())
                .replace(
                    "\"bucket_skew\": null",
                    "\"bucket_skew\": {\"buckets_hit\": 2, \"max_activations\": 4, \
             \"mean_activations\": 2.0, \"skew_factor\": 9.0}",
                );
        std::fs::write(&path, text).unwrap();
        let err = check_profile(&path).unwrap_err();
        assert!(err.contains("skew_factor"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
