//! One criterion benchmark per table/figure of the paper's evaluation:
//! times the full regeneration of each artifact on the calibrated
//! sections. `cargo bench -p mpps-bench --bench figures`.

use criterion::{criterion_group, criterion_main, Criterion};
use mpps_bench::experiments as exp;
use std::hint::black_box;

fn bench_fig5_1(c: &mut Criterion) {
    c.bench_function("fig5_1_speedups_zero_overhead", |b| {
        b.iter(|| black_box(exp::fig5_1()))
    });
}

fn bench_table5_1(c: &mut Criterion) {
    c.bench_function("table5_1_overhead_settings", |b| {
        b.iter(|| black_box(exp::table5_1()))
    });
}

fn bench_fig5_2(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_2");
    g.sample_size(10);
    g.bench_function("overhead_sweep_all_sections", |b| {
        b.iter(|| black_box(exp::fig5_2()))
    });
    g.finish();
}

fn bench_table5_2(c: &mut Criterion) {
    c.bench_function("table5_2_activation_mix", |b| {
        b.iter(|| black_box(exp::table5_2()))
    });
}

fn bench_fig5_4(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_4");
    g.sample_size(20);
    g.bench_function("weaver_unsharing", |b| b.iter(|| black_box(exp::fig5_4())));
    g.finish();
}

fn bench_fig5_5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_5");
    g.sample_size(20);
    g.bench_function("rubik_load_distribution", |b| {
        b.iter(|| black_box(exp::fig5_5()))
    });
    g.finish();
}

fn bench_fig5_6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_6");
    g.sample_size(10);
    g.bench_function("tourney_copy_and_constraint", |b| {
        b.iter(|| black_box(exp::fig5_6()))
    });
    g.finish();
}

fn bench_network_idle(c: &mut Criterion) {
    let mut g = c.benchmark_group("network_idle");
    g.sample_size(10);
    g.bench_function("section_5_1_idle_fractions", |b| {
        b.iter(|| black_box(exp::network_idle()))
    });
    g.finish();
}

fn bench_greedy(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy");
    g.sample_size(10);
    g.bench_function("section_5_2_2_greedy_gains", |b| {
        b.iter(|| black_box(exp::greedy_gains()))
    });
    g.finish();
}

fn bench_probmodel(c: &mut Criterion) {
    c.bench_function("probmodel_estimates", |b| {
        b.iter(|| {
            black_box(mpps_analysis::estimate_max_load(128, 16, 1, 500, 7));
            black_box(mpps_analysis::prob_perfectly_even(128, 16));
        })
    });
}

fn bench_continuum(c: &mut Criterion) {
    let mut g = c.benchmark_group("continuum");
    g.sample_size(10);
    g.bench_function("section_6_endpoints", |b| {
        b.iter(|| black_box(exp::continuum()))
    });
    g.finish();
}

criterion_group!(
    figures,
    bench_fig5_1,
    bench_table5_1,
    bench_fig5_2,
    bench_table5_2,
    bench_fig5_4,
    bench_fig5_5,
    bench_fig5_6,
    bench_network_idle,
    bench_greedy,
    bench_probmodel,
    bench_continuum,
);
criterion_main!(figures);
