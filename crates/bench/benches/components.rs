//! Component micro-benchmarks and the DESIGN.md ablations:
//!
//! * hashed vs linear token memories (the paper's ×10 comparison claim is
//!   the reason hashed memories are "the data-structure of choice");
//! * multiple-granularity root handling (broadcast + duplicated constant
//!   tests) vs central routing;
//! * the §3.1 processor-pair variant vs the §3.2 combined variant;
//! * the sequential Rete engine vs the threaded message-passing executor;
//! * the discrete-event machine's raw event throughput.
//!
//! `cargo bench -p mpps-bench --bench components`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpps_bench::experiments::SEED;
use mpps_core::{
    simulate, MappingConfig, MappingVariant, OverheadSetting, Partition, RootDistribution,
    ThreadedMatcher,
};
use mpps_ops::{Matcher, Wme, WmeChange, WmeId};
use mpps_rete::{EngineConfig, ReteMatcher, ReteNetwork};
use mpps_workloads::{synth, tourney};
use std::hint::black_box;

/// WM changes that trigger a sizable cross-product match.
fn cross_changes(n: usize) -> Vec<WmeChange> {
    let mut changes = Vec::new();
    for i in 0..n {
        changes.push(WmeChange::add(
            WmeId(1 + i as u64),
            Wme::new("team", &[("div", "east".into()), ("id", (i as i64).into())]),
        ));
        changes.push(WmeChange::add(
            WmeId(1000 + i as u64),
            Wme::new(
                "team",
                &[("div", "west".into()), ("id", (100 + i as i64).into())],
            ),
        ));
    }
    changes.push(WmeChange::add(
        WmeId(5000),
        Wme::new("round", &[("n", 1.into())]),
    ));
    changes
}

fn bench_memory_ablation(c: &mut Criterion) {
    // table_size = 1 degenerates every hashed memory into a single linear
    // list — the pre-hashing Rete. The paper's "factor of 10" claim is
    // about joins whose equality variable discriminates: use a join with
    // many distinct values (a cross product would hash to one bucket
    // either way — that is the Tourney pathology, not this ablation).
    use mpps_ops::parse_program;
    let program = parse_program("(p link (a ^v <x>) (b ^v <x>) --> (remove 1))").unwrap();
    let network = ReteNetwork::compile(&program).unwrap();
    let changes: Vec<WmeChange> = (0..300i64)
        .flat_map(|i| {
            [
                WmeChange::add(WmeId(1 + 2 * i as u64), Wme::new("a", &[("v", i.into())])),
                WmeChange::add(WmeId(2 + 2 * i as u64), Wme::new("b", &[("v", i.into())])),
            ]
        })
        .collect();
    let mut g = c.benchmark_group("memory_ablation");
    for (label, table_size) in [("hashed_2048", 2048u64), ("linear_1", 1u64)] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut m = ReteMatcher::new(
                    network.clone(),
                    EngineConfig {
                        table_size,
                        record_trace: false,
                    },
                );
                m.process(black_box(&changes));
                black_box(m.conflict_set().len())
            })
        });
    }
    g.finish();
}

fn bench_granularity_ablation(c: &mut Criterion) {
    let trace = synth::rubik(SEED);
    let p = 16;
    let partition = Partition::round_robin(trace.table_size, p);
    let mut g = c.benchmark_group("granularity_ablation");
    g.sample_size(20);
    for (label, roots) in [
        ("broadcast_duplicate", RootDistribution::BroadcastDuplicate),
        ("central_route", RootDistribution::CentralRoute),
    ] {
        let config = MappingConfig {
            roots,
            ..MappingConfig::standard(p, OverheadSetting::table_5_1()[2])
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(simulate(&trace, &config, &partition)).total)
        });
    }
    g.finish();
}

fn bench_pairs_ablation(c: &mut Criterion) {
    let trace = synth::weaver(SEED);
    let p = 8;
    let partition = Partition::round_robin(trace.table_size, p);
    let mut g = c.benchmark_group("pairs_ablation");
    for (label, variant) in [
        ("combined", MappingVariant::Combined),
        ("processor_pairs", MappingVariant::ProcessorPairs),
    ] {
        let config = MappingConfig {
            variant,
            ..MappingConfig::standard(p, OverheadSetting::table_5_1()[1])
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(simulate(&trace, &config, &partition)).total)
        });
    }
    g.finish();
}

/// Replay-capture helper: run `program` under the interpreter and return
/// the per-cycle WM change batches it handed the matcher.
fn section_batches(
    program: &mpps_ops::Program,
    initial: Vec<Wme>,
    cycles: usize,
) -> Vec<Vec<WmeChange>> {
    use mpps_ops::{Interpreter, Strategy};
    let m = ReteMatcher::from_program(program).unwrap();
    let mut interp = Interpreter::with_matcher(program.clone(), Strategy::Lex, m);
    for w in initial {
        interp.add_wme(w);
    }
    interp.run(cycles).unwrap();
    interp.change_log().to_vec()
}

fn bench_sequential_vs_threaded(c: &mut Criterion) {
    use mpps_workloads::{rubik, weaver};
    // The three characteristic sections pull in different directions:
    // Tourney's cross product concentrates on few buckets (little
    // parallelism to win), Rubik is modify-heavy with wide fan-out, and
    // Weaver sits in between.
    let sections: Vec<(&str, mpps_ops::Program, Vec<Vec<WmeChange>>)> = vec![
        (
            "rubik",
            rubik::program(),
            section_batches(
                &rubik::program(),
                rubik::initial(&rubik::alternating_moves(2)),
                10,
            ),
        ),
        ("tourney", tourney::program(), vec![cross_changes(20)]),
        (
            "weaver",
            weaver::program(),
            section_batches(&weaver::program(), weaver::initial(4, 4), 12),
        ),
    ];
    let mut g = c.benchmark_group("match_executors");
    g.sample_size(20);
    for (label, program, batches) in &sections {
        g.bench_function(format!("{label}_sequential"), |b| {
            b.iter(|| {
                let mut m = ReteMatcher::from_program(program).unwrap();
                for batch in batches {
                    m.process(black_box(batch));
                }
                black_box(m.conflict_set().len())
            })
        });
        for workers in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("{label}_threaded"), workers),
                &workers,
                |b, &workers| {
                    b.iter(|| {
                        let mut m = ThreadedMatcher::from_program(program, workers).unwrap();
                        for batch in batches {
                            m.process(black_box(batch));
                        }
                        black_box(m.conflict_set().len())
                    })
                },
            );
        }
    }
    g.finish();
}

fn bench_rete_vs_treat(c: &mut Criterion) {
    // Rete pays beta maintenance on modifies; TREAT deletes for free but
    // re-joins on adds. The modify-heavy cube workload and the add-heavy
    // cross product pull in opposite directions.
    use mpps_ops::TreatMatcher;
    let cube = mpps_workloads::rubik::program_with_observers(20);
    let cube_batches: Vec<Vec<WmeChange>> = {
        // Replay the interpreter's change log so both matchers see the
        // same modify-heavy traffic.
        use mpps_ops::{Interpreter, Strategy};
        let m = ReteMatcher::from_program(&cube).unwrap();
        let mut interp = Interpreter::with_matcher(cube.clone(), Strategy::Lex, m);
        for w in mpps_workloads::rubik::initial(&mpps_workloads::rubik::alternating_moves(4)) {
            interp.add_wme(w);
        }
        interp.run(12).unwrap();
        interp.change_log().to_vec()
    };
    let mut g = c.benchmark_group("rete_vs_treat");
    g.bench_function("rete_modify_heavy", |b| {
        b.iter(|| {
            let mut m = ReteMatcher::from_program(&cube).unwrap();
            for batch in &cube_batches {
                m.process(black_box(batch));
            }
            black_box(m.conflict_set().len())
        })
    });
    g.bench_function("treat_modify_heavy", |b| {
        b.iter(|| {
            let mut m = TreatMatcher::new(&cube);
            for batch in &cube_batches {
                m.process(black_box(batch));
            }
            black_box(m.conflict_set().len())
        })
    });
    let cross = tourney::program();
    g.bench_function("rete_add_heavy", |b| {
        b.iter(|| {
            let mut m = ReteMatcher::from_program(&cross).unwrap();
            m.process(black_box(&cross_changes(16)));
            black_box(m.conflict_set().len())
        })
    });
    g.bench_function("treat_add_heavy", |b| {
        b.iter(|| {
            let mut m = TreatMatcher::new(&cross);
            m.process(black_box(&cross_changes(16)));
            black_box(m.conflict_set().len())
        })
    });
    g.finish();
}

fn bench_machine_throughput(c: &mut Criterion) {
    use mpps_mpcsim::{Ctx, MachineConfig, Node, ProcId, SimTime, Simulator};
    struct Relay(u32);
    impl Node for Relay {
        type Msg = u32;
        fn on_start(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send(1, self.0);
            }
        }
        fn on_message(&mut self, ctx: &mut Ctx<'_, u32>, _f: ProcId, left: u32) {
            ctx.compute(SimTime::from_us(1));
            if left > 0 {
                ctx.send((ctx.me() + 1) % ctx.processors(), left - 1);
            }
        }
    }
    c.bench_function("mpcsim_10k_messages", |b| {
        b.iter(|| {
            let cfg = MachineConfig {
                processors: 8,
                send_overhead: SimTime::from_us(1),
                recv_overhead: SimTime::from_us(1),
                network: mpps_mpcsim::NetworkModel::Constant(SimTime::from_ns(500)),
            };
            let mut sim = Simulator::new(cfg, (0..8).map(|_| Relay(10_000)).collect());
            black_box(sim.run().makespan)
        })
    });
}

fn bench_simulate_hot_loop(c: &mut Criterion) {
    // The sweep engine's per-point cost: `simulate` allocates a fresh
    // scratch per call; `simulate_in` reuses one across points the way a
    // `SweepPlan` worker does. The gap is the remaining allocation cost —
    // the per-cycle trace-data clones of the pre-refactor executor no
    // longer exist on either path.
    use mpps_core::{simulate_in, SimScratch};
    let trace = synth::rubik(SEED);
    let p = 16;
    let partition = Partition::round_robin(trace.table_size, p);
    let config = MappingConfig::standard(p, OverheadSetting::table_5_1()[1]);
    let mut g = c.benchmark_group("simulate_hot_loop");
    g.sample_size(20);
    g.bench_function("fresh_scratch", |b| {
        b.iter(|| black_box(simulate(&trace, &config, &partition)).total)
    });
    g.bench_function("reused_scratch", |b| {
        let mut scratch = SimScratch::new();
        b.iter(|| black_box(simulate_in(&mut scratch, &trace, &config, &partition)).total)
    });
    g.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    // The Recorder hook's cost. `null_recorder` is the default path —
    // the `NullRecorder` calls must monomorphize to nothing, so it has
    // to stay within noise of `simulate_hot_loop/reused_scratch`;
    // `trace_recorder` prices the opt-in enabled path (span/counter
    // pushes and histogram updates per simulated event).
    use mpps_core::{simulate_in, simulate_recorded, SimScratch};
    use mpps_telemetry::TraceRecorder;
    let trace = synth::rubik(SEED);
    let p = 16;
    let partition = Partition::round_robin(trace.table_size, p);
    let config = MappingConfig::standard(p, OverheadSetting::table_5_1()[1]);
    let mut g = c.benchmark_group("telemetry_overhead");
    g.sample_size(20);
    g.bench_function("null_recorder", |b| {
        let mut scratch = SimScratch::new();
        b.iter(|| black_box(simulate_in(&mut scratch, &trace, &config, &partition)).total)
    });
    g.bench_function("trace_recorder", |b| {
        let mut scratch = SimScratch::new();
        b.iter(|| {
            let mut rec = TraceRecorder::new();
            black_box(simulate_recorded(
                &mut scratch,
                &trace,
                &config,
                &partition,
                &mut rec,
            ))
            .total
        })
    });
    g.finish();
}

fn bench_sweep_plan(c: &mut Criterion) {
    // The figure driver's fan-out: one section's full overhead sweep as a
    // single plan, serial vs a worker pool.
    use mpps_core::sweep::{overhead_sweep_jobs, PartitionStrategy};
    let trace = synth::rubik(SEED);
    let procs = [1usize, 2, 4, 8, 16, 32];
    let rows = OverheadSetting::table_5_1();
    let mut g = c.benchmark_group("sweep_plan");
    g.sample_size(10);
    for jobs in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("overhead_sweep", jobs),
            &jobs,
            |b, &jobs| {
                b.iter(|| {
                    black_box(overhead_sweep_jobs(
                        &trace,
                        &procs,
                        &rows,
                        PartitionStrategy::RoundRobin,
                        jobs,
                    ))
                })
            },
        );
    }
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_generation");
    g.bench_function("synth_rubik", |b| b.iter(|| black_box(synth::rubik(SEED))));
    g.bench_function("synth_tourney", |b| {
        b.iter(|| black_box(synth::tourney(SEED)))
    });
    g.bench_function("captured_rubik_ruleset", |b| {
        b.iter(|| black_box(mpps_workloads::rubik::section(2, 256).trace.len()))
    });
    g.finish();
}

criterion_group!(
    components,
    bench_memory_ablation,
    bench_rete_vs_treat,
    bench_granularity_ablation,
    bench_pairs_ablation,
    bench_sequential_vs_threaded,
    bench_machine_throughput,
    bench_simulate_hot_loop,
    bench_telemetry_overhead,
    bench_sweep_plan,
    bench_trace_generation,
);
criterion_main!(components);
