//! End-to-end serving: many sessions multiplexed over the pool, session
//! isolation, snapshot migration onto a fresh server, metrics accounting,
//! and both `mpps serve` drivers.

use mpps_server::{
    run_script, run_synthetic, Reply, Server, ServerConfig, ServerError, SessionId, Sharding,
    SyntheticSpec,
};
use mpps_workloads::serve;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

/// Submit with the standard client discipline: on `Overloaded`, drain one
/// reply and retry.
fn submit_retrying(server: &mut Server, id: SessionId, wmes: Vec<mpps_ops::Wme>) {
    loop {
        match server.submit(id, wmes.clone()) {
            Ok(_) => return,
            Err(ServerError::Overloaded { .. }) => {
                server.recv_timeout(TIMEOUT).unwrap();
            }
            Err(other) => panic!("submit failed: {other}"),
        }
    }
}

fn config(workers: usize, sharding: Sharding) -> ServerConfig {
    ServerConfig {
        workers,
        queue_capacity: 128,
        shards: 64,
        sharding,
        ..ServerConfig::default()
    }
}

/// Sessions are independent: interleaved rounds against many sessions
/// leave each with exactly its own `stats` count, regardless of sharding.
#[test]
fn sessions_are_isolated_across_workers() {
    for sharding in [Sharding::RoundRobin, Sharding::Random(7), Sharding::Greedy] {
        let mut server = Server::new(serve::program(), config(3, sharding)).unwrap();
        let mut ids = Vec::new();
        for _ in 0..24 {
            ids.push(server.create_session(serve::initial()).unwrap().0);
        }
        // Session k gets k+1 rounds, interleaved across all sessions.
        for round in 0..ids.len() as u64 {
            for (k, &id) in ids.iter().enumerate() {
                if round <= k as u64 {
                    submit_retrying(&mut server, id, serve::round(id.0, round, 2));
                }
            }
        }
        server.drain(TIMEOUT, |_| {}).unwrap();
        for (k, &id) in ids.iter().enumerate() {
            let request = server.snapshot(id).unwrap();
            let Reply::SnapshotBytes { bytes, .. } = server.wait_for(request, TIMEOUT).unwrap()
            else {
                panic!("expected snapshot bytes");
            };
            let wm = mpps_server::Session::decode_state(&bytes, server.fingerprint()).unwrap();
            assert_eq!(wm.len(), 1, "{sharding:?}: session {k} WM not settled");
            let done = wm[0].1.get(mpps_ops::intern("done"));
            // k+1 rounds × 2 requests each.
            assert_eq!(
                done,
                Some(mpps_ops::Value::Int(2 * (k as i64 + 1))),
                "{sharding:?}: session {k} has wrong stats"
            );
        }
        // Every admitted session landed on some worker, and with more
        // than one worker the pool actually multiplexed.
        let metrics = server.metrics(TIMEOUT).unwrap();
        assert_eq!(metrics.counter_total("serve.admitted"), ids.len() as u64);
        let spread = metrics.counter("serve.admitted").unwrap().len();
        assert!(spread > 1, "{sharding:?}: all sessions on one worker");
    }
}

/// A session snapshotted on one server continues identically on a fresh
/// server: the remaining rounds produce byte-identical final snapshots.
#[test]
fn snapshot_migrates_to_fresh_server() {
    let mut origin = Server::new(serve::program(), config(2, Sharding::RoundRobin)).unwrap();
    let (id, _) = origin.create_session(serve::initial()).unwrap();
    for round in 0..2 {
        origin.submit(id, serve::round(id.0, round, 3)).unwrap();
    }
    origin.drain(TIMEOUT, |_| {}).unwrap();
    let request = origin.snapshot(id).unwrap();
    let Reply::SnapshotBytes { bytes, .. } = origin.wait_for(request, TIMEOUT).unwrap() else {
        panic!("expected snapshot bytes");
    };

    // Restore onto a brand-new server (fresh compile, fresh workers).
    let mut fresh = Server::new(serve::program(), config(2, Sharding::Random(3))).unwrap();
    let (restored, request) = fresh.restore(bytes).unwrap();
    assert!(matches!(
        fresh.wait_for(request, TIMEOUT).unwrap(),
        Reply::Ready { .. }
    ));

    // Continue both sides with the same remaining rounds. The restored
    // session keeps the original's session id inside its WME stream only
    // through time tags, so drive both with the *original* id's WME
    // content to keep inputs identical.
    for round in 2..4 {
        origin.submit(id, serve::round(id.0, round, 3)).unwrap();
        fresh
            .submit(restored, serve::round(id.0, round, 3))
            .unwrap();
    }
    origin.drain(TIMEOUT, |_| {}).unwrap();
    fresh.drain(TIMEOUT, |_| {}).unwrap();

    let r1 = origin.snapshot(id).unwrap();
    let Reply::SnapshotBytes { bytes: b1, .. } = origin.wait_for(r1, TIMEOUT).unwrap() else {
        panic!()
    };
    let r2 = fresh.snapshot(restored).unwrap();
    let Reply::SnapshotBytes { bytes: b2, .. } = fresh.wait_for(r2, TIMEOUT).unwrap() else {
        panic!()
    };
    assert_eq!(b1, b2, "continuations diverged after migration");
}

/// Restoring under the wrong program is refused, not silently wrong.
#[test]
fn restore_rejects_foreign_programs() {
    let mut origin = Server::new(serve::program(), config(1, Sharding::RoundRobin)).unwrap();
    let (id, _) = origin.create_session(serve::initial()).unwrap();
    origin.drain(TIMEOUT, |_| {}).unwrap();
    let request = origin.snapshot(id).unwrap();
    let Reply::SnapshotBytes { bytes, .. } = origin.wait_for(request, TIMEOUT).unwrap() else {
        panic!()
    };
    let other = mpps_ops::parse_program("(p nop (never) --> (halt))").unwrap();
    let mut wrong = Server::new(other, config(1, Sharding::RoundRobin)).unwrap();
    let (_, request) = wrong.restore(bytes).unwrap();
    match wrong.wait_for(request, TIMEOUT).unwrap() {
        Reply::Failed { error, .. } => {
            assert!(error.contains("different program"), "wrong error: {error}")
        }
        other => panic!("expected Failed, got {other:?}"),
    }
}

#[test]
fn synthetic_driver_reports_sane_numbers() {
    let spec = SyntheticSpec {
        sessions: 40,
        rounds: 2,
        wmes_per_round: 2,
        migrate: false,
    };
    let report = run_synthetic(config(2, Sharding::RoundRobin), &spec).unwrap();
    assert_eq!(report.sessions, 40);
    assert_eq!(report.failures, 0);
    // 40 creations + 40 × 2 ingestion rounds.
    assert_eq!(report.replies, 40 + 80);
    // Each ingestion batch: 2 requests × 3 firings.
    assert_eq!(report.fired, 80 * 6);
    assert!(report.wme_changes > 0);
    assert!(report.changes_per_sec > 0.0);
    assert!(report.p95_cycle_ns >= report.p50_cycle_ns);
    assert_eq!(report.worker_requests.iter().sum::<u64>(), 120);
}

#[test]
fn script_driver_round_trips_a_session() {
    let script = r#"
        # triage session: snapshot mid-stream, restore, replay the tail
        session a
        make a (stats ^done 0)
        make a (request ^id 1 ^kind alert)
        snapshot a
        make a (request ^id 2 ^kind order)
        restore b a
        make b (request ^id 2 ^kind order)
        destroy a
    "#;
    let report = run_script(serve::program(), script, config(2, Sharding::RoundRobin)).unwrap();
    assert_eq!(report.log.len(), 8);
    assert!(report.log[0].starts_with("session a = s0"));
    assert!(report.log[2].contains("fired 3"), "{}", report.log[2]);
    assert!(report.log[3].starts_with("snapshot a: "));
    // The restored session replays the same input and fires identically.
    assert_eq!(
        report.log[4].replace(" a:", ":"),
        report.log[6].replace(" b:", ":"),
        "restored session diverged: {:?}",
        report.log
    );
    assert!(report.log[7].contains("ok"));
}

/// Create/destroy churn under greedy admission, with failed restores mixed
/// in. The per-shard live-session counts the periodic LPT rebuild packs
/// against must track the real live set exactly: a failed Create/Restore
/// used to leave a phantom session routed and counted forever, and
/// unwinding one that a racing destroy already unwound would drift the
/// counts negative (silently clamped by `saturating_sub`).
#[test]
fn greedy_admission_counts_survive_create_destroy_churn() {
    let mut cfg = config(3, Sharding::Greedy);
    cfg.greedy_rebuild_interval = 4; // rebuild several times mid-churn
    let mut server = Server::new(serve::program(), cfg).unwrap();
    let mut live: Vec<SessionId> = Vec::new();
    for round in 0..12u64 {
        // A successful create joins the live set...
        let (id, req) = server.create_session(serve::initial()).unwrap();
        assert!(matches!(
            server.wait_for(req, TIMEOUT).unwrap(),
            Reply::Ready { .. }
        ));
        live.push(id);
        // ...a corrupt restore fails on the worker and must be unwound...
        let (phantom, req) = server.restore(vec![0xDE, 0xAD]).unwrap();
        assert!(matches!(
            server.wait_for(req, TIMEOUT).unwrap(),
            Reply::Failed { .. }
        ));
        assert!(
            matches!(
                server.submit(phantom, Vec::new()),
                Err(ServerError::StaleSession(_) | ServerError::UnknownSession(_))
            ),
            "round {round}: failed restore left a phantom route"
        );
        // ...a *successful* restore joins the live set and must be
        // counted against `shard_of(session)` like any admission...
        if round % 3 == 2 {
            let source = *live.last().expect("live set is non-empty");
            let snap_req = server.snapshot(source).unwrap();
            let bytes = match server.wait_for(snap_req, TIMEOUT).unwrap() {
                Reply::SnapshotBytes { bytes, .. } => bytes,
                other => panic!("round {round}: snapshot answered by {other:?}"),
            };
            let (clone, req) = server.restore(bytes).unwrap();
            assert!(matches!(
                server.wait_for(req, TIMEOUT).unwrap(),
                Reply::Ready { .. }
            ));
            live.push(clone);
        }
        // ...and every other round the oldest live session is destroyed.
        if round % 2 == 1 {
            let victim = live.remove(0);
            let req = server.destroy_session(victim).unwrap();
            assert!(matches!(
                server.wait_for(req, TIMEOUT).unwrap(),
                Reply::Destroyed { .. }
            ));
        }
        let counted: u64 = server.shard_session_counts().iter().sum();
        assert_eq!(
            counted,
            live.len() as u64,
            "round {round}: shard counts drifted from the live set"
        );
        assert_eq!(server.sessions(), live.len(), "round {round}");
    }
    // Destroy racing a doomed restore: the destroy unwinds the admission
    // first, so the later `Failed` reply must not decrement a second time.
    let (doomed, restore_req) = server.restore(vec![0xBA, 0xD0]).unwrap();
    let destroy_req = server.destroy_session(doomed).unwrap();
    for req in [restore_req, destroy_req] {
        assert!(matches!(
            server.wait_for(req, TIMEOUT).unwrap(),
            Reply::Failed { .. }
        ));
    }
    let counted: u64 = server.shard_session_counts().iter().sum();
    assert_eq!(counted, live.len() as u64, "double unwind drifted counts");

    // The survivors still work after all the rebuilds and unwinds.
    for &id in &live {
        submit_retrying(&mut server, id, serve::round(id.0, 0, 1));
    }
    server.drain(TIMEOUT, |_| {}).unwrap();
}
