//! Snapshot → restore → continue must equal an uninterrupted run.
//!
//! The oracle runs a session straight through; the subject runs to a
//! property-chosen cut point, round-trips through the versioned snapshot
//! codec onto a **fresh** matcher (as a restore onto a new server would),
//! and continues. After every subsequent MRA cycle the two must agree on
//! working memory, the raw conflict set, the fired production, `(write …)`
//! output and the halt flag — across all builtin workloads and across
//! fuzzer-generated programs with adversarial add/remove schedules.

use mpps_difftest::{generate_case, GenConfig, ScheduleOp};
use mpps_ops::interpreter::StepOutcome;
use mpps_ops::{
    sort_conflict_set, Instantiation, Interpreter, Matcher, Program, Strategy, Wme, WmeId,
};
use mpps_rete::{EngineConfig, ReteMatcher, ReteNetwork};
use mpps_server::program_fingerprint;
use mpps_server::snapshot::{decode, encode};
use mpps_workloads::{rubik, serve, tourney, weaver};
use proptest::prelude::*;
use std::sync::Arc;

const ENGINE: EngineConfig = EngineConfig {
    table_size: 32,
    record_trace: false,
};

fn fresh(
    program: &Arc<Program>,
    network: &Arc<ReteNetwork>,
    strategy: Strategy,
) -> Interpreter<ReteMatcher> {
    Interpreter::with_shared_program(
        Arc::clone(program),
        strategy,
        ReteMatcher::new_shared(Arc::clone(network), ENGINE),
    )
}

/// Snapshot `subject` to bytes and rebuild it on a brand-new matcher.
fn roundtrip(
    subject: &Interpreter<ReteMatcher>,
    program: &Arc<Program>,
    network: &Arc<ReteNetwork>,
) -> Interpreter<ReteMatcher> {
    let fp = program_fingerprint(program);
    let bytes = encode(&subject.export_state(), fp).expect("snapshot encodes");
    let state = decode(&bytes, fp).expect("snapshot decodes");
    Interpreter::with_shared_state(
        Arc::clone(program),
        ReteMatcher::new_shared(Arc::clone(network), ENGINE),
        state,
    )
    .expect("restore replays cleanly")
}

type Observation = (Vec<(WmeId, Wme)>, Vec<Instantiation>, bool, usize);

fn observe(i: &Interpreter<ReteMatcher>) -> Observation {
    let wm = i
        .working_memory()
        .iter()
        .map(|(id, w)| (id, w.clone()))
        .collect();
    let mut cs = i.matcher().conflict_set();
    sort_conflict_set(&mut cs);
    (wm, cs, i.is_halted(), i.output().len())
}

/// Step both interpreters once and compare everything observable.
/// Returns true when both went quiescent.
fn lockstep(
    oracle: &mut Interpreter<ReteMatcher>,
    subject: &mut Interpreter<ReteMatcher>,
    at: &str,
) -> bool {
    let a = oracle.step().expect("oracle step");
    let b = subject.step().expect("subject step");
    match (&a, &b) {
        (StepOutcome::Fired(x), StepOutcome::Fired(y)) => {
            assert_eq!(x.production, y.production, "{at}: fired different rules");
            assert_eq!(x.wme_ids, y.wme_ids, "{at}: fired on different WMEs");
        }
        (StepOutcome::Quiescent, StepOutcome::Quiescent) => {}
        _ => panic!("{at}: one side fired, the other went quiescent"),
    }
    assert_eq!(observe(oracle), observe(subject), "{at}: state diverged");
    assert_eq!(oracle.output(), subject.output(), "{at}: outputs diverged");
    matches!(a, StepOutcome::Quiescent)
}

/// Run `program` from `initial`, cutting the subject at cycle `cut`.
fn check_workload(program: Program, initial: Vec<Wme>, cut: usize, max_cycles: usize) {
    let program = Arc::new(program);
    let network = Arc::new(ReteNetwork::compile(&program).expect("compiles"));
    let mut oracle = fresh(&program, &network, Strategy::Lex);
    let mut subject = fresh(&program, &network, Strategy::Lex);
    for wme in &initial {
        oracle.add_wme(wme.clone());
        subject.add_wme(wme.clone());
    }
    for step in 0..max_cycles {
        if step == cut {
            subject = roundtrip(&subject, &program, &network);
        }
        if lockstep(
            &mut oracle,
            &mut subject,
            &format!("cycle {step} (cut {cut})"),
        ) || oracle.is_halted()
        {
            return;
        }
    }
}

fn builtin(which: usize) -> (Program, Vec<Wme>) {
    match which {
        0 => (
            rubik::program(),
            rubik::initial(&rubik::alternating_moves(2)),
        ),
        1 => (tourney::program(), tourney::initial(5, 5)),
        2 => (weaver::program(), weaver::initial(3, 3)),
        _ => {
            let mut initial = serve::initial();
            initial.extend(serve::round(9, 0, 3));
            (serve::program(), initial)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn builtin_workloads_survive_snapshot(which in 0usize..4, cut in 0usize..32) {
        let (program, initial) = builtin(which);
        check_workload(program, initial, cut, 48);
    }

    /// Fuzzer-generated programs (negations, removals, both strategies)
    /// with external add/remove schedules between quiescent settles.
    #[test]
    fn fuzzer_programs_survive_snapshot(seed in 0u64..400, cut in 0usize..24) {
        let case = generate_case(seed, &GenConfig::default());
        let Ok(program) = case.program() else { return; };
        let program = Arc::new(program);
        let network = Arc::new(ReteNetwork::compile(&program).expect("compiles"));
        let mut oracle = fresh(&program, &network, case.strategy);
        let mut subject = fresh(&program, &network, case.strategy);
        let mut steps = 0usize;
        let mut cut_done = false;
        'rounds: for (round, ops) in case.schedule.rounds.iter().enumerate() {
            for op in ops {
                match op {
                    ScheduleOp::Make(wme) => {
                        oracle.add_wme(wme.clone());
                        subject.add_wme(wme.clone());
                    }
                    ScheduleOp::RemoveNth(n) => {
                        let live: Vec<WmeId> =
                            oracle.working_memory().iter().map(|(id, _)| id).collect();
                        if live.is_empty() {
                            continue;
                        }
                        let id = live[n % live.len()];
                        oracle.remove_wme(id).expect("oracle remove");
                        subject.remove_wme(id).expect("subject remove");
                    }
                }
            }
            // Settle to quiescence, cutting the subject once at `cut`.
            for _ in 0..64 {
                if steps == cut && !cut_done {
                    subject = roundtrip(&subject, &program, &network);
                    cut_done = true;
                }
                steps += 1;
                if lockstep(
                    &mut oracle,
                    &mut subject,
                    &format!("seed {seed} round {round} step {steps}"),
                ) {
                    break;
                }
                if oracle.is_halted() {
                    break 'rounds;
                }
            }
        }
        // If the run was shorter than the cut, still prove the final
        // state survives a round-trip.
        if !cut_done {
            let restored = roundtrip(&subject, &program, &network);
            prop_assert_eq!(observe(&subject), observe(&restored));
        }
    }
}

/// Halt behavior survives restore: a session snapshotted *after* a halt
/// stays halted and refuses to fire again.
#[test]
fn halted_sessions_stay_halted() {
    let program = mpps_ops::parse_program("(p once (go) --> (halt))").unwrap();
    let program = Arc::new(program);
    let network = Arc::new(ReteNetwork::compile(&program).unwrap());
    let mut interp = fresh(&program, &network, Strategy::Lex);
    interp.wm_make("go", &[]);
    let result = interp.run(10).unwrap();
    assert_eq!(result.outcome, mpps_ops::RunOutcome::Halted);
    let restored = roundtrip(&interp, &program, &network);
    assert!(restored.is_halted());
    let mut restored = restored;
    let again = restored.run(10).unwrap();
    assert_eq!(again.outcome, mpps_ops::RunOutcome::Halted);
    assert_eq!(again.cycles, 0);
}
