//! Bounded-queue stress: flooding a saturated worker must produce
//! `ServerError::Overloaded` **in bounded time** (the submit path never
//! blocks), never deadlock, never drop an ack, and recover completely
//! once the backlog drains.

use mpps_server::{Reply, Server, ServerConfig, ServerError, Sharding};
use mpps_workloads::serve;
use std::time::{Duration, Instant};

const TIMEOUT: Duration = Duration::from_secs(30);

fn flood_config() -> ServerConfig {
    ServerConfig {
        workers: 1,
        queue_capacity: 2,
        shards: 8,
        sharding: Sharding::RoundRobin,
        ..ServerConfig::default()
    }
}

#[test]
fn flood_is_rejected_fast_and_recovers_without_losing_acks() {
    let mut server = Server::new(serve::program(), flood_config()).unwrap();
    let (id, request) = server.create_session(serve::initial()).unwrap();
    assert!(matches!(
        server.wait_for(request, TIMEOUT).unwrap(),
        Reply::Ready { .. }
    ));

    // Flood: each batch costs hundreds of MRA cycles, so the single
    // worker cannot keep up with a tight submission loop and the
    // 2-deep queue must overflow.
    let mut accepted: u64 = 0;
    let mut rejected: u64 = 0;
    let mut slowest_rejection = Duration::ZERO;
    for round in 0..120u64 {
        let batch = serve::round(id.0, round, 100);
        let asked = Instant::now();
        match server.submit(id, batch) {
            Ok(_) => accepted += 1,
            Err(ServerError::Overloaded {
                session,
                worker,
                capacity,
            }) => {
                slowest_rejection = slowest_rejection.max(asked.elapsed());
                assert_eq!(session, id);
                assert_eq!(worker, 0);
                assert_eq!(capacity, 2);
                rejected += 1;
            }
            Err(other) => panic!("unexpected submit error: {other}"),
        }
    }
    assert!(rejected > 0, "flood never tripped the bounded queue");
    assert!(accepted > 0, "some submissions must land");
    // Rejection is a counter check, not a wait: even a loaded CI box
    // answers in far under a second.
    assert!(
        slowest_rejection < Duration::from_secs(1),
        "Overloaded took {slowest_rejection:?} — submit must not block"
    );
    assert_eq!(server.overload_rejections(), rejected);

    // Drain: every accepted request is answered exactly once (no lost
    // acks), each individual reply within the healthy-worker timeout
    // (no deadlock).
    let mut replies = 0u64;
    let mut failures = 0u64;
    server
        .drain(TIMEOUT, |reply| {
            replies += 1;
            if matches!(reply, Reply::Failed { .. }) {
                failures += 1;
            }
        })
        .unwrap();
    assert_eq!(replies, accepted, "acks lost or duplicated");
    assert_eq!(failures, 0);
    assert_eq!(server.in_flight(), 0);
    assert_eq!(server.worker_depths(), vec![0]);

    // Recovery: the drained server accepts and answers again.
    let request = server.submit(id, serve::round(id.0, 500, 2)).unwrap();
    match server.wait_for(request, TIMEOUT).unwrap() {
        Reply::Cycles { fired, .. } => assert_eq!(fired, 6),
        other => panic!("expected Cycles after recovery, got {other:?}"),
    }

    // The merged metrics agree with the server-side tallies.
    let metrics = server.metrics(TIMEOUT).unwrap();
    assert_eq!(metrics.counter_total("serve.overloaded"), rejected);
    assert_eq!(
        metrics.counter_total("serve.requests"),
        accepted + 2, // + session creation + recovery probe
    );
    let high = metrics.gauge("serve.queue_depth").unwrap()[&0];
    assert!(high <= 2, "queue depth {high} exceeded its bound");
}

#[test]
fn destroyed_sessions_reject_immediately() {
    let mut server = Server::new(serve::program(), flood_config()).unwrap();
    let (id, request) = server.create_session(serve::initial()).unwrap();
    server.wait_for(request, TIMEOUT).unwrap();
    let request = server.destroy_session(id).unwrap();
    assert!(matches!(
        server.wait_for(request, TIMEOUT).unwrap(),
        Reply::Destroyed { .. }
    ));
    // The freed slot's generation moved past this handle: the rejection
    // is typed *stale*, distinguishing "you held this too long" from
    // "never heard of it".
    assert_eq!(
        server.submit(id, serve::round(id.0, 0, 1)),
        Err(ServerError::StaleSession(id))
    );
    assert_eq!(server.sessions(), 0);
}

/// Admission itself honors the bound: when the target worker is
/// saturated, `create_session` is rejected up front and no session
/// state leaks.
#[test]
fn admission_respects_backpressure() {
    let mut server = Server::new(serve::program(), flood_config()).unwrap();
    let (id, _) = server.create_session(serve::initial()).unwrap();
    // Saturate the lone worker with heavy batches.
    let mut accepted = 0;
    for round in 0..50u64 {
        if server.submit(id, serve::round(id.0, round, 200)).is_ok() {
            accepted += 1;
        }
    }
    assert!(accepted >= 1);
    let mut created = 0usize;
    let mut admission_rejected = false;
    for _ in 0..50 {
        match server.create_session(serve::initial()) {
            Err(ServerError::Overloaded { .. }) => admission_rejected = true,
            Ok(_) => created += 1,
            Err(other) => panic!("unexpected admission error: {other}"),
        }
    }
    assert!(admission_rejected, "saturated worker kept admitting");
    // Rejected admissions record no session state: only accepted creates
    // are routable.
    assert_eq!(server.sessions(), 1 + created);
    server.drain(TIMEOUT, |_| {}).unwrap();
    // After draining, admission succeeds again.
    let (_, request) = server.create_session(serve::initial()).unwrap();
    assert!(matches!(
        server.wait_for(request, TIMEOUT).unwrap(),
        Reply::Ready { .. }
    ));
}
