//! The 1M-session scale machinery: slab generation checks on reused
//! slots, transparent idle eviction (snapshot → evict → fault-in →
//! continue must be byte-equal to an uninterrupted resident run), and
//! live migration proven byte-equal against the cross-server snapshot
//! oracle from PR 8.

use mpps_server::{Reply, RequestId, Server, ServerConfig, ServerError, SessionId, Sharding};
use mpps_workloads::serve;
use proptest::prelude::*;
use std::time::Duration;

const TIMEOUT: Duration = Duration::from_secs(30);

fn config(workers: usize) -> ServerConfig {
    ServerConfig {
        workers,
        queue_capacity: 128,
        shards: 64,
        sharding: Sharding::RoundRobin,
        ..ServerConfig::default()
    }
}

fn ready(server: &mut Server, request: RequestId) {
    match server.wait_for(request, TIMEOUT).unwrap() {
        Reply::Ready { .. } => {}
        other => panic!("expected Ready, got {other:?}"),
    }
}

fn snapshot_bytes(server: &mut Server, id: SessionId) -> Vec<u8> {
    let request = server.snapshot(id).unwrap();
    match server.wait_for(request, TIMEOUT).unwrap() {
        Reply::SnapshotBytes { bytes, .. } => bytes,
        other => panic!("expected SnapshotBytes, got {other:?}"),
    }
}

/// A freed slot is reused under a bumped generation: the new handle is a
/// different `SessionId`, and the old one is rejected as *stale* (not
/// merely unknown) on every entry point that routes.
#[test]
fn freed_slots_are_reused_with_a_bumped_generation() {
    let mut server = Server::new(serve::program(), config(2)).unwrap();
    let (old, request) = server.create_session(serve::initial()).unwrap();
    ready(&mut server, request);
    assert_eq!(old.to_string(), "s0");
    let request = server.destroy_session(old).unwrap();
    assert!(matches!(
        server.wait_for(request, TIMEOUT).unwrap(),
        Reply::Destroyed { .. }
    ));

    let (new, request) = server.create_session(serve::initial()).unwrap();
    ready(&mut server, request);
    assert_eq!(new.slot(), old.slot(), "freed slot was not reused");
    assert_eq!(new.generation(), old.generation() + 1);
    assert_ne!(old, new);
    assert_eq!(new.to_string(), "s0g1");

    // The stale handle is a typed error everywhere, and never touches
    // the reincarnated session.
    assert_eq!(
        server.submit(old, serve::round(old.0, 0, 1)),
        Err(ServerError::StaleSession(old))
    );
    assert!(matches!(
        server.snapshot(old),
        Err(ServerError::StaleSession(_))
    ));
    assert!(matches!(
        server.evict(old),
        Err(ServerError::StaleSession(_))
    ));
    assert!(matches!(
        server.migrate(old, 1, TIMEOUT),
        Err(ServerError::StaleSession(_))
    ));
    assert!(matches!(
        server.destroy_session(old),
        Err(ServerError::StaleSession(_))
    ));

    // The new incarnation works, and an id from a *future* generation is
    // unknown, not stale.
    let request = server.submit(new, serve::round(new.0, 0, 1)).unwrap();
    assert!(matches!(
        server.wait_for(request, TIMEOUT).unwrap(),
        Reply::Cycles { .. }
    ));
    let future = SessionId::pack(new.slot(), new.generation() + 7);
    assert_eq!(
        server.submit(future, Vec::new()),
        Err(ServerError::UnknownSession(future))
    );
    assert_eq!(server.sessions(), 1);
}

/// Live migration through `Server::migrate` must land the session on the
/// target worker with state byte-equal to the PR-8 cross-server oracle
/// (snapshot → restore on a fresh server → identical continuation). An
/// evicted session migrates too, by shipping its spill file.
#[test]
fn live_migration_is_byte_equal_to_the_cross_server_oracle() {
    let mut server = Server::new(serve::program(), config(2)).unwrap();
    let (id, request) = server.create_session(serve::initial()).unwrap();
    ready(&mut server, request);
    for round in 0..2 {
        server.submit(id, serve::round(id.0, round, 3)).unwrap();
    }
    server.drain(TIMEOUT, |_| {}).unwrap();

    // Oracle: the snapshot-migration path the existing integration test
    // proves correct — restore the same bytes on a fresh server.
    let bytes = snapshot_bytes(&mut server, id);
    let mut oracle = Server::new(serve::program(), config(2)).unwrap();
    let (twin, request) = oracle.restore(bytes).unwrap();
    ready(&mut oracle, request);

    // Subject: migrate the live session to the other worker in place.
    let from = server.worker_of(id).unwrap();
    let to = 1 - from;
    let request = server.migrate(id, to, TIMEOUT).unwrap();
    ready(&mut server, request);
    assert_eq!(server.worker_of(id).unwrap(), to, "route did not move");
    assert_eq!(server.migrations(), 1);

    // Identical continuations must stay byte-equal.
    for round in 2..4 {
        server.submit(id, serve::round(id.0, round, 3)).unwrap();
        oracle.submit(twin, serve::round(id.0, round, 3)).unwrap();
    }
    server.drain(TIMEOUT, |_| {}).unwrap();
    oracle.drain(TIMEOUT, |_| {}).unwrap();
    assert_eq!(
        snapshot_bytes(&mut server, id),
        snapshot_bytes(&mut oracle, twin),
        "live migration diverged from the cross-server oracle"
    );

    // Evict the session to disk, then migrate it back: the spill bytes
    // ship unread and the session faults in on the new worker.
    let request = server.evict(id).unwrap();
    assert!(matches!(
        server.wait_for(request, TIMEOUT).unwrap(),
        Reply::Evicted { .. }
    ));
    let request = server.migrate(id, from, TIMEOUT).unwrap();
    ready(&mut server, request);
    assert_eq!(server.worker_of(id).unwrap(), from);

    server.submit(id, serve::round(id.0, 4, 3)).unwrap();
    oracle.submit(twin, serve::round(id.0, 4, 3)).unwrap();
    server.drain(TIMEOUT, |_| {}).unwrap();
    oracle.drain(TIMEOUT, |_| {}).unwrap();
    assert_eq!(
        snapshot_bytes(&mut server, id),
        snapshot_bytes(&mut oracle, twin),
        "migrating an evicted session corrupted its state"
    );
    let metrics = server.metrics(TIMEOUT).unwrap();
    assert_eq!(metrics.counter_total("serve.migrations"), 2);
}

/// `rebalance` converges: one pass moves every session to its greedy
/// owner, a second pass over the unchanged activity vector moves
/// nothing, and the sessions compute exactly what an unbalanced twin
/// server computes.
#[test]
fn rebalance_is_a_byte_preserving_fixed_point() {
    const SESSIONS: usize = 16;
    let mut server = Server::new(serve::program(), config(3)).unwrap();
    let mut twin = Server::new(serve::program(), config(3)).unwrap();
    let mut ids = Vec::new();
    for _ in 0..SESSIONS {
        let (a, request) = server.create_session(serve::initial()).unwrap();
        ready(&mut server, request);
        let (b, request) = twin.create_session(serve::initial()).unwrap();
        ready(&mut twin, request);
        assert_eq!(a, b, "the two servers must allocate identical ids");
        ids.push(a);
    }
    for &id in &ids {
        server.submit(id, serve::round(id.0, 0, 2)).unwrap();
        twin.submit(id, serve::round(id.0, 0, 2)).unwrap();
    }
    server.drain(TIMEOUT, |_| {}).unwrap();

    // Round-robin admission ignores shards, so the greedy partition
    // disagrees with at least some placements and the first pass moves
    // them. The second pass sees the fixed point.
    let first = server.rebalance(TIMEOUT).unwrap();
    assert_eq!(first.examined, SESSIONS);
    assert_eq!(first.skipped, 0, "idle workers should not be saturated");
    assert!(first.moved > 0, "rebalance moved nothing");
    assert_eq!(server.migrations(), first.moved as u64);
    let second = server.rebalance(TIMEOUT).unwrap();
    assert_eq!(second.moved, 0, "rebalance is not a fixed point");

    // Shard accounting survived the moves (migration changes routes,
    // never shard membership), and state did not.
    let counted: u64 = server.shard_session_counts().iter().sum();
    assert_eq!(counted, SESSIONS as u64);
    for &id in &ids {
        server.submit(id, serve::round(id.0, 1, 2)).unwrap();
        twin.submit(id, serve::round(id.0, 1, 2)).unwrap();
    }
    server.drain(TIMEOUT, |_| {}).unwrap();
    twin.drain(TIMEOUT, |_| {}).unwrap();
    for &id in &ids {
        assert_eq!(
            snapshot_bytes(&mut server, id),
            snapshot_bytes(&mut twin, id),
            "session {id} diverged across rebalance"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Adversarial eviction points: a budget-constrained server whose
    /// sessions are forcibly evicted at property-chosen points must
    /// stay byte-equal, session for session, with an unconstrained
    /// server fed identical input. This is the PR-8 snapshot proptest
    /// lifted to the serving layer: every eviction is a snapshot, every
    /// fault-in is a restore, and neither may be observable.
    #[test]
    fn eviction_is_transparent_and_byte_equal(
        budget in 1usize..3,
        evict_at in proptest::collection::vec(any::<bool>(), 12),
    ) {
        const SESSIONS: usize = 3;
        const ROUNDS: u64 = 4;
        let mut constrained = config(1);
        constrained.resident_budget = Some(budget);
        let mut subject = Server::new(serve::program(), constrained).unwrap();
        let mut oracle = Server::new(serve::program(), config(1)).unwrap();
        let mut ids = Vec::new();
        for _ in 0..SESSIONS {
            let (a, request) = subject.create_session(serve::initial()).unwrap();
            ready(&mut subject, request);
            let (b, request) = oracle.create_session(serve::initial()).unwrap();
            ready(&mut oracle, request);
            prop_assert_eq!(a, b);
            ids.push(a);
        }
        for round in 0..ROUNDS {
            for (k, &id) in ids.iter().enumerate() {
                let wmes = serve::round(id.0, round, 2);
                let request = subject.submit(id, wmes.clone()).unwrap();
                prop_assert!(matches!(
                    subject.wait_for(request, TIMEOUT).unwrap(),
                    Reply::Cycles { .. }
                ));
                let request = oracle.submit(id, wmes).unwrap();
                prop_assert!(matches!(
                    oracle.wait_for(request, TIMEOUT).unwrap(),
                    Reply::Cycles { .. }
                ));
                // The adversarial cut: maybe force this session to disk
                // right after it computed, before its next request.
                if evict_at[round as usize * SESSIONS + k] {
                    let request = subject.evict(id).unwrap();
                    prop_assert!(matches!(
                        subject.wait_for(request, TIMEOUT).unwrap(),
                        Reply::Evicted { .. }
                    ));
                }
            }
        }
        for &id in &ids {
            // Snapshotting an evicted session reads its spill without
            // faulting it in; either way the bytes must match the
            // always-resident oracle.
            prop_assert_eq!(
                snapshot_bytes(&mut subject, id),
                snapshot_bytes(&mut oracle, id),
                "session {} diverged under eviction", id
            );
        }
        // The budget (strictly below the session count) forced the LRU
        // sweep to actually run: sessions went to disk and came back.
        let metrics = subject.metrics(TIMEOUT).unwrap();
        prop_assert!(metrics.counter_total("serve.evictions") > 0);
        prop_assert!(metrics.counter_total("serve.faultins") > 0);
        prop_assert_eq!(metrics.counter_total("serve.evict_failed"), 0);
    }
}
