#![warn(missing_docs)]

//! # mpps-server — rule-engine-as-a-service over the match kernel
//!
//! The paper parallelizes *one* production system across processors. The
//! ROADMAP's serving direction transposes that: a long-running engine
//! compiles an OPS5 program **once** and multiplexes **many** independent
//! working-memory sessions (one per simulated user) over a pool of worker
//! threads. This crate is that serving layer:
//!
//! * [`Session`] — one user's working memory, conflict-set state and
//!   refraction memory over a fresh [`mpps_rete::ReteMatcher`] that shares
//!   the compiled network (`Arc<ReteNetwork>`) and program
//!   (`Arc<Program>`) with every other session.
//! * [`Server`] — the worker pool. Sessions are pinned to workers at
//!   admission by a [`mpps_core::Partition`] over a shard space
//!   (round-robin, seeded-random or greedy LPT — the paper's §4 mapping
//!   strategies reused one level up). Each worker has a **bounded**
//!   submission queue: when a worker's queue is full, [`Server::submit`]
//!   returns [`ServerError::Overloaded`] immediately instead of buffering
//!   without bound — backpressure is part of the API, not an afterthought.
//! * [`snapshot`] — a versioned byte codec for session state
//!   ([`Session::snapshot`] / [`Server::restore`]): working memory,
//!   pending changes, refraction keys and outputs round-trip to bytes and
//!   restore onto a *fresh* server, where the matcher is rebuilt by
//!   replaying the matcher-visible WM (matchers are pure folds over
//!   change batches — the equivalence the differential fuzzer pins down).
//! * [`drive`] — the drivers behind `mpps serve`: a synthetic
//!   many-session load generator (ticket-triage rounds from
//!   `mpps_workloads::serve`) and a line-oriented script interpreter for
//!   deterministic smoke tests.
//!
//! Worker load is observable through the [`mpps_telemetry::MetricsRegistry`]
//! machinery: per-worker request/cycle/WME-change counters, high-water
//! queue-depth gauges and exact latency histograms, merged across workers
//! by [`Server::metrics`].

pub mod drive;
pub mod server;
pub mod session;
pub mod slab;
pub mod snapshot;
mod store;

pub use drive::{run_script, run_synthetic, ScriptReport, SyntheticReport, SyntheticSpec};
pub use server::{RebalanceReport, Reply, RequestId, Server, ServerConfig, Sharding};
pub use session::{Session, SessionId};
pub use slab::{RouteError, RouteSlab};
pub use snapshot::{program_fingerprint, SnapshotError, SNAPSHOT_VERSION};

use std::fmt;

/// Errors surfaced by the serving layer.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ServerError {
    /// The target worker's submission queue is at capacity. The request
    /// was **not** enqueued; retry after draining completions.
    Overloaded {
        /// Session whose submission was rejected.
        session: SessionId,
        /// Worker the session is pinned to.
        worker: usize,
        /// The configured per-worker queue capacity.
        capacity: usize,
    },
    /// The session id is not live on this server (never created, or
    /// already destroyed and its slot not yet reused).
    UnknownSession(SessionId),
    /// The session id is from a previous generation of its slab slot —
    /// the handle was kept past `destroy` and the slot has moved on.
    StaleSession(SessionId),
    /// The server was constructed with a degenerate configuration
    /// (zero workers, shards or queue capacity).
    Config(String),
    /// The per-shard live-session ledger disagrees with a destroy — an
    /// internal invariant breach that would silently skew greedy
    /// rebalancing if ignored (this used to be a `debug_assert!` that
    /// compiled out in release builds).
    ShardAccounting {
        /// The session whose destroy exposed the drift.
        session: SessionId,
        /// The shard whose count was already zero.
        shard: usize,
    },
    /// A worker thread has shut down or disconnected.
    Shutdown,
    /// A snapshot failed to decode (see [`SnapshotError`]).
    Snapshot(SnapshotError),
    /// A timed wait elapsed before the awaited reply arrived.
    Timeout,
    /// A script driver line could not be parsed or referenced an unknown
    /// session name.
    Script(String),
    /// The underlying interpreter/matcher reported an error (stringified
    /// for transport across the worker channel).
    Engine(String),
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::Overloaded {
                session,
                worker,
                capacity,
            } => write!(
                f,
                "worker {worker} queue full (capacity {capacity}): submission for {session} rejected"
            ),
            ServerError::UnknownSession(id) => write!(f, "unknown session {id}"),
            ServerError::StaleSession(id) => write!(
                f,
                "stale session handle {id}: the session was destroyed and its slot reused"
            ),
            ServerError::Config(msg) => write!(f, "config: {msg}"),
            ServerError::ShardAccounting { session, shard } => write!(
                f,
                "shard accounting drift: destroying {session} but shard {shard} counts no sessions"
            ),
            ServerError::Shutdown => write!(f, "server worker has shut down"),
            ServerError::Snapshot(e) => write!(f, "snapshot: {e}"),
            ServerError::Timeout => write!(f, "timed out waiting for a reply"),
            ServerError::Script(msg) => write!(f, "script: {msg}"),
            ServerError::Engine(msg) => write!(f, "engine: {msg}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<SnapshotError> for ServerError {
    fn from(e: SnapshotError) -> Self {
        ServerError::Snapshot(e)
    }
}
