//! One user's production-system state over the shared compiled network.

use crate::snapshot;
use crate::{ServerError, SnapshotError};
use mpps_ops::{Interpreter, OpsError, Program, RunResult, Strategy, Wme, WmeId};
use mpps_rete::{EngineConfig, ReteMatcher, ReteNetwork};
use std::fmt;
use std::sync::Arc;

/// Server-assigned session identifier: `generation << 32 | slot`.
///
/// The slot indexes the server's route slab (and the owning worker's
/// session table) directly; the generation is bumped every time the slot
/// is freed, so a handle held past `destroy` fails with a typed
/// [`crate::ServerError::StaleSession`] instead of silently addressing
/// the slot's next occupant. Ids from a fresh server are generation 0,
/// i.e. the plain sequence `s0, s1, …`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SessionId(pub u64);

impl SessionId {
    /// Pack a slab slot and its generation into an id.
    pub fn pack(slot: u32, generation: u32) -> SessionId {
        SessionId((u64::from(generation) << 32) | u64::from(slot))
    }

    /// The slab slot this id addresses.
    pub fn slot(self) -> u32 {
        self.0 as u32
    }

    /// The slot generation this id was issued under.
    pub fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

impl fmt::Display for SessionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // First-generation ids read as the familiar dense sequence; a
        // recycled slot shows its generation so two occupants of slot N
        // never print alike.
        if self.generation() == 0 {
            write!(f, "s{}", self.slot())
        } else {
            write!(f, "s{}g{}", self.slot(), self.generation())
        }
    }
}

/// One session: an [`Interpreter`] over a [`ReteMatcher`] whose compiled
/// network and program are shared (`Arc`) with every other session on the
/// server. All *mutable* match state — working memory, token memories,
/// conflict set, refraction — is private to the session; the immutable
/// compiled artifacts exist once per server, which is what makes 100k
/// concurrent sessions affordable.
pub struct Session {
    program: Arc<Program>,
    network: Arc<ReteNetwork>,
    engine: EngineConfig,
    fingerprint: u64,
    interp: Interpreter<ReteMatcher>,
}

impl Session {
    /// Create an empty session against an already-compiled network.
    ///
    /// `fingerprint` must be [`snapshot::program_fingerprint`] of
    /// `program` — the server computes it once and passes it down so
    /// per-session creation never re-hashes the ruleset.
    pub fn new(
        program: Arc<Program>,
        network: Arc<ReteNetwork>,
        strategy: Strategy,
        engine: EngineConfig,
        fingerprint: u64,
    ) -> Session {
        let matcher = ReteMatcher::new_shared(Arc::clone(&network), engine);
        Session {
            interp: Interpreter::with_shared_program(Arc::clone(&program), strategy, matcher),
            program,
            network,
            engine,
            fingerprint,
        }
    }

    /// Queue WMEs for the next match phase; returns how many were queued.
    pub fn ingest(&mut self, wmes: impl IntoIterator<Item = Wme>) -> usize {
        let mut n = 0;
        for wme in wmes {
            self.interp.add_wme(wme);
            n += 1;
        }
        n
    }

    /// Queue removal of a WME by time tag.
    pub fn remove(&mut self, id: WmeId) -> Result<(), OpsError> {
        self.interp.remove_wme(id)
    }

    /// Run the MRA cycle until quiescence, halt or `max_cycles`, then
    /// drain the per-cycle change log. Returns the run summary plus the
    /// number of WME changes the matcher processed — the unit the server's
    /// throughput metrics count.
    pub fn run(&mut self, max_cycles: usize) -> Result<(RunResult, usize), OpsError> {
        let result = self.interp.run(max_cycles)?;
        let changes: usize = self.interp.drain_change_log().iter().map(Vec::len).sum();
        Ok((result, changes))
    }

    /// Serialize this session's state to versioned snapshot bytes. Fails
    /// with [`SnapshotError::TooLarge`] when a collection exceeds its
    /// length field instead of truncating it.
    pub fn snapshot(&self) -> Result<Vec<u8>, SnapshotError> {
        snapshot::encode(&self.interp.export_state(), self.fingerprint)
    }

    /// Rebuild a session from snapshot bytes on a *fresh* matcher over
    /// the (shared) compiled artifacts. Fails if the snapshot was taken
    /// under a different program, or if replaying the restored WM into
    /// the matcher errors.
    pub fn restore(
        program: Arc<Program>,
        network: Arc<ReteNetwork>,
        engine: EngineConfig,
        fingerprint: u64,
        bytes: &[u8],
    ) -> Result<Session, ServerError> {
        let state = snapshot::decode(bytes, fingerprint)?;
        let matcher = ReteMatcher::new_shared(Arc::clone(&network), engine);
        let interp = Interpreter::with_shared_state(Arc::clone(&program), matcher, state)
            .map_err(|e| ServerError::Engine(e.to_string()))?;
        Ok(Session {
            interp,
            program,
            network,
            engine,
            fingerprint,
        })
    }

    /// Pending (queued, not yet matched) changes — exposed for tests.
    pub fn pending_len(&self) -> usize {
        self.interp.export_state().pending.len()
    }

    /// Number of live working-memory elements.
    pub fn wm_len(&self) -> usize {
        self.interp.working_memory().len()
    }

    /// True once a `(halt)` action has executed.
    pub fn is_halted(&self) -> bool {
        self.interp.is_halted()
    }

    /// Borrow the underlying interpreter.
    pub fn interpreter(&self) -> &Interpreter<ReteMatcher> {
        &self.interp
    }

    /// Mutably borrow the underlying interpreter.
    pub fn interpreter_mut(&mut self) -> &mut Interpreter<ReteMatcher> {
        &mut self.interp
    }

    /// The decoded state of a snapshot, for callers that need to inspect
    /// one without building a session (the script driver's `peek`).
    pub fn decode_state(
        bytes: &[u8],
        fingerprint: u64,
    ) -> Result<Vec<(WmeId, Wme)>, SnapshotError> {
        Ok(snapshot::decode(bytes, fingerprint)?.wm)
    }
}

impl Session {
    /// The engine configuration sessions on this server run with.
    pub fn engine_config(&self) -> EngineConfig {
        self.engine
    }

    /// The shared compiled network (diagnostics).
    pub fn network(&self) -> &ReteNetwork {
        &self.network
    }

    /// The shared program.
    pub fn program(&self) -> &Program {
        &self.program
    }
}
