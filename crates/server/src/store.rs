//! Worker-side session storage: a slot-indexed table with an intrusive
//! LRU list and snapshot-to-disk eviction.
//!
//! Each worker owns one [`SessionTable`]. Slots are indexed by the
//! session id's slab slot (server-global, so the table length tracks the
//! server's peak concurrent sessions — a vacant slot is 24 bytes), and
//! every occupied slot is either **resident** (a live [`Session`] boxed
//! off the table) or **evicted** (its versioned snapshot sits in a file
//! under the worker's eviction directory). Residency is managed by an
//! intrusive doubly-linked LRU list threaded through the slots: touching
//! a session is O(1), and when the resident count exceeds the configured
//! budget the list tail is snapshotted to disk. The next request for an
//! evicted session faults it back in transparently — decode, replay into
//! a fresh matcher, delete the spill file.
//!
//! This is the fixed-per-node-memory discipline the QCDSP line of work
//! builds around, applied to session state: the worker's resident
//! footprint is `budget × session`, not `sessions × session`, which is
//! what lets one box hold a 1M-session id space.

use crate::session::{Session, SessionId};
use crate::snapshot::SnapshotError;
use mpps_ops::Program;
use mpps_rete::{EngineConfig, ReteNetwork};
use std::fmt;
use std::path::PathBuf;
use std::sync::Arc;

/// Sentinel for "no link" in the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// Everything a fault-in needs to rebuild a [`Session`] from snapshot
/// bytes: the worker's shared compiled artifacts.
pub(crate) struct SessionEnv {
    pub program: Arc<Program>,
    pub network: Arc<ReteNetwork>,
    pub engine: EngineConfig,
    pub fingerprint: u64,
}

impl SessionEnv {
    fn rebuild(&self, bytes: &[u8]) -> Result<Session, StoreError> {
        Session::restore(
            Arc::clone(&self.program),
            Arc::clone(&self.network),
            self.engine,
            self.fingerprint,
            bytes,
        )
        .map_err(|e| StoreError::Restore(e.to_string()))
    }
}

/// Why a table operation failed. Stringified into `Reply::Failed` by the
/// worker loop.
#[derive(Clone, PartialEq, Eq, Debug)]
pub(crate) enum StoreError {
    /// No current occupant carries this id (never created here, or
    /// destroyed).
    Unknown(SessionId),
    /// The slot has moved past this id's generation: the handle is stale.
    Stale(SessionId),
    /// The slot already holds a live occupant (an admission protocol
    /// breach — the server must never double-assign a slot).
    Occupied(SessionId),
    /// Snapshot encoding refused (e.g. [`SnapshotError::TooLarge`]).
    Snapshot(SnapshotError),
    /// The spill file could not be written, read or deleted.
    Io(String),
    /// The spilled snapshot no longer decodes/replays (disk corruption —
    /// our own encoder wrote it, so this is never a format mismatch).
    Restore(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Unknown(id) => write!(f, "unknown session {id}"),
            StoreError::Stale(id) => write!(f, "stale session handle {id}"),
            StoreError::Occupied(id) => write!(f, "slot for {id} already occupied"),
            StoreError::Snapshot(e) => write!(f, "eviction snapshot: {e}"),
            StoreError::Io(msg) => write!(f, "eviction i/o: {msg}"),
            StoreError::Restore(msg) => write!(f, "fault-in: {msg}"),
        }
    }
}

impl From<SnapshotError> for StoreError {
    fn from(e: SnapshotError) -> Self {
        StoreError::Snapshot(e)
    }
}

struct EvictedSession {
    path: PathBuf,
    bytes: u64,
}

enum Residency {
    Vacant,
    Resident(Box<Session>),
    Evicted(Box<EvictedSession>),
}

struct TableSlot {
    generation: u32,
    prev: u32,
    next: u32,
    residency: Residency,
}

impl TableSlot {
    fn vacant() -> TableSlot {
        TableSlot {
            generation: 0,
            prev: NIL,
            next: NIL,
            residency: Residency::Vacant,
        }
    }
}

/// A session extracted from the table (for destroy or migration).
pub(crate) enum Extracted {
    /// The session was resident; the live object is returned.
    Resident(Box<Session>),
    /// The session was evicted; its snapshot bytes are returned and the
    /// spill file has been deleted.
    Evicted(Vec<u8>),
}

/// What `enforce_budget` did.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub(crate) struct EvictionSweep {
    /// Sessions snapshotted to disk.
    pub evicted: u64,
    /// Snapshot bytes written.
    pub bytes: u64,
    /// Candidates that could not be evicted (snapshot or I/O failure) and
    /// were kept resident instead.
    pub failed: u64,
}

/// The worker's session table. See the [module docs](self).
pub(crate) struct SessionTable {
    slots: Vec<TableSlot>,
    /// Most-recently-used resident slot.
    head: u32,
    /// Least-recently-used resident slot — the next eviction victim.
    tail: u32,
    resident: usize,
    evicted: usize,
    budget: Option<usize>,
    /// This worker's spill directory; created on first eviction.
    dir: PathBuf,
    dir_ready: bool,
}

impl SessionTable {
    pub fn new(budget: Option<usize>, dir: PathBuf) -> SessionTable {
        SessionTable {
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            resident: 0,
            evicted: 0,
            budget,
            dir,
            dir_ready: false,
        }
    }

    /// Sessions this table holds (resident + evicted).
    pub fn len(&self) -> usize {
        self.resident + self.evicted
    }

    pub fn resident_count(&self) -> usize {
        self.resident
    }

    pub fn evicted_count(&self) -> usize {
        self.evicted
    }

    fn slot_checked(&self, id: SessionId) -> Result<usize, StoreError> {
        let at = id.slot() as usize;
        let slot = self.slots.get(at).ok_or(StoreError::Unknown(id))?;
        if slot.generation != id.generation() {
            return if id.generation() < slot.generation {
                Err(StoreError::Stale(id))
            } else {
                Err(StoreError::Unknown(id))
            };
        }
        if matches!(slot.residency, Residency::Vacant) {
            return Err(StoreError::Unknown(id));
        }
        Ok(at)
    }

    // ---- intrusive LRU list ------------------------------------------

    fn unlink(&mut self, at: usize) {
        let (prev, next) = (self.slots[at].prev, self.slots[at].next);
        match prev {
            NIL => self.head = next,
            p => self.slots[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n as usize].prev = prev,
        }
        self.slots[at].prev = NIL;
        self.slots[at].next = NIL;
    }

    fn link_front(&mut self, at: usize) {
        self.slots[at].prev = NIL;
        self.slots[at].next = self.head;
        match self.head {
            NIL => self.tail = at as u32,
            h => self.slots[h as usize].prev = at as u32,
        }
        self.head = at as u32;
    }

    fn touch(&mut self, at: usize) {
        if self.head == at as u32 {
            return;
        }
        self.unlink(at);
        self.link_front(at);
    }

    // ---- spill files --------------------------------------------------

    fn spill_path(&self, id: SessionId) -> PathBuf {
        self.dir
            .join(format!("s{}-g{}.snap", id.slot(), id.generation()))
    }

    fn write_spill(&mut self, id: SessionId, bytes: &[u8]) -> Result<PathBuf, StoreError> {
        if !self.dir_ready {
            std::fs::create_dir_all(&self.dir)
                .map_err(|e| StoreError::Io(format!("create {}: {e}", self.dir.display())))?;
            self.dir_ready = true;
        }
        let path = self.spill_path(id);
        std::fs::write(&path, bytes)
            .map_err(|e| StoreError::Io(format!("write {}: {e}", path.display())))?;
        Ok(path)
    }

    fn read_spill(path: &PathBuf) -> Result<Vec<u8>, StoreError> {
        std::fs::read(path).map_err(|e| StoreError::Io(format!("read {}: {e}", path.display())))
    }

    // ---- public operations --------------------------------------------

    /// Install a freshly created/restored/adopted session under `id`.
    pub fn insert(&mut self, id: SessionId, session: Session) -> Result<(), StoreError> {
        let at = id.slot() as usize;
        if at >= self.slots.len() {
            self.slots.resize_with(at + 1, TableSlot::vacant);
        }
        if !matches!(self.slots[at].residency, Residency::Vacant) {
            return Err(StoreError::Occupied(id));
        }
        self.slots[at].generation = id.generation();
        self.slots[at].residency = Residency::Resident(Box::new(session));
        self.resident += 1;
        self.link_front(at);
        Ok(())
    }

    /// Borrow a session mutably, faulting it in from disk if evicted.
    /// Returns the session and whether a fault-in happened.
    pub fn get_mut(
        &mut self,
        id: SessionId,
        env: &SessionEnv,
    ) -> Result<(&mut Session, bool), StoreError> {
        let at = self.slot_checked(id)?;
        let faulted = if matches!(self.slots[at].residency, Residency::Evicted(_)) {
            let Residency::Evicted(info) =
                std::mem::replace(&mut self.slots[at].residency, Residency::Vacant)
            else {
                unreachable!()
            };
            let bytes = match Self::read_spill(&info.path) {
                Ok(bytes) => bytes,
                Err(e) => {
                    self.slots[at].residency = Residency::Evicted(info);
                    return Err(e);
                }
            };
            let session = match env.rebuild(&bytes) {
                Ok(session) => session,
                Err(e) => {
                    self.slots[at].residency = Residency::Evicted(info);
                    return Err(e);
                }
            };
            let _ = std::fs::remove_file(&info.path);
            self.slots[at].residency = Residency::Resident(Box::new(session));
            self.evicted -= 1;
            self.resident += 1;
            self.link_front(at);
            true
        } else {
            self.touch(at);
            false
        };
        match &mut self.slots[at].residency {
            Residency::Resident(session) => Ok((session, faulted)),
            _ => unreachable!("slot was just made resident"),
        }
    }

    /// Snapshot bytes for `id` without changing residency: a resident
    /// session is encoded in place, an evicted one is read straight from
    /// its spill file (no fault-in).
    pub fn snapshot_bytes(&mut self, id: SessionId) -> Result<Vec<u8>, StoreError> {
        let at = self.slot_checked(id)?;
        match &self.slots[at].residency {
            Residency::Resident(session) => {
                let bytes = session.snapshot()?;
                self.touch(at);
                Ok(bytes)
            }
            Residency::Evicted(info) => Self::read_spill(&info.path),
            Residency::Vacant => unreachable!("slot_checked rejects vacant slots"),
        }
    }

    /// Remove `id` from the table entirely (destroy or migration
    /// departure), returning what was held.
    pub fn extract(&mut self, id: SessionId) -> Result<Extracted, StoreError> {
        let at = self.slot_checked(id)?;
        match std::mem::replace(&mut self.slots[at].residency, Residency::Vacant) {
            Residency::Resident(session) => {
                self.unlink(at);
                self.resident -= 1;
                Ok(Extracted::Resident(session))
            }
            Residency::Evicted(info) => match Self::read_spill(&info.path) {
                Ok(bytes) => {
                    let _ = std::fs::remove_file(&info.path);
                    self.evicted -= 1;
                    Ok(Extracted::Evicted(bytes))
                }
                Err(e) => {
                    self.slots[at].residency = Residency::Evicted(info);
                    Err(e)
                }
            },
            Residency::Vacant => unreachable!("slot_checked rejects vacant slots"),
        }
    }

    /// Destroy `id`: drop a resident session, or delete an evicted one's
    /// spill file without reading it back.
    pub fn remove(&mut self, id: SessionId) -> Result<(), StoreError> {
        let at = self.slot_checked(id)?;
        match std::mem::replace(&mut self.slots[at].residency, Residency::Vacant) {
            Residency::Resident(_) => {
                self.unlink(at);
                self.resident -= 1;
            }
            Residency::Evicted(info) => {
                let _ = std::fs::remove_file(&info.path);
                self.evicted -= 1;
            }
            Residency::Vacant => unreachable!("slot_checked rejects vacant slots"),
        }
        Ok(())
    }

    /// Evict one specific resident session to disk now. Returns the
    /// snapshot size written (or the existing spill size if already
    /// evicted).
    pub fn evict_now(&mut self, id: SessionId) -> Result<u64, StoreError> {
        let at = self.slot_checked(id)?;
        match &self.slots[at].residency {
            Residency::Evicted(info) => Ok(info.bytes),
            Residency::Resident(session) => {
                let bytes = session.snapshot()?;
                let path = self.write_spill(id, &bytes)?;
                let written = bytes.len() as u64;
                self.unlink(at);
                self.resident -= 1;
                self.evicted += 1;
                self.slots[at].residency = Residency::Evicted(Box::new(EvictedSession {
                    path,
                    bytes: written,
                }));
                Ok(written)
            }
            Residency::Vacant => unreachable!("slot_checked rejects vacant slots"),
        }
    }

    /// Evict least-recently-used residents until the resident count is
    /// within budget. A victim whose snapshot or spill write fails is
    /// kept resident (and rotated to the front so the sweep still
    /// terminates); the sweep reports how many failed that way.
    pub fn enforce_budget(&mut self) -> EvictionSweep {
        let mut sweep = EvictionSweep::default();
        let Some(budget) = self.budget else {
            return sweep;
        };
        let mut failures_rotated = 0usize;
        while self.resident > budget + failures_rotated && self.tail != NIL {
            let at = self.tail as usize;
            let id = SessionId::pack(at as u32, self.slots[at].generation);
            match self.evict_now(id) {
                Ok(written) => {
                    sweep.evicted += 1;
                    sweep.bytes += written;
                }
                Err(_) => {
                    sweep.failed += 1;
                    failures_rotated += 1;
                    self.touch(at);
                }
            }
        }
        sweep
    }

    /// Delete every remaining spill file (worker shutdown).
    pub fn cleanup(&mut self) {
        for slot in &mut self.slots {
            if let Residency::Evicted(info) =
                std::mem::replace(&mut slot.residency, Residency::Vacant)
            {
                let _ = std::fs::remove_file(&info.path);
            }
        }
        if self.dir_ready {
            let _ = std::fs::remove_dir(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_ops::{parse_program, Strategy, Wme};
    use mpps_rete::ReteNetwork;

    fn env() -> SessionEnv {
        let program = parse_program("(p bump (n ^v <v>) --> (modify 1 ^v (+ <v> 1)))").unwrap();
        let fingerprint = crate::snapshot::program_fingerprint(&program);
        let program = Arc::new(program);
        let network = Arc::new(ReteNetwork::compile(&program).unwrap());
        SessionEnv {
            program,
            network,
            engine: EngineConfig {
                table_size: 16,
                record_trace: false,
            },
            fingerprint,
        }
    }

    fn session(env: &SessionEnv, seed: i64) -> Session {
        let mut s = Session::new(
            Arc::clone(&env.program),
            Arc::clone(&env.network),
            Strategy::Lex,
            env.engine,
            env.fingerprint,
        );
        s.ingest([Wme::new("tag", &[("seed", seed.into())])]);
        s.run(8).unwrap();
        s
    }

    fn tmp(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("mpps-store-{name}-{}", std::process::id()))
    }

    #[test]
    fn budget_evicts_lru_and_faults_back_in_byte_equal() {
        let env = env();
        let mut table = SessionTable::new(Some(2), tmp("lru"));
        let ids: Vec<SessionId> = (0..4).map(|slot| SessionId::pack(slot, 0)).collect();
        let mut originals = Vec::new();
        for (i, &id) in ids.iter().enumerate() {
            let s = session(&env, i as i64);
            originals.push(s.snapshot().unwrap());
            table.insert(id, s).unwrap();
        }
        let sweep = table.enforce_budget();
        assert_eq!(sweep.evicted, 2);
        assert_eq!(sweep.failed, 0);
        assert_eq!(table.resident_count(), 2);
        assert_eq!(table.evicted_count(), 2);
        // Insert order means sessions 0 and 1 are the LRU victims.
        assert_eq!(table.snapshot_bytes(ids[0]).unwrap(), originals[0]);
        // Fault-in restores the exact state and reclaims residency.
        let (s0, faulted) = table.get_mut(ids[0], &env).unwrap();
        assert!(faulted);
        assert_eq!(s0.snapshot().unwrap(), originals[0]);
        assert_eq!(table.resident_count(), 3);
        let (_, faulted_again) = table.get_mut(ids[0], &env).unwrap();
        assert!(!faulted_again);
        // Now over budget again: the sweep picks the new LRU tail (2),
        // not the just-touched 0.
        let sweep = table.enforce_budget();
        assert_eq!(sweep.evicted, 1);
        let (_, faulted) = table.get_mut(ids[0], &env).unwrap();
        assert!(!faulted, "recently used session must not be the victim");
        table.cleanup();
    }

    #[test]
    fn stale_and_unknown_ids_are_typed() {
        let env = env();
        let mut table = SessionTable::new(None, tmp("gen"));
        let old = SessionId::pack(0, 0);
        table.insert(old, session(&env, 1)).unwrap();
        table.remove(old).unwrap();
        let new = SessionId::pack(0, 1);
        table.insert(new, session(&env, 2)).unwrap();
        assert_eq!(
            table.get_mut(old, &env).map(|_| ()),
            Err(StoreError::Stale(old))
        );
        assert!(table.get_mut(new, &env).is_ok());
        let never = SessionId::pack(5, 0);
        assert_eq!(
            table.get_mut(never, &env).map(|_| ()),
            Err(StoreError::Unknown(never))
        );
        assert_eq!(
            table.insert(new, session(&env, 3)).unwrap_err(),
            StoreError::Occupied(new)
        );
        table.cleanup();
    }

    #[test]
    fn extract_returns_bytes_for_evicted_sessions_and_deletes_the_spill() {
        let env = env();
        let mut table = SessionTable::new(Some(0), tmp("extract"));
        let id = SessionId::pack(0, 0);
        let s = session(&env, 9);
        let expect = s.snapshot().unwrap();
        table.insert(id, s).unwrap();
        let sweep = table.enforce_budget();
        assert_eq!(sweep.evicted, 1);
        match table.extract(id).unwrap() {
            Extracted::Evicted(bytes) => assert_eq!(bytes, expect),
            Extracted::Resident(_) => panic!("session should have been evicted"),
        }
        assert_eq!(table.len(), 0);
        match table.extract(id) {
            Err(e) => assert_eq!(e, StoreError::Unknown(id), "extraction empties the slot"),
            Ok(_) => panic!("extraction should have emptied the slot"),
        }
        table.cleanup();
    }
}
