//! Versioned byte codec for session state.
//!
//! A snapshot captures an [`InterpreterState`] — live working memory,
//! pending (not-yet-matched) changes, refraction keys, `(write …)` outputs,
//! cycle count and halt flag — plus a fingerprint of the program it was
//! taken under. Matcher-internal memories are deliberately **not**
//! serialized: a matcher is a pure fold over the change batches it has
//! been fed, so restore rebuilds a fresh matcher by replaying the
//! matcher-visible WM as one batch
//! ([`mpps_ops::Interpreter::with_shared_state`]) and arrives at an
//! equivalent conflict set. That keeps the format small, engine-agnostic
//! (any [`mpps_ops::Matcher`] can host a restored session) and stable
//! across kernel rewrites.
//!
//! ## Format (version 1)
//!
//! All integers little-endian; strings are `u16` length + UTF-8 bytes;
//! symbols travel as strings (interning tables are process-local).
//!
//! ```text
//! magic    b"MPSS"
//! version  u16            — bump on any layout change
//! program  u64            — FNV-1a over each production's canonical text
//! strategy u8             — 0 = LEX, 1 = MEA
//! halted   u8
//! cycle    u64
//! next_id  u64            — next WME time tag
//! wm       u32 count, then (id u64, wme)*         — ascending time tags
//! fired    u32 count, then (prod u32, u16 n, id u64 ×n)*   — refraction
//! pending  u32 count, then (sign u8, id u64, wme)*
//! output   u32 count, then (u16 n, value ×n)*
//!
//! wme   := class str, u16 n, (attr str, value) ×n
//! value := tag u8 (0 int, 1 sym), then i64 | str
//! ```
//!
//! Decoders reject wrong magic, versions they do not understand, and
//! snapshots fingerprinted under a different program — restoring a WM
//! under the wrong ruleset would silently produce a wrong conflict set,
//! so the mismatch is an error, not a warning.

use mpps_ops::{
    intern, InterpreterState, ProductionId, Program, Sign, Strategy, Value, Wme, WmeChange, WmeId,
};
use std::fmt;

/// Magic bytes opening every snapshot.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"MPSS";

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u16 = 1;

/// Why a snapshot failed to decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnapshotError {
    /// Input ended before the structure it promised.
    Truncated,
    /// The magic bytes are not `b"MPSS"`.
    BadMagic,
    /// The version is newer (or older) than this build understands.
    UnsupportedVersion(u16),
    /// The snapshot was taken under a different program.
    ProgramMismatch {
        /// Fingerprint of the program the server is running.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
    /// A field held an impossible value (bad tag, invalid UTF-8, …).
    Corrupt(&'static str),
    /// The state cannot be represented in the format: a length exceeds
    /// the width its field is encoded with. Encoding would have silently
    /// truncated the count and produced a decodable-but-wrong snapshot,
    /// so the encoder refuses instead.
    TooLarge {
        /// Which field overflowed (`"fired-key ids"`, `"working memory"`, …).
        what: &'static str,
        /// The length that did not fit.
        len: usize,
        /// The largest length the field can carry.
        max: usize,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "truncated snapshot"),
            SnapshotError::BadMagic => write!(f, "not a session snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported snapshot version {v} (expected {SNAPSHOT_VERSION})"
                )
            }
            SnapshotError::ProgramMismatch { expected, found } => write!(
                f,
                "snapshot was taken under a different program \
                 (expected fingerprint {expected:#018x}, found {found:#018x})"
            ),
            SnapshotError::Corrupt(what) => write!(f, "corrupt snapshot: {what}"),
            SnapshotError::TooLarge { what, len, max } => write!(
                f,
                "state too large to snapshot: {what} has {len} entries \
                 (format limit {max})"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// FNV-1a fingerprint of a program's canonical text: the `Display` form
/// of every production, in order. Stable across processes (no interning
/// ids) and sensitive to any rule edit, reorder, add or remove.
pub fn program_fingerprint(program: &Program) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x1000_0000_01b3);
        }
    };
    for (_, production) in program.iter() {
        eat(production.to_string().as_bytes());
        eat(&[0]);
    }
    hash
}

/// Checked length prefix: `len` must fit the field's encoded width, or
/// the whole encode fails with [`SnapshotError::TooLarge`] — a snapshot
/// with a truncated count would decode cleanly into the *wrong* state.
fn put_len_u32(out: &mut Vec<u8>, len: usize, what: &'static str) -> Result<(), SnapshotError> {
    let v: u32 = len.try_into().map_err(|_| SnapshotError::TooLarge {
        what,
        len,
        max: u32::MAX as usize,
    })?;
    put_u32(out, v);
    Ok(())
}

fn put_len_u16(out: &mut Vec<u8>, len: usize, what: &'static str) -> Result<(), SnapshotError> {
    let v: u16 = len.try_into().map_err(|_| SnapshotError::TooLarge {
        what,
        len,
        max: u16::MAX as usize,
    })?;
    put_u16(out, v);
    Ok(())
}

/// Serialize `state` to snapshot bytes under `fingerprint`. Fails with
/// [`SnapshotError::TooLarge`] when any collection exceeds the width of
/// its length field instead of writing a truncated (decodable but wrong)
/// snapshot.
pub fn encode(state: &InterpreterState, fingerprint: u64) -> Result<Vec<u8>, SnapshotError> {
    let mut out = Vec::with_capacity(64 + state.wm.len() * 32);
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    put_u16(&mut out, SNAPSHOT_VERSION);
    put_u64(&mut out, fingerprint);
    out.push(match state.strategy {
        Strategy::Lex => 0,
        Strategy::Mea => 1,
    });
    out.push(u8::from(state.halted));
    put_u64(&mut out, state.cycle as u64);
    put_u64(&mut out, state.next_id);
    put_len_u32(&mut out, state.wm.len(), "working memory")?;
    for (id, wme) in &state.wm {
        put_u64(&mut out, id.0);
        put_wme(&mut out, wme)?;
    }
    put_len_u32(&mut out, state.fired_keys.len(), "refraction memory")?;
    for (prod, ids) in &state.fired_keys {
        put_u32(&mut out, prod.0);
        put_len_u16(&mut out, ids.len(), "fired-key ids")?;
        for id in ids {
            put_u64(&mut out, id.0);
        }
    }
    put_len_u32(&mut out, state.pending.len(), "pending changes")?;
    for change in &state.pending {
        out.push(match change.sign {
            Sign::Plus => 0,
            Sign::Minus => 1,
        });
        put_u64(&mut out, change.id.0);
        put_wme(&mut out, &change.wme)?;
    }
    put_len_u32(&mut out, state.output.len(), "output rows")?;
    for row in &state.output {
        put_len_u16(&mut out, row.len(), "output row values")?;
        for value in row {
            put_value(&mut out, *value)?;
        }
    }
    Ok(out)
}

/// Decode snapshot bytes, verifying magic, version and program
/// fingerprint.
pub fn decode(bytes: &[u8], expected_fingerprint: u64) -> Result<InterpreterState, SnapshotError> {
    let mut r = Reader { bytes, at: 0 };
    if r.take(4)? != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = r.u16()?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let found = r.u64()?;
    if found != expected_fingerprint {
        return Err(SnapshotError::ProgramMismatch {
            expected: expected_fingerprint,
            found,
        });
    }
    let strategy = match r.u8()? {
        0 => Strategy::Lex,
        1 => Strategy::Mea,
        _ => return Err(SnapshotError::Corrupt("strategy tag")),
    };
    let halted = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(SnapshotError::Corrupt("halt flag")),
    };
    let cycle = r.u64()? as usize;
    let next_id = r.u64()?;
    let wm_len = r.u32()? as usize;
    let mut wm = Vec::with_capacity(wm_len.min(1 << 16));
    for _ in 0..wm_len {
        let id = WmeId(r.u64()?);
        wm.push((id, r.wme()?));
    }
    let fired_len = r.u32()? as usize;
    let mut fired_keys = Vec::with_capacity(fired_len.min(1 << 16));
    for _ in 0..fired_len {
        let prod = ProductionId(r.u32()?);
        let n = r.u16()? as usize;
        let mut ids = Vec::with_capacity(n);
        for _ in 0..n {
            ids.push(WmeId(r.u64()?));
        }
        fired_keys.push((prod, ids));
    }
    let pending_len = r.u32()? as usize;
    let mut pending = Vec::with_capacity(pending_len.min(1 << 16));
    for _ in 0..pending_len {
        let sign = match r.u8()? {
            0 => Sign::Plus,
            1 => Sign::Minus,
            _ => return Err(SnapshotError::Corrupt("change sign")),
        };
        let id = WmeId(r.u64()?);
        let wme = r.wme()?;
        pending.push(match sign {
            Sign::Plus => WmeChange::add(id, wme),
            Sign::Minus => WmeChange::remove(id, wme),
        });
    }
    let out_len = r.u32()? as usize;
    let mut output = Vec::with_capacity(out_len.min(1 << 16));
    for _ in 0..out_len {
        let n = r.u16()? as usize;
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(r.value()?);
        }
        output.push(row);
    }
    if r.at != bytes.len() {
        return Err(SnapshotError::Corrupt("trailing bytes"));
    }
    Ok(InterpreterState {
        strategy,
        wm,
        next_id,
        fired_keys,
        pending,
        output,
        cycle,
        halted,
    })
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), SnapshotError> {
    put_len_u16(out, s.len(), "symbol bytes")?;
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

fn put_value(out: &mut Vec<u8>, v: Value) -> Result<(), SnapshotError> {
    match v {
        Value::Int(i) => {
            out.push(0);
            put_u64(out, i as u64);
        }
        Value::Sym(s) => {
            out.push(1);
            put_str(out, s.as_str())?;
        }
    }
    Ok(())
}

fn put_wme(out: &mut Vec<u8>, wme: &Wme) -> Result<(), SnapshotError> {
    put_str(out, wme.class().as_str())?;
    let attrs: Vec<_> = wme.attrs().collect();
    put_len_u16(out, attrs.len(), "WME attributes")?;
    for (attr, value) in attrs {
        put_str(out, attr.as_str())?;
        put_value(out, value)?;
    }
    Ok(())
}

struct Reader<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.bytes.len() {
            return Err(SnapshotError::Truncated);
        }
        let slice = &self.bytes[self.at..end];
        self.at = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, SnapshotError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<&'a str, SnapshotError> {
        let n = self.u16()? as usize;
        std::str::from_utf8(self.take(n)?).map_err(|_| SnapshotError::Corrupt("non-UTF-8 string"))
    }

    fn value(&mut self) -> Result<Value, SnapshotError> {
        match self.u8()? {
            0 => Ok(Value::Int(self.u64()? as i64)),
            1 => Ok(Value::Sym(intern(self.str()?))),
            _ => Err(SnapshotError::Corrupt("value tag")),
        }
    }

    fn wme(&mut self) -> Result<Wme, SnapshotError> {
        let class = intern(self.str()?);
        let n = self.u16()? as usize;
        let mut pairs = Vec::with_capacity(n);
        for _ in 0..n {
            let attr = intern(self.str()?);
            pairs.push((attr, self.value()?));
        }
        Ok(Wme::from_pairs(class, pairs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_ops::{parse_program, Interpreter, Strategy};

    fn state() -> InterpreterState {
        let program = parse_program(
            r#"
            (p tick (counter ^value <v>) -(counter ^value 0)
               --> (modify 1 ^value (- <v> 1)) (write tick <v>))
            "#,
        )
        .unwrap();
        let mut interp = Interpreter::new(program, Strategy::Lex);
        interp.wm_make("counter", &[("value", 3.into())]);
        interp.step().unwrap();
        interp.step().unwrap();
        interp.export_state()
    }

    #[test]
    fn round_trips_exactly() {
        let s = state();
        let bytes = encode(&s, 42).unwrap();
        assert_eq!(decode(&bytes, 42).unwrap(), s);
    }

    /// Regression: `ids.len() as u16` (and the `as u32` casts) silently
    /// truncated oversized collections — a refraction row of 65536 ids
    /// encoded as 0 ids followed by 65536 stray words, which decoded
    /// cleanly into the wrong state (or noise). The boundary must be
    /// exact: 65535 round-trips, 65536 is a typed refusal.
    #[test]
    fn refuses_fired_key_rows_past_the_u16_boundary() {
        let mut s = state();
        let at_limit: Vec<WmeId> = (0..u16::MAX as u64).map(WmeId).collect();
        s.fired_keys = vec![(ProductionId(0), at_limit)];
        let bytes = encode(&s, 42).expect("65535 ids fit the u16 length field");
        assert_eq!(decode(&bytes, 42).unwrap(), s);

        let over: Vec<WmeId> = (0..=u16::MAX as u64).map(WmeId).collect();
        s.fired_keys = vec![(ProductionId(0), over)];
        assert_eq!(
            encode(&s, 42),
            Err(SnapshotError::TooLarge {
                what: "fired-key ids",
                len: u16::MAX as usize + 1,
                max: u16::MAX as usize,
            })
        );
    }

    /// The same boundary holds for `u16`-counted output rows.
    #[test]
    fn refuses_output_rows_past_the_u16_boundary() {
        let mut s = state();
        s.output = vec![vec![Value::Int(7); u16::MAX as usize]];
        let bytes = encode(&s, 42).expect("65535 values fit");
        assert_eq!(decode(&bytes, 42).unwrap(), s);
        s.output = vec![vec![Value::Int(7); u16::MAX as usize + 1]];
        assert!(matches!(
            encode(&s, 42),
            Err(SnapshotError::TooLarge {
                what: "output row values",
                ..
            })
        ));
    }

    #[test]
    fn rejects_wrong_fingerprint_magic_version_and_truncation() {
        let s = state();
        let bytes = encode(&s, 42).unwrap();
        assert!(matches!(
            decode(&bytes, 43),
            Err(SnapshotError::ProgramMismatch {
                expected: 43,
                found: 42
            })
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode(&bad, 42), Err(SnapshotError::BadMagic));
        let mut newer = bytes.clone();
        newer[4] = 0xff;
        assert!(matches!(
            decode(&newer, 42),
            Err(SnapshotError::UnsupportedVersion(_))
        ));
        for cut in [0, 3, 7, bytes.len() / 2, bytes.len() - 1] {
            assert!(decode(&bytes[..cut], 42).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn fingerprint_tracks_program_text() {
        let a = parse_program("(p r (a ^x 1) --> (halt))").unwrap();
        let b = parse_program("(p r (a ^x 2) --> (halt))").unwrap();
        assert_ne!(program_fingerprint(&a), program_fingerprint(&b));
        let a2 = parse_program("(p r (a ^x 1) --> (halt))").unwrap();
        assert_eq!(program_fingerprint(&a), program_fingerprint(&a2));
    }
}
