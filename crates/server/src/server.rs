//! The multiplexing worker pool.
//!
//! A [`Server`] compiles the program once, spawns `workers` threads, and
//! pins every admitted session to one worker for its lifetime (sessions
//! are not `Send` across workers and never need to be — all operations on
//! a session execute on its home worker, so no session ever sees
//! concurrent mutation). The only way a session changes workers is
//! [`Server::migrate`], which moves its *snapshot bytes* through the
//! server at a quiescent point — the live object never crosses a thread.
//!
//! ## Admission
//!
//! Session → worker assignment reuses [`mpps_core::Partition`] — the same
//! abstraction the paper's §4 mapping uses for hash-bucket → processor
//! placement, one level up: sessions hash into a fixed shard space and a
//! partition maps shards to workers. Round-robin and seeded-random are
//! static; greedy rebuilds an LPT partition over live-session-per-shard
//! counts every `greedy_rebuild_interval` admissions. Pinned sessions
//! follow the new map only when [`Server::rebalance`] migrates them.
//!
//! Routing is a [`crate::slab::RouteSlab`]: ids are slab slots with a
//! generation tag, so lookup is one bounds-checked index instead of a
//! hash probe, and a handle held past destroy fails with a typed
//! [`ServerError::StaleSession`].
//!
//! ## Residency
//!
//! Each worker keeps its sessions in a [`crate::store::SessionTable`].
//! With [`ServerConfig::resident_budget`] set, the table evicts
//! least-recently-used sessions to snapshot files under
//! [`ServerConfig::evict_dir`] and faults them back in transparently on
//! their next request — fixed resident footprint per worker, the QCDSP
//! fixed-per-node-memory shape applied to session state.
//!
//! ## Backpressure
//!
//! Each worker has a bounded submission queue, enforced with a depth
//! counter on the server side: [`Server::submit`] rejects with
//! [`ServerError::Overloaded`] the moment the target worker's queue is at
//! capacity, without enqueueing anything. Every *accepted* request is
//! answered by exactly one [`Reply`] on the completion channel — acks are
//! never dropped, so `accepted == replies` is an invariant the stress
//! tests assert.
//!
//! ## Observability
//!
//! Workers count requests, MRA cycles, WME changes, evictions and
//! fault-ins per worker id, track high-water queue depth, and sample
//! per-request and per-cycle latency into exact histograms — all through
//! the [`mpps_telemetry::MetricSink`] machinery. [`Server::metrics`]
//! flushes every worker and merges the registries with the server-side
//! admission counters.

use crate::session::{Session, SessionId};
use crate::slab::{RouteError, RouteSlab};
use crate::snapshot::program_fingerprint;
use crate::store::{EvictionSweep, Extracted, SessionEnv, SessionTable};
use crate::ServerError;
use crossbeam::channel::{self, Receiver, Sender};
use mpps_core::Partition;
use mpps_ops::{Program, RunOutcome, Strategy, Wme, WmeId};
use mpps_rete::{suggest_plan, EngineConfig, ReteNetwork, SuggestOptions};
use mpps_telemetry::{MetricSink, MetricsRegistry};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Monotone id identifying one accepted request; every accepted request
/// produces exactly one [`Reply`] carrying it.
pub type RequestId = u64;

/// How sessions are assigned to workers at admission.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Sharding {
    /// Shards dealt to workers in rotation ([`Partition::round_robin`]).
    RoundRobin,
    /// Shards scattered by a seeded hash ([`Partition::random`]).
    Random(u64),
    /// LPT over live-session counts per shard ([`Partition::greedy`]),
    /// rebuilt periodically as sessions come and go.
    Greedy,
}

impl Sharding {
    /// Parse a CLI spelling: `rr`, `random[:seed]` or `greedy`.
    pub fn parse(s: &str) -> Option<Sharding> {
        match s {
            "rr" | "round-robin" => Some(Sharding::RoundRobin),
            "greedy" => Some(Sharding::Greedy),
            _ => {
                let rest = s.strip_prefix("random")?;
                match rest.strip_prefix(':') {
                    None if rest.is_empty() => Some(Sharding::Random(0xC0FFEE)),
                    Some(seed) => seed.parse().ok().map(Sharding::Random),
                    _ => None,
                }
            }
        }
    }
}

/// Distinguishes concurrently live servers in one process so their
/// default eviction directories never collide.
static SERVER_SEQ: AtomicU64 = AtomicU64::new(0);

/// Server tunables.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads (each owns its sessions exclusively). Must be ≥ 1;
    /// [`Server::new`] rejects 0 with [`ServerError::Config`].
    pub workers: usize,
    /// Bounded per-worker submission queue capacity; submissions beyond
    /// it are rejected with [`ServerError::Overloaded`]. Must be ≥ 1.
    pub queue_capacity: usize,
    /// Size of the shard space sessions hash into before the partition
    /// maps shards to workers. Must be ≥ 1; 0 is a config error, not a
    /// silent clamp.
    pub shards: u64,
    /// Shard → worker strategy.
    pub sharding: Sharding,
    /// Conflict-resolution strategy sessions run under.
    pub strategy: Strategy,
    /// Per-session match-engine configuration. The default table size is
    /// deliberately small (16): global-memory buckets cost space per
    /// *session* here, not per server, and serving WMs are tiny.
    pub engine: EngineConfig,
    /// Cycle budget per ingestion batch (guards runaway rule loops).
    pub max_cycles_per_batch: usize,
    /// How many admissions between greedy-partition rebuilds.
    pub greedy_rebuild_interval: u64,
    /// Compile the shared network through the *static* suggested
    /// transform plan ([`mpps_rete::suggest_plan`] with no activation or
    /// WME sample): hot cross-product joins are unshared so sessions do
    /// not serialize on one bucket. Split boundaries need a WME sample
    /// the server does not have, so splits stay off here — `mpps run
    /// --adapt` is the full loop.
    pub adapt: bool,
    /// Maximum sessions held live in memory **per worker**; the rest are
    /// snapshotted to disk and faulted back in on demand. `None` keeps
    /// everything resident (the pre-eviction behavior).
    pub resident_budget: Option<usize>,
    /// Where evicted-session snapshots live (one subdirectory per
    /// worker). `None` picks a per-server directory under the system
    /// temp dir; spill files are deleted on fault-in, destroy and worker
    /// shutdown either way.
    pub evict_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: mpps_telemetry::available_cpus().clamp(1, 8),
            queue_capacity: 64,
            shards: 256,
            sharding: Sharding::RoundRobin,
            strategy: Strategy::Lex,
            engine: EngineConfig {
                table_size: 16,
                record_trace: false,
            },
            max_cycles_per_batch: 4096,
            greedy_rebuild_interval: 64,
            adapt: false,
            resident_budget: None,
            evict_dir: None,
        }
    }
}

/// Work shipped to a worker thread.
enum Request {
    Create {
        session: SessionId,
        request: RequestId,
        initial: Vec<Wme>,
    },
    Ingest {
        session: SessionId,
        request: RequestId,
        wmes: Vec<Wme>,
    },
    Remove {
        session: SessionId,
        request: RequestId,
        id: WmeId,
    },
    Destroy {
        session: SessionId,
        request: RequestId,
    },
    Snapshot {
        session: SessionId,
        request: RequestId,
    },
    Restore {
        session: SessionId,
        request: RequestId,
        bytes: Vec<u8>,
    },
    /// Migration departure: extract the session and ship its snapshot
    /// bytes back (evicted sessions ship their spill file unread).
    Evacuate {
        session: SessionId,
        request: RequestId,
    },
    /// Migration arrival: rebuild the evacuated session under its
    /// *original* id. Control plane — sent by the server itself after a
    /// successful evacuation, so it bypasses the queue bound (the bytes
    /// are already off the source worker and must not be stranded).
    Adopt {
        session: SessionId,
        request: RequestId,
        bytes: Vec<u8>,
    },
    /// Force one session to disk now (tests and operational tooling; the
    /// budget sweep is the steady-state eviction path).
    Evict {
        session: SessionId,
        request: RequestId,
    },
    /// Control plane: ship the worker's metrics back. Not counted against
    /// queue capacity.
    Flush {
        request: RequestId,
    },
    Shutdown,
}

/// Completion shipped back from a worker. Every accepted request yields
/// exactly one reply.
#[derive(Clone, Debug)]
pub enum Reply {
    /// A session was created (or restored, or adopted after migration)
    /// and settled to quiescence.
    Ready {
        /// The session now live.
        session: SessionId,
        /// The request this answers.
        request: RequestId,
        /// Worker the session is pinned to.
        worker: usize,
    },
    /// An ingestion/removal batch was matched and fired to completion.
    Cycles {
        /// The session that ran.
        session: SessionId,
        /// The request this answers.
        request: RequestId,
        /// Worker that ran it.
        worker: usize,
        /// Productions fired while settling this batch.
        fired: usize,
        /// MRA cycles executed (including the final quiescent match).
        cycles: usize,
        /// WME changes the matcher processed (external + RHS-driven).
        wme_changes: usize,
        /// How the settle ended.
        outcome: RunOutcome,
        /// Wall time on the worker, start of request to reply, in ns.
        nanos: u64,
        /// Request start, ns since the server's epoch (for trace export).
        start_ns: u64,
    },
    /// A snapshot was taken.
    SnapshotBytes {
        /// Session snapshotted.
        session: SessionId,
        /// The request this answers.
        request: RequestId,
        /// The versioned snapshot (see [`crate::snapshot`]).
        bytes: Vec<u8>,
    },
    /// A session was destroyed.
    Destroyed {
        /// The session that is gone.
        session: SessionId,
        /// The request this answers.
        request: RequestId,
    },
    /// A session left its worker for migration; these are its snapshot
    /// bytes.
    Evacuated {
        /// The session that departed.
        session: SessionId,
        /// The request this answers.
        request: RequestId,
        /// Worker it departed from.
        worker: usize,
        /// Its state, in the versioned snapshot codec.
        bytes: Vec<u8>,
    },
    /// A session was forced to disk by [`Server::evict`].
    Evicted {
        /// The session now on disk.
        session: SessionId,
        /// The request this answers.
        request: RequestId,
        /// Worker holding its spill file.
        worker: usize,
        /// Spill size in bytes.
        bytes: u64,
    },
    /// A worker's metrics registry (answer to a flush).
    Metrics {
        /// The request this answers.
        request: RequestId,
        /// Worker that exported it.
        worker: usize,
        /// The worker's counters/gauges/histograms.
        registry: Box<MetricsRegistry>,
    },
    /// The request failed on the worker; the session (if any) is
    /// unchanged except as described by `error`.
    Failed {
        /// Session involved, when the request named one.
        session: Option<SessionId>,
        /// The request this answers.
        request: RequestId,
        /// Stringified error (transportable across the channel).
        error: String,
    },
}

impl Reply {
    /// The request id this reply answers.
    pub fn request(&self) -> RequestId {
        match self {
            Reply::Ready { request, .. }
            | Reply::Cycles { request, .. }
            | Reply::SnapshotBytes { request, .. }
            | Reply::Destroyed { request, .. }
            | Reply::Evacuated { request, .. }
            | Reply::Evicted { request, .. }
            | Reply::Metrics { request, .. }
            | Reply::Failed { request, .. } => *request,
        }
    }

    /// True when the reply answers a request that moved the in-flight
    /// counter (everything but metrics flushes).
    fn counted(&self) -> bool {
        !matches!(self, Reply::Metrics { .. })
    }
}

/// Patch the server-assigned request id into an outbound request.
fn patch_request(request: &mut Request, id: RequestId) {
    match request {
        Request::Create { request, .. }
        | Request::Ingest { request, .. }
        | Request::Remove { request, .. }
        | Request::Destroy { request, .. }
        | Request::Snapshot { request, .. }
        | Request::Restore { request, .. }
        | Request::Evacuate { request, .. }
        | Request::Adopt { request, .. }
        | Request::Evict { request, .. }
        | Request::Flush { request } => *request = id,
        Request::Shutdown => {}
    }
}

struct WorkerHandle {
    tx: Sender<Request>,
    depth: Arc<AtomicUsize>,
    join: Option<JoinHandle<()>>,
}

/// What one [`Server::rebalance`] pass did.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Live sessions examined against the rebuilt partition.
    pub examined: usize,
    /// Sessions migrated to their newly preferred worker.
    pub moved: usize,
    /// Moves skipped because a worker queue was saturated (retryable).
    pub skipped: usize,
}

/// The rule-engine server: one compiled program, many sessions, a worker
/// pool with bounded queues. See the [module docs](self) for the design.
pub struct Server {
    program: Arc<Program>,
    network: Arc<ReteNetwork>,
    config: ServerConfig,
    fingerprint: u64,
    workers: Vec<WorkerHandle>,
    reply_rx: Receiver<Reply>,
    buffered: std::collections::VecDeque<Reply>,
    partition: Partition,
    routes: RouteSlab,
    shard_sessions: Vec<u64>,
    /// Create/Restore/Adopt requests whose `Ready` has not arrived yet:
    /// request id → the admission to unwind if the worker reports
    /// failure instead (the session never materialized there).
    pending_admissions: HashMap<u64, (SessionId, usize)>,
    admissions: u64,
    next_request: u64,
    in_flight: usize,
    overloaded: u64,
    migrations: u64,
    admitted_per_worker: Vec<u64>,
}

impl Server {
    /// Validate `config`, compile `program` and spawn the worker pool.
    /// With [`ServerConfig::adapt`] the shared network is compiled through
    /// the static suggested transform plan instead of the plain compile.
    ///
    /// Degenerate configurations (`workers == 0`, `shards == 0`,
    /// `queue_capacity == 0`) are rejected with [`ServerError::Config`] —
    /// not silently clamped.
    pub fn new(program: Program, config: ServerConfig) -> Result<Server, ServerError> {
        if config.workers == 0 {
            return Err(ServerError::Config("workers must be at least 1".into()));
        }
        if config.shards == 0 {
            return Err(ServerError::Config("shards must be at least 1".into()));
        }
        if config.queue_capacity == 0 {
            return Err(ServerError::Config(
                "queue capacity must be at least 1".into(),
            ));
        }
        let engine = |e: mpps_ops::OpsError| ServerError::Engine(e.to_string());
        let network = if config.adapt {
            let net = ReteNetwork::compile(&program).map_err(engine)?;
            let plan = suggest_plan(
                &net,
                &program,
                &std::collections::BTreeMap::new(),
                &[],
                &SuggestOptions::default(),
            );
            Arc::new(ReteNetwork::compile_planned(&program, net.options(), &plan).map_err(engine)?)
        } else {
            Arc::new(ReteNetwork::compile(&program).map_err(engine)?)
        };
        let fingerprint = program_fingerprint(&program);
        let program = Arc::new(program);
        let workers = config.workers;
        let evict_base = config.evict_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "mpps-evict-{}-{}",
                std::process::id(),
                SERVER_SEQ.fetch_add(1, Ordering::Relaxed)
            ))
        });
        let (reply_tx, reply_rx) = channel::unbounded();
        let mut handles = Vec::with_capacity(workers);
        let epoch = Instant::now();
        for index in 0..workers {
            let (tx, rx) = channel::unbounded();
            let depth = Arc::new(AtomicUsize::new(0));
            let ctx = WorkerCtx {
                index,
                program: Arc::clone(&program),
                network: Arc::clone(&network),
                config: config.clone(),
                fingerprint,
                depth: Arc::clone(&depth),
                reply_tx: reply_tx.clone(),
                epoch,
                evict_dir: evict_base.join(format!("w{index}")),
            };
            let join = std::thread::Builder::new()
                .name(format!("mpps-serve-{index}"))
                .spawn(move || worker_loop(ctx, rx))
                .expect("spawn server worker");
            handles.push(WorkerHandle {
                tx,
                depth,
                join: Some(join),
            });
        }
        let partition = build_partition(&config, workers, &vec![0; config.shards as usize]);
        let shard_sessions = vec![0; config.shards as usize];
        Ok(Server {
            program,
            network,
            config,
            fingerprint,
            workers: handles,
            reply_rx,
            buffered: std::collections::VecDeque::new(),
            partition,
            routes: RouteSlab::new(),
            shard_sessions,
            pending_admissions: HashMap::new(),
            admissions: 0,
            next_request: 0,
            overloaded: 0,
            migrations: 0,
            in_flight: 0,
            admitted_per_worker: vec![0; workers],
        })
    }

    /// The shared program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// The shared compiled network.
    pub fn network(&self) -> &ReteNetwork {
        &self.network
    }

    /// The configuration the pool runs with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The fingerprint snapshots taken on this server carry (and restores
    /// are checked against).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Live sessions (admitted and not destroyed).
    pub fn sessions(&self) -> usize {
        self.routes.len()
    }

    /// Live-session count per shard — the activity vector greedy
    /// admission packs with. Invariant: sums to [`Server::sessions`]
    /// once every Create/Restore has been answered.
    pub fn shard_session_counts(&self) -> &[u64] {
        &self.shard_sessions
    }

    /// The worker a live session is currently pinned to.
    pub fn worker_of(&self, session: SessionId) -> Result<usize, ServerError> {
        self.route(session)
    }

    /// Accepted requests whose replies have not been received yet.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// Submissions rejected with [`ServerError::Overloaded`] so far.
    pub fn overload_rejections(&self) -> u64 {
        self.overloaded
    }

    /// Sessions moved between workers by [`Server::migrate`] so far.
    pub fn migrations(&self) -> u64 {
        self.migrations
    }

    /// Instantaneous submission-queue depth per worker.
    pub fn worker_depths(&self) -> Vec<usize> {
        self.workers
            .iter()
            .map(|w| w.depth.load(Ordering::Relaxed))
            .collect()
    }

    /// Admit a new session (pinned to a worker by the sharding policy)
    /// and ship its initial WM. Counts against the target worker's queue.
    pub fn create_session(
        &mut self,
        initial: Vec<Wme>,
    ) -> Result<(SessionId, RequestId), ServerError> {
        let session = self.routes.peek_next();
        let worker = self.admit(session)?;
        let request = self
            .send(
                worker,
                session,
                Request::Create {
                    session,
                    request: 0, // patched by send()
                    initial,
                },
            )
            .inspect_err(|_| self.unwind_admission(session, worker))?;
        self.pending_admissions.insert(request, (session, worker));
        Ok((session, request))
    }

    /// Restore a snapshot as a **new** session on this server.
    pub fn restore(&mut self, bytes: Vec<u8>) -> Result<(SessionId, RequestId), ServerError> {
        let session = self.routes.peek_next();
        let worker = self.admit(session)?;
        let request = self
            .send(
                worker,
                session,
                Request::Restore {
                    session,
                    request: 0,
                    bytes,
                },
            )
            .inspect_err(|_| self.unwind_admission(session, worker))?;
        self.pending_admissions.insert(request, (session, worker));
        Ok((session, request))
    }

    /// Submit a batch of WMEs to a session. The worker ingests the batch
    /// and runs the MRA cycle to quiescence (bounded by
    /// `max_cycles_per_batch`), then replies [`Reply::Cycles`].
    pub fn submit(&mut self, session: SessionId, wmes: Vec<Wme>) -> Result<RequestId, ServerError> {
        let worker = self.route(session)?;
        self.send(
            worker,
            session,
            Request::Ingest {
                session,
                request: 0,
                wmes,
            },
        )
    }

    /// Submit removal of one WME (by time tag) to a session.
    pub fn submit_remove(
        &mut self,
        session: SessionId,
        id: WmeId,
    ) -> Result<RequestId, ServerError> {
        let worker = self.route(session)?;
        self.send(
            worker,
            session,
            Request::Remove {
                session,
                request: 0,
                id,
            },
        )
    }

    /// Request a snapshot of a session (replies [`Reply::SnapshotBytes`]).
    pub fn snapshot(&mut self, session: SessionId) -> Result<RequestId, ServerError> {
        let worker = self.route(session)?;
        self.send(
            worker,
            session,
            Request::Snapshot {
                session,
                request: 0,
            },
        )
    }

    /// Force a session's state to disk now (replies [`Reply::Evicted`]).
    /// The next request for it faults it back in transparently. The
    /// budget sweep evicts LRU sessions automatically; this entry point
    /// exists for tests and operational tooling.
    pub fn evict(&mut self, session: SessionId) -> Result<RequestId, ServerError> {
        let worker = self.route(session)?;
        self.send(
            worker,
            session,
            Request::Evict {
                session,
                request: 0,
            },
        )
    }

    /// Destroy a session. Further submissions for it fail immediately
    /// with [`ServerError::StaleSession`]; requests already queued are
    /// still answered. Fails with [`ServerError::ShardAccounting`] —
    /// before any state changes — if the shard ledger has drifted (an
    /// internal invariant breach that `debug_assert!` used to hide in
    /// release builds).
    pub fn destroy_session(&mut self, session: SessionId) -> Result<RequestId, ServerError> {
        let worker = self.route(session)?;
        let shard = self.shard_of(session);
        if self.shard_sessions[shard] == 0 {
            return Err(ServerError::ShardAccounting { session, shard });
        }
        let request = self.send(
            worker,
            session,
            Request::Destroy {
                session,
                request: 0,
            },
        )?;
        self.routes
            .remove(session)
            .expect("route() above proved the session live");
        self.shard_sessions[shard] -= 1;
        Ok(request)
    }

    /// Move a live session to a different worker through the snapshot
    /// codec, at a quiescent point: the source worker evacuates the
    /// session (snapshot bytes; an evicted session ships its spill file
    /// unread), and once those bytes are back on the server the target
    /// worker adopts them under the **same** [`SessionId`]. Because this
    /// method holds `&mut self`, no new request for the session can be
    /// queued between evacuation and adoption, and per-worker FIFO order
    /// guarantees requests accepted before the migration complete first.
    ///
    /// Returns the adoption's request id; its [`Reply::Ready`] confirms
    /// the session is live on `to`. Fails without state change if `to`
    /// is out of range, equals the current worker, or the source worker's
    /// queue is saturated.
    pub fn migrate(
        &mut self,
        session: SessionId,
        to: usize,
        timeout: Duration,
    ) -> Result<RequestId, ServerError> {
        let from = self.route(session)?;
        if to >= self.workers.len() {
            return Err(ServerError::Config(format!(
                "cannot migrate {session} to worker {to}: only {} workers",
                self.workers.len()
            )));
        }
        if to == from {
            return Err(ServerError::Config(format!(
                "session {session} is already on worker {to}"
            )));
        }
        let evac = self.send(
            from,
            session,
            Request::Evacuate {
                session,
                request: 0,
            },
        )?;
        let bytes = match self.wait_for(evac, timeout)? {
            Reply::Evacuated { bytes, .. } => bytes,
            Reply::Failed { error, .. } => return Err(ServerError::Engine(error)),
            other => {
                return Err(ServerError::Engine(format!(
                    "evacuation answered by unexpected reply {other:?}"
                )))
            }
        };
        // The session now exists only as bytes we hold. Adoption is
        // control-plane: it must not be bounced by a full queue, or the
        // state would be stranded.
        let adopt = self.send_control(
            to,
            Request::Adopt {
                session,
                request: 0,
                bytes,
            },
        )?;
        self.routes
            .set_worker(session, to)
            .expect("route() above proved the session live");
        // If adoption fails on the worker (disk-level corruption is the
        // only path), account() unwinds this like a failed admission so
        // the routing table never points at a session that isn't there.
        self.pending_admissions.insert(adopt, (session, to));
        self.migrations += 1;
        Ok(adopt)
    }

    /// Rebuild the partition as greedy LPT over the current per-shard
    /// live-session counts and migrate every session whose shard now maps
    /// to a different worker. This is the other half of greedy admission:
    /// admission only places *future* sessions; rebalance moves the ones
    /// already pinned. Saturated workers cause moves to be skipped (and
    /// reported), not failed.
    pub fn rebalance(&mut self, timeout: Duration) -> Result<RebalanceReport, ServerError> {
        self.partition = Partition::greedy(&self.shard_sessions, self.workers.len());
        let moves: Vec<(SessionId, usize)> = self
            .routes
            .iter_live()
            .map(|(id, cur)| (id, cur, self.partition.owner(self.shard_of(id) as u64)))
            .filter(|&(_, cur, want)| cur != want)
            .map(|(id, _, want)| (id, want))
            .collect();
        let mut report = RebalanceReport {
            examined: self.routes.len(),
            ..RebalanceReport::default()
        };
        for (session, to) in moves {
            match self.migrate(session, to, timeout) {
                Ok(_) => report.moved += 1,
                Err(ServerError::Overloaded { .. }) => report.skipped += 1,
                Err(e) => return Err(e),
            }
        }
        Ok(report)
    }

    /// Receive the next reply, waiting up to `timeout`.
    pub fn recv_timeout(&mut self, timeout: Duration) -> Result<Reply, ServerError> {
        if let Some(reply) = self.buffered.pop_front() {
            return Ok(reply);
        }
        match self.reply_rx.recv_timeout(timeout) {
            Ok(reply) => {
                self.account(&reply);
                Ok(reply)
            }
            Err(channel::RecvTimeoutError::Timeout) => Err(ServerError::Timeout),
            Err(channel::RecvTimeoutError::Disconnected) => Err(ServerError::Shutdown),
        }
    }

    /// Receive a reply if one is already waiting.
    pub fn try_recv(&mut self) -> Option<Reply> {
        if let Some(reply) = self.buffered.pop_front() {
            return Some(reply);
        }
        let reply = self.reply_rx.try_recv().ok()?;
        self.account(&reply);
        Some(reply)
    }

    /// Wait for the reply answering `request`, buffering any other
    /// replies that arrive first (they are still delivered by later
    /// `recv`/`drain` calls — no ack is lost).
    pub fn wait_for(
        &mut self,
        request: RequestId,
        timeout: Duration,
    ) -> Result<Reply, ServerError> {
        if let Some(at) = self.buffered.iter().position(|r| r.request() == request) {
            return Ok(self.buffered.remove(at).expect("position is in range"));
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(ServerError::Timeout)?;
            match self.reply_rx.recv_timeout(remaining) {
                Ok(reply) => {
                    self.account(&reply);
                    if reply.request() == request {
                        return Ok(reply);
                    }
                    self.buffered.push_back(reply);
                }
                Err(channel::RecvTimeoutError::Timeout) => return Err(ServerError::Timeout),
                Err(channel::RecvTimeoutError::Disconnected) => return Err(ServerError::Shutdown),
            }
        }
    }

    /// Drain replies until nothing is in flight, applying `sink` to each.
    /// `timeout` bounds the wait for each *individual* reply, so a healthy
    /// server drains in time proportional to the backlog.
    pub fn drain(
        &mut self,
        timeout: Duration,
        mut sink: impl FnMut(&Reply),
    ) -> Result<usize, ServerError> {
        let mut drained = 0;
        while let Some(reply) = self.buffered.pop_front() {
            sink(&reply);
            drained += 1;
        }
        while self.in_flight > 0 {
            let reply = self.recv_timeout(timeout)?;
            sink(&reply);
            drained += 1;
        }
        Ok(drained)
    }

    /// Flush every worker's metrics and merge them with the server-side
    /// admission counters: `serve.admitted` (sessions per worker),
    /// `serve.overloaded` (rejected submissions), `serve.migrations`
    /// (sessions moved between workers).
    pub fn metrics(&mut self, timeout: Duration) -> Result<MetricsRegistry, ServerError> {
        let mut merged = MetricsRegistry::new();
        for worker in 0..self.workers.len() {
            let request = self.next_request();
            self.workers[worker]
                .tx
                .send(Request::Flush { request })
                .map_err(|_| ServerError::Shutdown)?;
            match self.wait_for(request, timeout)? {
                Reply::Metrics { registry, .. } => merged.merge(&registry),
                other => {
                    // Only a Metrics reply ever carries a flush request id.
                    debug_assert!(false, "flush answered by {other:?}");
                }
            }
        }
        for (worker, &count) in self.admitted_per_worker.iter().enumerate() {
            if count > 0 {
                merged.add("serve.admitted", worker as u64, count);
            }
        }
        if self.overloaded > 0 {
            merged.add("serve.overloaded", 0, self.overloaded);
        }
        if self.migrations > 0 {
            merged.add("serve.migrations", 0, self.migrations);
        }
        Ok(merged)
    }

    fn shard_of(&self, session: SessionId) -> usize {
        // Multiplicative hash so consecutive ids spread across shards
        // (greedy and random placements would otherwise see runs).
        let h = session.0.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 16;
        (h % self.partition.table_size()) as usize
    }

    /// Pick (and record) the worker for a new session.
    fn admit(&mut self, session: SessionId) -> Result<usize, ServerError> {
        if self.config.sharding == Sharding::Greedy
            && self
                .admissions
                .is_multiple_of(self.config.greedy_rebuild_interval.max(1))
        {
            self.partition =
                build_partition(&self.config, self.workers.len(), &self.shard_sessions);
        }
        self.admissions += 1;
        let shard = self.shard_of(session);
        let worker = self.partition.owner(shard as u64);
        // Reject at admission when the worker is saturated, before any
        // state is recorded (the peeked id is not consumed either).
        let depth = self.workers[worker].depth.load(Ordering::Acquire);
        if depth >= self.config.queue_capacity {
            self.overloaded += 1;
            return Err(ServerError::Overloaded {
                session,
                worker,
                capacity: self.config.queue_capacity,
            });
        }
        let issued = self.routes.insert(worker);
        debug_assert_eq!(issued, session, "peeked id must be the issued id");
        self.shard_sessions[shard] += 1;
        self.admitted_per_worker[worker] += 1;
        Ok(worker)
    }

    /// Roll back [`Server::admit`]'s bookkeeping for a session whose
    /// Create/Restore never reached — or never materialized on — its
    /// worker. A session destroyed mid-flight was already unwound by
    /// `destroy_session` (its route is gone), so this is a no-op then;
    /// without that guard the count would be decremented twice and drift
    /// negative.
    fn unwind_admission(&mut self, session: SessionId, worker: usize) {
        if self.routes.remove(session).is_err() {
            return;
        }
        let shard = self.shard_of(session);
        self.shard_sessions[shard] = self.shard_sessions[shard].saturating_sub(1);
        self.admitted_per_worker[worker] = self.admitted_per_worker[worker].saturating_sub(1);
    }

    fn route(&self, session: SessionId) -> Result<usize, ServerError> {
        self.routes.get(session).map_err(|e| match e {
            RouteError::Stale(id) => ServerError::StaleSession(id),
            RouteError::Unknown(id) => ServerError::UnknownSession(id),
        })
    }

    fn next_request(&mut self) -> RequestId {
        self.next_request += 1;
        self.next_request
    }

    /// Enqueue a data-plane request on `worker`, enforcing the bounded
    /// queue. On success the request id is patched in and returned.
    fn send(
        &mut self,
        worker: usize,
        session: SessionId,
        mut request: Request,
    ) -> Result<RequestId, ServerError> {
        let handle = &self.workers[worker];
        // Optimistically claim a slot; undo if over capacity. The counter
        // is the *only* admission gate, so claim-then-check is race-free
        // even with a future multi-submitter front end.
        let depth = handle.depth.fetch_add(1, Ordering::AcqRel);
        if depth >= self.config.queue_capacity {
            handle.depth.fetch_sub(1, Ordering::AcqRel);
            self.overloaded += 1;
            return Err(ServerError::Overloaded {
                session,
                worker,
                capacity: self.config.queue_capacity,
            });
        }
        let id = self.next_request();
        patch_request(&mut request, id);
        if self.workers[worker].tx.send(request).is_err() {
            self.workers[worker].depth.fetch_sub(1, Ordering::AcqRel);
            return Err(ServerError::Shutdown);
        }
        self.in_flight += 1;
        Ok(id)
    }

    /// Enqueue a control-plane request on `worker`: not subject to the
    /// queue bound (the worker will not move the depth counter for it),
    /// but still answered by exactly one counted reply.
    fn send_control(
        &mut self,
        worker: usize,
        mut request: Request,
    ) -> Result<RequestId, ServerError> {
        let id = self.next_request();
        patch_request(&mut request, id);
        if self.workers[worker].tx.send(request).is_err() {
            return Err(ServerError::Shutdown);
        }
        self.in_flight += 1;
        Ok(id)
    }

    fn account(&mut self, reply: &Reply) {
        if reply.counted() {
            self.in_flight = self.in_flight.saturating_sub(1);
        }
        match reply {
            // Admission (or adoption) confirmed: the session exists on
            // its worker.
            Reply::Ready { request, .. } => {
                self.pending_admissions.remove(request);
            }
            // A failed Create/Restore/Adopt never materialized the
            // session on the worker: unwind the admission so the
            // live-session counts the greedy rebuild packs against don't
            // go stale.
            Reply::Failed { request, .. } => {
                if let Some((session, worker)) = self.pending_admissions.remove(request) {
                    self.unwind_admission(session, worker);
                }
            }
            _ => {}
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        for worker in &self.workers {
            let _ = worker.tx.send(Request::Shutdown);
        }
        for worker in &mut self.workers {
            if let Some(join) = worker.join.take() {
                let _ = join.join();
            }
        }
    }
}

fn build_partition(config: &ServerConfig, workers: usize, shard_sessions: &[u64]) -> Partition {
    match config.sharding {
        Sharding::RoundRobin => Partition::round_robin(config.shards, workers),
        Sharding::Random(seed) => Partition::random(config.shards, workers, seed),
        Sharding::Greedy => Partition::greedy(shard_sessions, workers),
    }
}

/// Everything a worker thread needs, moved in at spawn.
struct WorkerCtx {
    index: usize,
    program: Arc<Program>,
    network: Arc<ReteNetwork>,
    config: ServerConfig,
    fingerprint: u64,
    depth: Arc<AtomicUsize>,
    reply_tx: Sender<Reply>,
    epoch: Instant,
    /// This worker's spill directory for evicted sessions.
    evict_dir: PathBuf,
}

fn worker_loop(ctx: WorkerCtx, rx: Receiver<Request>) {
    let mut table = SessionTable::new(ctx.config.resident_budget, ctx.evict_dir.clone());
    let env = SessionEnv {
        program: Arc::clone(&ctx.program),
        network: Arc::clone(&ctx.network),
        engine: ctx.config.engine,
        fingerprint: ctx.fingerprint,
    };
    let mut metrics = MetricsRegistry::new();
    let wid = ctx.index as u64;
    while let Ok(request) = rx.recv() {
        // Control-plane messages (flush/adopt/shutdown) bypass the
        // bounded queue, so only data-plane requests move the depth
        // counter.
        let counted = !matches!(
            request,
            Request::Flush { .. } | Request::Adopt { .. } | Request::Shutdown
        );
        // High-water queue depth *including* the request being taken.
        metrics.set(
            "serve.queue_depth",
            wid,
            ctx.depth.load(Ordering::Relaxed) as u64,
        );
        let mut sweep = EvictionSweep::default();
        let reply = match request {
            Request::Shutdown => break,
            Request::Flush { request } => {
                metrics.set("serve.sessions_live", wid, table.len() as u64);
                metrics.set("serve.resident", wid, table.resident_count() as u64);
                metrics.set("serve.evicted", wid, table.evicted_count() as u64);
                Some(Reply::Metrics {
                    request,
                    worker: ctx.index,
                    registry: Box::new(metrics.clone()),
                })
            }
            Request::Create {
                session,
                request,
                initial,
            } => {
                let mut s = Session::new(
                    Arc::clone(&ctx.program),
                    Arc::clone(&ctx.network),
                    ctx.config.strategy,
                    ctx.config.engine,
                    ctx.fingerprint,
                );
                let reply =
                    settle_into(&ctx, &mut metrics, &mut s, session, request, initial, true);
                let reply = if matches!(reply, Reply::Failed { .. }) {
                    reply
                } else {
                    match table.insert(session, s) {
                        Ok(()) => reply,
                        Err(e) => fail(session, request, e.to_string()),
                    }
                };
                metrics.add("serve.sessions_created", wid, 1);
                sweep = table.enforce_budget();
                Some(reply)
            }
            Request::Restore {
                session,
                request,
                bytes,
            } => Some(
                match admit_bytes(&ctx, &mut table, session, request, &bytes) {
                    Ok(reply) => {
                        metrics.add("serve.sessions_restored", wid, 1);
                        sweep = table.enforce_budget();
                        reply
                    }
                    Err(reply) => reply,
                },
            ),
            Request::Adopt {
                session,
                request,
                bytes,
            } => Some(
                match admit_bytes(&ctx, &mut table, session, request, &bytes) {
                    Ok(reply) => {
                        metrics.add("serve.sessions_adopted", wid, 1);
                        sweep = table.enforce_budget();
                        reply
                    }
                    Err(reply) => reply,
                },
            ),
            Request::Ingest {
                session,
                request,
                wmes,
            } => Some(match table.get_mut(session, &env) {
                Err(e) => fail(session, request, e.to_string()),
                Ok((s, faulted)) => {
                    if faulted {
                        metrics.add("serve.faultins", wid, 1);
                    }
                    let reply = settle_into(&ctx, &mut metrics, s, session, request, wmes, false);
                    sweep = table.enforce_budget();
                    reply
                }
            }),
            Request::Remove {
                session,
                request,
                id,
            } => Some(match table.get_mut(session, &env) {
                Err(e) => fail(session, request, e.to_string()),
                Ok((s, faulted)) => {
                    if faulted {
                        metrics.add("serve.faultins", wid, 1);
                    }
                    let reply = match s.remove(id) {
                        Err(e) => fail(session, request, e.to_string()),
                        Ok(()) => {
                            settle_into(&ctx, &mut metrics, s, session, request, Vec::new(), false)
                        }
                    };
                    sweep = table.enforce_budget();
                    reply
                }
            }),
            Request::Snapshot { session, request } => Some(match table.snapshot_bytes(session) {
                Err(e) => fail(session, request, e.to_string()),
                Ok(bytes) => {
                    metrics.add("serve.snapshots", wid, 1);
                    Reply::SnapshotBytes {
                        session,
                        request,
                        bytes,
                    }
                }
            }),
            Request::Evacuate { session, request } => Some(match table.extract(session) {
                Err(e) => fail(session, request, e.to_string()),
                Ok(Extracted::Evicted(bytes)) => {
                    metrics.add("serve.evacuations", wid, 1);
                    Reply::Evacuated {
                        session,
                        request,
                        worker: ctx.index,
                        bytes,
                    }
                }
                Ok(Extracted::Resident(s)) => match s.snapshot() {
                    Ok(bytes) => {
                        metrics.add("serve.evacuations", wid, 1);
                        Reply::Evacuated {
                            session,
                            request,
                            worker: ctx.index,
                            bytes,
                        }
                    }
                    Err(e) => {
                        // The session must not be lost to a refused
                        // snapshot: put it back and fail the migration.
                        let _ = table.insert(session, *s);
                        fail(session, request, e.to_string())
                    }
                },
            }),
            Request::Evict { session, request } => Some(match table.evict_now(session) {
                Err(e) => fail(session, request, e.to_string()),
                Ok(bytes) => {
                    metrics.add("serve.evictions", wid, 1);
                    Reply::Evicted {
                        session,
                        request,
                        worker: ctx.index,
                        bytes,
                    }
                }
            }),
            Request::Destroy { session, request } => Some(match table.remove(session) {
                Err(e) => fail(session, request, e.to_string()),
                Ok(()) => Reply::Destroyed { session, request },
            }),
        };
        if sweep.evicted > 0 || sweep.failed > 0 {
            metrics.add("serve.evictions", wid, sweep.evicted);
            metrics.add("serve.eviction_bytes", wid, sweep.bytes);
            if sweep.failed > 0 {
                metrics.add("serve.evict_failed", wid, sweep.failed);
            }
        }
        if counted {
            ctx.depth.fetch_sub(1, Ordering::AcqRel);
        }
        if let Some(reply) = reply {
            if ctx.reply_tx.send(reply).is_err() {
                break; // server dropped; nobody is listening
            }
        }
    }
    table.cleanup();
}

/// Rebuild a session from snapshot bytes (restore or migration adoption)
/// and install it. Returns the `Ready` reply, or the `Failed` reply as
/// `Err` so callers can skip their success-path metrics.
fn admit_bytes(
    ctx: &WorkerCtx,
    table: &mut SessionTable,
    session: SessionId,
    request: RequestId,
    bytes: &[u8],
) -> Result<Reply, Reply> {
    match Session::restore(
        Arc::clone(&ctx.program),
        Arc::clone(&ctx.network),
        ctx.config.engine,
        ctx.fingerprint,
        bytes,
    ) {
        Ok(s) => match table.insert(session, s) {
            Ok(()) => Ok(Reply::Ready {
                session,
                request,
                worker: ctx.index,
            }),
            Err(e) => Err(fail(session, request, e.to_string())),
        },
        Err(e) => Err(fail(session, request, e.to_string())),
    }
}

fn fail(session: SessionId, request: RequestId, error: String) -> Reply {
    Reply::Failed {
        session: Some(session),
        request,
        error,
    }
}

/// Ingest `wmes` into `s` and run the MRA cycle to quiescence, recording
/// latency and throughput metrics. `creating` selects the Ready reply
/// shape (session admission) over Cycles (steady-state ingestion).
#[allow(clippy::too_many_arguments)]
fn settle_into(
    ctx: &WorkerCtx,
    metrics: &mut MetricsRegistry,
    s: &mut Session,
    session: SessionId,
    request: RequestId,
    wmes: Vec<Wme>,
    creating: bool,
) -> Reply {
    let wid = ctx.index as u64;
    let started = Instant::now();
    let start_ns = started.duration_since(ctx.epoch).as_nanos() as u64;
    s.ingest(wmes);
    match s.run(ctx.config.max_cycles_per_batch) {
        Err(e) => Reply::Failed {
            session: Some(session),
            request,
            error: e.to_string(),
        },
        Ok((result, wme_changes)) => {
            let nanos = started.elapsed().as_nanos() as u64;
            metrics.add("serve.requests", wid, 1);
            metrics.add("serve.cycles", wid, result.cycles as u64);
            metrics.add("serve.fired", wid, result.fired.len() as u64);
            metrics.add("serve.wme_changes", wid, wme_changes as u64);
            metrics.observe("serve.batch_ns", nanos);
            metrics.observe("serve.cycle_ns", nanos / (result.cycles.max(1) as u64));
            if creating {
                Reply::Ready {
                    session,
                    request,
                    worker: ctx.index,
                }
            } else {
                Reply::Cycles {
                    session,
                    request,
                    worker: ctx.index,
                    fired: result.fired.len(),
                    cycles: result.cycles,
                    wme_changes,
                    outcome: result.outcome,
                    nanos,
                    start_ns,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_server(config: ServerConfig) -> Server {
        let program = mpps_ops::parse_program("(p noop (never ^seen t) --> (halt))").unwrap();
        Server::new(program, config).unwrap()
    }

    #[test]
    fn degenerate_configs_are_typed_errors_not_clamps() {
        let program = mpps_ops::parse_program("(p noop (never ^seen t) --> (halt))").unwrap();
        for (config, needle) in [
            (
                ServerConfig {
                    workers: 0,
                    ..ServerConfig::default()
                },
                "workers",
            ),
            (
                ServerConfig {
                    shards: 0,
                    ..ServerConfig::default()
                },
                "shards",
            ),
            (
                ServerConfig {
                    queue_capacity: 0,
                    ..ServerConfig::default()
                },
                "queue capacity",
            ),
        ] {
            match Server::new(program.clone(), config) {
                Err(ServerError::Config(msg)) => {
                    assert!(msg.contains(needle), "{msg:?} should mention {needle}")
                }
                Err(other) => panic!("expected Config error about {needle}, got {other:?}"),
                Ok(_) => panic!("expected Config error about {needle}, got a server"),
            }
        }
    }

    #[test]
    fn shard_ledger_drift_is_a_typed_error_in_release_builds() {
        let mut server = tiny_server(ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        });
        let (session, request) = server.create_session(Vec::new()).unwrap();
        server.wait_for(request, Duration::from_secs(30)).unwrap();
        // Corrupt the ledger the way the old debug_assert! could only
        // catch in debug builds.
        let shard = server.shard_of(session);
        server.shard_sessions[shard] = 0;
        assert_eq!(
            server.destroy_session(session).unwrap_err(),
            ServerError::ShardAccounting { session, shard }
        );
        // The failed destroy changed nothing: the session is still
        // routable once the ledger is repaired.
        server.shard_sessions[shard] = 1;
        server.destroy_session(session).unwrap();
    }

    #[test]
    fn migrating_to_a_bad_target_is_rejected_without_state_change() {
        let mut server = tiny_server(ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        });
        let (session, request) = server.create_session(Vec::new()).unwrap();
        server.wait_for(request, Duration::from_secs(30)).unwrap();
        let home = server.route(session).unwrap();
        assert!(matches!(
            server.migrate(session, 99, Duration::from_secs(1)),
            Err(ServerError::Config(_))
        ));
        assert!(matches!(
            server.migrate(session, home, Duration::from_secs(1)),
            Err(ServerError::Config(_))
        ));
        assert_eq!(server.route(session).unwrap(), home);
    }
}
