//! Drivers behind `mpps serve`: a synthetic many-session load generator
//! and a deterministic line-oriented script interpreter.

use crate::server::{Reply, Server, ServerConfig};
use crate::session::SessionId;
use crate::ServerError;
use mpps_ops::{parse_wme, Program};
use mpps_telemetry::MetricsRegistry;
use mpps_workloads::serve as workload;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// How long a healthy worker may take to answer one request before the
/// drivers declare the pool wedged.
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

/// Shape of a synthetic load run.
#[derive(Clone, Copy, Debug)]
pub struct SyntheticSpec {
    /// Concurrent sessions to admit.
    pub sessions: usize,
    /// Ingestion rounds per session.
    pub rounds: u64,
    /// Request WMEs per round per session.
    pub wmes_per_round: usize,
    /// Run a greedy [`Server::rebalance`] after every round, live-migrating
    /// sessions whose shard moved (exercises the migration path under
    /// load).
    pub migrate: bool,
}

impl Default for SyntheticSpec {
    fn default() -> Self {
        SyntheticSpec {
            sessions: 1000,
            rounds: 3,
            wmes_per_round: 4,
            migrate: false,
        }
    }
}

/// What a synthetic run measured.
#[derive(Clone, Debug)]
pub struct SyntheticReport {
    /// Sessions admitted.
    pub sessions: usize,
    /// Rounds ingested per session.
    pub rounds: u64,
    /// Total requests answered (creations + ingestion batches).
    pub replies: u64,
    /// Requests that came back `Failed`.
    pub failures: u64,
    /// Total WME changes the matchers processed.
    pub wme_changes: u64,
    /// Total MRA cycles executed.
    pub cycles: u64,
    /// Total production firings.
    pub fired: u64,
    /// Submissions rejected with `Overloaded` (each was retried).
    pub overloads: u64,
    /// Sessions snapshotted to disk by the resident-budget sweep (plus
    /// any forced evictions).
    pub evictions: u64,
    /// Evicted sessions transparently faulted back in on their next
    /// request.
    pub faultins: u64,
    /// Sessions live-migrated between workers by rebalancing.
    pub migrations: u64,
    /// The per-worker resident budget the run was under (`None` = all
    /// resident).
    pub resident_budget: Option<usize>,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Sustained WME changes per second over the run.
    pub changes_per_sec: f64,
    /// Sustained MRA cycles per second over the run.
    pub cycles_per_sec: f64,
    /// p50 of per-cycle latency on the workers, nanoseconds.
    pub p50_cycle_ns: u64,
    /// p95 of per-cycle latency on the workers, nanoseconds.
    pub p95_cycle_ns: u64,
    /// p95 of per-request (batch) latency on the workers, nanoseconds.
    pub p95_batch_ns: u64,
    /// Requests handled per worker (admission balance).
    pub worker_requests: Vec<u64>,
    /// High-water submission-queue depth per worker.
    pub worker_queue_high: Vec<u64>,
    /// The merged metrics registry (for trace/JSON export).
    pub metrics: MetricsRegistry,
}

/// Run the synthetic ticket-triage load: admit `spec.sessions` sessions
/// of [`mpps_workloads::serve`], ingest `spec.rounds` rounds into each,
/// and drain to completion. Backpressure is handled by draining replies
/// and retrying whenever a submission is rejected — so the run also
/// exercises the `Overloaded` path under real load.
pub fn run_synthetic(
    config: ServerConfig,
    spec: &SyntheticSpec,
) -> Result<SyntheticReport, ServerError> {
    let worker_count = config.workers;
    let resident_budget = config.resident_budget;
    let mut server = Server::new(workload::program(), config)?;
    let started = Instant::now();
    let mut tally = Tally::default();

    let mut ids = Vec::with_capacity(spec.sessions);
    for _ in 0..spec.sessions {
        let (id, _) = loop {
            match server.create_session(workload::initial()) {
                Ok(ok) => break ok,
                Err(ServerError::Overloaded { .. }) => {
                    let reply = server.recv_timeout(REPLY_TIMEOUT)?;
                    tally.absorb(&reply);
                }
                Err(e) => return Err(e),
            }
        };
        ids.push(id);
    }

    for round in 0..spec.rounds {
        for &id in &ids {
            let batch = workload::round(id.0, round, spec.wmes_per_round);
            loop {
                match server.submit(id, batch.clone()) {
                    Ok(_) => break,
                    Err(ServerError::Overloaded { .. }) => {
                        let reply = server.recv_timeout(REPLY_TIMEOUT)?;
                        tally.absorb(&reply);
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        if spec.migrate {
            // Quiesce, then live-migrate sessions onto the freshly packed
            // greedy partition — the rebalancer's other half.
            server.drain(REPLY_TIMEOUT, |reply| tally.absorb(reply))?;
            server.rebalance(REPLY_TIMEOUT)?;
        }
    }

    server.drain(REPLY_TIMEOUT, |reply| tally.absorb(reply))?;
    let elapsed = started.elapsed();
    let overloads = server.overload_rejections();
    let metrics = server.metrics(REPLY_TIMEOUT)?;

    let secs = elapsed.as_secs_f64().max(1e-9);
    let quantile = |name: &str, q: f64| {
        metrics
            .histogram(name)
            .and_then(|h| h.quantile(q))
            .unwrap_or_default()
    };
    let per_worker = |name: &str| {
        let mut v = vec![0u64; worker_count];
        if let Some(series) = metrics.counter(name).or_else(|| metrics.gauge(name)) {
            for (&k, &n) in series {
                if let Some(slot) = v.get_mut(k as usize) {
                    *slot = n;
                }
            }
        }
        v
    };
    Ok(SyntheticReport {
        sessions: spec.sessions,
        rounds: spec.rounds,
        replies: tally.replies,
        failures: tally.failures,
        wme_changes: metrics.counter_total("serve.wme_changes"),
        cycles: metrics.counter_total("serve.cycles"),
        fired: metrics.counter_total("serve.fired"),
        overloads,
        evictions: metrics.counter_total("serve.evictions"),
        faultins: metrics.counter_total("serve.faultins"),
        migrations: metrics.counter_total("serve.migrations"),
        resident_budget,
        elapsed,
        changes_per_sec: metrics.counter_total("serve.wme_changes") as f64 / secs,
        cycles_per_sec: metrics.counter_total("serve.cycles") as f64 / secs,
        p50_cycle_ns: quantile("serve.cycle_ns", 0.50),
        p95_cycle_ns: quantile("serve.cycle_ns", 0.95),
        p95_batch_ns: quantile("serve.batch_ns", 0.95),
        worker_requests: per_worker("serve.requests"),
        worker_queue_high: per_worker("serve.queue_depth"),
        metrics,
    })
}

#[derive(Default)]
struct Tally {
    replies: u64,
    failures: u64,
}

impl Tally {
    fn absorb(&mut self, reply: &Reply) {
        self.replies += 1;
        if matches!(reply, Reply::Failed { .. }) {
            self.failures += 1;
        }
    }
}

/// What a script run produced: one log line per command, in order.
#[derive(Clone, Debug)]
pub struct ScriptReport {
    /// Human-readable outcome of each script line.
    pub log: Vec<String>,
}

/// Run a line-oriented session script against a fresh server. Commands
/// (one per line, `#` starts a comment):
///
/// ```text
/// session <name>              create an empty session
/// make <name> (class ^a v …)  ingest one WME and settle
/// run <name>                  settle without new input
/// snapshot <name>             snapshot; bytes kept under <name>
/// restore <new> <from>        restore <from>'s last snapshot as <new>
/// destroy <name>              destroy the session
/// ```
///
/// Every command waits for its reply before the next line runs, so
/// output is deterministic — the CLI smoke tests diff it.
pub fn run_script(
    program: Program,
    script: &str,
    config: ServerConfig,
) -> Result<ScriptReport, ServerError> {
    let mut server = Server::new(program, config)?;
    let mut names: HashMap<String, SessionId> = HashMap::new();
    let mut snapshots: HashMap<String, Vec<u8>> = HashMap::new();
    let mut log = Vec::new();

    for (lineno, line) in script.lines().enumerate() {
        let line = line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let bad = |msg: String| ServerError::Script(format!("line {}: {msg}", lineno + 1));
        let mut words = line.splitn(3, char::is_whitespace);
        let cmd = words.next().unwrap_or_default();
        let name = words
            .next()
            .ok_or_else(|| bad(format!("`{cmd}` needs a session name")))?
            .to_string();
        let rest = words.next().unwrap_or("").trim();
        let lookup = |names: &HashMap<String, SessionId>, n: &str| {
            names
                .get(n)
                .copied()
                .ok_or_else(|| bad(format!("unknown session `{n}`")))
        };
        match cmd {
            "session" => {
                let (id, request) = server.create_session(Vec::new())?;
                let reply = server.wait_for(request, REPLY_TIMEOUT)?;
                names.insert(name.clone(), id);
                log.push(match reply {
                    Reply::Ready { worker, .. } => {
                        format!("session {name} = {id} on worker {worker}")
                    }
                    other => format!("session {name}: unexpected {other:?}"),
                });
            }
            "make" | "run" => {
                let id = lookup(&names, &name)?;
                let wmes = if cmd == "make" {
                    vec![parse_wme(rest).map_err(|e| bad(format!("bad wme: {e}")))?]
                } else {
                    Vec::new()
                };
                let request = server.submit(id, wmes)?;
                match server.wait_for(request, REPLY_TIMEOUT)? {
                    Reply::Cycles {
                        fired,
                        cycles,
                        outcome,
                        ..
                    } => log.push(format!(
                        "{cmd} {name}: fired {fired} in {cycles} cycles ({outcome:?})"
                    )),
                    Reply::Failed { error, .. } => log.push(format!("{cmd} {name}: error {error}")),
                    other => log.push(format!("{cmd} {name}: unexpected {other:?}")),
                }
            }
            "snapshot" => {
                let id = lookup(&names, &name)?;
                let request = server.snapshot(id)?;
                match server.wait_for(request, REPLY_TIMEOUT)? {
                    Reply::SnapshotBytes { bytes, .. } => {
                        log.push(format!("snapshot {name}: {} bytes", bytes.len()));
                        snapshots.insert(name.clone(), bytes);
                    }
                    Reply::Failed { error, .. } => {
                        log.push(format!("snapshot {name}: error {error}"))
                    }
                    other => log.push(format!("snapshot {name}: unexpected {other:?}")),
                }
            }
            "restore" => {
                let from = rest;
                let bytes = snapshots
                    .get(from)
                    .ok_or_else(|| bad(format!("no snapshot named `{from}`")))?
                    .clone();
                let (id, request) = server.restore(bytes)?;
                match server.wait_for(request, REPLY_TIMEOUT)? {
                    Reply::Ready { worker, .. } => {
                        names.insert(name.clone(), id);
                        log.push(format!("restore {name} = {id} on worker {worker}"));
                    }
                    Reply::Failed { error, .. } => {
                        log.push(format!("restore {name}: error {error}"))
                    }
                    other => log.push(format!("restore {name}: unexpected {other:?}")),
                }
            }
            "destroy" => {
                let id = lookup(&names, &name)?;
                let request = server.destroy_session(id)?;
                match server.wait_for(request, REPLY_TIMEOUT)? {
                    Reply::Destroyed { .. } => {
                        names.remove(&name);
                        log.push(format!("destroy {name}: ok"));
                    }
                    Reply::Failed { error, .. } => {
                        log.push(format!("destroy {name}: error {error}"))
                    }
                    other => log.push(format!("destroy {name}: unexpected {other:?}")),
                }
            }
            _ => return Err(bad(format!("unknown command `{cmd}`"))),
        }
    }
    Ok(ScriptReport { log })
}
