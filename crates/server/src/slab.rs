//! Slab-allocated session routing: dense `SessionId -> worker` lookup
//! with generation-checked ids.
//!
//! At 1M sessions the admission-path hash map (`HashMap<u64, usize>`)
//! costs a probe chain and ~48 bytes per entry; the slab replaces it with
//! one `Vec` indexed by the id's slot — O(1) lookup, 8 bytes per slot,
//! and free slots recycled through an intrusive free list (the same
//! fixed-footprint shape the QCDSP design imposes per node).
//!
//! A [`crate::SessionId`] packs `generation << 32 | slot`. Destroying a
//! session bumps the slot's generation, so a handle kept past destroy is
//! detected *by type* on its next use ([`RouteError::Stale`]) instead of
//! silently addressing whichever session reused the slot. Fresh servers
//! hand out generation-0 ids, so slot 0 is still session `s0` — the
//! wire-visible id sequence only diverges once slots are actually reused.

use crate::session::SessionId;

/// Why a slab lookup failed — mapped to typed [`crate::ServerError`]s by
/// the server.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RouteError {
    /// The slot was reused (or freed) since this id was issued: the
    /// handle is from a previous generation.
    Stale(SessionId),
    /// The id was never issued by this slab (slot out of range or a
    /// generation from the future), or named a destroyed session whose
    /// slot has not been reused.
    Unknown(SessionId),
}

#[derive(Clone, Copy, Debug)]
struct RouteSlot {
    /// Generation the *current* (or next, when vacant) occupant carries.
    generation: u32,
    /// Worker the live occupant is pinned to.
    worker: u32,
    live: bool,
}

/// The dense routing table: slot-indexed worker ownership plus a free
/// list of reusable slots.
#[derive(Clone, Debug, Default)]
pub struct RouteSlab {
    slots: Vec<RouteSlot>,
    free: Vec<u32>,
    live: usize,
}

impl RouteSlab {
    /// An empty slab.
    pub fn new() -> RouteSlab {
        RouteSlab::default()
    }

    /// Live sessions.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no session is live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Allocated slot capacity (live + reusable).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// The id the next [`RouteSlab::insert`] will return. Admission needs
    /// the id *before* committing (the shard hash decides the worker, and
    /// a saturated worker rejects without consuming the id), so peek and
    /// insert are split; peek is stable until the next insert or free.
    pub fn peek_next(&self) -> SessionId {
        match self.free.last() {
            Some(&slot) => SessionId::pack(slot, self.slots[slot as usize].generation),
            None => SessionId::pack(self.slots.len() as u32, 0),
        }
    }

    /// Allocate the peeked id, pinned to `worker`.
    pub fn insert(&mut self, worker: usize) -> SessionId {
        let id = self.peek_next();
        let slot = id.slot() as usize;
        if slot == self.slots.len() {
            self.slots.push(RouteSlot {
                generation: 0,
                worker: worker as u32,
                live: true,
            });
        } else {
            self.free.pop();
            let entry = &mut self.slots[slot];
            debug_assert!(!entry.live, "free list pointed at a live slot");
            entry.worker = worker as u32;
            entry.live = true;
        }
        self.live += 1;
        id
    }

    /// The worker `id` is pinned to.
    pub fn get(&self, id: SessionId) -> Result<usize, RouteError> {
        let entry = self
            .slots
            .get(id.slot() as usize)
            .ok_or(RouteError::Unknown(id))?;
        if entry.generation != id.generation() {
            return if id.generation() < entry.generation {
                Err(RouteError::Stale(id))
            } else {
                Err(RouteError::Unknown(id))
            };
        }
        if !entry.live {
            return Err(RouteError::Unknown(id));
        }
        Ok(entry.worker as usize)
    }

    /// Repin a live session to a different worker (migration).
    pub fn set_worker(&mut self, id: SessionId, worker: usize) -> Result<(), RouteError> {
        self.get(id)?;
        self.slots[id.slot() as usize].worker = worker as u32;
        Ok(())
    }

    /// Free a live session's slot, bumping its generation so the freed id
    /// is detectably stale from now on.
    pub fn remove(&mut self, id: SessionId) -> Result<usize, RouteError> {
        let worker = self.get(id)?;
        let entry = &mut self.slots[id.slot() as usize];
        entry.live = false;
        entry.generation = entry.generation.wrapping_add(1);
        self.free.push(id.slot());
        self.live -= 1;
        Ok(worker)
    }

    /// Iterate live sessions as `(id, worker)` in slot order.
    pub fn iter_live(&self) -> impl Iterator<Item = (SessionId, usize)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, e)| e.live)
            .map(|(slot, e)| {
                (
                    SessionId::pack(slot as u32, e.generation),
                    e.worker as usize,
                )
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_ids_are_dense_and_generation_zero() {
        let mut slab = RouteSlab::new();
        for i in 0..4u64 {
            assert_eq!(slab.peek_next(), SessionId(i));
            let id = slab.insert(i as usize % 2);
            assert_eq!(id, SessionId(i), "fresh ids must match the legacy sequence");
            assert_eq!(id.generation(), 0);
        }
        assert_eq!(slab.len(), 4);
        assert_eq!(slab.get(SessionId(2)), Ok(0));
    }

    #[test]
    fn freed_slots_are_reused_with_a_bumped_generation() {
        let mut slab = RouteSlab::new();
        let a = slab.insert(0);
        let b = slab.insert(1);
        assert_eq!(slab.remove(a), Ok(0));
        let c = slab.insert(2);
        assert_eq!(c.slot(), a.slot(), "slot must be recycled");
        assert_eq!(c.generation(), 1);
        assert_ne!(c, a);
        // The stale handle is a typed error, and the new occupant is not
        // confused with it.
        assert_eq!(slab.get(a), Err(RouteError::Stale(a)));
        assert_eq!(slab.get(c), Ok(2));
        assert_eq!(slab.get(b), Ok(1));
        assert_eq!(slab.capacity(), 2);
    }

    #[test]
    fn never_issued_ids_are_unknown_not_stale() {
        let mut slab = RouteSlab::new();
        let a = slab.insert(0);
        assert_eq!(
            slab.get(SessionId::pack(9, 0)),
            Err(RouteError::Unknown(SessionId::pack(9, 0)))
        );
        let future = SessionId::pack(a.slot(), 7);
        assert_eq!(slab.get(future), Err(RouteError::Unknown(future)));
        // Freed but not reused: Stale (the generation moved past it).
        slab.remove(a).unwrap();
        assert_eq!(slab.get(a), Err(RouteError::Stale(a)));
    }

    #[test]
    fn iter_live_tracks_membership_and_migration() {
        let mut slab = RouteSlab::new();
        let a = slab.insert(0);
        let b = slab.insert(1);
        let c = slab.insert(0);
        slab.remove(b).unwrap();
        slab.set_worker(c, 3).unwrap();
        let live: Vec<_> = slab.iter_live().collect();
        assert_eq!(live, vec![(a, 0), (c, 3)]);
        assert_eq!(slab.set_worker(b, 0), Err(RouteError::Stale(b)));
    }
}
