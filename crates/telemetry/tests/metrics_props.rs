//! Cross-worker registry merging must be partition-invariant: merging
//! per-worker registries equals one registry fed the whole event
//! stream, and both agree with a sort/merge oracle computed directly
//! from the events.

use std::collections::BTreeMap;

use mpps_telemetry::{MetricSink, MetricsRegistry};
use proptest::prelude::*;

const METRICS: [&str; 3] = ["node.activations", "bucket.activations", "peer.forwarded"];
const HISTS: [&str; 2] = ["drain.acts", "cycle.work-ns"];

#[derive(Clone, Debug)]
enum Event {
    Add { metric: usize, key: u64, delta: u64 },
    Set { metric: usize, key: u64, value: u64 },
    Observe { metric: usize, value: u64 },
}

fn event() -> impl Strategy<Value = Event> {
    prop_oneof![
        (0..METRICS.len(), 0u64..16, 0u64..100).prop_map(|(metric, key, delta)| Event::Add {
            metric,
            key,
            delta
        }),
        (0..METRICS.len(), 0u64..16, 0u64..100).prop_map(|(metric, key, value)| Event::Set {
            metric,
            key,
            value
        }),
        (0..HISTS.len(), 0u64..100).prop_map(|(metric, value)| Event::Observe { metric, value }),
    ]
}

fn apply(sink: &mut MetricsRegistry, ev: &Event) {
    match *ev {
        Event::Add { metric, key, delta } => sink.add(METRICS[metric], key, delta),
        Event::Set { metric, key, value } => sink.set(METRICS[metric], key, value),
        Event::Observe { metric, value } => sink.observe(HISTS[metric], value),
    }
}

proptest! {
    /// Partition the stream across `workers` registries by an arbitrary
    /// assignment, merge in an arbitrary order, and compare against a
    /// single registry that saw every event.
    #[test]
    fn merged_worker_registries_equal_single_registry(
        events in proptest::collection::vec(event(), 0..200),
        workers in 1usize..5,
        assign_seed in 0u64..1000,
        reverse_merge in any::<bool>(),
    ) {
        let mut single = MetricsRegistry::new();
        let mut per_worker = vec![MetricsRegistry::new(); workers];
        // Deterministic but arbitrary assignment of events to workers.
        let mut state = assign_seed;
        for ev in &events {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let w = (state >> 33) as usize % workers;
            apply(&mut per_worker[w], ev);
            apply(&mut single, ev);
        }
        let mut merged = MetricsRegistry::new();
        if reverse_merge {
            for reg in per_worker.iter().rev() {
                merged.merge(reg);
            }
        } else {
            for reg in &per_worker {
                merged.merge(reg);
            }
        }
        prop_assert_eq!(&merged, &single);

        // Sort/merge oracle computed straight from the events.
        let mut counter_oracle: BTreeMap<(&str, u64), u64> = BTreeMap::new();
        let mut gauge_oracle: BTreeMap<(&str, u64), u64> = BTreeMap::new();
        let mut hist_oracle: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
        for ev in &events {
            match *ev {
                Event::Add { metric, key, delta } => {
                    *counter_oracle.entry((METRICS[metric], key)).or_insert(0) += delta;
                }
                Event::Set { metric, key, value } => {
                    let slot = gauge_oracle.entry((METRICS[metric], key)).or_insert(0);
                    *slot = (*slot).max(value);
                }
                Event::Observe { metric, value } => {
                    hist_oracle.entry(HISTS[metric]).or_default().push(value);
                }
            }
        }
        for (&(metric, key), &total) in &counter_oracle {
            prop_assert_eq!(merged.counter(metric).and_then(|m| m.get(&key).copied()), Some(total));
        }
        for (&(metric, key), &hw) in &gauge_oracle {
            prop_assert_eq!(merged.gauge(metric).and_then(|m| m.get(&key).copied()), Some(hw));
        }
        for (metric, samples) in &mut hist_oracle {
            samples.sort_unstable();
            let h = merged.histogram(metric).unwrap();
            prop_assert_eq!(h.count(), samples.len() as u64);
            prop_assert_eq!(h.min(), samples.first().copied());
            prop_assert_eq!(h.max(), samples.last().copied());
            let rank = ((0.5 * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            prop_assert_eq!(h.p50(), Some(samples[rank - 1]));
        }
    }
}
