//! Keyed metrics for the match kernel: counters, gauges, histograms.
//!
//! The simulator records *events on a timeline* through [`Recorder`];
//! the match kernel instead needs *aggregates keyed by an id* —
//! activations per Rete node, probes per hash bucket, tokens forwarded
//! per peer worker. [`MetricSink`] is the match-side analogue of
//! [`Recorder`]: instrumented code is generic over a sink, the default
//! [`NullMetrics`] has `ENABLED = false` and empty inline methods, and
//! every hook site monomorphizes away in the disabled build. Profiling
//! is therefore guarded only by monomorphization, never by a runtime
//! flag.
//!
//! Three shapes cover the kernel's needs:
//!
//! * **keyed counters** (`add`) — monotonic sums per `u64` key
//!   (node id, bucket index, peer worker, production id);
//! * **keyed gauges** (`set`) — high-water marks per key; a gauge
//!   remembers the *maximum* value it was ever set to, which makes
//!   merging per-worker registries commutative;
//! * **histograms** (`observe`) — unkeyed scalar distributions reusing
//!   the exact [`Histogram`] type (per-drain activation counts,
//!   per-cycle phase times).
//!
//! [`MetricsRegistry`] is the concrete collecting sink. Registries from
//! different workers [`merge`](MetricsRegistry::merge) associatively:
//! counters and sums add, gauges take the max, histograms merge — so a
//! merged set of per-worker registries equals one registry fed the whole
//! event stream, regardless of how the stream was partitioned (pinned by
//! a proptest against a replay oracle).
//!
//! [`Recorder`]: crate::Recorder

use std::collections::BTreeMap;

use crate::hist::Histogram;

/// Sink for match-kernel metrics.
///
/// Implementations are either [`NullMetrics`] (profiling off — all
/// methods compile to nothing) or [`MetricsRegistry`] (profiling on).
/// Code paths that are expensive even to *prepare* (reading a clock,
/// computing an attribution key) should be wrapped in
/// `if M::ENABLED { .. }` so the disabled build drops them entirely.
pub trait MetricSink {
    /// `true` when this sink records anything. `if M::ENABLED` blocks
    /// are resolved at monomorphization time.
    const ENABLED: bool;

    /// Add `delta` to the counter series `metric` at `key`.
    fn add(&mut self, metric: &'static str, key: u64, delta: u64);

    /// Raise the gauge series `metric` at `key` to at least `value`
    /// (high-water semantics: the gauge keeps the maximum ever set).
    fn set(&mut self, metric: &'static str, key: u64, value: u64);

    /// Record one sample into the histogram `metric`.
    fn observe(&mut self, metric: &'static str, value: u64);

    /// Snapshot this sink's contents as a registry (empty for
    /// [`NullMetrics`]). Used to ship per-worker registries back to a
    /// coordinator for merging.
    fn export(&self) -> MetricsRegistry {
        MetricsRegistry::new()
    }
}

/// The disabled sink: every method is empty and inlines to nothing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullMetrics;

impl MetricSink for NullMetrics {
    const ENABLED: bool = false;

    #[inline(always)]
    fn add(&mut self, _metric: &'static str, _key: u64, _delta: u64) {}

    #[inline(always)]
    fn set(&mut self, _metric: &'static str, _key: u64, _value: u64) {}

    #[inline(always)]
    fn observe(&mut self, _metric: &'static str, _value: u64) {}
}

impl<M: MetricSink> MetricSink for &mut M {
    const ENABLED: bool = M::ENABLED;

    #[inline]
    fn add(&mut self, metric: &'static str, key: u64, delta: u64) {
        (**self).add(metric, key, delta);
    }

    #[inline]
    fn set(&mut self, metric: &'static str, key: u64, value: u64) {
        (**self).set(metric, key, value);
    }

    #[inline]
    fn observe(&mut self, metric: &'static str, value: u64) {
        (**self).observe(metric, value);
    }

    fn export(&self) -> MetricsRegistry {
        (**self).export()
    }
}

/// Collecting sink: keyed counters, high-water gauges, and exact
/// histograms, each addressed by a static metric name.
///
/// Series are stored sorted by metric name, so two registries that saw
/// the same aggregate data compare equal regardless of the order the
/// metrics first appeared in.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    counters: Vec<(&'static str, BTreeMap<u64, u64>)>,
    gauges: Vec<(&'static str, BTreeMap<u64, u64>)>,
    histograms: Vec<(&'static str, Histogram)>,
}

fn series_mut<'a, T: Default>(
    series: &'a mut Vec<(&'static str, T)>,
    metric: &'static str,
) -> &'a mut T {
    let at = match series.binary_search_by(|(name, _)| name.cmp(&metric)) {
        Ok(at) => at,
        Err(at) => {
            series.insert(at, (metric, T::default()));
            at
        }
    };
    &mut series[at].1
}

fn series_get<'a, T>(series: &'a [(&'static str, T)], metric: &str) -> Option<&'a T> {
    series
        .binary_search_by(|(name, _)| name.cmp(&metric))
        .ok()
        .map(|at| &series[at].1)
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// The counter series `metric`, if any deltas were added to it.
    pub fn counter(&self, metric: &str) -> Option<&BTreeMap<u64, u64>> {
        series_get(&self.counters, metric)
    }

    /// Sum of all keys in the counter series `metric` (0 when absent).
    pub fn counter_total(&self, metric: &str) -> u64 {
        self.counter(metric).map(|m| m.values().sum()).unwrap_or(0)
    }

    /// The gauge series `metric`, if any values were set.
    pub fn gauge(&self, metric: &str) -> Option<&BTreeMap<u64, u64>> {
        series_get(&self.gauges, metric)
    }

    /// The histogram `metric`, if any samples were observed.
    pub fn histogram(&self, metric: &str) -> Option<&Histogram> {
        series_get(&self.histograms, metric)
    }

    /// All counter series, sorted by metric name.
    pub fn counters(&self) -> &[(&'static str, BTreeMap<u64, u64>)] {
        &self.counters
    }

    /// All gauge series, sorted by metric name.
    pub fn gauges(&self) -> &[(&'static str, BTreeMap<u64, u64>)] {
        &self.gauges
    }

    /// All histograms, sorted by metric name.
    pub fn histograms(&self) -> &[(&'static str, Histogram)] {
        &self.histograms
    }

    /// Fold another registry into this one: counters add, gauges take
    /// the per-key maximum, histograms merge. Commutative and
    /// associative, so per-worker registries can be merged in any order.
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (metric, keys) in &other.counters {
            let mine = series_mut(&mut self.counters, metric);
            for (&key, &delta) in keys {
                *mine.entry(key).or_insert(0) += delta;
            }
        }
        for (metric, keys) in &other.gauges {
            let mine = series_mut(&mut self.gauges, metric);
            for (&key, &value) in keys {
                let slot = mine.entry(key).or_insert(0);
                *slot = (*slot).max(value);
            }
        }
        for (metric, hist) in &other.histograms {
            series_mut(&mut self.histograms, metric).merge(hist);
        }
    }
}

impl MetricSink for MetricsRegistry {
    const ENABLED: bool = true;

    #[inline]
    fn add(&mut self, metric: &'static str, key: u64, delta: u64) {
        *series_mut(&mut self.counters, metric)
            .entry(key)
            .or_insert(0) += delta;
    }

    #[inline]
    fn set(&mut self, metric: &'static str, key: u64, value: u64) {
        let slot = series_mut(&mut self.gauges, metric).entry(key).or_insert(0);
        *slot = (*slot).max(value);
    }

    #[inline]
    fn observe(&mut self, metric: &'static str, value: u64) {
        series_mut(&mut self.histograms, metric).record(value);
    }

    fn export(&self) -> MetricsRegistry {
        self.clone()
    }
}

/// Number of CPUs available to this process: `available_parallelism`
/// when the OS reports it, falling back to counting `processor` lines in
/// `/proc/cpuinfo`, with a floor of 1. Used by the bench manifest's
/// machine info and by profile summaries, so both report the same
/// number.
pub fn available_cpus() -> usize {
    let advertised = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(0);
    let counted = std::fs::read_to_string("/proc/cpuinfo")
        .map(|s| s.lines().filter(|l| l.starts_with("processor")).count())
        .unwrap_or(0);
    advertised.max(counted).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(sink: &mut impl MetricSink) {
        sink.add("node.activations", 3, 2);
        sink.add("node.activations", 1, 5);
        sink.add("bucket.activations", 7, 1);
        sink.set("arena.live", 0, 10);
        sink.set("arena.live", 0, 4);
        sink.observe("drain.acts", 8);
        sink.observe("drain.acts", 2);
    }

    #[test]
    fn null_metrics_records_nothing() {
        let mut sink = NullMetrics;
        feed(&mut sink);
        const { assert!(!NullMetrics::ENABLED) };
        assert!(sink.export().is_empty());
    }

    #[test]
    fn registry_aggregates_by_metric_and_key() {
        let mut reg = MetricsRegistry::new();
        feed(&mut reg);
        feed(&mut reg);
        let acts = reg.counter("node.activations").unwrap();
        assert_eq!(acts.get(&3), Some(&4));
        assert_eq!(acts.get(&1), Some(&10));
        assert_eq!(reg.counter_total("node.activations"), 14);
        assert_eq!(reg.counter_total("missing"), 0);
        // Gauges keep the high-water mark, not the last write.
        assert_eq!(reg.gauge("arena.live").unwrap().get(&0), Some(&10));
        let h = reg.histogram("drain.acts").unwrap();
        assert_eq!(h.count(), 4);
        assert_eq!(h.max(), Some(8));
    }

    #[test]
    fn series_are_sorted_by_name_regardless_of_first_touch() {
        let mut a = MetricsRegistry::new();
        a.add("zz", 0, 1);
        a.add("aa", 0, 1);
        let mut b = MetricsRegistry::new();
        b.add("aa", 0, 1);
        b.add("zz", 0, 1);
        assert_eq!(a, b);
        let names: Vec<_> = a.counters().iter().map(|(n, _)| *n).collect();
        assert_eq!(names, ["aa", "zz"]);
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = MetricsRegistry::new();
        a.add("c", 1, 2);
        a.set("g", 0, 9);
        a.observe("h", 4);
        let mut b = MetricsRegistry::new();
        b.add("c", 1, 3);
        b.add("c", 2, 1);
        b.set("g", 0, 5);
        b.observe("h", 7);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.counter("c").unwrap().get(&1), Some(&5));
        assert_eq!(ab.gauge("g").unwrap().get(&0), Some(&9));
        assert_eq!(ab.histogram("h").unwrap().count(), 2);
    }

    #[test]
    fn forwarding_through_mut_ref_reaches_the_registry() {
        let mut reg = MetricsRegistry::new();
        {
            let mut sink = &mut reg;
            const { assert!(<&mut MetricsRegistry as MetricSink>::ENABLED) };
            // Fully qualified so the `&mut S` forwarding impl (not an
            // auto-deref to the base impl) is what's exercised.
            <&mut MetricsRegistry as MetricSink>::add(&mut sink, "c", 0, 1);
        }
        assert_eq!(reg.counter_total("c"), 1);
    }

    #[test]
    fn available_cpus_is_at_least_one() {
        assert!(available_cpus() >= 1);
    }
}
