#![warn(missing_docs)]

//! # mpps-telemetry — simulation telemetry primitives
//!
//! A first-class observability layer for the workspace's simulators and
//! sweep engines, built around one rule: **telemetry must cost nothing
//! when it is off**. Instrumented code is generic over a [`Recorder`];
//! the default [`NullRecorder`] has an `ENABLED = false` associated
//! constant and empty inline methods, so every recording site
//! monomorphizes away and the disabled build is instruction-identical to
//! an uninstrumented one.
//!
//! Three primitives cover the workspace's needs:
//!
//! * **spans** — an interval of activity on a [`Track`] (one track per
//!   simulated processor in *simulated* time; one track per sweep worker
//!   in *wall* time);
//! * **counters** — a value sampled at a point in time on a track
//!   (message-queue depth);
//! * **histogram samples** — order-free scalar observations aggregated
//!   into exact [`Histogram`]s (activations per bucket, queue depths,
//!   per-point wall-clock) and summarized as p50/p95/max.
//!
//! The in-memory [`TraceRecorder`] collects everything and exports as
//!
//! * a Chrome `trace_event` JSON file ([`chrome::chrome_trace`]) that
//!   loads directly in [Perfetto](https://ui.perfetto.dev) or
//!   `chrome://tracing`, and
//! * a JSONL event stream plus a JSON summary of histogram percentiles
//!   ([`jsonl`]).
//!
//! [`json`] is a dependency-free JSON parser used to validate exported
//! artifacts in tests and CI without pulling in a schema library.
//!
//! [`metrics`] extends the same discipline down into the match kernel:
//! instrumented match code is generic over a [`MetricSink`]
//! ([`NullMetrics`] when profiling is off, [`MetricsRegistry`] when
//! on), collecting id-keyed counters, high-water gauges, and exact
//! histograms that merge commutatively across workers.

pub mod chrome;
pub mod hist;
pub mod json;
pub mod jsonl;
pub mod metrics;
pub mod recorder;

pub use hist::{Histogram, HistogramSummary};
pub use metrics::{available_cpus, MetricSink, MetricsRegistry, NullMetrics};
pub use recorder::{NullRecorder, OffsetRecorder, Recorder, TraceRecorder, Track, SERVE_PID};
