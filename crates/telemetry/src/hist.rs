//! Exact histograms with nearest-rank percentiles.
//!
//! Samples in this workspace are small non-negative integers (activation
//! counts, queue depths) or nanosecond durations with few distinct
//! values per metric, so an exact value→count map is both cheaper and
//! more trustworthy than an approximating HDR-style sketch: the reported
//! p50/p95 are *exactly* the nearest-rank percentiles of the recorded
//! samples, which is what the tests assert against a sort-based oracle.

use std::collections::BTreeMap;

/// An exact histogram of `u64` samples.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    counts: BTreeMap<u64, u64>,
    total: u64,
    sum: u128,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one sample.
    pub fn record(&mut self, value: u64) {
        *self.counts.entry(value).or_insert(0) += 1;
        self.total += 1;
        self.sum += value as u128;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Smallest recorded sample.
    pub fn min(&self) -> Option<u64> {
        self.counts.keys().next().copied()
    }

    /// Largest recorded sample.
    pub fn max(&self) -> Option<u64> {
        self.counts.keys().next_back().copied()
    }

    /// Mean of the samples.
    pub fn mean(&self) -> Option<f64> {
        if self.total == 0 {
            None
        } else {
            Some(self.sum as f64 / self.total as f64)
        }
    }

    /// Nearest-rank percentile: the smallest recorded value whose
    /// cumulative count reaches `ceil(q * count)` (with a floor of rank
    /// 1), for `q` in `(0, 1]`. `quantile(0.5)` is the median,
    /// `quantile(1.0)` the maximum.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (&value, &n) in &self.counts {
            seen += n;
            if seen >= rank {
                return Some(value);
            }
        }
        unreachable!("cumulative count covers every rank");
    }

    /// Median (nearest rank).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.5)
    }

    /// 95th percentile (nearest rank).
    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    /// Fold another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (&value, &n) in &other.counts {
            *self.counts.entry(value).or_insert(0) += n;
        }
        self.total += other.total;
        self.sum += other.sum;
    }

    /// The summary statistics reported in exports.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.total,
            min: self.min().unwrap_or(0),
            max: self.max().unwrap_or(0),
            mean: self.mean().unwrap_or(0.0),
            p50: self.p50().unwrap_or(0),
            p95: self.p95().unwrap_or(0),
        }
    }
}

/// Percentile summary of one histogram (zeros when empty).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Mean sample.
    pub mean: f64,
    /// Nearest-rank median.
    pub p50: u64,
    /// Nearest-rank 95th percentile.
    pub p95: u64,
}

impl HistogramSummary {
    /// Render as a JSON object (used by both export formats).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"min\": {}, \"max\": {}, \"mean\": {:.3}, \"p50\": {}, \"p95\": {}}}",
            self.count, self.min, self.max, self.mean, self.p50, self.p95
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// The sort-based oracle for nearest-rank percentiles.
    fn oracle(samples: &[u64], q: f64) -> Option<u64> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }

    #[test]
    fn empty_histogram_has_no_stats() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
        assert_eq!(h.mean(), None);
        assert_eq!(h.p50(), None);
        assert_eq!(h.p95(), None);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(42));
        assert_eq!(h.max(), Some(42));
        assert_eq!(h.mean(), Some(42.0));
        for q in [0.01, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), Some(42));
        }
    }

    #[test]
    fn ties_resolve_to_the_tied_value() {
        let mut h = Histogram::new();
        for v in [5, 5, 5, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.p50(), Some(5));
        assert_eq!(h.p95(), Some(9));
        assert_eq!(h.quantile(0.8), Some(5));
        assert_eq!(h.quantile(0.81), Some(9));
    }

    #[test]
    fn merge_equals_recording_everything() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut all = Histogram::new();
        for v in [1, 2, 3] {
            a.record(v);
            all.record(v);
        }
        for v in [3, 4, 5, 5] {
            b.record(v);
            all.record(v);
        }
        a.merge(&b);
        assert_eq!(a, all);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0, 1]")]
    fn out_of_range_quantile_panics() {
        Histogram::new().quantile(1.5);
    }

    proptest! {
        #[test]
        fn percentiles_match_sort_oracle(
            samples in proptest::collection::vec(0u64..1000, 0..200),
            q_milli in 1u64..1001,
        ) {
            let q = q_milli as f64 / 1000.0;
            let mut h = Histogram::new();
            for &s in &samples {
                h.record(s);
            }
            prop_assert_eq!(h.quantile(q), oracle(&samples, q));
            prop_assert_eq!(h.p50(), oracle(&samples, 0.5));
            prop_assert_eq!(h.p95(), oracle(&samples, 0.95));
            prop_assert_eq!(h.min(), samples.iter().copied().min());
            prop_assert_eq!(h.max(), samples.iter().copied().max());
        }
    }
}
