//! JSONL event stream and histogram-summary export.
//!
//! [`events_jsonl`] writes one JSON object per line — every span and
//! counter verbatim, in recording order — for ad-hoc analysis with
//! line-oriented tools. [`summary_json`] writes a single JSON object
//! mapping each sampled metric to its [`HistogramSummary`]
//! (p50/p95/max and friends).
//!
//! [`HistogramSummary`]: crate::hist::HistogramSummary

use crate::recorder::TraceRecorder;

/// Render every span and counter as one JSON object per line.
pub fn events_jsonl(rec: &TraceRecorder) -> String {
    let mut out = String::new();
    for s in rec.spans() {
        out.push_str(&format!(
            "{{\"type\": \"span\", \"pid\": {}, \"tid\": {}, \"name\": \"{}\", \
             \"start_ns\": {}, \"end_ns\": {}}}\n",
            s.track.pid, s.track.tid, s.name, s.start_ns, s.end_ns
        ));
    }
    for c in rec.counters() {
        out.push_str(&format!(
            "{{\"type\": \"counter\", \"pid\": {}, \"tid\": {}, \"name\": \"{}\", \
             \"t_ns\": {}, \"value\": {}}}\n",
            c.track.pid, c.track.tid, c.name, c.t_ns, c.value
        ));
    }
    out
}

/// Render the recorder's histograms as one JSON object:
/// `{"metrics": {"<name>": {count, min, max, mean, p50, p95}, ...}}`.
pub fn summary_json(rec: &TraceRecorder) -> String {
    let mut out = String::from("{\"metrics\": {");
    for (i, (metric, hist)) in rec.histograms().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("\"{}\": {}", metric, hist.summary().to_json()));
    }
    out.push_str("}}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::{Recorder, Track};

    #[test]
    fn every_jsonl_line_parses() {
        let mut rec = TraceRecorder::new();
        rec.span(Track::sim_proc(1), "left-token", 0, 32_000);
        rec.counter(Track::sim_proc(1), "queue-depth", 10, 2);
        let text = events_jsonl(&rec);
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            let v = json::parse(line).expect("line parses");
            assert!(v.get("type").is_some());
        }
    }

    #[test]
    fn summary_reports_percentiles() {
        let mut rec = TraceRecorder::new();
        for v in [1, 2, 3, 4, 100] {
            rec.sample("acts-per-bucket", v);
        }
        let text = summary_json(&rec);
        let doc = json::parse(&text).unwrap();
        let m = doc
            .get("metrics")
            .and_then(|m| m.get("acts-per-bucket"))
            .expect("metric present");
        assert_eq!(m.get("count").and_then(|v| v.as_f64()), Some(5.0));
        assert_eq!(m.get("p95").and_then(|v| v.as_f64()), Some(100.0));
        assert_eq!(m.get("p50").and_then(|v| v.as_f64()), Some(3.0));
    }

    #[test]
    fn empty_recorder_summary_is_valid() {
        let rec = TraceRecorder::new();
        let doc = json::parse(&summary_json(&rec)).unwrap();
        assert!(doc.get("metrics").is_some());
    }
}
