//! Chrome `trace_event` export.
//!
//! Emits the JSON object format (`{"traceEvents": [...]}`) understood
//! by [Perfetto](https://ui.perfetto.dev) and `chrome://tracing`:
//! `"M"` metadata events name the processes and threads, `"X"`
//! complete events carry the spans, and `"C"` counter events carry the
//! counters. Timestamps in the format are *microseconds*; recorded
//! nanoseconds are written as fractional µs with three decimals so no
//! precision is lost.

use crate::recorder::TraceRecorder;
use std::fmt::Write as _;

/// Nanoseconds rendered as fractional trace-format microseconds.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Escape a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render the recorder's events as a Chrome `trace_event` JSON
/// document. The output is deterministic: metadata first (processes,
/// then tracks, in naming order), then spans and counters in recording
/// order.
pub fn chrome_trace(rec: &TraceRecorder) -> String {
    let mut events: Vec<String> = Vec::new();

    for (pid, name) in rec.process_names() {
        events.push(format!(
            "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": {pid}, \"tid\": 0, \
             \"args\": {{\"name\": \"{}\"}}}}",
            escape(name)
        ));
    }
    for (track, name) in rec.track_names() {
        events.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": {}, \"tid\": {}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            track.pid,
            track.tid,
            escape(name)
        ));
        // Keep lanes in tid order rather than first-event order.
        events.push(format!(
            "{{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": {}, \"tid\": {}, \
             \"args\": {{\"sort_index\": {}}}}}",
            track.pid, track.tid, track.tid
        ));
    }
    for s in rec.spans() {
        events.push(format!(
            "{{\"name\": \"{}\", \"ph\": \"X\", \"pid\": {}, \"tid\": {}, \
             \"ts\": {}, \"dur\": {}}}",
            escape(s.name),
            s.track.pid,
            s.track.tid,
            us(s.start_ns),
            us(s.end_ns.saturating_sub(s.start_ns))
        ));
    }
    for c in rec.counters() {
        events.push(format!(
            "{{\"name\": \"{}\", \"ph\": \"C\", \"pid\": {}, \"tid\": {}, \
             \"ts\": {}, \"args\": {{\"value\": {}}}}}",
            escape(c.name),
            c.track.pid,
            c.track.tid,
            us(c.t_ns),
            c.value
        ));
    }

    let mut out = String::new();
    out.push_str("{\"traceEvents\": [\n");
    for (i, e) in events.iter().enumerate() {
        out.push_str("  ");
        out.push_str(e);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("], \"displayTimeUnit\": \"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use crate::recorder::{Recorder, Track};

    #[test]
    fn trace_is_valid_json_with_expected_events() {
        let mut rec = TraceRecorder::new();
        rec.name_process(crate::recorder::SIM_PID, "simulated machine");
        rec.name_track(Track::sim_proc(0), "proc 0");
        rec.span(Track::sim_proc(0), "constant-tests", 1_500, 31_500);
        rec.counter(Track::sim_proc(0), "queue-depth", 2_000, 4);

        let text = chrome_trace(&rec);
        let doc = json::parse(&text).expect("trace parses as JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        // 1 process_name + 1 thread_name + 1 thread_sort_index + 1 span + 1 counter
        assert_eq!(events.len(), 5);
        let span = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("one X event");
        assert_eq!(span.get("ts").and_then(|t| t.as_f64()), Some(1.5));
        assert_eq!(span.get("dur").and_then(|t| t.as_f64()), Some(30.0));
    }

    #[test]
    fn names_are_escaped() {
        let mut rec = TraceRecorder::new();
        rec.name_track(Track::worker(0), "odd \"name\"\n");
        let text = chrome_trace(&rec);
        assert!(json::parse(&text).is_ok());
        assert!(text.contains("odd \\\"name\\\"\\n"));
    }
}
