//! A minimal recursive-descent JSON parser.
//!
//! Exists so tests and the bench crate's `--check-telemetry` pass can
//! validate exported artifacts without a schema library or any
//! external dependency. Parses the full JSON grammar into a [`Value`]
//! tree; numbers are kept as `f64` (exported artifacts never need more
//! than 53 bits of integer precision).

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Key order is not preserved.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The elements, when this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number, when this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as a non-negative integer, when it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The object map, when this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parse one JSON document. Trailing whitespace is allowed; trailing
/// non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            // Surrogate pairs are not needed by our exports;
                            // map them to the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar value.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-2.5e2").unwrap(), Value::Number(-250.0));
        assert_eq!(
            parse("\"a\\nb\\u0041\"").unwrap(),
            Value::String("a\nbA".into())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "c"}, []], "d": {}}"#).unwrap();
        let arr = v.get("a").and_then(|a| a.as_array()).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[1].get("b").and_then(|b| b.as_str()), Some("c"));
        assert!(v.get("d").and_then(|d| d.as_object()).unwrap().is_empty());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_u64(), None);
        assert_eq!(parse("-7").unwrap().as_u64(), None);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"open").is_err());
    }
}
