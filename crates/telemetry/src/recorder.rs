//! The [`Recorder`] trait and its implementations.
//!
//! Instrumented code is generic over `R: Recorder`. The default
//! [`NullRecorder`] reports `ENABLED = false` and has empty `#[inline]`
//! methods, so the disabled build monomorphizes every recording site to
//! nothing. [`TraceRecorder`] keeps everything in memory for export;
//! [`OffsetRecorder`] shifts span/counter timestamps so per-cycle
//! simulations (which each restart at t = 0) land on one continuous
//! per-run timeline.

use crate::hist::Histogram;

/// A (process, thread) pair identifying one horizontal lane in the
/// exported trace. `pid` groups related tracks (all simulated
/// processors; all sweep workers); `tid` is the lane within the group.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Trace process id (a track group).
    pub pid: u32,
    /// Trace thread id (a lane within the group).
    pub tid: u32,
}

/// Track group for simulated processors (timestamps in simulated time).
pub const SIM_PID: u32 = 1;
/// Track group for sweep workers (timestamps in wall time).
pub const SWEEP_PID: u32 = 2;
/// Track group for the real threaded matcher's worker threads (wall time).
pub const THREADED_PID: u32 = 3;
/// Track group for rule-engine-server session workers (wall time).
pub const SERVE_PID: u32 = 4;

impl Track {
    /// The lane for simulated processor `index` (simulated time).
    pub fn sim_proc(index: usize) -> Self {
        Self {
            pid: SIM_PID,
            tid: index as u32,
        }
    }

    /// The lane for sweep worker `index` (wall time).
    pub fn worker(index: usize) -> Self {
        Self {
            pid: SWEEP_PID,
            tid: index as u32,
        }
    }

    /// The lane for threaded-matcher worker `index` (wall time) — the real
    /// executor's counterpart of [`Track::sim_proc`].
    pub fn match_worker(index: usize) -> Self {
        Self {
            pid: THREADED_PID,
            tid: index as u32,
        }
    }

    /// The lane for rule-engine-server session worker `index` (wall
    /// time): each lane carries the per-request spans and queue-depth
    /// counters of one worker thread of an `mpps serve` worker pool.
    pub fn serve_worker(index: usize) -> Self {
        Self {
            pid: SERVE_PID,
            tid: index as u32,
        }
    }

    /// The run-level lane marking MRA cycle boundaries (simulated time).
    /// `tid` is `u32::MAX` so it sorts after every processor lane.
    pub fn sim_cycles() -> Self {
        Self {
            pid: SIM_PID,
            tid: u32::MAX,
        }
    }
}

/// Sink for telemetry events. All timestamps are `u64` nanoseconds on
/// whatever clock the track uses (simulated time for processor tracks,
/// wall time for worker tracks).
///
/// Implementations must be cheap to call: recording sites sit inside
/// the simulator's inner loop and are guarded only by monomorphization,
/// never by a runtime flag.
pub trait Recorder {
    /// Whether this recorder keeps anything. Instrumented code may skip
    /// *computing* expensive inputs when this is `false`; it must not
    /// change any other behaviour based on it.
    const ENABLED: bool;

    /// Record a completed interval `[start_ns, end_ns)` on `track`.
    fn span(&mut self, track: Track, name: &'static str, start_ns: u64, end_ns: u64);

    /// Record an instantaneous counter value at `t_ns` on `track`.
    fn counter(&mut self, track: Track, name: &'static str, t_ns: u64, value: u64);

    /// Record one order-free scalar observation for metric `metric`.
    fn sample(&mut self, metric: &'static str, value: u64);
}

/// The disabled recorder: every method is an empty inline body, so
/// instrumentation generic over it compiles to the uninstrumented code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    const ENABLED: bool = false;

    #[inline(always)]
    fn span(&mut self, _: Track, _: &'static str, _: u64, _: u64) {}

    #[inline(always)]
    fn counter(&mut self, _: Track, _: &'static str, _: u64, _: u64) {}

    #[inline(always)]
    fn sample(&mut self, _: &'static str, _: u64) {}
}

/// Forward through mutable references so a borrowed [`TraceRecorder`]
/// can be handed by value to a consumer that takes `R: Recorder`.
impl<R: Recorder> Recorder for &mut R {
    const ENABLED: bool = R::ENABLED;

    #[inline(always)]
    fn span(&mut self, track: Track, name: &'static str, start_ns: u64, end_ns: u64) {
        (**self).span(track, name, start_ns, end_ns);
    }

    #[inline(always)]
    fn counter(&mut self, track: Track, name: &'static str, t_ns: u64, value: u64) {
        (**self).counter(track, name, t_ns, value);
    }

    #[inline(always)]
    fn sample(&mut self, metric: &'static str, value: u64) {
        (**self).sample(metric, value);
    }
}

/// Shifts span and counter timestamps by a fixed offset before
/// forwarding. Each MRA cycle runs a fresh discrete-event simulation
/// starting at t = 0; wrapping the run's recorder in an
/// `OffsetRecorder` carrying the accumulated simulated time keeps the
/// per-processor tracks continuous across cycles.
#[derive(Debug)]
pub struct OffsetRecorder<R> {
    inner: R,
    offset_ns: u64,
}

impl<R: Recorder> OffsetRecorder<R> {
    /// Wrap `inner`, adding `offset_ns` to every timestamp.
    pub fn new(inner: R, offset_ns: u64) -> Self {
        Self { inner, offset_ns }
    }
}

impl<R: Recorder> Recorder for OffsetRecorder<R> {
    const ENABLED: bool = R::ENABLED;

    #[inline]
    fn span(&mut self, track: Track, name: &'static str, start_ns: u64, end_ns: u64) {
        self.inner.span(
            track,
            name,
            start_ns + self.offset_ns,
            end_ns + self.offset_ns,
        );
    }

    #[inline]
    fn counter(&mut self, track: Track, name: &'static str, t_ns: u64, value: u64) {
        self.inner
            .counter(track, name, t_ns + self.offset_ns, value);
    }

    #[inline]
    fn sample(&mut self, metric: &'static str, value: u64) {
        self.inner.sample(metric, value);
    }
}

/// One recorded interval.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// Lane the span belongs to.
    pub track: Track,
    /// Static label ("constant-tests", "point #12", ...).
    pub name: &'static str,
    /// Start of the interval, ns.
    pub start_ns: u64,
    /// End of the interval, ns.
    pub end_ns: u64,
}

/// One recorded counter observation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CounterEvent {
    /// Lane the counter belongs to.
    pub track: Track,
    /// Counter name ("queue-depth", ...).
    pub name: &'static str,
    /// Observation time, ns.
    pub t_ns: u64,
    /// Observed value.
    pub value: u64,
}

/// The in-memory recorder behind every export format: keeps spans and
/// counters verbatim and aggregates samples into exact [`Histogram`]s
/// (keyed by metric name, in first-seen order so exports are stable).
#[derive(Debug, Default)]
pub struct TraceRecorder {
    spans: Vec<SpanEvent>,
    counters: Vec<CounterEvent>,
    histograms: Vec<(&'static str, Histogram)>,
    track_names: Vec<(Track, String)>,
    process_names: Vec<(u32, String)>,
}

impl TraceRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Give `track` a human-readable lane name in the exported trace.
    /// Later calls for the same track win.
    pub fn name_track(&mut self, track: Track, name: impl Into<String>) {
        let name = name.into();
        if let Some(slot) = self.track_names.iter_mut().find(|(t, _)| *t == track) {
            slot.1 = name;
        } else {
            self.track_names.push((track, name));
        }
    }

    /// Give a track group (`pid`) a name in the exported trace.
    pub fn name_process(&mut self, pid: u32, name: impl Into<String>) {
        let name = name.into();
        if let Some(slot) = self.process_names.iter_mut().find(|(p, _)| *p == pid) {
            slot.1 = name;
        } else {
            self.process_names.push((pid, name));
        }
    }

    /// Recorded spans, in recording order.
    pub fn spans(&self) -> &[SpanEvent] {
        &self.spans
    }

    /// Recorded counter observations, in recording order.
    pub fn counters(&self) -> &[CounterEvent] {
        &self.counters
    }

    /// Histograms keyed by metric name, in first-seen order.
    pub fn histograms(&self) -> &[(&'static str, Histogram)] {
        &self.histograms
    }

    /// The histogram for `metric`, if any sample was recorded.
    pub fn histogram(&self, metric: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(m, _)| *m == metric)
            .map(|(_, h)| h)
    }

    /// Track names assigned via [`TraceRecorder::name_track`].
    pub fn track_names(&self) -> &[(Track, String)] {
        &self.track_names
    }

    /// Process names assigned via [`TraceRecorder::name_process`].
    pub fn process_names(&self) -> &[(u32, String)] {
        &self.process_names
    }

    /// Fold another recorder's events into this one (spans and counters
    /// append; histograms merge by metric; names fill gaps). Used to
    /// combine per-worker recorders in worker-index order so the merged
    /// trace is deterministic.
    pub fn merge(&mut self, other: TraceRecorder) {
        self.spans.extend(other.spans);
        self.counters.extend(other.counters);
        for (metric, hist) in other.histograms {
            if let Some((_, mine)) = self.histograms.iter_mut().find(|(m, _)| *m == metric) {
                mine.merge(&hist);
            } else {
                self.histograms.push((metric, hist));
            }
        }
        for (track, name) in other.track_names {
            if !self.track_names.iter().any(|(t, _)| *t == track) {
                self.track_names.push((track, name));
            }
        }
        for (pid, name) in other.process_names {
            if !self.process_names.iter().any(|(p, _)| *p == pid) {
                self.process_names.push((pid, name));
            }
        }
    }
}

impl Recorder for TraceRecorder {
    const ENABLED: bool = true;

    fn span(&mut self, track: Track, name: &'static str, start_ns: u64, end_ns: u64) {
        debug_assert!(start_ns <= end_ns, "span ends before it starts");
        self.spans.push(SpanEvent {
            track,
            name,
            start_ns,
            end_ns,
        });
    }

    fn counter(&mut self, track: Track, name: &'static str, t_ns: u64, value: u64) {
        self.counters.push(CounterEvent {
            track,
            name,
            t_ns,
            value,
        });
    }

    fn sample(&mut self, metric: &'static str, value: u64) {
        if let Some((_, hist)) = self.histograms.iter_mut().find(|(m, _)| *m == metric) {
            hist.record(value);
        } else {
            let mut hist = Histogram::new();
            hist.record(value);
            self.histograms.push((metric, hist));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        const { assert!(!NullRecorder::ENABLED) };
        // And callable: the calls must be no-ops, not panics.
        let mut r = NullRecorder;
        r.span(Track::sim_proc(0), "x", 0, 1);
        r.counter(Track::sim_proc(0), "c", 0, 1);
        r.sample("m", 1);
    }

    #[test]
    fn trace_recorder_collects_events() {
        let mut r = TraceRecorder::new();
        r.span(Track::sim_proc(2), "work", 10, 30);
        r.counter(Track::sim_proc(2), "queue-depth", 15, 3);
        r.sample("acts", 4);
        r.sample("acts", 6);
        assert_eq!(r.spans().len(), 1);
        assert_eq!(r.spans()[0].track, Track::sim_proc(2));
        assert_eq!(r.counters()[0].value, 3);
        let h = r.histogram("acts").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(6));
    }

    #[test]
    fn offset_recorder_shifts_spans_not_samples() {
        let mut inner = TraceRecorder::new();
        {
            let mut r = OffsetRecorder::new(&mut inner, 100);
            r.span(Track::sim_proc(0), "w", 5, 7);
            r.counter(Track::sim_proc(0), "q", 6, 2);
            r.sample("m", 9);
        }
        assert_eq!(inner.spans()[0].start_ns, 105);
        assert_eq!(inner.spans()[0].end_ns, 107);
        assert_eq!(inner.counters()[0].t_ns, 106);
        assert_eq!(inner.histogram("m").unwrap().max(), Some(9));
    }

    #[test]
    fn mut_ref_forwards() {
        let mut r = TraceRecorder::new();
        fn record<R: Recorder>(mut r: R) {
            r.span(Track::worker(1), "task", 0, 2);
        }
        record(&mut r);
        assert_eq!(r.spans().len(), 1);
        const { assert!(<&mut TraceRecorder as Recorder>::ENABLED) };
    }

    #[test]
    fn merge_combines_histograms_and_names() {
        let mut a = TraceRecorder::new();
        a.sample("wall", 10);
        a.name_process(SWEEP_PID, "sweep");
        a.name_track(Track::worker(0), "worker 0");
        let mut b = TraceRecorder::new();
        b.sample("wall", 20);
        b.span(Track::worker(1), "point", 0, 5);
        b.name_track(Track::worker(0), "ignored duplicate");
        b.name_track(Track::worker(1), "worker 1");
        a.merge(b);
        assert_eq!(a.histogram("wall").unwrap().count(), 2);
        assert_eq!(a.spans().len(), 1);
        assert_eq!(a.track_names().len(), 2);
        assert_eq!(a.track_names()[0].1, "worker 0");
    }

    #[test]
    fn name_track_last_call_wins() {
        let mut r = TraceRecorder::new();
        r.name_track(Track::sim_proc(0), "first");
        r.name_track(Track::sim_proc(0), "second");
        assert_eq!(r.track_names().len(), 1);
        assert_eq!(r.track_names()[0].1, "second");
    }
}
