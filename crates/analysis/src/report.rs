//! Plain-text rendering of tables and figures for the `repro` harness.

use std::fmt::Write;

/// Render an aligned ASCII table.
pub fn render_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width must match headers");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    let sep: String = widths
        .iter()
        .map(|w| "-".repeat(w + 2))
        .collect::<Vec<_>>()
        .join("+");
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("|")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| (*h).to_owned()).collect();
    writeln!(out, "{}", fmt_row(&header_cells)).unwrap();
    writeln!(out, "{sep}").unwrap();
    for row in rows {
        writeln!(out, "{}", fmt_row(row)).unwrap();
    }
    out
}

/// Render one or more named series as an ASCII chart: x = first column,
/// one bar row per x value per series. Good enough to eyeball the shape
/// of a speedup curve in a terminal.
pub fn render_series(
    title: &str,
    x_label: &str,
    series: &[(&str, Vec<(f64, f64)>)],
    max_width: usize,
) -> String {
    let mut out = String::new();
    writeln!(out, "{title}").unwrap();
    let y_max = series
        .iter()
        .flat_map(|(_, pts)| pts.iter().map(|&(_, y)| y))
        .fold(0.0_f64, f64::max)
        .max(1e-9);
    let name_w = series.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, pts) in series {
        for &(x, y) in pts {
            let bar_len = ((y / y_max) * max_width as f64).round() as usize;
            writeln!(
                out,
                "{name:<name_w$} {x_label}={x:<6} {y:>8.2} |{}",
                "#".repeat(bar_len)
            )
            .unwrap();
        }
    }
    out
}

/// Render series as CSV (`x,series1,series2,...`), aligning series on
/// their x values (they must share the same x grid).
pub fn render_csv(x_label: &str, series: &[(&str, Vec<(f64, f64)>)]) -> String {
    let mut out = String::new();
    write!(out, "{x_label}").unwrap();
    for (name, _) in series {
        write!(out, ",{name}").unwrap();
    }
    writeln!(out).unwrap();
    if series.is_empty() {
        return out;
    }
    let xs: Vec<f64> = series[0].1.iter().map(|&(x, _)| x).collect();
    for (name, pts) in series {
        assert_eq!(pts.len(), xs.len(), "series {name} must share the x grid");
    }
    for (i, x) in xs.iter().enumerate() {
        write!(out, "{x}").unwrap();
        for (_, pts) in series {
            write!(out, ",{}", pts[i].1).unwrap();
        }
        writeln!(out).unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = render_table(
            "Table X",
            &["program", "left", "right"],
            &[
                vec!["Rubik".into(), "2388".into(), "6114".into()],
                vec!["Tourney".into(), "10667".into(), "83".into()],
            ],
        );
        assert!(t.contains("Table X"));
        let lines: Vec<&str> = t.lines().collect();
        // Title, header, separator, two rows.
        assert_eq!(lines.len(), 5);
        assert_eq!(lines[3].len(), lines[4].len());
        assert!(lines[2].chars().all(|c| c == '-' || c == '+'));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_ragged_rows() {
        render_table("t", &["a", "b"], &[vec!["1".into()]]);
    }

    #[test]
    fn series_bars_scale_to_max() {
        let s = render_series(
            "Speedups",
            "P",
            &[("rubik", vec![(1.0, 1.0), (8.0, 8.0)])],
            10,
        );
        assert!(s.contains("|##########"), "{s}");
        assert!(s.contains("|#\n") || s.contains("|# "), "{s}");
    }

    #[test]
    fn csv_roundtrip_shape() {
        let csv = render_csv(
            "p",
            &[
                ("a", vec![(1.0, 2.0), (2.0, 4.0)]),
                ("b", vec![(1.0, 3.0), (2.0, 5.0)]),
            ],
        );
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "p,a,b");
        assert_eq!(lines[1], "1,2,3");
        assert_eq!(lines[2], "2,4,5");
    }

    #[test]
    #[should_panic(expected = "share the x grid")]
    fn csv_rejects_misaligned_series() {
        render_csv(
            "p",
            &[("a", vec![(1.0, 2.0)]), ("b", vec![(1.0, 3.0), (2.0, 5.0)])],
        );
    }
}
