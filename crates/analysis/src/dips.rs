//! Speedup-curve dip detection.
//!
//! §5.1: *"Interestingly, there are dips in the speedup graphs showing a
//! decrease in the speedup with an increase in the number of processors
//! employed. This shows that the partitioning of the hash-tables could
//! result in an uneven distribution of the processing load."*
//!
//! [`find_dips`] locates those non-monotonic stretches in a speedup curve
//! so the harness can report them, and [`monotonic_envelope`] computes the
//! best-so-far curve (what a tuned partition per processor count could
//! have achieved).

/// One detected dip: speedup fell between two consecutive swept processor
/// counts.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct Dip {
    /// Processor count before the dip.
    pub from_procs: usize,
    /// Processor count at the dip.
    pub to_procs: usize,
    /// Speedup before.
    pub before: f64,
    /// Speedup after (lower).
    pub after: f64,
}

impl Dip {
    /// Relative depth of the dip (0.05 = lost 5% of the prior speedup).
    pub fn depth(&self) -> f64 {
        if self.before <= 0.0 {
            0.0
        } else {
            1.0 - self.after / self.before
        }
    }
}

/// Find all dips in a `(processors, speedup)` curve. `tolerance` ignores
/// noise: only drops deeper than that relative fraction are reported.
pub fn find_dips(curve: &[(usize, f64)], tolerance: f64) -> Vec<Dip> {
    let mut out = Vec::new();
    for w in curve.windows(2) {
        let (p0, s0) = w[0];
        let (p1, s1) = w[1];
        if p1 > p0 && s0 > 0.0 && (1.0 - s1 / s0) > tolerance {
            out.push(Dip {
                from_procs: p0,
                to_procs: p1,
                before: s0,
                after: s1,
            });
        }
    }
    out
}

/// The running maximum of a speedup curve: the envelope a per-P-tuned
/// bucket distribution would trace.
pub fn monotonic_envelope(curve: &[(usize, f64)]) -> Vec<(usize, f64)> {
    let mut best = 0.0_f64;
    curve
        .iter()
        .map(|&(p, s)| {
            best = best.max(s);
            (p, best)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detects_single_dip() {
        let curve = vec![(1, 1.0), (2, 1.9), (4, 3.0), (8, 2.5), (16, 4.0)];
        let dips = find_dips(&curve, 0.01);
        assert_eq!(dips.len(), 1);
        assert_eq!(dips[0].from_procs, 4);
        assert_eq!(dips[0].to_procs, 8);
        assert!((dips[0].depth() - (1.0 - 2.5 / 3.0)).abs() < 1e-12);
    }

    #[test]
    fn tolerance_filters_noise() {
        let curve = vec![(1, 1.0), (2, 1.99), (4, 1.98)];
        assert!(find_dips(&curve, 0.02).is_empty());
        assert_eq!(find_dips(&curve, 0.0001).len(), 1);
    }

    #[test]
    fn monotone_curve_has_no_dips() {
        let curve = vec![(1, 1.0), (2, 2.0), (4, 3.5)];
        assert!(find_dips(&curve, 0.0).is_empty());
    }

    #[test]
    fn envelope_is_running_max() {
        let curve = vec![(1, 1.0), (2, 3.0), (4, 2.0), (8, 5.0)];
        assert_eq!(
            monotonic_envelope(&curve),
            vec![(1, 1.0), (2, 3.0), (4, 3.0), (8, 5.0)]
        );
    }

    #[test]
    fn empty_curve() {
        assert!(find_dips(&[], 0.0).is_empty());
        assert!(monotonic_envelope(&[]).is_empty());
    }
}
