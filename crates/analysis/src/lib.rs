#![warn(missing_docs)]

//! # mpps-analysis — distribution models, scheduling bounds, reporting
//!
//! The analytical half of §5.2:
//!
//! * [`probmodel`] — the balls-in-bins model of active-bucket
//!   distribution, with exact probabilities for the perfectly even and
//!   totally uneven cases and Monte-Carlo max-load estimates, verifying
//!   the paper's three conclusions.
//! * [`schedule`] — load-vector statistics (max/variance/imbalance), the
//!   per-cycle offline greedy distributions, and the greedy-vs-fixed
//!   improvement bound (the paper measured ≈×1.4).
//! * [`report`] — plain-text table/series/CSV rendering for the `repro`
//!   harness that regenerates every table and figure.

pub mod dips;
pub mod probmodel;
pub mod report;
pub mod schedule;

pub use dips::{find_dips, monotonic_envelope, Dip};
pub use probmodel::{
    estimate_max_load, expected_speedup, prob_perfectly_even, prob_totally_uneven, MaxLoadEstimate,
};
pub use report::{render_csv, render_series, render_table};
pub use schedule::{
    greedy_improvement_bound, greedy_per_cycle, load_stats, per_cycle_stats, LoadStats,
};
