//! The §5.2.2 probabilistic model of active-bucket distribution.
//!
//! > "The model assumed that only a fraction of the total number of
//! > buckets are active, and that each active bucket gets only a single
//! > activation."
//!
//! With `a` active buckets assigned independently and uniformly to `p`
//! processors, the per-processor load is multinomial. The paper draws
//! three conclusions, each reproduced (and tested) here:
//!
//! 1. both the perfectly even and the totally uneven distribution are
//!    very unlikely (< 1%) — [`prob_perfectly_even`],
//!    [`prob_totally_uneven`];
//! 2. more active buckets (for the same processor count) make near-even
//!    distributions more likely — right activations, which activate a
//!    large proportion of buckets, therefore spread well;
//! 3. more processors make uneven distributions more likely, i.e. the
//!    probability of near-linear speedup falls — part of why the observed
//!    speedup curves flatten.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Natural log of `n!`.
fn ln_factorial(n: u64) -> f64 {
    (2..=n).map(|k| (k as f64).ln()).sum()
}

/// Probability that `active` buckets land perfectly evenly on `procs`
/// processors (exact multinomial; zero unless `procs` divides `active`).
pub fn prob_perfectly_even(active: u64, procs: u64) -> f64 {
    assert!(procs > 0, "need at least one processor");
    if active == 0 {
        return 1.0;
    }
    if !active.is_multiple_of(procs) {
        return 0.0;
    }
    let per = active / procs;
    // ln[ a! / (per!)^p ] - a·ln p
    let ln_p = ln_factorial(active)
        - procs as f64 * ln_factorial(per)
        - active as f64 * (procs as f64).ln();
    ln_p.exp()
}

/// Probability that all `active` buckets land on a single processor.
pub fn prob_totally_uneven(active: u64, procs: u64) -> f64 {
    assert!(procs > 0, "need at least one processor");
    if active == 0 || procs == 1 {
        return 1.0;
    }
    // p · (1/p)^a
    ((procs as f64).ln() * (1.0 - active as f64)).exp()
}

/// Monte-Carlo summary of the max-load behaviour of the model.
#[derive(Clone, Copy, Debug)]
pub struct MaxLoadEstimate {
    /// Mean of the maximum per-processor load.
    pub mean_max_load: f64,
    /// Probability that the maximum load is within `slack` of the ideal
    /// `ceil(active / procs)` — "near-linear speedup".
    pub prob_near_linear: f64,
    /// The ideal (perfectly balanced) maximum load.
    pub ideal: u64,
}

/// Estimate max-load statistics by simulation (`trials` seeded draws).
/// `slack` is the number of extra activations above ideal still counted as
/// near-linear.
pub fn estimate_max_load(
    active: u64,
    procs: usize,
    slack: u64,
    trials: u32,
    seed: u64,
) -> MaxLoadEstimate {
    assert!(procs > 0 && trials > 0);
    let ideal = active.div_ceil(procs as u64);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sum_max = 0u64;
    let mut near = 0u32;
    let mut loads = vec![0u64; procs];
    for _ in 0..trials {
        loads.fill(0);
        for _ in 0..active {
            loads[rng.gen_range(0..procs)] += 1;
        }
        let max = *loads.iter().max().unwrap();
        sum_max += max;
        if max <= ideal + slack {
            near += 1;
        }
    }
    MaxLoadEstimate {
        mean_max_load: sum_max as f64 / f64::from(trials),
        prob_near_linear: f64::from(near) / f64::from(trials),
        ideal,
    }
}

/// Expected speedup of the model: `active / E[max load]` — what the bucket
/// distribution alone permits, before any communication costs.
pub fn expected_speedup(active: u64, procs: usize, trials: u32, seed: u64) -> f64 {
    let est = estimate_max_load(active, procs, 0, trials, seed);
    if est.mean_max_load == 0.0 {
        0.0
    } else {
        active as f64 / est.mean_max_load
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_basics() {
        assert_eq!(ln_factorial(0), 0.0);
        assert_eq!(ln_factorial(1), 0.0);
        assert!((ln_factorial(5) - 120f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn even_probability_exact_small_case() {
        // 2 buckets, 2 procs: P(one each) = 2!/(1!1!) / 2^2 = 0.5.
        assert!((prob_perfectly_even(2, 2) - 0.5).abs() < 1e-12);
        // 4 buckets, 2 procs: C(4,2)/16 = 6/16.
        assert!((prob_perfectly_even(4, 2) - 0.375).abs() < 1e-12);
        // Indivisible: impossible.
        assert_eq!(prob_perfectly_even(5, 2), 0.0);
    }

    #[test]
    fn totally_uneven_exact_small_case() {
        // 3 buckets, 2 procs: 2 · (1/2)^3 = 0.25.
        assert!((prob_totally_uneven(3, 2) - 0.25).abs() < 1e-12);
        assert_eq!(prob_totally_uneven(10, 1), 1.0);
    }

    #[test]
    fn paper_conclusion_1_extremes_are_rare() {
        // A representative §5 configuration: 128 active buckets, 16 procs.
        let even = prob_perfectly_even(128, 16);
        let uneven = prob_totally_uneven(128, 16);
        assert!(even < 0.01, "P(even) = {even}");
        assert!(uneven < 0.01, "P(totally uneven) = {uneven}");
        // And the in-between dominates.
        assert!(1.0 - even - uneven > 0.98);
    }

    #[test]
    fn paper_conclusion_2_more_active_buckets_spread_better() {
        // Fixed 8 processors; relative imbalance (E[max]/ideal) shrinks as
        // the number of active buckets grows.
        let few = estimate_max_load(16, 8, 0, 4000, 7);
        let many = estimate_max_load(512, 8, 0, 4000, 7);
        let rel_few = few.mean_max_load / few.ideal as f64;
        let rel_many = many.mean_max_load / many.ideal as f64;
        assert!(
            rel_many < rel_few,
            "relative imbalance: many={rel_many:.3} few={rel_few:.3}"
        );
    }

    #[test]
    fn paper_conclusion_3_more_processors_hurt_linearity() {
        // Fixed 64 active buckets; P(near-linear) falls with processors.
        let p4 = estimate_max_load(64, 4, 1, 4000, 11).prob_near_linear;
        let p16 = estimate_max_load(64, 16, 1, 4000, 11).prob_near_linear;
        let p32 = estimate_max_load(64, 32, 1, 4000, 11).prob_near_linear;
        assert!(p4 > p16, "p4={p4} p16={p16}");
        assert!(p16 > p32, "p16={p16} p32={p32}");
    }

    #[test]
    fn expected_speedup_is_sublinear() {
        let s8 = expected_speedup(64, 8, 4000, 3);
        assert!(s8 > 1.0 && s8 < 8.0, "s8 = {s8}");
        // More buckets per processor → closer to linear.
        let s8_dense = expected_speedup(4096, 8, 500, 3);
        assert!(s8_dense > s8);
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let a = estimate_max_load(100, 10, 0, 200, 42);
        let b = estimate_max_load(100, 10, 0, 200, 42);
        assert_eq!(a.mean_max_load, b.mean_max_load);
        assert_eq!(a.prob_near_linear, b.prob_near_linear);
    }

    #[test]
    fn zero_active_buckets_degenerate() {
        assert_eq!(prob_perfectly_even(0, 4), 1.0);
        assert_eq!(prob_totally_uneven(0, 4), 1.0);
    }
}
