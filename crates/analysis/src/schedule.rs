//! Load-balance mathematics for bucket-to-processor assignments.
//!
//! §5.2.2's offline greedy experiment needs three things: per-cycle
//! bucket-activity extraction (in `mpps-core::partition`), the greedy
//! assignment itself ([`mpps_core::Partition::greedy`]), and the
//! *evaluation* — how uneven a given assignment is, and how much an
//! alternative assignment would improve the simulated run. The evaluation
//! lives here.

use mpps_core::{cycle_bucket_activity, cycle_bucket_work, CostModel, Partition};
use mpps_rete::Trace;

/// Summary of one load vector (per-processor activation counts).
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct LoadStats {
    /// Largest per-processor load (the cycle's serial bottleneck).
    pub max: u64,
    /// Mean load.
    pub mean: f64,
    /// Population variance — the paper judges its greedy distributions by
    /// "a very low variance".
    pub variance: f64,
    /// `max / mean` (1.0 = perfectly balanced); `inf` when mean is zero.
    pub imbalance: f64,
}

/// Compute [`LoadStats`] for a load vector.
pub fn load_stats(loads: &[u64]) -> LoadStats {
    assert!(!loads.is_empty(), "need at least one processor");
    let max = *loads.iter().max().unwrap();
    let mean = loads.iter().sum::<u64>() as f64 / loads.len() as f64;
    let variance = loads
        .iter()
        .map(|&l| {
            let d = l as f64 - mean;
            d * d
        })
        .sum::<f64>()
        / loads.len() as f64;
    let imbalance = if mean == 0.0 {
        if max == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        max as f64 / mean
    };
    LoadStats {
        max,
        mean,
        variance,
        imbalance,
    }
}

/// Per-cycle load statistics of `partition` over `trace`.
pub fn per_cycle_stats(trace: &Trace, partition: &Partition) -> Vec<LoadStats> {
    (0..trace.cycles.len())
        .map(|c| {
            let activity = cycle_bucket_activity(trace, c);
            load_stats(&partition.loads(&activity))
        })
        .collect()
}

/// Build the paper's per-cycle greedy distributions: one LPT assignment
/// per cycle, from that cycle's observed bucket **work** (token store +
/// successor generation, the information "not available to the actual
/// distribution algorithm" — this is the offline bound). Work weights
/// matter: by raw counts a bucket holding one 1600-successor generator
/// looks idle, and LPT would happily stack all generators on one
/// processor.
pub fn greedy_per_cycle(trace: &Trace, processors: usize) -> Vec<Partition> {
    let cost = CostModel::default();
    (0..trace.cycles.len())
        .map(|c| Partition::greedy(&cycle_bucket_work(trace, c, &cost), processors))
        .collect()
}

/// The idealized improvement factor of per-cycle greedy over a fixed
/// assignment, estimated from per-cycle maximum loads (per-bucket work
/// stands in for time): `sum(max under fixed) / sum(max under greedy)`.
/// The paper measured ≈1.4 on its traces.
pub fn greedy_improvement_bound(trace: &Trace, fixed: &Partition) -> f64 {
    let procs = fixed.processors();
    let cost = CostModel::default();
    let mut fixed_sum = 0u64;
    let mut greedy_sum = 0u64;
    for c in 0..trace.cycles.len() {
        let work = cycle_bucket_work(trace, c, &cost);
        fixed_sum += *fixed.loads(&work).iter().max().unwrap_or(&0);
        let greedy = Partition::greedy(&work, procs);
        greedy_sum += *greedy.loads(&work).iter().max().unwrap_or(&0);
    }
    if greedy_sum == 0 {
        1.0
    } else {
        fixed_sum as f64 / greedy_sum as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpps_ops::Sign;
    use mpps_rete::trace::{ActKind, ActivationRecord, TraceCycle};
    use mpps_rete::{NodeId, Side};

    #[test]
    fn load_stats_basics() {
        let s = load_stats(&[4, 0, 0, 0]);
        assert_eq!(s.max, 4);
        assert_eq!(s.mean, 1.0);
        assert_eq!(s.variance, 3.0);
        assert_eq!(s.imbalance, 4.0);
        let even = load_stats(&[2, 2, 2, 2]);
        assert_eq!(even.variance, 0.0);
        assert_eq!(even.imbalance, 1.0);
    }

    #[test]
    fn empty_loads_are_balanced() {
        let s = load_stats(&[0, 0]);
        assert_eq!(s.imbalance, 1.0);
    }

    fn skewed_trace() -> Trace {
        // Two cycles; each concentrates activity on buckets that
        // round-robin maps to one processor (stride 2 on 2 procs).
        let mut t = Trace::new(8);
        for cycle in 0..2u64 {
            let mut acts = Vec::new();
            for i in 0..12u64 {
                acts.push(ActivationRecord {
                    node: NodeId(1),
                    side: Side::Left,
                    sign: Sign::Plus,
                    // Cycle 0 hits even buckets (proc 0), cycle 1 odd.
                    bucket: (2 * (i % 4) + cycle) % 8,
                    parent: None,
                    kind: ActKind::TwoInput,
                });
            }
            t.cycles.push(TraceCycle { activations: acts });
        }
        t
    }

    #[test]
    fn round_robin_is_maximally_uneven_on_adversarial_trace() {
        let t = skewed_trace();
        let rr = Partition::round_robin(8, 2);
        let stats = per_cycle_stats(&t, &rr);
        // All 12 activations of each cycle land on one processor.
        assert_eq!(stats[0].max, 12);
        assert_eq!(stats[1].max, 12);
    }

    #[test]
    fn greedy_per_cycle_balances_each_cycle() {
        let t = skewed_trace();
        let parts = greedy_per_cycle(&t, 2);
        assert_eq!(parts.len(), 2);
        let stats: Vec<LoadStats> = (0..2)
            .map(|c| {
                let activity = mpps_core::cycle_bucket_activity(&t, c);
                load_stats(&parts[c].loads(&activity))
            })
            .collect();
        assert_eq!(stats[0].max, 6);
        assert_eq!(stats[1].max, 6);
        assert!(stats[0].variance < 1.0);
    }

    #[test]
    fn greedy_improvement_factor_on_adversarial_trace() {
        let t = skewed_trace();
        let rr = Partition::round_robin(8, 2);
        let f = greedy_improvement_bound(&t, &rr);
        assert!((f - 2.0).abs() < 1e-9, "12/6 per cycle → ×2, got {f}");
    }

    #[test]
    fn greedy_never_worse_than_fixed() {
        let t = skewed_trace();
        for procs in [1usize, 2, 4] {
            let rr = Partition::round_robin(8, procs);
            assert!(greedy_improvement_bound(&t, &rr) >= 1.0 - 1e-9);
        }
    }
}
