//! The paper's bottleneck-removal transforms (§5.2).
//!
//! Three mechanisms are proposed for the *multiple-successor* and
//! *uneven-token-distribution* problems:
//!
//! 1. **Unsharing** (Figure 5-3): compile the network without two-input
//!    node sharing, so each production generates its successors at its own
//!    node (and hence bucket). Implemented in the compiler —
//!    [`CompileOptions::unshared`]; [`unshare`] is a convenience wrapper.
//! 2. **Dummy nodes**: insert intermediate nodes that split one node's
//!    large successor fan-out into 2–4 parts. Implemented as the trace
//!    transform [`split_fanout`], mirroring how dummy nodes reshape the
//!    activation tree without changing match semantics.
//! 3. **Copy-and-constraint** (Stolfo; §5.2.2): split a production into
//!    multiple copies, each matching a slice of the data, so the copies'
//!    distinct node ids restore hash discrimination. Implemented as the
//!    source transform [`copy_and_constrain`].

use crate::hashfn::bucket_index;
use crate::network::{CompileOptions, NodeId, NodeKind, ReteNetwork, Side, Succ};
use crate::trace::{ActKind, ActivationRecord, Trace, TraceCycle};
use mpps_ops::{
    intern, AttrTest, OpsError, Predicate, Production, ProductionId, Program, Symbol, TestKind,
    Value, Wme,
};
use std::collections::BTreeMap;

/// Compile `program` with two-input-node sharing disabled — the unsharing
/// transform of §5.2.1.
pub fn unshare(program: &Program) -> Result<ReteNetwork, OpsError> {
    ReteNetwork::compile_with(program, CompileOptions::unshared())
}

/// Options for [`split_fanout`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitFanoutOptions {
    /// Only activations generating more than this many successors are
    /// split.
    pub threshold: usize,
    /// How many dummy nodes to split the successors across (the paper
    /// suggests 2–4).
    pub ways: usize,
}

impl Default for SplitFanoutOptions {
    fn default() -> Self {
        SplitFanoutOptions {
            threshold: 8,
            ways: 4,
        }
    }
}

/// Apply the dummy-node transform to a trace: every activation whose
/// fan-out exceeds `opts.threshold` has its successors re-parented onto
/// `opts.ways` freshly invented dummy two-input activations, each placed in
/// its own hash bucket. The original activation then generates only
/// `opts.ways` (dummy) tokens, and the real successors are generated in
/// parallel at the dummies — exactly the effect of inserting dummy nodes in
/// the Rete network.
pub fn split_fanout(trace: &Trace, opts: SplitFanoutOptions) -> Trace {
    assert!(opts.ways >= 2, "splitting needs at least 2 ways");
    // Fresh node ids start past any node mentioned in the trace.
    let mut next_node = trace
        .cycles
        .iter()
        .flat_map(|c| c.activations.iter())
        .map(|a| a.node.0)
        .max()
        .map_or(0, |m| m + 1);

    let mut out = Trace::new(trace.table_size);
    for cycle in &trace.cycles {
        let children = cycle.children_index();
        let mut new_cycle = TraceCycle::default();
        // old index -> new index (for unsplit parents)
        let mut remap: Vec<u32> = vec![0; cycle.activations.len()];
        // old child index -> new parent index (for re-parented children)
        let mut reparent: Vec<Option<u32>> = vec![None; cycle.activations.len()];

        for (i, act) in cycle.activations.iter().enumerate() {
            let parent = match (reparent[i], act.parent) {
                (Some(p), _) => Some(p),
                (None, Some(op)) => Some(remap[op as usize]),
                (None, None) => None,
            };
            let new_idx = new_cycle.activations.len() as u32;
            remap[i] = new_idx;
            new_cycle
                .activations
                .push(ActivationRecord { parent, ..*act });

            let kids = &children[i];
            if kids.len() > opts.threshold {
                // Insert dummies right after the parent; round-robin the
                // children across them.
                let mut dummy_idx = Vec::with_capacity(opts.ways);
                for _ in 0..opts.ways {
                    let node = NodeId(next_node);
                    next_node += 1;
                    let idx = new_cycle.activations.len() as u32;
                    dummy_idx.push(idx);
                    new_cycle.activations.push(ActivationRecord {
                        node,
                        side: Side::Left,
                        sign: act.sign,
                        bucket: bucket_index(node, [], trace.table_size),
                        parent: Some(new_idx),
                        kind: ActKind::TwoInput,
                    });
                }
                for (k, &child) in kids.iter().enumerate() {
                    reparent[child as usize] = Some(dummy_idx[k % opts.ways]);
                }
            }
        }
        out.cycles.push(new_cycle);
    }
    out
}

/// Split `production` into one copy per half-open value range of the
/// integer attribute `attr` of condition element `ce_index` (0-based into
/// the LHS). `boundaries` must be strictly increasing; `n` boundaries yield
/// `n + 1` copies covering `(-∞, b0)`, `[b0, b1)`, …, `[bn-1, +∞)`.
///
/// Any WME whose `attr` is an integer matches exactly one copy, so the
/// union of the copies' matches equals the original's — provided every WME
/// reaching that CE carries an integer `attr` (the caller picks an
/// attribute for which that holds). The copies are distinct productions
/// compiled to distinct node ids, which is what restores hash
/// discrimination for non-discriminating (cross-product) joins.
pub fn copy_and_constrain(
    production: &Production,
    ce_index: usize,
    attr: &str,
    boundaries: &[i64],
) -> Result<Vec<Production>, OpsError> {
    let invalid = |msg: String| {
        Err(OpsError::InvalidProduction(
            production.name.to_string(),
            msg,
        ))
    };
    if ce_index >= production.lhs.len() {
        return invalid(format!("copy-and-constraint: no CE at index {ce_index}"));
    }
    if production.lhs[ce_index].negated {
        return invalid("copy-and-constraint: cannot split on a negated CE".into());
    }
    if boundaries.is_empty() {
        return invalid("copy-and-constraint: need at least one boundary".into());
    }
    if boundaries.windows(2).any(|w| w[0] >= w[1]) {
        return invalid("copy-and-constraint: boundaries must be strictly increasing".into());
    }
    let attr = intern(attr);
    let copies = boundaries.len() + 1;
    let mut out = Vec::with_capacity(copies);
    for i in 0..copies {
        let mut p = production.clone();
        p.name = intern(&format!("{}*cc{}", production.name, i));
        let ce = &mut p.lhs[ce_index];
        if i > 0 {
            ce.tests.push(AttrTest {
                attr,
                kind: TestKind::Constant(Predicate::Ge, Value::Int(boundaries[i - 1])),
            });
        }
        if i < boundaries.len() {
            ce.tests.push(AttrTest {
                attr,
                kind: TestKind::Constant(Predicate::Lt, Value::Int(boundaries[i])),
            });
        }
        p.validate()?;
        out.push(p);
    }
    Ok(out)
}

/// A planned network-level copy-and-constraint: split one production's
/// join chain by constraining the value range of `attr` at LHS condition
/// element `ce_index`.
///
/// Unlike the source transform [`copy_and_constrain`], a planned split is
/// applied during compilation ([`ReteNetwork::compile_planned`]) and keeps
/// the production's name and [`ProductionId`] on every variant, so the
/// rewritten network's conflict sets are *identical* to the original's —
/// not merely equivalent up to renaming.
///
/// Soundness: [`mpps_ops::Value`] is totally ordered (integers below all
/// symbols), so the added `>= b[i-1]` / `< b[i]` constant tests partition
/// *every* possible value of `attr` into exactly one of the `n + 1`
/// half-open ranges — symbols all land in the last range. The only way a
/// WME could match the original CE but no variant is for `attr` to be
/// absent, which [`SplitSpec::validate`] rules out by requiring the CE to
/// already test `attr` (every test kind implies presence).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct SplitSpec {
    /// 0-based index into the production's LHS of the CE to constrain.
    pub ce_index: usize,
    /// The attribute whose value range is split.
    pub attr: Symbol,
    /// Strictly increasing range boundaries; `n` boundaries yield `n + 1`
    /// variants covering `(-∞, b0)`, `[b0, b1)`, …, `[bn-1, +∞)`.
    pub boundaries: Vec<i64>,
}

impl SplitSpec {
    /// A split of CE `ce_index` on `attr` at the given boundaries.
    pub fn new(ce_index: usize, attr: &str, boundaries: Vec<i64>) -> Self {
        SplitSpec {
            ce_index,
            attr: intern(attr),
            boundaries,
        }
    }

    /// Check this spec is applicable to `production` (see type docs for
    /// the soundness conditions).
    pub fn validate(&self, production: &Production) -> Result<(), OpsError> {
        let invalid = |msg: String| {
            Err(OpsError::InvalidProduction(
                production.name.to_string(),
                msg,
            ))
        };
        let Some(ce) = production.lhs.get(self.ce_index) else {
            return invalid(format!("split: no CE at index {}", self.ce_index));
        };
        if ce.negated {
            return invalid("split: cannot split on a negated CE".into());
        }
        if self.boundaries.is_empty() {
            return invalid("split: need at least one boundary".into());
        }
        if self.boundaries.windows(2).any(|w| w[0] >= w[1]) {
            return invalid("split: boundaries must be strictly increasing".into());
        }
        // Presence guard: every test kind fails on an absent attribute, so
        // an existing test on `attr` guarantees the range tests see a value.
        if !ce.tests.iter().any(|t| t.attr == self.attr) {
            return invalid(format!(
                "split: CE {} has no test on ^{} — a WME without the \
                 attribute would match the original but no variant",
                self.ce_index, self.attr
            ));
        }
        Ok(())
    }

    /// The constrained LHS variants (same name, same everything except the
    /// added range tests). Call [`SplitSpec::validate`] first.
    fn variants(&self, production: &Production) -> Vec<Production> {
        let copies = self.boundaries.len() + 1;
        let mut out = Vec::with_capacity(copies);
        for i in 0..copies {
            let mut p = production.clone();
            let ce = &mut p.lhs[self.ce_index];
            if i > 0 {
                ce.tests.push(AttrTest {
                    attr: self.attr,
                    kind: TestKind::Constant(Predicate::Ge, Value::Int(self.boundaries[i - 1])),
                });
            }
            if i < self.boundaries.len() {
                ce.tests.push(AttrTest {
                    attr: self.attr,
                    kind: TestKind::Constant(Predicate::Lt, Value::Int(self.boundaries[i])),
                });
            }
            out.push(p);
        }
        out
    }
}

/// A set of semantics-preserving network rewrites: per-production
/// unsharing (§5.2.1) and copy-and-constraint splits (§5.2.2), applied
/// together by [`rewrite`] / [`ReteNetwork::compile_planned`].
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct TransformPlan {
    unshare: Vec<ProductionId>,
    splits: Vec<(ProductionId, SplitSpec)>,
}

impl TransformPlan {
    /// An empty plan (compiles identically to [`ReteNetwork::compile_with`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mark `pid` for unsharing: its two-input nodes bypass the sharing
    /// cache, so no other production's chain can collapse into them.
    pub fn with_unshare(mut self, pid: ProductionId) -> Self {
        if !self.unshare.contains(&pid) {
            self.unshare.push(pid);
        }
        self
    }

    /// Add a copy-and-constraint split for `pid`.
    pub fn with_split(mut self, pid: ProductionId, spec: SplitSpec) -> Self {
        self.splits.push((pid, spec));
        self
    }

    /// True when the plan rewrites nothing.
    pub fn is_empty(&self) -> bool {
        self.unshare.is_empty() && self.splits.is_empty()
    }

    /// Is `pid` marked for unsharing?
    pub fn unshares(&self, pid: ProductionId) -> bool {
        self.unshare.contains(&pid)
    }

    /// The planned splits, in insertion order.
    pub fn splits(&self) -> &[(ProductionId, SplitSpec)] {
        &self.splits
    }

    /// The productions marked for unsharing, in insertion order.
    pub fn unshared(&self) -> &[ProductionId] {
        &self.unshare
    }

    /// Check every planned rewrite against `program`.
    pub fn validate(&self, program: &Program) -> Result<(), OpsError> {
        let check = |pid: ProductionId| {
            if (pid.0 as usize) < program.len() {
                Ok(())
            } else {
                Err(OpsError::InvalidProduction(
                    format!("p{}", pid.0),
                    "plan references a production the program does not have".into(),
                ))
            }
        };
        for &pid in &self.unshare {
            check(pid)?;
        }
        for (i, (pid, spec)) in self.splits.iter().enumerate() {
            check(*pid)?;
            spec.validate(program.get(*pid))?;
            if self.splits[..i].iter().any(|(p, _)| p == pid) {
                return Err(OpsError::InvalidProduction(
                    program.get(*pid).name.to_string(),
                    "plan splits the same production twice".into(),
                ));
            }
        }
        Ok(())
    }

    /// The LHS variants to compile for `pid` (`None` when the plan does
    /// not split it). Used by [`ReteNetwork::compile_planned`].
    pub(crate) fn split_variants(
        &self,
        pid: ProductionId,
        production: &Production,
    ) -> Result<Option<Vec<Production>>, OpsError> {
        match self.splits.iter().find(|(p, _)| *p == pid) {
            Some((_, spec)) => Ok(Some(spec.variants(production))),
            None => Ok(None),
        }
    }

    /// One-line human summary, for logs and the CLI.
    pub fn summary(&self, program: &Program) -> String {
        if self.is_empty() {
            return "no rewrites".into();
        }
        let mut parts = Vec::new();
        for (pid, spec) in &self.splits {
            parts.push(format!(
                "split {} @ce{} ^{} into {}",
                program.get(*pid).name,
                spec.ce_index,
                spec.attr,
                spec.boundaries.len() + 1
            ));
        }
        for pid in &self.unshare {
            parts.push(format!("unshare {}", program.get(*pid).name));
        }
        parts.join("; ")
    }
}

/// Apply `plan` to the network compiled from `program`, preserving the
/// original's [`CompileOptions`]. The result matches the same data with
/// byte-identical conflict sets (same [`ProductionId`]s, same WME
/// combinations) — the equivalence the difftest oracle and the
/// transform-sequence proptests pin down.
pub fn rewrite(
    net: &ReteNetwork,
    program: &Program,
    plan: &TransformPlan,
) -> Result<ReteNetwork, OpsError> {
    ReteNetwork::compile_planned(program, net.options(), plan)
}

/// Options for [`suggest_plan`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SuggestOptions {
    /// Target number of range copies per split (the paper suggests 2–4).
    pub ways: usize,
    /// Ignore two-input nodes with fewer recorded activations than this.
    /// With an empty activation map every cross-product node qualifies.
    pub min_activations: u64,
}

impl Default for SuggestOptions {
    fn default() -> Self {
        SuggestOptions {
            ways: 4,
            min_activations: 0,
        }
    }
}

/// Derive a [`TransformPlan`] from measured hot spots.
///
/// Candidate nodes are non-negative two-input nodes with an *empty hash
/// signature* (`eq_checks` empty — a cross-product join): every token at
/// such a node hashes to one bucket, so worker migration cannot spread
/// its load and only a network rewrite helps. Candidates are ranked by
/// `node_activations` (the `NODE_ACTIVATIONS` counter series, keyed by
/// node id). For each production downstream of a hot node the CE feeding
/// that node is split on the tested attribute whose values in `wmes` are
/// most diverse, with boundaries at value quantiles; productions sharing
/// a hot node are additionally marked for unsharing.
pub fn suggest_plan(
    net: &ReteNetwork,
    program: &Program,
    node_activations: &BTreeMap<u64, u64>,
    wmes: &[Wme],
    opts: &SuggestOptions,
) -> TransformPlan {
    let acts = |id: NodeId| node_activations.get(&u64::from(id.0)).copied().unwrap_or(0);
    let mut hot: Vec<NodeId> = net
        .iter()
        .filter_map(|(id, n)| match n {
            NodeKind::TwoInput(j)
                if !j.negative
                    && j.spec.eq_checks.is_empty()
                    && acts(id) >= opts.min_activations =>
            {
                Some(id)
            }
            _ => None,
        })
        .collect();
    hot.sort_by_key(|&id| (std::cmp::Reverse(acts(id)), id.0));

    let mut plan = TransformPlan::new();
    for node in hot {
        let shared = match net.node(node) {
            NodeKind::TwoInput(j) => j.successors.len() > 1,
            _ => false,
        };
        for pid in downstream_productions(net, node) {
            if plan.splits.iter().any(|(p, _)| *p == pid) {
                continue;
            }
            if shared {
                plan = plan.with_unshare(pid);
            }
            let Some(ce_index) = ce_index_of_node(net, program, pid, node) else {
                continue;
            };
            if let Some(spec) = propose_split(net, program, pid, ce_index, node, wmes, opts) {
                plan = plan.with_split(pid, spec);
            }
        }
    }
    plan
}

/// Every production reachable from `node` through successor edges.
fn downstream_productions(net: &ReteNetwork, node: NodeId) -> Vec<ProductionId> {
    let mut stack = vec![node];
    let mut seen = vec![node];
    let mut out = Vec::new();
    while let Some(id) = stack.pop() {
        let NodeKind::TwoInput(j) = net.node(id) else {
            continue;
        };
        for succ in &j.successors {
            match *succ {
                Succ::TwoInput(t) => {
                    if !seen.contains(&t) {
                        seen.push(t);
                        stack.push(t);
                    }
                }
                Succ::Production(p) => {
                    if let NodeKind::Production(pn) = net.node(p) {
                        if !out.contains(&pn.production) {
                            out.push(pn.production);
                        }
                    }
                }
            }
        }
    }
    out
}

/// The LHS index of the CE whose right input feeds `node` within `pid`'s
/// chain, reconstructed from the compiler's chain order (seed = first
/// positive CE, then leading negations, then the rest in source order).
fn ce_index_of_node(
    net: &ReteNetwork,
    program: &Program,
    pid: ProductionId,
    node: NodeId,
) -> Option<usize> {
    let prod = program.get(pid);
    let pnode = net
        .production_nodes_of(pid)
        .next()
        .expect("compiled production has a node");
    // Bottom-up walk from the production node's feeding join.
    let mut chain_rev = Vec::new();
    let mut cur = net.iter().find_map(|(id, n)| match n {
        NodeKind::TwoInput(j) if j.successors.contains(&Succ::Production(pnode)) => Some(id),
        _ => None,
    })?;
    loop {
        chain_rev.push(cur);
        match net.join(cur).left_src {
            crate::network::LeftSource::Beta(b) => cur = b,
            crate::network::LeftSource::Alpha(_) => break,
        }
    }
    let pos_in_chain = chain_rev.iter().rev().position(|&id| id == node)?;
    // Chain order over LHS indices: seed CE first, then the rest.
    let first_pos = prod.lhs.iter().position(|ce| !ce.negated)?;
    let order: Vec<usize> = std::iter::once(first_pos)
        .chain(0..first_pos)
        .chain(first_pos + 1..prod.lhs.len())
        .collect();
    // Two-input node r (top-down) joins in the CE at order[r + 1].
    order.get(pos_in_chain + 1).copied()
}

/// Pick the split attribute and boundaries for `pid`'s CE at `ce_index`:
/// the tested attribute whose integer values across the WMEs accepted by
/// the node's right alpha are most diverse, cut at quantiles into at most
/// `opts.ways` ranges. `None` when no attribute has at least two distinct
/// integer values (a split would not spread anything).
fn propose_split(
    net: &ReteNetwork,
    program: &Program,
    pid: ProductionId,
    ce_index: usize,
    node: NodeId,
    wmes: &[Wme],
    opts: &SuggestOptions,
) -> Option<SplitSpec> {
    let ce = &program.get(pid).lhs[ce_index];
    let alpha = match net.node(net.join(node).right_alpha) {
        NodeKind::Alpha(a) => a,
        _ => return None,
    };
    let mut tested: Vec<Symbol> = ce.tests.iter().map(|t| t.attr).collect();
    tested.dedup();
    let mut best: Option<(usize, Symbol, Vec<i64>)> = None;
    for attr in tested {
        let mut vals: Vec<i64> = wmes
            .iter()
            .filter(|w| alpha.matches(w))
            .filter_map(|w| match w.get(attr) {
                Some(Value::Int(i)) => Some(i),
                _ => None,
            })
            .collect();
        vals.sort_unstable();
        vals.dedup();
        if vals.len() < 2 {
            continue;
        }
        if best.as_ref().is_none_or(|(n, _, _)| vals.len() > *n) {
            best = Some((vals.len(), attr, vals));
        }
    }
    let (_, attr, distinct) = best?;
    let ways = opts.ways.max(2).min(distinct.len());
    // Quantile cut points: `ways - 1` boundaries from the distinct values,
    // strictly increasing by construction (indices strictly increase and
    // the values are deduped).
    let boundaries: Vec<i64> = (1..ways)
        .map(|i| distinct[i * distinct.len() / ways])
        .collect();
    if boundaries.is_empty() || boundaries.windows(2).any(|w| w[0] >= w[1]) {
        return None;
    }
    let spec = SplitSpec {
        ce_index,
        attr,
        boundaries,
    };
    spec.validate(program.get(pid)).ok()?;
    Some(spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, ReteMatcher};
    use mpps_ops::{parse_production, parse_program, Matcher, Wme, WmeChange, WmeId};

    fn sample_trace_with_big_fanout() -> Trace {
        use mpps_ops::Sign;
        let mut t = Trace::new(64);
        let mut cycle = TraceCycle::default();
        // One root with 12 children and one small root with 1 child.
        cycle.activations.push(ActivationRecord {
            node: NodeId(1),
            side: Side::Left,
            sign: Sign::Plus,
            bucket: 3,
            parent: None,
            kind: ActKind::TwoInput,
        });
        for _ in 0..12 {
            cycle.activations.push(ActivationRecord {
                node: NodeId(2),
                side: Side::Left,
                sign: Sign::Plus,
                bucket: 7,
                parent: Some(0),
                kind: ActKind::TwoInput,
            });
        }
        cycle.activations.push(ActivationRecord {
            node: NodeId(3),
            side: Side::Right,
            sign: Sign::Plus,
            bucket: 9,
            parent: None,
            kind: ActKind::TwoInput,
        });
        cycle.activations.push(ActivationRecord {
            node: NodeId(2),
            side: Side::Left,
            sign: Sign::Plus,
            bucket: 7,
            parent: Some(13),
            kind: ActKind::TwoInput,
        });
        t.cycles.push(cycle);
        t
    }

    #[test]
    fn split_fanout_reduces_max_fanout() {
        let t = sample_trace_with_big_fanout();
        assert_eq!(t.cycles[0].max_fanout(), 12);
        let s = split_fanout(
            &t,
            SplitFanoutOptions {
                threshold: 8,
                ways: 4,
            },
        );
        // The big parent now has 4 dummy children; each dummy has 3 real
        // children.
        assert_eq!(s.cycles[0].max_fanout(), 4);
        // 15 original + 4 dummies.
        assert_eq!(s.cycles[0].activations.len(), 19);
    }

    #[test]
    fn split_fanout_preserves_small_parents() {
        let t = sample_trace_with_big_fanout();
        let s = split_fanout(
            &t,
            SplitFanoutOptions {
                threshold: 20,
                ways: 2,
            },
        );
        // Nothing exceeds the threshold: structure unchanged.
        assert_eq!(s.cycles[0].activations.len(), t.cycles[0].activations.len());
        assert_eq!(s.cycles[0].max_fanout(), t.cycles[0].max_fanout());
    }

    #[test]
    fn split_fanout_keeps_parent_before_child_invariant() {
        let s = split_fanout(
            &sample_trace_with_big_fanout(),
            SplitFanoutOptions::default(),
        );
        for cycle in &s.cycles {
            for (i, a) in cycle.activations.iter().enumerate() {
                if let Some(p) = a.parent {
                    assert!((p as usize) < i);
                }
            }
        }
    }

    #[test]
    fn split_fanout_dummies_get_fresh_nodes_and_buckets() {
        let t = sample_trace_with_big_fanout();
        let s = split_fanout(
            &t,
            SplitFanoutOptions {
                threshold: 8,
                ways: 4,
            },
        );
        let dummies: Vec<&ActivationRecord> = s.cycles[0]
            .activations
            .iter()
            .filter(|a| a.node.0 > 3)
            .collect();
        assert_eq!(dummies.len(), 4);
        let mut nodes: Vec<u32> = dummies.iter().map(|a| a.node.0).collect();
        nodes.dedup();
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn copy_and_constrain_produces_partitioning_copies() {
        let p =
            parse_production("(p pairup (team ^id <a>) (team ^id <b>) --> (remove 1))").unwrap();
        let copies = copy_and_constrain(&p, 1, "id", &[10, 20]).unwrap();
        assert_eq!(copies.len(), 3);
        assert_eq!(copies[0].name.as_str(), "pairup*cc0");
        // Copy 0: id < 10; copy 1: 10 <= id < 20; copy 2: id >= 20.
        assert_eq!(copies[0].lhs[1].tests.len(), 2);
        assert_eq!(copies[1].lhs[1].tests.len(), 3);
        assert_eq!(copies[2].lhs[1].tests.len(), 2);
    }

    #[test]
    fn copy_and_constrain_preserves_match_semantics() {
        let src = "(p pairup (lhs ^id <a>) (rhs ^id <b>) --> (remove 1))";
        let original = parse_production(src).unwrap();
        let copies = copy_and_constrain(&original, 1, "id", &[5]).unwrap();

        let prog_orig = Program::from_productions(vec![original]).unwrap();
        let prog_cc = Program::from_productions(copies).unwrap();
        let mut m_orig = ReteMatcher::from_program(&prog_orig).unwrap();
        let mut m_cc = ReteMatcher::from_program(&prog_cc).unwrap();

        let mut changes = Vec::new();
        let mut id = 0;
        for i in 0..4 {
            id += 1;
            changes.push(WmeChange::add(
                WmeId(id),
                Wme::new("lhs", &[("id", i.into())]),
            ));
        }
        for i in 0..10 {
            id += 1;
            changes.push(WmeChange::add(
                WmeId(id),
                Wme::new("rhs", &[("id", i.into())]),
            ));
        }
        m_orig.process(&changes);
        m_cc.process(&changes);
        // Same WME combinations match (production ids differ by design).
        let keys = |m: &ReteMatcher| {
            let mut v: Vec<Vec<WmeId>> = m.conflict_set().into_iter().map(|i| i.wme_ids).collect();
            v.sort();
            v
        };
        assert_eq!(keys(&m_orig), keys(&m_cc));
        assert_eq!(m_orig.conflict_set().len(), 40);
    }

    #[test]
    fn copy_and_constrain_spreads_buckets() {
        // The whole point: the cross-product join's tokens now hash to
        // different buckets because the copies have different node ids.
        let src = "(p cross (lhs ^id <a>) (rhs ^id <b>) --> (remove 1))";
        let original = parse_production(src).unwrap();
        let run = |prog: Program| {
            let mut m = ReteMatcher::new(
                crate::network::ReteNetwork::compile(&prog).unwrap(),
                EngineConfig {
                    table_size: 256,
                    record_trace: true,
                },
            );
            let mut changes = Vec::new();
            for i in 0..16 {
                changes.push(WmeChange::add(
                    WmeId(100 + i),
                    Wme::new("lhs", &[("id", (i as i64).into())]),
                ));
            }
            changes.push(WmeChange::add(
                WmeId(200),
                Wme::new("rhs", &[("id", 3.into())]),
            ));
            m.process(&changes);
            let trace = m.take_trace().unwrap();
            let mut buckets: Vec<u64> = trace.cycles[0]
                .activations
                .iter()
                .filter(|a| a.kind == ActKind::TwoInput && a.side == Side::Left)
                .map(|a| a.bucket)
                .collect();
            buckets.sort_unstable();
            buckets.dedup();
            buckets.len()
        };
        let single = run(Program::from_productions(vec![original.clone()]).unwrap());
        let copies = copy_and_constrain(&original, 1, "id", &[4, 8, 12]).unwrap();
        let split = run(Program::from_productions(copies).unwrap());
        assert_eq!(single, 1, "cross-product join uses one bucket");
        assert!(split >= 3, "copies spread tokens over buckets, got {split}");
    }

    #[test]
    fn copy_and_constrain_rejects_bad_arguments() {
        let p = parse_production("(p x (a ^id <i>) -(b) --> (remove 1))").unwrap();
        assert!(copy_and_constrain(&p, 9, "id", &[1]).is_err());
        assert!(copy_and_constrain(&p, 1, "id", &[1]).is_err()); // negated CE
        assert!(copy_and_constrain(&p, 0, "id", &[]).is_err());
        assert!(copy_and_constrain(&p, 0, "id", &[5, 5]).is_err());
        assert!(copy_and_constrain(&p, 0, "id", &[9, 2]).is_err());
    }

    #[test]
    fn unshare_compiles_without_beta_sharing() {
        let prog = parse_program(
            r#"
            (p a (g ^id <g>) (t ^g <g>) (u ^k 1) --> (remove 1))
            (p b (g ^id <g>) (t ^g <g>) (u ^k 2) --> (remove 1))
            "#,
        )
        .unwrap();
        let shared = ReteNetwork::compile(&prog).unwrap();
        let unshared = unshare(&prog).unwrap();
        assert!(unshared.stats().two_input > shared.stats().two_input);
        assert_eq!(unshared.stats().shared_two_input, 0);
    }

    /// Run each batch through matchers over both networks and compare the
    /// full conflict sets — production ids included — after every batch.
    fn assert_identical_conflicts(a: &ReteNetwork, b: &ReteNetwork, batches: &[Vec<WmeChange>]) {
        let mut ma = ReteMatcher::new(a.clone(), EngineConfig::default());
        let mut mb = ReteMatcher::new(b.clone(), EngineConfig::default());
        let key = |m: &ReteMatcher| {
            let mut v: Vec<(u32, Vec<WmeId>)> = m
                .conflict_set()
                .into_iter()
                .map(|i| (i.production.0, i.wme_ids))
                .collect();
            v.sort();
            v
        };
        for batch in batches {
            ma.process(batch);
            mb.process(batch);
            assert_eq!(key(&ma), key(&mb));
        }
    }

    fn cross_batches() -> Vec<Vec<WmeChange>> {
        let mut changes = Vec::new();
        for i in 0..12 {
            changes.push(WmeChange::add(
                WmeId(100 + i),
                Wme::new("lhs", &[("id", (i as i64).into())]),
            ));
        }
        // Symbol-valued ids exercise the total-order fallback (they must
        // land in the last range copy, not vanish).
        changes.push(WmeChange::add(
            WmeId(200),
            Wme::new("lhs", &[("id", "zed".into())]),
        ));
        for i in 0..6 {
            changes.push(WmeChange::add(
                WmeId(300 + i),
                Wme::new("rhs", &[("id", (i as i64).into())]),
            ));
        }
        let retract = vec![WmeChange::remove(
            WmeId(103),
            Wme::new("lhs", &[("id", 3.into())]),
        )];
        vec![changes, retract]
    }

    #[test]
    fn planned_split_preserves_conflict_sets_and_production_ids() {
        let prog = parse_program("(p cross (lhs ^id <a>) (rhs ^id <b>) --> (remove 1))").unwrap();
        let base = ReteNetwork::compile(&prog).unwrap();
        let plan =
            TransformPlan::new().with_split(ProductionId(0), SplitSpec::new(1, "id", vec![2, 4]));
        let split = rewrite(&base, &prog, &plan).unwrap();
        // Three variants, one production node each, all for ProductionId(0).
        assert_eq!(split.production_nodes_of(ProductionId(0)).count(), 3);
        assert_identical_conflicts(&base, &split, &cross_batches());
    }

    #[test]
    fn planned_split_on_seed_ce_preserves_conflict_sets() {
        let prog = parse_program("(p cross (lhs ^id <a>) (rhs ^id <b>) --> (remove 1))").unwrap();
        let base = ReteNetwork::compile(&prog).unwrap();
        let plan =
            TransformPlan::new().with_split(ProductionId(0), SplitSpec::new(0, "id", vec![3]));
        let split = rewrite(&base, &prog, &plan).unwrap();
        assert_identical_conflicts(&base, &split, &cross_batches());
    }

    #[test]
    fn planned_unshare_preserves_conflict_sets() {
        let prog = parse_program(
            r#"
            (p a (goal ^id <g>) (task ^goal <g>) (slot ^x 1) --> (remove 1))
            (p b (goal ^id <g>) (task ^goal <g>) (slot ^x 2) --> (remove 1))
            "#,
        )
        .unwrap();
        let base = ReteNetwork::compile(&prog).unwrap();
        let plan = TransformPlan::new().with_unshare(ProductionId(1));
        let net = rewrite(&base, &prog, &plan).unwrap();
        // Production b's chain no longer collapses into a's.
        assert_eq!(net.stats().shared_two_input, 0);
        assert!(net.stats().two_input > base.stats().two_input);
        let changes = vec![
            WmeChange::add(WmeId(1), Wme::new("goal", &[("id", 7.into())])),
            WmeChange::add(WmeId(2), Wme::new("task", &[("goal", 7.into())])),
            WmeChange::add(WmeId(3), Wme::new("slot", &[("x", 1.into())])),
            WmeChange::add(WmeId(4), Wme::new("slot", &[("x", 2.into())])),
        ];
        assert_identical_conflicts(&base, &net, &[changes]);
    }

    #[test]
    fn planned_split_spreads_buckets_without_renaming() {
        let prog = parse_program("(p cross (lhs ^id <a>) (rhs ^id <b>) --> (remove 1))").unwrap();
        let run = |net: ReteNetwork| {
            let mut m = ReteMatcher::new(
                net,
                EngineConfig {
                    table_size: 256,
                    record_trace: true,
                },
            );
            let mut changes = Vec::new();
            for i in 0..16 {
                changes.push(WmeChange::add(
                    WmeId(100 + i),
                    Wme::new("lhs", &[("id", (i as i64).into())]),
                ));
            }
            changes.push(WmeChange::add(
                WmeId(200),
                Wme::new("rhs", &[("id", 3.into())]),
            ));
            m.process(&changes);
            let trace = m.take_trace().unwrap();
            let mut buckets: Vec<u64> = trace.cycles[0]
                .activations
                .iter()
                .filter(|a| a.kind == ActKind::TwoInput && a.side == Side::Left)
                .map(|a| a.bucket)
                .collect();
            buckets.sort_unstable();
            buckets.dedup();
            buckets.len()
        };
        let base = ReteNetwork::compile(&prog).unwrap();
        let plan = TransformPlan::new()
            .with_split(ProductionId(0), SplitSpec::new(1, "id", vec![4, 8, 12]));
        let split = rewrite(&base, &prog, &plan).unwrap();
        assert_eq!(run(base), 1, "cross-product join uses one bucket");
        assert!(run(split) >= 3, "split spreads tokens over buckets");
    }

    #[test]
    fn split_spec_rejects_unsound_targets() {
        let p = parse_production("(p x (a ^id <i>) -(b ^id <j>) (c ^k 1) --> (remove 1))").unwrap();
        // Out of range.
        assert!(SplitSpec::new(9, "id", vec![1]).validate(&p).is_err());
        // Negated CE.
        assert!(SplitSpec::new(1, "id", vec![1]).validate(&p).is_err());
        // Empty / non-increasing boundaries.
        assert!(SplitSpec::new(0, "id", vec![]).validate(&p).is_err());
        assert!(SplitSpec::new(0, "id", vec![5, 5]).validate(&p).is_err());
        // Attribute the CE never tests: presence not guaranteed.
        assert!(SplitSpec::new(0, "size", vec![1]).validate(&p).is_err());
        // A constant-tested attribute is fair game (presence implied).
        assert!(SplitSpec::new(2, "k", vec![1]).validate(&p).is_ok());
    }

    #[test]
    fn plan_validate_rejects_double_split_and_bad_pid() {
        let prog = parse_program("(p one (a ^id <i>) (b ^id <i>) --> (remove 1))").unwrap();
        let double = TransformPlan::new()
            .with_split(ProductionId(0), SplitSpec::new(0, "id", vec![1]))
            .with_split(ProductionId(0), SplitSpec::new(1, "id", vec![2]));
        assert!(double.validate(&prog).is_err());
        let bad = TransformPlan::new().with_unshare(ProductionId(9));
        assert!(bad.validate(&prog).is_err());
    }

    #[test]
    fn suggest_plan_targets_the_cross_product_join() {
        let prog = parse_program(
            r#"
            (p cross (lhs ^id <a>) (rhs ^id <b>) --> (remove 1))
            (p plain (goal ^id <g>) (task ^goal <g>) --> (remove 1))
            "#,
        )
        .unwrap();
        let net = ReteNetwork::compile(&prog).unwrap();
        let mut wmes = Vec::new();
        for i in 0..16 {
            wmes.push(Wme::new("rhs", &[("id", (i as i64).into())]));
        }
        let plan = suggest_plan(
            &net,
            &prog,
            &BTreeMap::new(),
            &wmes,
            &SuggestOptions::default(),
        );
        // Only the cross production is split, on the rhs CE's id attribute.
        assert_eq!(plan.splits().len(), 1);
        let (pid, spec) = &plan.splits()[0];
        assert_eq!(*pid, ProductionId(0));
        assert_eq!(spec.ce_index, 1);
        assert_eq!(spec.attr, intern("id"));
        assert_eq!(spec.boundaries.len(), 3);
        assert!(plan.validate(&prog).is_ok());
        // And the suggested plan preserves semantics.
        let rewritten = rewrite(&net, &prog, &plan).unwrap();
        let mut changes: Vec<WmeChange> = wmes
            .iter()
            .enumerate()
            .map(|(i, w)| WmeChange::add(WmeId(i as u64 + 1), w.clone()))
            .collect();
        changes.push(WmeChange::add(
            WmeId(500),
            Wme::new("lhs", &[("id", 3.into())]),
        ));
        assert_identical_conflicts(&net, &rewritten, &[changes]);
    }

    #[test]
    fn suggest_plan_skips_value_poor_attributes() {
        let prog = parse_program("(p cross (lhs ^id <a>) (rhs ^id <b>) --> (remove 1))").unwrap();
        let net = ReteNetwork::compile(&prog).unwrap();
        // All rhs ids are the same symbol: no integer diversity, no split.
        let wmes = vec![Wme::new("rhs", &[("id", "only".into())]); 8];
        let plan = suggest_plan(
            &net,
            &prog,
            &BTreeMap::new(),
            &wmes,
            &SuggestOptions::default(),
        );
        assert!(plan.splits().is_empty());
    }
}
