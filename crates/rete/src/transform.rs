//! The paper's bottleneck-removal transforms (§5.2).
//!
//! Three mechanisms are proposed for the *multiple-successor* and
//! *uneven-token-distribution* problems:
//!
//! 1. **Unsharing** (Figure 5-3): compile the network without two-input
//!    node sharing, so each production generates its successors at its own
//!    node (and hence bucket). Implemented in the compiler —
//!    [`CompileOptions::unshared`]; [`unshare`] is a convenience wrapper.
//! 2. **Dummy nodes**: insert intermediate nodes that split one node's
//!    large successor fan-out into 2–4 parts. Implemented as the trace
//!    transform [`split_fanout`], mirroring how dummy nodes reshape the
//!    activation tree without changing match semantics.
//! 3. **Copy-and-constraint** (Stolfo; §5.2.2): split a production into
//!    multiple copies, each matching a slice of the data, so the copies'
//!    distinct node ids restore hash discrimination. Implemented as the
//!    source transform [`copy_and_constrain`].

use crate::hashfn::bucket_index;
use crate::network::{CompileOptions, NodeId, ReteNetwork, Side};
use crate::trace::{ActKind, ActivationRecord, Trace, TraceCycle};
use mpps_ops::{intern, AttrTest, OpsError, Predicate, Production, Program, TestKind, Value};

/// Compile `program` with two-input-node sharing disabled — the unsharing
/// transform of §5.2.1.
pub fn unshare(program: &Program) -> Result<ReteNetwork, OpsError> {
    ReteNetwork::compile_with(program, CompileOptions::unshared())
}

/// Options for [`split_fanout`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SplitFanoutOptions {
    /// Only activations generating more than this many successors are
    /// split.
    pub threshold: usize,
    /// How many dummy nodes to split the successors across (the paper
    /// suggests 2–4).
    pub ways: usize,
}

impl Default for SplitFanoutOptions {
    fn default() -> Self {
        SplitFanoutOptions {
            threshold: 8,
            ways: 4,
        }
    }
}

/// Apply the dummy-node transform to a trace: every activation whose
/// fan-out exceeds `opts.threshold` has its successors re-parented onto
/// `opts.ways` freshly invented dummy two-input activations, each placed in
/// its own hash bucket. The original activation then generates only
/// `opts.ways` (dummy) tokens, and the real successors are generated in
/// parallel at the dummies — exactly the effect of inserting dummy nodes in
/// the Rete network.
pub fn split_fanout(trace: &Trace, opts: SplitFanoutOptions) -> Trace {
    assert!(opts.ways >= 2, "splitting needs at least 2 ways");
    // Fresh node ids start past any node mentioned in the trace.
    let mut next_node = trace
        .cycles
        .iter()
        .flat_map(|c| c.activations.iter())
        .map(|a| a.node.0)
        .max()
        .map_or(0, |m| m + 1);

    let mut out = Trace::new(trace.table_size);
    for cycle in &trace.cycles {
        let children = cycle.children_index();
        let mut new_cycle = TraceCycle::default();
        // old index -> new index (for unsplit parents)
        let mut remap: Vec<u32> = vec![0; cycle.activations.len()];
        // old child index -> new parent index (for re-parented children)
        let mut reparent: Vec<Option<u32>> = vec![None; cycle.activations.len()];

        for (i, act) in cycle.activations.iter().enumerate() {
            let parent = match (reparent[i], act.parent) {
                (Some(p), _) => Some(p),
                (None, Some(op)) => Some(remap[op as usize]),
                (None, None) => None,
            };
            let new_idx = new_cycle.activations.len() as u32;
            remap[i] = new_idx;
            new_cycle
                .activations
                .push(ActivationRecord { parent, ..*act });

            let kids = &children[i];
            if kids.len() > opts.threshold {
                // Insert dummies right after the parent; round-robin the
                // children across them.
                let mut dummy_idx = Vec::with_capacity(opts.ways);
                for _ in 0..opts.ways {
                    let node = NodeId(next_node);
                    next_node += 1;
                    let idx = new_cycle.activations.len() as u32;
                    dummy_idx.push(idx);
                    new_cycle.activations.push(ActivationRecord {
                        node,
                        side: Side::Left,
                        sign: act.sign,
                        bucket: bucket_index(node, [], trace.table_size),
                        parent: Some(new_idx),
                        kind: ActKind::TwoInput,
                    });
                }
                for (k, &child) in kids.iter().enumerate() {
                    reparent[child as usize] = Some(dummy_idx[k % opts.ways]);
                }
            }
        }
        out.cycles.push(new_cycle);
    }
    out
}

/// Split `production` into one copy per half-open value range of the
/// integer attribute `attr` of condition element `ce_index` (0-based into
/// the LHS). `boundaries` must be strictly increasing; `n` boundaries yield
/// `n + 1` copies covering `(-∞, b0)`, `[b0, b1)`, …, `[bn-1, +∞)`.
///
/// Any WME whose `attr` is an integer matches exactly one copy, so the
/// union of the copies' matches equals the original's — provided every WME
/// reaching that CE carries an integer `attr` (the caller picks an
/// attribute for which that holds). The copies are distinct productions
/// compiled to distinct node ids, which is what restores hash
/// discrimination for non-discriminating (cross-product) joins.
pub fn copy_and_constrain(
    production: &Production,
    ce_index: usize,
    attr: &str,
    boundaries: &[i64],
) -> Result<Vec<Production>, OpsError> {
    let invalid = |msg: String| {
        Err(OpsError::InvalidProduction(
            production.name.to_string(),
            msg,
        ))
    };
    if ce_index >= production.lhs.len() {
        return invalid(format!("copy-and-constraint: no CE at index {ce_index}"));
    }
    if production.lhs[ce_index].negated {
        return invalid("copy-and-constraint: cannot split on a negated CE".into());
    }
    if boundaries.is_empty() {
        return invalid("copy-and-constraint: need at least one boundary".into());
    }
    if boundaries.windows(2).any(|w| w[0] >= w[1]) {
        return invalid("copy-and-constraint: boundaries must be strictly increasing".into());
    }
    let attr = intern(attr);
    let copies = boundaries.len() + 1;
    let mut out = Vec::with_capacity(copies);
    for i in 0..copies {
        let mut p = production.clone();
        p.name = intern(&format!("{}*cc{}", production.name, i));
        let ce = &mut p.lhs[ce_index];
        if i > 0 {
            ce.tests.push(AttrTest {
                attr,
                kind: TestKind::Constant(Predicate::Ge, Value::Int(boundaries[i - 1])),
            });
        }
        if i < boundaries.len() {
            ce.tests.push(AttrTest {
                attr,
                kind: TestKind::Constant(Predicate::Lt, Value::Int(boundaries[i])),
            });
        }
        p.validate()?;
        out.push(p);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, ReteMatcher};
    use mpps_ops::{parse_production, parse_program, Matcher, Wme, WmeChange, WmeId};

    fn sample_trace_with_big_fanout() -> Trace {
        use mpps_ops::Sign;
        let mut t = Trace::new(64);
        let mut cycle = TraceCycle::default();
        // One root with 12 children and one small root with 1 child.
        cycle.activations.push(ActivationRecord {
            node: NodeId(1),
            side: Side::Left,
            sign: Sign::Plus,
            bucket: 3,
            parent: None,
            kind: ActKind::TwoInput,
        });
        for _ in 0..12 {
            cycle.activations.push(ActivationRecord {
                node: NodeId(2),
                side: Side::Left,
                sign: Sign::Plus,
                bucket: 7,
                parent: Some(0),
                kind: ActKind::TwoInput,
            });
        }
        cycle.activations.push(ActivationRecord {
            node: NodeId(3),
            side: Side::Right,
            sign: Sign::Plus,
            bucket: 9,
            parent: None,
            kind: ActKind::TwoInput,
        });
        cycle.activations.push(ActivationRecord {
            node: NodeId(2),
            side: Side::Left,
            sign: Sign::Plus,
            bucket: 7,
            parent: Some(13),
            kind: ActKind::TwoInput,
        });
        t.cycles.push(cycle);
        t
    }

    #[test]
    fn split_fanout_reduces_max_fanout() {
        let t = sample_trace_with_big_fanout();
        assert_eq!(t.cycles[0].max_fanout(), 12);
        let s = split_fanout(
            &t,
            SplitFanoutOptions {
                threshold: 8,
                ways: 4,
            },
        );
        // The big parent now has 4 dummy children; each dummy has 3 real
        // children.
        assert_eq!(s.cycles[0].max_fanout(), 4);
        // 15 original + 4 dummies.
        assert_eq!(s.cycles[0].activations.len(), 19);
    }

    #[test]
    fn split_fanout_preserves_small_parents() {
        let t = sample_trace_with_big_fanout();
        let s = split_fanout(
            &t,
            SplitFanoutOptions {
                threshold: 20,
                ways: 2,
            },
        );
        // Nothing exceeds the threshold: structure unchanged.
        assert_eq!(s.cycles[0].activations.len(), t.cycles[0].activations.len());
        assert_eq!(s.cycles[0].max_fanout(), t.cycles[0].max_fanout());
    }

    #[test]
    fn split_fanout_keeps_parent_before_child_invariant() {
        let s = split_fanout(
            &sample_trace_with_big_fanout(),
            SplitFanoutOptions::default(),
        );
        for cycle in &s.cycles {
            for (i, a) in cycle.activations.iter().enumerate() {
                if let Some(p) = a.parent {
                    assert!((p as usize) < i);
                }
            }
        }
    }

    #[test]
    fn split_fanout_dummies_get_fresh_nodes_and_buckets() {
        let t = sample_trace_with_big_fanout();
        let s = split_fanout(
            &t,
            SplitFanoutOptions {
                threshold: 8,
                ways: 4,
            },
        );
        let dummies: Vec<&ActivationRecord> = s.cycles[0]
            .activations
            .iter()
            .filter(|a| a.node.0 > 3)
            .collect();
        assert_eq!(dummies.len(), 4);
        let mut nodes: Vec<u32> = dummies.iter().map(|a| a.node.0).collect();
        nodes.dedup();
        assert_eq!(nodes.len(), 4);
    }

    #[test]
    fn copy_and_constrain_produces_partitioning_copies() {
        let p =
            parse_production("(p pairup (team ^id <a>) (team ^id <b>) --> (remove 1))").unwrap();
        let copies = copy_and_constrain(&p, 1, "id", &[10, 20]).unwrap();
        assert_eq!(copies.len(), 3);
        assert_eq!(copies[0].name.as_str(), "pairup*cc0");
        // Copy 0: id < 10; copy 1: 10 <= id < 20; copy 2: id >= 20.
        assert_eq!(copies[0].lhs[1].tests.len(), 2);
        assert_eq!(copies[1].lhs[1].tests.len(), 3);
        assert_eq!(copies[2].lhs[1].tests.len(), 2);
    }

    #[test]
    fn copy_and_constrain_preserves_match_semantics() {
        let src = "(p pairup (lhs ^id <a>) (rhs ^id <b>) --> (remove 1))";
        let original = parse_production(src).unwrap();
        let copies = copy_and_constrain(&original, 1, "id", &[5]).unwrap();

        let prog_orig = Program::from_productions(vec![original]).unwrap();
        let prog_cc = Program::from_productions(copies).unwrap();
        let mut m_orig = ReteMatcher::from_program(&prog_orig).unwrap();
        let mut m_cc = ReteMatcher::from_program(&prog_cc).unwrap();

        let mut changes = Vec::new();
        let mut id = 0;
        for i in 0..4 {
            id += 1;
            changes.push(WmeChange::add(
                WmeId(id),
                Wme::new("lhs", &[("id", i.into())]),
            ));
        }
        for i in 0..10 {
            id += 1;
            changes.push(WmeChange::add(
                WmeId(id),
                Wme::new("rhs", &[("id", i.into())]),
            ));
        }
        m_orig.process(&changes);
        m_cc.process(&changes);
        // Same WME combinations match (production ids differ by design).
        let keys = |m: &ReteMatcher| {
            let mut v: Vec<Vec<WmeId>> = m.conflict_set().into_iter().map(|i| i.wme_ids).collect();
            v.sort();
            v
        };
        assert_eq!(keys(&m_orig), keys(&m_cc));
        assert_eq!(m_orig.conflict_set().len(), 40);
    }

    #[test]
    fn copy_and_constrain_spreads_buckets() {
        // The whole point: the cross-product join's tokens now hash to
        // different buckets because the copies have different node ids.
        let src = "(p cross (lhs ^id <a>) (rhs ^id <b>) --> (remove 1))";
        let original = parse_production(src).unwrap();
        let run = |prog: Program| {
            let mut m = ReteMatcher::new(
                crate::network::ReteNetwork::compile(&prog).unwrap(),
                EngineConfig {
                    table_size: 256,
                    record_trace: true,
                },
            );
            let mut changes = Vec::new();
            for i in 0..16 {
                changes.push(WmeChange::add(
                    WmeId(100 + i),
                    Wme::new("lhs", &[("id", (i as i64).into())]),
                ));
            }
            changes.push(WmeChange::add(
                WmeId(200),
                Wme::new("rhs", &[("id", 3.into())]),
            ));
            m.process(&changes);
            let trace = m.take_trace().unwrap();
            let mut buckets: Vec<u64> = trace.cycles[0]
                .activations
                .iter()
                .filter(|a| a.kind == ActKind::TwoInput && a.side == Side::Left)
                .map(|a| a.bucket)
                .collect();
            buckets.sort_unstable();
            buckets.dedup();
            buckets.len()
        };
        let single = run(Program::from_productions(vec![original.clone()]).unwrap());
        let copies = copy_and_constrain(&original, 1, "id", &[4, 8, 12]).unwrap();
        let split = run(Program::from_productions(copies).unwrap());
        assert_eq!(single, 1, "cross-product join uses one bucket");
        assert!(split >= 3, "copies spread tokens over buckets, got {split}");
    }

    #[test]
    fn copy_and_constrain_rejects_bad_arguments() {
        let p = parse_production("(p x (a ^id <i>) -(b) --> (remove 1))").unwrap();
        assert!(copy_and_constrain(&p, 9, "id", &[1]).is_err());
        assert!(copy_and_constrain(&p, 1, "id", &[1]).is_err()); // negated CE
        assert!(copy_and_constrain(&p, 0, "id", &[]).is_err());
        assert!(copy_and_constrain(&p, 0, "id", &[5, 5]).is_err());
        assert!(copy_and_constrain(&p, 0, "id", &[9, 2]).is_err());
    }

    #[test]
    fn unshare_compiles_without_beta_sharing() {
        let prog = parse_program(
            r#"
            (p a (g ^id <g>) (t ^g <g>) (u ^k 1) --> (remove 1))
            (p b (g ^id <g>) (t ^g <g>) (u ^k 2) --> (remove 1))
            "#,
        )
        .unwrap();
        let shared = ReteNetwork::compile(&prog).unwrap();
        let unshared = unshare(&prog).unwrap();
        assert!(unshared.stats().two_input > shared.stats().two_input);
        assert_eq!(unshared.stats().shared_two_input, 0);
    }
}
