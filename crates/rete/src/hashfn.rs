//! The token hash function of §3 of the paper.
//!
//! > "The hash function applied to the tokens uses (as parameters) the
//! > *node-id* of the destination two-input node, and the *values* bound to
//! > the variables that are tested for equality at the destination node."
//!
//! Consequences the experiments rely on:
//!
//! * left tokens and right WMEs carrying the same equality-test values for
//!   the same node land in the **same bucket index** (the left entry in the
//!   left table, the right entry in the right table), so a node activation
//!   touches exactly one index;
//! * a join with **no** equality-tested variable (the Tourney cross-product)
//!   maps *all* of its tokens to a single bucket — the pathology §5.2.2
//!   analyzes;
//! * distinct node ids decorrelate bucket choices, which is why
//!   copy-and-constraint (new productions ⇒ new node ids) restores
//!   discrimination.
//!
//! The mix is a fixed splitmix64 chain — deterministic across runs and
//! platforms, so traces and simulations are exactly reproducible.

use crate::network::NodeId;
use mpps_ops::{Value, WmeId};

/// splitmix64 finalizer: a well-distributed, invertible 64-bit mix.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Start an incremental token hash for destination node `node`.
///
/// `hash_init` + repeated [`hash_mix`] produce exactly [`token_hash`]; the
/// split form lets the kernel hash values as it resolves them from an
/// arena chain without collecting them first.
#[inline]
pub fn hash_init(node: NodeId) -> u64 {
    mix(0x6d70_7073 ^ u64::from(node.0))
}

/// Fold one equality-tested value into an incremental token hash.
#[inline]
pub fn hash_mix(h: u64, v: Value) -> u64 {
    mix(h ^ v.fingerprint())
}

/// Raw 64-bit hash of `(node, values)`.
pub fn token_hash(node: NodeId, values: impl IntoIterator<Item = Value>) -> u64 {
    let mut h = hash_init(node);
    for v in values {
        h = hash_mix(h, v);
    }
    h
}

/// Fingerprint of a one-WME token chain (seed level).
///
/// Chain fingerprints are the arena's token-equality prefilter: two chains
/// with different fingerprints are certainly different; equal fingerprints
/// are confirmed by an exact WME-id walk.
#[inline]
pub fn chain_seed(wme: WmeId) -> u64 {
    mix(0x746f_6b65 ^ wme.0)
}

/// Extend a chain fingerprint by one matched WME.
#[inline]
pub fn chain_extend(h: u64, wme: WmeId) -> u64 {
    mix(h ^ wme.0)
}

/// Bucket index in a table of `table_size` buckets.
///
/// `table_size` is the *global* hash-index range that the mapping
/// partitions across match processors.
pub fn bucket_index(node: NodeId, values: impl IntoIterator<Item = Value>, table_size: u64) -> u64 {
    assert!(table_size > 0, "hash table must have at least one bucket");
    token_hash(node, values) % table_size
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_calls() {
        let vs = [Value::Int(1), Value::sym("a")];
        assert_eq!(
            token_hash(NodeId(7), vs.iter().copied()),
            token_hash(NodeId(7), vs.iter().copied())
        );
    }

    #[test]
    fn node_id_matters() {
        let vs = [Value::Int(1)];
        assert_ne!(
            token_hash(NodeId(1), vs.iter().copied()),
            token_hash(NodeId(2), vs.iter().copied())
        );
    }

    #[test]
    fn values_matter_and_order_matters() {
        // The compiler emits equality tests in a fixed order per node, so
        // order sensitivity is fine (both sides use the same order).
        let a = token_hash(NodeId(1), [Value::Int(1), Value::Int(2)]);
        let b = token_hash(NodeId(1), [Value::Int(2), Value::Int(1)]);
        let c = token_hash(NodeId(1), [Value::Int(1), Value::Int(2)]);
        assert_eq!(a, c);
        assert_ne!(a, b);
    }

    #[test]
    fn no_values_means_single_bucket_per_node() {
        // The cross-product pathology: every token of the node hashes alike.
        let empty: [Value; 0] = [];
        let a = bucket_index(NodeId(9), empty, 64);
        let b = bucket_index(NodeId(9), [], 64);
        assert_eq!(a, b);
    }

    #[test]
    fn bucket_index_in_range() {
        for n in 0..100u32 {
            let idx = bucket_index(NodeId(n), [Value::Int(i64::from(n))], 17);
            assert!(idx < 17);
        }
    }

    #[test]
    fn distribution_is_roughly_uniform() {
        // 4096 tokens into 64 buckets: no bucket should be empty and none
        // should hold more than 4x the mean for a decent mix.
        let mut counts = [0u32; 64];
        for i in 0..4096i64 {
            let idx = bucket_index(NodeId(3), [Value::Int(i)], 64) as usize;
            counts[idx] += 1;
        }
        assert!(counts.iter().all(|&c| c > 0));
        assert!(counts.iter().all(|&c| c < 256));
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_table_size_panics() {
        bucket_index(NodeId(0), [], 0);
    }
}
